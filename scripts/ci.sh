#!/usr/bin/env bash
# Continuous-integration driver: tier-1 verification plus a short
# differential-fuzz smoke run.
#
# Usage:
#   scripts/ci.sh              # build + verify + ctest + fuzz/cache smoke
#   scripts/ci.sh --sanitize   # same, instrumented with ASan+UBSan
#   TARCH_SANITIZE=thread scripts/ci.sh   # any sanitizer list by env var
#
# In addition to the full-suite run, the default configuration always
# race-checks the parallel sweep executor (a dedicated TSan build of
# test_sweep_cache + the parallel-executor tests) and clang-tidies
# src/analysis/ + src/common/ when clang-tidy is installed.  Every run
# ends with an observability smoke — tarch_profile over one Lua and one
# JS benchmark, with the emitted Chrome trace and stats JSON validated
# by the tool's own parser (docs/OBSERVABILITY.md) — and a serving
# smoke: tarch_served driven by tarch_bench_client over a Unix socket,
# including malformed-frame injection, a verifier-rejected inline
# source request, and a SIGTERM graceful drain (docs/SERVING.md) —
# followed by a 3-shard tarch_router smoke that SIGKILLs and restarts
# a shard under open-loop hedged load, and (on >= 4 cores) a scaling
# gate requiring the cluster to beat 2x a single daemon.
#
# Exits nonzero if the build breaks, the static verifier finds an
# error-severity issue in any generated interpreter image, any test
# fails, or the fuzzer finds a divergence / stats-invariant violation
# (reproducers land in $BUILD_DIR/fuzz-smoke).

set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${TARCH_SANITIZE:-}"
if [[ "${1:-}" == "--sanitize" ]]; then
    SANITIZE="address,undefined"
    shift
fi
# Accept the colloquial tier names alongside raw -fsanitize= lists.
case "$SANITIZE" in
    ubsan) SANITIZE="undefined" ;;
    asan) SANITIZE="address" ;;
    tsan) SANITIZE="thread" ;;
esac

BUILD_DIR="${BUILD_DIR:-build}"
if [[ -n "$SANITIZE" ]]; then
    BUILD_DIR="${BUILD_DIR}-sanitize"
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
FUZZ_SEEDS="${FUZZ_SEEDS:-0..500}"

echo "== configure ($BUILD_DIR)"
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DTARCH_SANITIZE="$SANITIZE"

echo "== build"
cmake --build "$BUILD_DIR" -j "$JOBS"

# Static verification first: a typed-state protocol regression in a
# generated interpreter fails here in seconds, before any simulation.
echo "== static verifier (6 generated images)"
for engine in lua js; do
    for variant in baseline typed chkld; do
        "$BUILD_DIR/tools/tarch_verify" --engine "$engine" \
            --variant "$variant" --quiet
    done
done

# Guard-elision soundness ratchet: type-infer and rewrite every bundled
# benchmark on both engines, then require the independent monomorphism
# verifier to find ZERO unsound elisions (docs/ANALYSIS.md).
echo "== type inference / guard elision ratchet (tarch_typeinf --check-all)"
"$BUILD_DIR/tools/tarch_typeinf" --check-all

echo "== tier-1 tests"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Second pass with the predecoded basic-block core (docs/FASTPATH.md):
# every core-facing suite must pass bit-identically under the fast
# path.  TARCH_EXEC_MODE flips the CoreConfig default, so the same test
# binaries exercise the other execution engine with zero test changes.
echo "== tier-1 tests, predecoded exec mode"
for t in test_core test_core_typed test_fastpath test_differential; do
    TARCH_EXEC_MODE=predecoded "$BUILD_DIR/tests/$t" \
        --gtest_brief=1
done

if [[ -z "$SANITIZE" ]]; then
    echo "== ThreadSanitizer (parallel executor + sweep cache + serve + router)"
    TSAN_DIR="${BUILD_DIR}-tsan"
    cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DTARCH_SANITIZE=thread
    cmake --build "$TSAN_DIR" -j "$JOBS" \
          --target test_sweep_cache test_common test_serve test_fastpath \
                   test_router test_loadgen test_metrics test_tracing \
                   test_snapshot test_session
    ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$JOBS" \
          -R 'SweepCache|CellCache|Parallel|Pool|ResolveJobs|ServeTest|SimServiceTest|FastPath\.|HashRing|ShardHealth|ShedQueue|RouterTest|HedgedClient|LatencyHistogram|OpenLoop|Metrics|Tracing|SlowLog|SnapshotCodec|SnapshotMatrix|SnapshotOracle|BothEngines|SessionLua'

    echo "== UndefinedBehaviorSanitizer (analysis + fastpath + fuzz suites)"
    # A dedicated UBSan tier over the suites that exercise the newest
    # native code paths: the static-analysis stack (typeinf/elide bit
    # arithmetic), the predecoded fast path, and the fuzz oracle.
    UBSAN_DIR="${BUILD_DIR}-ubsan"
    cmake -B "$UBSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DTARCH_SANITIZE=undefined
    cmake --build "$UBSAN_DIR" -j "$JOBS" \
          --target test_analysis test_typeinf test_fastpath test_fuzz
    for t in test_analysis test_typeinf test_fastpath test_fuzz; do
        echo "  -- $t (ubsan)"
        UBSAN_OPTIONS=halt_on_error=1 "$UBSAN_DIR/tests/$t" --gtest_brief=1
    done

    echo "== fast-path perf ratchet (bench_fastpath --check)"
    # The predecoded core must stay >= 2x the exact core (geomean over
    # the Table-7 suite) and bit-identical; skipped under sanitizers,
    # whose instrumentation skews the ratio.
    "$BUILD_DIR/bench/bench_fastpath" --check \
        --json "$BUILD_DIR/BENCH_fastpath.json"
fi

# Enforced lint gate: findings are errors, and a missing clang-tidy is
# itself a CI failure (set TARCH_SKIP_TIDY=1 only on machines that
# genuinely cannot install it, e.g. hermetic gcc-only containers).
if command -v clang-tidy > /dev/null 2>&1; then
    echo "== clang-tidy (src/analysis, src/common; warnings are errors)"
    clang-tidy -p "$BUILD_DIR" --warnings-as-errors='*' \
        src/analysis/*.cc src/common/*.cc
elif [[ "${TARCH_SKIP_TIDY:-0}" == "1" ]]; then
    echo "== clang-tidy skipped (TARCH_SKIP_TIDY=1)"
else
    echo "error: clang-tidy is required (the lint gate is enforced);" \
         "install it or set TARCH_SKIP_TIDY=1" >&2
    exit 1
fi

echo "== differential fuzz smoke (seeds $FUZZ_SEEDS)"
rm -rf "$BUILD_DIR/fuzz-smoke"
"$BUILD_DIR/tools/fuzz_differential" --seeds "$FUZZ_SEEDS" \
    --jobs "$JOBS" --out "$BUILD_DIR/fuzz-smoke"

echo "== snapshot-at-cycle fuzz smoke (seeds $FUZZ_SEEDS, --checkpoint)"
# The tarch-snap-v1 axis (docs/SNAPSHOT.md): every generated program is
# also snapshotted at ~1000 retired instructions, restored into a fresh
# machine, and both the interrupted original and the restored copy must
# finish bit-identical to the uninterrupted run — across both engines,
# all three ISA variants, and both exec modes.
rm -rf "$BUILD_DIR/fuzz-snap-smoke"
"$BUILD_DIR/tools/fuzz_differential" --seeds "$FUZZ_SEEDS" \
    --checkpoint 1000 --jobs "$JOBS" --out "$BUILD_DIR/fuzz-snap-smoke"

echo "== sweep-cache concurrency smoke"
# Two bench binaries racing on one cold cache must both finish and
# print identical tables (per-cell atomic temp-file + rename writes),
# and a warm third run must load every cell instead of re-simulating.
SMOKE_DIR="$BUILD_DIR/cache-smoke"
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
"$BUILD_DIR/bench/bench_fig5_speedup" --cache-dir "$SMOKE_DIR" \
    --jobs "$JOBS" > "$SMOKE_DIR/a.out" 2> "$SMOKE_DIR/a.err" &
SMOKE_A=$!
"$BUILD_DIR/bench/bench_fig5_speedup" --cache-dir "$SMOKE_DIR" \
    --jobs "$JOBS" > "$SMOKE_DIR/b.out" 2> "$SMOKE_DIR/b.err" &
SMOKE_B=$!
wait "$SMOKE_A"
wait "$SMOKE_B"
diff "$SMOKE_DIR/a.out" "$SMOKE_DIR/b.out"
"$BUILD_DIR/bench/bench_fig5_speedup" --cache-dir "$SMOKE_DIR" \
    > "$SMOKE_DIR/warm.out" 2> "$SMOKE_DIR/warm.err"
diff "$SMOKE_DIR/a.out" "$SMOKE_DIR/warm.out"
if grep -q "^info: sim" "$SMOKE_DIR/warm.err"; then
    echo "error: warm sweep re-simulated cells:" >&2
    grep "^info: sim" "$SMOKE_DIR/warm.err" >&2
    exit 1
fi

echo "== observability smoke (tarch_profile + exporter validation)"
# Profile one Lua and one JS benchmark, then validate the emitted
# artifacts with the tool's own JSON parser: the Chrome trace must be
# well-formed and contain both duration spans and instant events, and
# the stats dump must round-trip through the schema version gate.
OBS_DIR="$BUILD_DIR/obs-smoke"
rm -rf "$OBS_DIR"
mkdir -p "$OBS_DIR"
for engine in lua js; do
    "$BUILD_DIR/tools/tarch_profile" --engine "$engine" \
        --variant typed --benchmark fibo \
        --trace-out "$OBS_DIR/ci" --json > "$OBS_DIR/$engine.out"
    TRACE="$OBS_DIR/ci.$engine.fibo.typed.trace.json"
    STATS="$OBS_DIR/ci.$engine.fibo.typed.stats.json"
    "$BUILD_DIR/tools/tarch_profile" --validate-json "$TRACE"
    "$BUILD_DIR/tools/tarch_profile" --check-stats "$STATS"
    grep -q '"ph":"X"' "$TRACE"
    grep -q '"ph":"i"' "$TRACE"
done

echo "== serving smoke (tarch_served + tarch_bench_client)"
# Start the daemon on a Unix socket, drive a short closed-loop burst
# (with chaos connections injecting malformed frames), check that an
# inline source image the static verifier rejects comes back as a typed
# error, confirm the health counters saw the traffic, then SIGTERM the
# daemon and require a graceful drain (exit 0).  docs/SERVING.md.
SERVE_DIR="$BUILD_DIR/serve-smoke"
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR"
SERVE_SOCK="$SERVE_DIR/tarch.sock"
"$BUILD_DIR/tools/tarch_served" --unix "$SERVE_SOCK" \
    --cache-dir "$SERVE_DIR" > "$SERVE_DIR/served.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [[ -S "$SERVE_SOCK" ]] && break
    sleep 0.1
done
[[ -S "$SERVE_SOCK" ]]
"$BUILD_DIR/tools/tarch_bench_client" --unix "$SERVE_SOCK" \
    --connections 4 --requests 200 --benchmark fibo --variant typed \
    --chaos 2 > "$SERVE_DIR/load.out"
grep -q "protocol errors:  0" "$SERVE_DIR/load.out"
printf '_start:\n    fadd.d f0, f1, f2\n    halt\n' > "$SERVE_DIR/bad.s"
"$BUILD_DIR/tools/tarch_bench_client" --unix "$SERVE_SOCK" \
    --source "$SERVE_DIR/bad.s" --lang asm \
    --expect-error verify-rejected > "$SERVE_DIR/reject.out"
"$BUILD_DIR/tools/tarch_bench_client" --unix "$SERVE_SOCK" \
    --health-json > "$SERVE_DIR/health.json"
grep -q '"schema":"tarch-serve-stats-v2"' "$SERVE_DIR/health.json"
grep -q '"uptime_seconds":' "$SERVE_DIR/health.json"
grep -q '"replies_by_code":{"ok":' "$SERVE_DIR/health.json"
if grep -q '"received":0,' "$SERVE_DIR/health.json"; then
    echo "error: serving smoke saw no requests" >&2
    exit 1
fi
# The human-facing pretty-printer must surface the v2 fields too.
"$BUILD_DIR/tools/tarch_bench_client" --unix "$SERVE_SOCK" \
    --health > "$SERVE_DIR/health.txt"
grep -q 'uptime_seconds' "$SERVE_DIR/health.txt"
grep -q 'replies_by_code' "$SERVE_DIR/health.txt"
# Stateful sessions against one daemon: open + chunks + snapshot +
# close, with the read-back step asserting chunk state persisted.
"$BUILD_DIR/tools/tarch_bench_client" --unix "$SERVE_SOCK" \
    --connections 2 --requests 20 --session 5 \
    > "$SERVE_DIR/sessions.out"
grep -q "protocol errors:  0" "$SERVE_DIR/sessions.out"
grep -q "sessions lost:    0" "$SERVE_DIR/sessions.out"
grep -q "typed errors:     0" "$SERVE_DIR/sessions.out"
"$BUILD_DIR/tools/tarch_bench_client" --unix "$SERVE_SOCK" \
    --health-json > "$SERVE_DIR/health2.json"
grep -q '"sessions_opened":' "$SERVE_DIR/health2.json"
if grep -q '"session_chunks_run":0,' "$SERVE_DIR/health2.json"; then
    echo "error: serving smoke ran no session chunks" >&2
    exit 1
fi
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "error: tarch_served did not drain cleanly on SIGTERM" >&2
    tail -20 "$SERVE_DIR/served.log" >&2
    exit 1
fi

echo "== router smoke (3 shards + tarch_router, chaos + shard SIGKILL)"
# Three daemons behind the consistent-hash router; an open-loop hedged
# client drives a mixed cell/source workload with chaos connections
# while one shard is SIGKILLed mid-run and restarted.  The cluster
# must answer every request with a well-formed frame (zero protocol
# errors) and the router must drain gracefully on SIGTERM.
ROUTER_DIR="$BUILD_DIR/router-smoke"
rm -rf "$ROUTER_DIR"
mkdir -p "$ROUTER_DIR"
SHARD_PIDS=()
SHARD_ARGS=()
for i in 0 1 2; do
    mkdir -p "$ROUTER_DIR/cache$i"
    "$BUILD_DIR/tools/tarch_served" --unix "$ROUTER_DIR/shard$i.sock" \
        --cache-dir "$ROUTER_DIR/cache$i" \
        --trace-out "$ROUTER_DIR/shard$i-trace.json" \
        > "$ROUTER_DIR/shard$i.log" 2>&1 &
    SHARD_PIDS[$i]=$!
    SHARD_ARGS+=(--shard "unix:$ROUTER_DIR/shard$i.sock")
done
"$BUILD_DIR/tools/tarch_router" --unix "$ROUTER_DIR/router.sock" \
    --backoff-floor-ms 100 "${SHARD_ARGS[@]}" \
    --trace-out "$ROUTER_DIR/router-trace.json" \
    > "$ROUTER_DIR/router.log" 2>&1 &
ROUTER_PID=$!
for _ in $(seq 1 100); do
    [[ -S "$ROUTER_DIR/router.sock" ]] && break
    sleep 0.1
done
[[ -S "$ROUTER_DIR/router.sock" ]]
"$BUILD_DIR/tools/tarch_bench_client" --unix "$ROUTER_DIR/router.sock" \
    --connections 4 --requests 900 --rate 300 --mix-source 20 \
    --benchmark fibo --variant typed --chaos 2 --hedge-ms 200 \
    > "$ROUTER_DIR/load.out" &
LOAD_PID=$!
# SIGKILL one shard mid-run (by the exact PID we spawned — never by
# pattern), then bring it back on the same endpoint: the router must
# eject, fail over, and heal without a single garbled frame.
sleep 1
kill -KILL "${SHARD_PIDS[1]}"
wait "${SHARD_PIDS[1]}" 2>/dev/null || true
sleep 0.5
"$BUILD_DIR/tools/tarch_served" --unix "$ROUTER_DIR/shard1.sock" \
    --cache-dir "$ROUTER_DIR/cache1" \
    --trace-out "$ROUTER_DIR/shard1b-trace.json" \
    > "$ROUTER_DIR/shard1b.log" 2>&1 &
SHARD_PIDS[1]=$!
if ! wait "$LOAD_PID"; then
    echo "error: router smoke load failed" >&2
    cat "$ROUTER_DIR/load.out" >&2
    tail -20 "$ROUTER_DIR/router.log" >&2
    exit 1
fi
grep -q "protocol errors:  0" "$ROUTER_DIR/load.out"
"$BUILD_DIR/tools/tarch_bench_client" --unix "$ROUTER_DIR/router.sock" \
    --health-json > "$ROUTER_DIR/health.json"
grep -q '"schema":"tarch-router-stats-v2"' "$ROUTER_DIR/health.json"
grep -q '"uptime_seconds":' "$ROUTER_DIR/health.json"
grep -q '"replies_by_code":{"ok":' "$ROUTER_DIR/health.json"

echo "== stateful session smoke (chunks under a SIGKILLed owner)"
# Session traffic through the router while one shard is SIGKILLed
# mid-run.  The router snapshots each session after every chunk and
# migrates sessions of the dead shard to a survivor via restore; every
# surviving session's read-back step asserts its counter state came
# through intact (a divergence counts as a protocol error and fails
# the client).  Sessions whose blob was not yet cached are reported as
# lost — tolerated here; zero garbled frames is not negotiable.
"$BUILD_DIR/tools/tarch_bench_client" --unix "$ROUTER_DIR/router.sock" \
    --connections 2 --requests 60 --session 10 \
    > "$ROUTER_DIR/sessions.out" &
SESSION_PID=$!
sleep 0.3
kill -KILL "${SHARD_PIDS[2]}"
wait "${SHARD_PIDS[2]}" 2>/dev/null || true
if ! wait "$SESSION_PID"; then
    echo "error: session smoke load failed" >&2
    cat "$ROUTER_DIR/sessions.out" >&2
    tail -20 "$ROUTER_DIR/router.log" >&2
    exit 1
fi
grep -q "protocol errors:  0" "$ROUTER_DIR/sessions.out"
awk '/^sessions done:/ { exit ($3 > 0) ? 0 : 1 }' \
    "$ROUTER_DIR/sessions.out"
"$BUILD_DIR/tools/tarch_bench_client" --unix "$ROUTER_DIR/router.sock" \
    --health-json > "$ROUTER_DIR/health2.json"
grep -q '"sessions_migrated":' "$ROUTER_DIR/health2.json"
# Bring shard 2 back (writing the trace file its killed predecessor
# never could) so the traced run below has the full cluster.
"$BUILD_DIR/tools/tarch_served" --unix "$ROUTER_DIR/shard2.sock" \
    --cache-dir "$ROUTER_DIR/cache2" \
    --trace-out "$ROUTER_DIR/shard2-trace.json" \
    > "$ROUTER_DIR/shard2b.log" 2>&1 &
SHARD_PIDS[2]=$!
for _ in $(seq 1 100); do
    [[ -S "$ROUTER_DIR/shard2.sock" ]] && break
    sleep 0.1
done

# Traced run: scrape the router's metrics before and after a sampled
# closed-loop burst, lint both scrapes (and require counter
# monotonicity), and collect the client's Chrome trace.  The backend
# connections are warm from the load above, so the pipelined Hello has
# long since negotiated v2 and these requests trace end to end.
"$BUILD_DIR/tools/tarch_bench_client" --unix "$ROUTER_DIR/router.sock" \
    --metrics > "$ROUTER_DIR/metrics1.txt"
"$BUILD_DIR/tools/tarch_bench_client" --unix "$ROUTER_DIR/router.sock" \
    --connections 2 --requests 40 --benchmark fibo --variant typed \
    --trace-out "$ROUTER_DIR/client-trace.json" --trace-sample 1 \
    > "$ROUTER_DIR/traced.out"
grep -q "protocol errors:  0" "$ROUTER_DIR/traced.out"
"$BUILD_DIR/tools/tarch_bench_client" --unix "$ROUTER_DIR/router.sock" \
    --metrics > "$ROUTER_DIR/metrics2.txt"
"$BUILD_DIR/tools/tarch_trace" lint-metrics "$ROUTER_DIR/metrics2.txt" \
    --prev "$ROUTER_DIR/metrics1.txt"
grep -q 'tarch_router_replies_total{code="ok"}' "$ROUTER_DIR/metrics2.txt"
kill -TERM "$ROUTER_PID"
if ! wait "$ROUTER_PID"; then
    echo "error: tarch_router did not drain cleanly on SIGTERM" >&2
    tail -20 "$ROUTER_DIR/router.log" >&2
    exit 1
fi
for pid in "${SHARD_PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${SHARD_PIDS[@]}"; do
    wait "$pid" 2>/dev/null || true
done

echo "== merged trace crosses client -> router -> shard"
# shard1's original process was SIGKILLed mid-test and never dumped a
# trace, so the restarted shard1b file stands in for it.
"$BUILD_DIR/tools/tarch_trace" merge "$ROUTER_DIR/merged-trace.json" \
    "$ROUTER_DIR/client-trace.json" "$ROUTER_DIR/router-trace.json" \
    "$ROUTER_DIR/shard0-trace.json" "$ROUTER_DIR/shard1b-trace.json" \
    "$ROUTER_DIR/shard2-trace.json"
"$BUILD_DIR/tools/tarch_trace" validate "$ROUTER_DIR/merged-trace.json"
"$BUILD_DIR/tools/tarch_trace" check-crossing 3 \
    "$ROUTER_DIR/merged-trace.json"

if [[ "$JOBS" -ge 4 ]]; then
    echo "== router scaling gate (3 shards >= 2x one daemon)"
    # Every daemon is pinned to one worker and runs uncached, so each
    # request pays full simulation cost and extra shards buy real
    # throughput.  The 3-shard cluster must beat twice the single
    # daemon on an all-distinct-source open-loop burst.
    SCALE_DIR="$BUILD_DIR/router-scale"
    rm -rf "$SCALE_DIR"
    mkdir -p "$SCALE_DIR"
    SCALE_PIDS=()
    SCALE_ARGS=()
    "$BUILD_DIR/tools/tarch_served" --unix "$SCALE_DIR/solo.sock" \
        --cache-dir "$SCALE_DIR" --jobs 1 --no-memory-cache \
        --no-disk-cache > "$SCALE_DIR/solo.log" 2>&1 &
    SCALE_PIDS+=($!)
    for i in 0 1 2; do
        "$BUILD_DIR/tools/tarch_served" --unix "$SCALE_DIR/shard$i.sock" \
            --cache-dir "$SCALE_DIR" --jobs 1 --no-memory-cache \
            --no-disk-cache > "$SCALE_DIR/shard$i.log" 2>&1 &
        SCALE_PIDS+=($!)
        SCALE_ARGS+=(--shard "unix:$SCALE_DIR/shard$i.sock")
    done
    "$BUILD_DIR/tools/tarch_router" --unix "$SCALE_DIR/router.sock" \
        "${SCALE_ARGS[@]}" > "$SCALE_DIR/router.log" 2>&1 &
    SCALE_PIDS+=($!)
    for _ in $(seq 1 100); do
        [[ -S "$SCALE_DIR/solo.sock" && -S "$SCALE_DIR/router.sock" ]] \
            && break
        sleep 0.1
    done
    "$BUILD_DIR/tools/tarch_bench_client" --unix "$SCALE_DIR/solo.sock" \
        --connections 6 --requests 300 --rate 100000 --mix-source 100 \
        > "$SCALE_DIR/solo.out"
    "$BUILD_DIR/tools/tarch_bench_client" --unix "$SCALE_DIR/router.sock" \
        --connections 6 --requests 300 --rate 100000 --mix-source 100 \
        > "$SCALE_DIR/cluster.out"
    SOLO_TPS=$(awk '/^throughput:/ {print $2}' "$SCALE_DIR/solo.out")
    CLUSTER_TPS=$(awk '/^throughput:/ {print $2}' "$SCALE_DIR/cluster.out")
    echo "solo: $SOLO_TPS req/s; 3-shard cluster: $CLUSTER_TPS req/s"
    if ! awk -v c="$CLUSTER_TPS" -v s="$SOLO_TPS" \
         'BEGIN { exit (c >= 2 * s) ? 0 : 1 }'; then
        echo "error: 3-shard cluster under 2x solo throughput" >&2
        exit 1
    fi
    for pid in "${SCALE_PIDS[@]}"; do
        kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in "${SCALE_PIDS[@]}"; do
        wait "$pid" 2>/dev/null || true
    done
else
    echo "== router scaling gate skipped (needs >= 4 cores, have $JOBS)"
fi

echo "== ci OK"
