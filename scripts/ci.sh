#!/usr/bin/env bash
# Continuous-integration driver: tier-1 verification plus a short
# differential-fuzz smoke run.
#
# Usage:
#   scripts/ci.sh              # build + ctest + 200-seed fuzz smoke
#   scripts/ci.sh --sanitize   # same, instrumented with ASan+UBSan
#
# Exits nonzero if the build breaks, any test fails, or the fuzzer
# finds a divergence / stats-invariant violation (reproducers land in
# $BUILD_DIR/fuzz-smoke).

set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=""
if [[ "${1:-}" == "--sanitize" ]]; then
    SANITIZE="address,undefined"
    shift
fi

BUILD_DIR="${BUILD_DIR:-build}"
if [[ -n "$SANITIZE" ]]; then
    BUILD_DIR="${BUILD_DIR}-sanitize"
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
FUZZ_SEEDS="${FUZZ_SEEDS:-0..200}"

echo "== configure ($BUILD_DIR)"
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DTARCH_SANITIZE="$SANITIZE"

echo "== build"
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== tier-1 tests"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== differential fuzz smoke (seeds $FUZZ_SEEDS)"
rm -rf "$BUILD_DIR/fuzz-smoke"
"$BUILD_DIR/tools/fuzz_differential" --seeds "$FUZZ_SEEDS" \
    --jobs "$JOBS" --out "$BUILD_DIR/fuzz-smoke"

echo "== sweep-cache concurrency smoke"
# Two bench binaries racing on one cold cache must both finish and
# print identical tables (per-cell atomic temp-file + rename writes),
# and a warm third run must load every cell instead of re-simulating.
SMOKE_DIR="$BUILD_DIR/cache-smoke"
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
"$BUILD_DIR/bench/bench_fig5_speedup" --cache-dir "$SMOKE_DIR" \
    --jobs "$JOBS" > "$SMOKE_DIR/a.out" 2> "$SMOKE_DIR/a.err" &
SMOKE_A=$!
"$BUILD_DIR/bench/bench_fig5_speedup" --cache-dir "$SMOKE_DIR" \
    --jobs "$JOBS" > "$SMOKE_DIR/b.out" 2> "$SMOKE_DIR/b.err" &
SMOKE_B=$!
wait "$SMOKE_A"
wait "$SMOKE_B"
diff "$SMOKE_DIR/a.out" "$SMOKE_DIR/b.out"
"$BUILD_DIR/bench/bench_fig5_speedup" --cache-dir "$SMOKE_DIR" \
    > "$SMOKE_DIR/warm.out" 2> "$SMOKE_DIR/warm.err"
diff "$SMOKE_DIR/a.out" "$SMOKE_DIR/warm.out"
if grep -q "^info: sim" "$SMOKE_DIR/warm.err"; then
    echo "error: warm sweep re-simulated cells:" >&2
    grep "^info: sim" "$SMOKE_DIR/warm.err" >&2
    exit 1
fi

echo "== ci OK"
