#!/usr/bin/env bash
# Continuous-integration driver: tier-1 verification plus a short
# differential-fuzz smoke run.
#
# Usage:
#   scripts/ci.sh              # build + verify + ctest + fuzz/cache smoke
#   scripts/ci.sh --sanitize   # same, instrumented with ASan+UBSan
#   TARCH_SANITIZE=thread scripts/ci.sh   # any sanitizer list by env var
#
# In addition to the full-suite run, the default configuration always
# race-checks the parallel sweep executor (a dedicated TSan build of
# test_sweep_cache + the parallel-executor tests) and clang-tidies
# src/analysis/ + src/common/ when clang-tidy is installed.  Every run
# ends with an observability smoke — tarch_profile over one Lua and one
# JS benchmark, with the emitted Chrome trace and stats JSON validated
# by the tool's own parser (docs/OBSERVABILITY.md) — and a serving
# smoke: tarch_served driven by tarch_bench_client over a Unix socket,
# including malformed-frame injection, a verifier-rejected inline
# source request, and a SIGTERM graceful drain (docs/SERVING.md).
#
# Exits nonzero if the build breaks, the static verifier finds an
# error-severity issue in any generated interpreter image, any test
# fails, or the fuzzer finds a divergence / stats-invariant violation
# (reproducers land in $BUILD_DIR/fuzz-smoke).

set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${TARCH_SANITIZE:-}"
if [[ "${1:-}" == "--sanitize" ]]; then
    SANITIZE="address,undefined"
    shift
fi

BUILD_DIR="${BUILD_DIR:-build}"
if [[ -n "$SANITIZE" ]]; then
    BUILD_DIR="${BUILD_DIR}-sanitize"
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
FUZZ_SEEDS="${FUZZ_SEEDS:-0..500}"

echo "== configure ($BUILD_DIR)"
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DTARCH_SANITIZE="$SANITIZE"

echo "== build"
cmake --build "$BUILD_DIR" -j "$JOBS"

# Static verification first: a typed-state protocol regression in a
# generated interpreter fails here in seconds, before any simulation.
echo "== static verifier (6 generated images)"
for engine in lua js; do
    for variant in baseline typed chkld; do
        "$BUILD_DIR/tools/tarch_verify" --engine "$engine" \
            --variant "$variant" --quiet
    done
done

echo "== tier-1 tests"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Second pass with the predecoded basic-block core (docs/FASTPATH.md):
# every core-facing suite must pass bit-identically under the fast
# path.  TARCH_EXEC_MODE flips the CoreConfig default, so the same test
# binaries exercise the other execution engine with zero test changes.
echo "== tier-1 tests, predecoded exec mode"
for t in test_core test_core_typed test_fastpath test_differential; do
    TARCH_EXEC_MODE=predecoded "$BUILD_DIR/tests/$t" \
        --gtest_brief=1
done

if [[ -z "$SANITIZE" ]]; then
    echo "== ThreadSanitizer (parallel executor + sweep cache + serve)"
    TSAN_DIR="${BUILD_DIR}-tsan"
    cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DTARCH_SANITIZE=thread
    cmake --build "$TSAN_DIR" -j "$JOBS" \
          --target test_sweep_cache test_common test_serve test_fastpath
    ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$JOBS" \
          -R 'SweepCache|CellCache|Parallel|Pool|ResolveJobs|ServeTest|SimServiceTest|FastPath\.'

    echo "== fast-path perf ratchet (bench_fastpath --check)"
    # The predecoded core must stay >= 2x the exact core (geomean over
    # the Table-7 suite) and bit-identical; skipped under sanitizers,
    # whose instrumentation skews the ratio.
    "$BUILD_DIR/bench/bench_fastpath" --check \
        --json "$BUILD_DIR/BENCH_fastpath.json"
fi

if command -v clang-tidy > /dev/null 2>&1; then
    echo "== clang-tidy (src/analysis, src/common)"
    clang-tidy -p "$BUILD_DIR" src/analysis/*.cc src/common/*.cc
else
    echo "== clang-tidy not installed; skipping lint step"
fi

echo "== differential fuzz smoke (seeds $FUZZ_SEEDS)"
rm -rf "$BUILD_DIR/fuzz-smoke"
"$BUILD_DIR/tools/fuzz_differential" --seeds "$FUZZ_SEEDS" \
    --jobs "$JOBS" --out "$BUILD_DIR/fuzz-smoke"

echo "== sweep-cache concurrency smoke"
# Two bench binaries racing on one cold cache must both finish and
# print identical tables (per-cell atomic temp-file + rename writes),
# and a warm third run must load every cell instead of re-simulating.
SMOKE_DIR="$BUILD_DIR/cache-smoke"
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
"$BUILD_DIR/bench/bench_fig5_speedup" --cache-dir "$SMOKE_DIR" \
    --jobs "$JOBS" > "$SMOKE_DIR/a.out" 2> "$SMOKE_DIR/a.err" &
SMOKE_A=$!
"$BUILD_DIR/bench/bench_fig5_speedup" --cache-dir "$SMOKE_DIR" \
    --jobs "$JOBS" > "$SMOKE_DIR/b.out" 2> "$SMOKE_DIR/b.err" &
SMOKE_B=$!
wait "$SMOKE_A"
wait "$SMOKE_B"
diff "$SMOKE_DIR/a.out" "$SMOKE_DIR/b.out"
"$BUILD_DIR/bench/bench_fig5_speedup" --cache-dir "$SMOKE_DIR" \
    > "$SMOKE_DIR/warm.out" 2> "$SMOKE_DIR/warm.err"
diff "$SMOKE_DIR/a.out" "$SMOKE_DIR/warm.out"
if grep -q "^info: sim" "$SMOKE_DIR/warm.err"; then
    echo "error: warm sweep re-simulated cells:" >&2
    grep "^info: sim" "$SMOKE_DIR/warm.err" >&2
    exit 1
fi

echo "== observability smoke (tarch_profile + exporter validation)"
# Profile one Lua and one JS benchmark, then validate the emitted
# artifacts with the tool's own JSON parser: the Chrome trace must be
# well-formed and contain both duration spans and instant events, and
# the stats dump must round-trip through the schema version gate.
OBS_DIR="$BUILD_DIR/obs-smoke"
rm -rf "$OBS_DIR"
mkdir -p "$OBS_DIR"
for engine in lua js; do
    "$BUILD_DIR/tools/tarch_profile" --engine "$engine" \
        --variant typed --benchmark fibo \
        --trace-out "$OBS_DIR/ci" --json > "$OBS_DIR/$engine.out"
    TRACE="$OBS_DIR/ci.$engine.fibo.typed.trace.json"
    STATS="$OBS_DIR/ci.$engine.fibo.typed.stats.json"
    "$BUILD_DIR/tools/tarch_profile" --validate-json "$TRACE"
    "$BUILD_DIR/tools/tarch_profile" --check-stats "$STATS"
    grep -q '"ph":"X"' "$TRACE"
    grep -q '"ph":"i"' "$TRACE"
done

echo "== serving smoke (tarch_served + tarch_bench_client)"
# Start the daemon on a Unix socket, drive a short closed-loop burst
# (with chaos connections injecting malformed frames), check that an
# inline source image the static verifier rejects comes back as a typed
# error, confirm the health counters saw the traffic, then SIGTERM the
# daemon and require a graceful drain (exit 0).  docs/SERVING.md.
SERVE_DIR="$BUILD_DIR/serve-smoke"
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR"
SERVE_SOCK="$SERVE_DIR/tarch.sock"
"$BUILD_DIR/tools/tarch_served" --unix "$SERVE_SOCK" \
    --cache-dir "$SERVE_DIR" > "$SERVE_DIR/served.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [[ -S "$SERVE_SOCK" ]] && break
    sleep 0.1
done
[[ -S "$SERVE_SOCK" ]]
"$BUILD_DIR/tools/tarch_bench_client" --unix "$SERVE_SOCK" \
    --connections 4 --requests 200 --benchmark fibo --variant typed \
    --chaos 2 > "$SERVE_DIR/load.out"
grep -q "protocol errors:  0" "$SERVE_DIR/load.out"
printf '_start:\n    fadd.d f0, f1, f2\n    halt\n' > "$SERVE_DIR/bad.s"
"$BUILD_DIR/tools/tarch_bench_client" --unix "$SERVE_SOCK" \
    --source "$SERVE_DIR/bad.s" --lang asm \
    --expect-error verify-rejected > "$SERVE_DIR/reject.out"
"$BUILD_DIR/tools/tarch_bench_client" --unix "$SERVE_SOCK" \
    --health > "$SERVE_DIR/health.json"
grep -q '"schema":"tarch-serve-stats-v1"' "$SERVE_DIR/health.json"
if grep -q '"received":0,' "$SERVE_DIR/health.json"; then
    echo "error: serving smoke saw no requests" >&2
    exit 1
fi
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "error: tarch_served did not drain cleanly on SIGTERM" >&2
    tail -20 "$SERVE_DIR/served.log" >&2
    exit 1
fi

echo "== ci OK"
