#!/usr/bin/env bash
# Continuous-integration driver: tier-1 verification plus a short
# differential-fuzz smoke run.
#
# Usage:
#   scripts/ci.sh              # build + ctest + 200-seed fuzz smoke
#   scripts/ci.sh --sanitize   # same, instrumented with ASan+UBSan
#
# Exits nonzero if the build breaks, any test fails, or the fuzzer
# finds a divergence / stats-invariant violation (reproducers land in
# $BUILD_DIR/fuzz-smoke).

set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=""
if [[ "${1:-}" == "--sanitize" ]]; then
    SANITIZE="address,undefined"
    shift
fi

BUILD_DIR="${BUILD_DIR:-build}"
if [[ -n "$SANITIZE" ]]; then
    BUILD_DIR="${BUILD_DIR}-sanitize"
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
FUZZ_SEEDS="${FUZZ_SEEDS:-0..200}"

echo "== configure ($BUILD_DIR)"
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DTARCH_SANITIZE="$SANITIZE"

echo "== build"
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== tier-1 tests"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== differential fuzz smoke (seeds $FUZZ_SEEDS)"
rm -rf "$BUILD_DIR/fuzz-smoke"
"$BUILD_DIR/tools/fuzz_differential" --seeds "$FUZZ_SEEDS" \
    --jobs "$JOBS" --out "$BUILD_DIR/fuzz-smoke"

echo "== ci OK"
