#!/usr/bin/env bash
# Reproducible serving benchmark behind the committed BENCH_serve.json:
# one tarch_served daemon on a Unix socket, first a closed-loop burst
# (4 connections, per-connection latency accounting) and then an
# open-loop hedged run with a mixed cell/source workload, both dumped
# as machine-readable summaries by `tarch_bench_client --json` and
# stitched into a single document.  docs/OBSERVABILITY.md.
#
#   scripts/bench_serve.sh [out.json]
#   BUILD_DIR=build scripts/bench_serve.sh BENCH_serve.json
#
# Numbers are host-dependent; the committed file records the shape of
# the summary (schema tarch-bench-serve-v1) plus one reference run.

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_serve.json}"

BENCH_DIR="$BUILD_DIR/bench-serve"
rm -rf "$BENCH_DIR"
mkdir -p "$BENCH_DIR"
SOCK="$BENCH_DIR/tarch.sock"

"$BUILD_DIR/tools/tarch_served" --unix "$SOCK" \
    --cache-dir "$BENCH_DIR" > "$BENCH_DIR/served.log" 2>&1 &
SERVE_PID=$!
trap 'kill -TERM "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    [[ -S "$SOCK" ]] && break
    sleep 0.1
done
[[ -S "$SOCK" ]]

# Warm the daemon's caches so both measured runs see steady state.
"$BUILD_DIR/tools/tarch_bench_client" --unix "$SOCK" \
    --connections 2 --requests 50 --benchmark fibo --variant typed \
    > /dev/null

"$BUILD_DIR/tools/tarch_bench_client" --unix "$SOCK" \
    --connections 4 --requests 500 --benchmark fibo --variant typed \
    --json "$BENCH_DIR/closed.json" > "$BENCH_DIR/closed.out"
"$BUILD_DIR/tools/tarch_bench_client" --unix "$SOCK" \
    --connections 4 --requests 2000 --rate 1000 --mix-source 20 \
    --benchmark fibo --variant typed --hedge-ms 200 \
    --json "$BENCH_DIR/open.json" > "$BENCH_DIR/open.out"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT

grep -q '"schema":"tarch-bench-serve-v1"' "$BENCH_DIR/closed.json"
grep -q '"mode":"open"' "$BENCH_DIR/open.json"

printf '{\n"bench": "serve",\n"closed": %s,\n"open": %s\n}\n' \
    "$(cat "$BENCH_DIR/closed.json")" \
    "$(cat "$BENCH_DIR/open.json")" > "$OUT"
echo "wrote $OUT"
