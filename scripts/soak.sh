#!/usr/bin/env bash
# Cluster soak: >= 1M mixed requests through a 3-shard tarch_router
# under open-loop hedged load, with chaos connections feeding garbage
# frames the whole time, a stateful-session mix whose counter state
# must survive shard deaths via snapshot/restore migration, and a
# crash loop SIGKILLing and restarting a rotating shard every
# CHAOS_PERIOD seconds.  The run fails if a single protocol error is
# observed (a garbled frame, an undecodable payload, a non-retryable
# typed error on the load path, a diverged session read-back) or if
# the router does not drain cleanly on SIGTERM at the end.
#
# This is the long-running acceptance recipe from docs/SERVING.md —
# it is NOT part of scripts/ci.sh.  At the default 2000 req/s the
# 1M-request run takes ~9 minutes on a multicore host; scale with:
#
#   scripts/soak.sh [total_requests] [rate_per_sec]
#   BUILD_DIR=build scripts/soak.sh 1000000 2000

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TOTAL="${1:-1000000}"
RATE="${2:-2000}"
CHAOS_PERIOD="${CHAOS_PERIOD:-20}"

SOAK_DIR="$BUILD_DIR/soak"
rm -rf "$SOAK_DIR"
mkdir -p "$SOAK_DIR"

SHARD_PIDS=()
SHARD_ARGS=()
start_shard() {
    local i=$1
    mkdir -p "$SOAK_DIR/cache$i"
    "$BUILD_DIR/tools/tarch_served" --unix "$SOAK_DIR/shard$i.sock" \
        --cache-dir "$SOAK_DIR/cache$i" \
        >> "$SOAK_DIR/shard$i.log" 2>&1 &
    SHARD_PIDS[$i]=$!
}
for i in 0 1 2; do
    start_shard "$i"
    SHARD_ARGS+=(--shard "unix:$SOAK_DIR/shard$i.sock")
done

"$BUILD_DIR/tools/tarch_router" --unix "$SOAK_DIR/router.sock" \
    "${SHARD_ARGS[@]}" > "$SOAK_DIR/router.log" 2>&1 &
ROUTER_PID=$!
for _ in $(seq 1 100); do
    [[ -S "$SOAK_DIR/router.sock" ]] && break
    sleep 0.1
done
[[ -S "$SOAK_DIR/router.sock" ]]

echo "== soak: $TOTAL mixed requests @ $RATE req/s, 3 shards," \
     "shard crash every ${CHAOS_PERIOD}s"
"$BUILD_DIR/tools/tarch_bench_client" --unix "$SOAK_DIR/router.sock" \
    --connections 8 --requests "$TOTAL" --rate "$RATE" \
    --mix-source 20 --benchmark fibo --variant typed --chaos 4 \
    > "$SOAK_DIR/load.out" &
LOAD_PID=$!

# Stateful traffic mix: long-lived sessions riding the same router for
# the whole soak, their counters crossing every shard crash via the
# router's snapshot/restore migration.  A state divergence at any
# read-back step is a protocol error and fails the soak.
SESSION_TOTAL=$((TOTAL / 1000 + 10))
"$BUILD_DIR/tools/tarch_bench_client" --unix "$SOAK_DIR/router.sock" \
    --connections 2 --requests "$SESSION_TOTAL" --session 25 \
    > "$SOAK_DIR/sessions.out" &
SESSION_PID=$!

# Crash loop: SIGKILL a rotating shard (by the PID we spawned, never
# by name pattern) and bring it back on the same endpoint.  The
# router must eject, fail over, and heal each time.
VICTIM=0
CRASHES=0
while sleep "$CHAOS_PERIOD" && kill -0 "$LOAD_PID" 2>/dev/null; do
    kill -KILL "${SHARD_PIDS[$VICTIM]}" 2>/dev/null || true
    wait "${SHARD_PIDS[$VICTIM]}" 2>/dev/null || true
    sleep 1
    start_shard "$VICTIM"
    CRASHES=$((CRASHES + 1))
    VICTIM=$(((VICTIM + 1) % 3))
done

if ! wait "$LOAD_PID"; then
    echo "error: soak load failed" >&2
    cat "$SOAK_DIR/load.out" >&2
    tail -40 "$SOAK_DIR/router.log" >&2
    exit 1
fi
if ! wait "$SESSION_PID"; then
    echo "error: soak session load failed" >&2
    cat "$SOAK_DIR/sessions.out" >&2
    tail -40 "$SOAK_DIR/router.log" >&2
    exit 1
fi
cat "$SOAK_DIR/load.out"
cat "$SOAK_DIR/sessions.out"
echo "shard crashes injected: $CRASHES"
grep -q "protocol errors:  0" "$SOAK_DIR/load.out"
grep -q "protocol errors:  0" "$SOAK_DIR/sessions.out"
awk '/^sessions done:/ { exit ($3 > 0) ? 0 : 1 }' "$SOAK_DIR/sessions.out"

"$BUILD_DIR/tools/tarch_bench_client" --unix "$SOAK_DIR/router.sock" \
    --health-json | tee "$SOAK_DIR/health.json"
grep -q '"schema":"tarch-router-stats-v2"' "$SOAK_DIR/health.json"

kill -TERM "$ROUTER_PID"
if ! wait "$ROUTER_PID"; then
    echo "error: tarch_router did not drain cleanly after the soak" >&2
    exit 1
fi
for pid in "${SHARD_PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${SHARD_PIDS[@]}"; do
    wait "$pid" 2>/dev/null || true
done

echo "== soak OK ($TOTAL requests, $CRASHES shard crashes," \
     "zero protocol errors)"
