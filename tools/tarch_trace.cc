/**
 * @file
 * tarch_trace: offline helper for the serving observability plane
 * (docs/OBSERVABILITY.md).
 *
 * Each traced process (tarch_bench_client, tarch_router, tarch_served)
 * dumps its own Chrome-trace JSON at exit; this tool stitches them into
 * one Perfetto-loadable file and gives CI teeth:
 *
 *   tarch_trace merge merged.json client.json router.json shard*.json
 *   tarch_trace validate merged.json
 *   tarch_trace check-crossing 3 merged.json
 *   tarch_trace lint-metrics scrape2.txt --prev scrape1.txt
 *
 * merge remaps every input file to its own pid (input order), so the
 * per-process recorders — which all render as pid 1 on their own — show
 * up as separate process tracks in one timeline.  Spans stay
 * correlated across tracks by the args.trace / args.span /
 * args.parent ids the recorders stamp.
 *
 * Everything here runs on the in-repo JSON parser and Prometheus
 * linter: no external tooling, usable from scripts/ci.sh as-is.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace {

using tarch::obs::JsonValue;

int
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s MODE ...\n"
        "modes:\n"
        "  merge OUT IN...        stitch per-process Chrome traces into\n"
        "                         OUT, one pid per input file\n"
        "  validate FILE          strict well-formedness + traceEvents\n"
        "                         shape check\n"
        "  check-crossing N FILE  exit 0 iff some trace id has spans\n"
        "                         from >= N distinct pids\n"
        "  lint-metrics FILE [--prev FILE]\n"
        "                         lint a Prometheus scrape; with --prev,\n"
        "                         also require counter monotonicity\n",
        argv0);
    return code;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "tarch_trace: cannot read %s\n",
                     path.c_str());
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    return true;
}

/** Re-serialize a parsed JSON tree (numbers keep their raw token
    text, so 64-bit timestamps survive the round-trip exactly). */
std::string
renderJson(const JsonValue &value)
{
    switch (value.kind) {
    case JsonValue::Kind::Null:
        return "null";
    case JsonValue::Kind::Bool:
        return value.boolean ? "true" : "false";
    case JsonValue::Kind::Number:
        return value.text;
    case JsonValue::Kind::String:
        return "\"" + tarch::obs::jsonEscape(value.text) + "\"";
    case JsonValue::Kind::Array: {
        std::string out = "[";
        for (size_t i = 0; i < value.items.size(); ++i) {
            if (i > 0)
                out += ",";
            out += renderJson(value.items[i]);
        }
        return out + "]";
    }
    case JsonValue::Kind::Object: {
        std::string out = "{";
        for (size_t i = 0; i < value.fields.size(); ++i) {
            if (i > 0)
                out += ",";
            out += "\"" + tarch::obs::jsonEscape(value.fields[i].first) +
                   "\":" + renderJson(value.fields[i].second);
        }
        return out + "}";
    }
    }
    return "null";
}

/** Parse @p path and yield its traceEvents array, failing (with a
    message) when the document is not a Chrome trace. */
bool
loadTraceEvents(const std::string &path, JsonValue &doc,
                const JsonValue **events)
{
    std::string text;
    if (!readFile(path, text))
        return false;
    std::string error;
    if (!tarch::obs::jsonParse(text, doc, &error)) {
        std::fprintf(stderr, "tarch_trace: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    const JsonValue *found = doc.kind == JsonValue::Kind::Object
                                 ? doc.find("traceEvents")
                                 : nullptr;
    if (found == nullptr || found->kind != JsonValue::Kind::Array) {
        std::fprintf(stderr,
                     "tarch_trace: %s: no traceEvents array\n",
                     path.c_str());
        return false;
    }
    *events = found;
    return true;
}

int
cmdMerge(const char *argv0, int argc, char **argv)
{
    if (argc < 2)
        return usage(argv0, 2);
    const std::string out_path = argv[0];

    std::string out = "{\"traceEvents\":[";
    bool first = true;
    size_t total = 0;
    for (int i = 1; i < argc; ++i) {
        JsonValue doc;
        const JsonValue *events = nullptr;
        if (!loadTraceEvents(argv[i], doc, &events))
            return 1;
        const int pid = i;  // input order = process track number
        for (const JsonValue &event : events->items) {
            if (event.kind != JsonValue::Kind::Object)
                continue;
            JsonValue remapped = event;
            bool has_pid = false;
            for (auto &[key, value] : remapped.fields)
                if (key == "pid") {
                    value.kind = JsonValue::Kind::Number;
                    value.text = std::to_string(pid);
                    has_pid = true;
                }
            if (!has_pid)
                continue;  // not an event record
            if (!first)
                out += ",";
            first = false;
            out += "\n" + renderJson(remapped);
            total++;
        }
    }
    out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
           "\"merged_from\":" +
           std::to_string(argc - 1) + "}}\n";

    std::ofstream f(out_path, std::ios::binary);
    if (!f) {
        std::fprintf(stderr, "tarch_trace: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    f << out;
    std::printf("merged %zu events from %d files into %s\n", total,
                argc - 1, out_path.c_str());
    return 0;
}

int
cmdValidate(const char *argv0, int argc, char **argv)
{
    if (argc != 1)
        return usage(argv0, 2);
    std::string text;
    if (!readFile(argv[0], text))
        return 1;
    std::string error;
    if (!tarch::obs::jsonWellFormed(text, &error)) {
        std::fprintf(stderr, "tarch_trace: %s: %s\n", argv[0],
                     error.c_str());
        return 1;
    }
    JsonValue doc;
    const JsonValue *events = nullptr;
    if (!loadTraceEvents(argv[0], doc, &events))
        return 1;
    size_t spans = 0;
    for (const JsonValue &event : events->items) {
        if (event.kind != JsonValue::Kind::Object ||
            event.find("ph") == nullptr ||
            event.find("pid") == nullptr) {
            std::fprintf(stderr,
                         "tarch_trace: %s: event without ph/pid\n",
                         argv[0]);
            return 1;
        }
        const JsonValue *ph = event.find("ph");
        if (ph->kind == JsonValue::Kind::String && ph->text == "X") {
            if (event.find("ts") == nullptr ||
                event.find("dur") == nullptr ||
                event.find("name") == nullptr) {
                std::fprintf(
                    stderr,
                    "tarch_trace: %s: X event without ts/dur/name\n",
                    argv[0]);
                return 1;
            }
            spans++;
        }
    }
    std::printf("%s: valid, %zu events (%zu spans)\n", argv[0],
                events->items.size(), spans);
    return 0;
}

int
cmdCheckCrossing(const char *argv0, int argc, char **argv)
{
    if (argc != 2)
        return usage(argv0, 2);
    const unsigned long want = std::strtoul(argv[0], nullptr, 10);
    if (want == 0) {
        std::fprintf(stderr, "tarch_trace: bad process count '%s'\n",
                     argv[0]);
        return 2;
    }
    JsonValue doc;
    const JsonValue *events = nullptr;
    if (!loadTraceEvents(argv[1], doc, &events))
        return 1;

    // trace id -> set of pids that recorded a span of it
    std::map<std::string, std::set<std::string>> crossings;
    for (const JsonValue &event : events->items) {
        if (event.kind != JsonValue::Kind::Object)
            continue;
        const JsonValue *ph = event.find("ph");
        if (ph == nullptr || ph->kind != JsonValue::Kind::String ||
            ph->text != "X")
            continue;
        const JsonValue *args = event.find("args");
        const JsonValue *pid = event.find("pid");
        if (args == nullptr || pid == nullptr)
            continue;
        const JsonValue *trace = args->find("trace");
        if (trace == nullptr || trace->kind != JsonValue::Kind::String ||
            trace->text == "0000000000000000")
            continue;
        crossings[trace->text].insert(renderJson(*pid));
    }

    std::string best_trace;
    size_t best = 0;
    for (const auto &[trace, pids] : crossings)
        if (pids.size() > best) {
            best = pids.size();
            best_trace = trace;
        }
    if (best >= want) {
        std::printf("trace %s crosses %zu processes (want >= %lu)\n",
                    best_trace.c_str(), best, want);
        return 0;
    }
    std::fprintf(stderr,
                 "tarch_trace: no trace crosses %lu processes "
                 "(best: %zu over %zu traces)\n",
                 want, best, crossings.size());
    return 1;
}

int
cmdLintMetrics(const char *argv0, int argc, char **argv)
{
    if (argc != 1 && !(argc == 3 && std::strcmp(argv[1], "--prev") == 0))
        return usage(argv0, 2);
    std::string text;
    if (!readFile(argv[0], text))
        return 1;
    std::string error;
    if (!tarch::obs::Registry::lintPrometheus(text, &error)) {
        std::fprintf(stderr, "tarch_trace: %s: %s\n", argv[0],
                     error.c_str());
        return 1;
    }
    if (argc == 3) {
        std::string prev;
        if (!readFile(argv[2], prev))
            return 1;
        if (!tarch::obs::Registry::lintPrometheus(prev, &error)) {
            std::fprintf(stderr, "tarch_trace: %s: %s\n", argv[2],
                         error.c_str());
            return 1;
        }
        if (!tarch::obs::Registry::countersMonotonic(prev, text,
                                                     &error)) {
            std::fprintf(stderr,
                         "tarch_trace: counter regression between %s "
                         "and %s: %s\n",
                         argv[2], argv[0], error.c_str());
            return 1;
        }
    }
    std::printf("%s: metrics ok%s\n", argv[0],
                argc == 3 ? " (monotonic vs prev)" : "");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0], 2);
    const std::string mode = argv[1];
    if (mode == "merge")
        return cmdMerge(argv[0], argc - 2, argv + 2);
    if (mode == "validate")
        return cmdValidate(argv[0], argc - 2, argv + 2);
    if (mode == "check-crossing")
        return cmdCheckCrossing(argv[0], argc - 2, argv + 2);
    if (mode == "lint-metrics")
        return cmdLintMetrics(argv[0], argc - 2, argv + 2);
    if (mode == "--help" || mode == "-h")
        return usage(argv[0], 0);
    std::fprintf(stderr, "%s: unknown mode '%s'\n", argv[0],
                 mode.c_str());
    return usage(argv[0], 2);
}
