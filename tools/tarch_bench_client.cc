/**
 * @file
 * tarch_bench_client: load generator for tarch_served / tarch_router.
 *
 * Two load modes:
 *
 *  - Open loop (--rate R): arrivals are scheduled in advance at R
 *    requests/second and every request is charged from its INTENDED
 *    start time, so a server stall shows up in every request queued
 *    behind it — the honest way to measure tail latency (a closed loop
 *    stops sending while the server stalls and "coordinately omits"
 *    the damage; see src/serve/loadgen.h).  Open-loop workers drive a
 *    HedgedClient over one or more --endpoint targets: hedged retries,
 *    retry budgets, and endpoint health ejection are all exercised.
 *
 *  - Closed loop (default): N connections each running send-one,
 *    wait-one — the legacy mode, still right for "how fast can this
 *    daemon go" saturation checks.
 *
 * Besides load it can issue one-shot inline-source runs (optionally
 * asserting a specific typed error, e.g. a verifier rejection), print
 * health stats, trigger a drain, and inject malformed frames on
 * sacrificial connections to exercise framing-error isolation.
 *
 *   tarch_bench_client --unix /tmp/tarch.sock --connections 8 \
 *       --requests 2000 --benchmark fibo --variant typed
 *   tarch_bench_client --endpoint tcp:7410 --rate 500 --requests 5000 \
 *       --mix-source 10 --chaos 2
 *
 * Exit status: 0 on success (all replies were results, tolerated
 * shed/drain outcomes, or the --expect-error matched), nonzero on
 * protocol errors or unexpected typed errors.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/strutil.h"
#include "obs/json.h"
#include "obs/spans.h"
#include "serve/client.h"
#include "serve/hedged_client.h"
#include "serve/loadgen.h"

namespace {

using namespace tarch;
namespace proto = tarch::serve::proto;
using Clock = std::chrono::steady_clock;

struct Options {
    std::vector<serve::Endpoint> endpoints;
    std::string unixPath;
    int tcpPort = -1;
    unsigned connections = 4;
    unsigned requests = 1000;       // per connection closed, total open
    double rate = 0.0;              // > 0 selects open-loop mode
    unsigned mixSource = 0;         // percent of open-loop RunSource
    uint32_t hedgeMs = 0;           // fixed hedge delay override
    uint8_t engine = 0;             // lua
    uint8_t variant = 1;            // typed
    std::string benchmark = "fibo";
    bool wantStats = false;
    uint32_t deadlineMs = 0;
    std::string sourceFile;
    uint8_t lang = 0;               // ms
    std::string expectError;        // ErrorCode name, e.g. VerifyRejected
    unsigned chaos = 0;             // sacrificial malformed connections
    bool health = false;            // pretty-printed health summary
    bool healthJson = false;        // raw health JSON passthrough
    bool metricsMode = false;       // scrape Prometheus text and print
    bool drain = false;
    unsigned batch = 0;             // cells per RunBatch (0 = RunCell)
    unsigned sessionChunks = 0;     // > 0 selects stateful-session mode
    std::string jsonOut;            // bench summary JSON file
    std::string traceOut;           // Chrome-trace JSON file
    uint64_t traceSample = 1;       // trace every Nth request
    /** Shared by every worker; non-null only when --trace-out is on. */
    tarch::obs::SpanRecorder *recorder = nullptr;
};

int
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s (--unix PATH | --tcp PORT | --endpoint E...) "
        "[mode] [options]\n"
        "targets:\n"
        "  --endpoint E       unix:PATH or tcp:PORT; repeat for a\n"
        "                     hedged open-loop fan-out over several\n"
        "                     daemons/routers\n"
        "modes (default: closed-loop cell load):\n"
        "  --rate R           open-loop load at R req/s total; latency\n"
        "                     measured from each request's scheduled\n"
        "                     start (no coordinated omission)\n"
        "  --source FILE      run one inline source file and print it\n"
        "  --health           pretty-print the server health summary\n"
        "  --health-json      print the raw health JSON\n"
        "  --metrics          scrape and print the Prometheus text\n"
        "                     exposition (v2 servers/routers only)\n"
        "  --drain            ask the server to drain, wait for close\n"
        "  --session N        stateful-session load: each worker runs\n"
        "                     --requests sessions of open + N chunks +\n"
        "                     snapshot + close, checking that VM state\n"
        "                     persists across every chunk (and across\n"
        "                     router migrations / idle-evict resumes)\n"
        "load options:\n"
        "  --connections N    workers (default 4)\n"
        "  --requests N       closed loop: requests per connection;\n"
        "                     open loop: total requests (default 1000)\n"
        "  --mix-source P     open loop: send P%% of requests as inline\n"
        "                     MiniScript RunSource\n"
        "  --hedge-ms N       open loop: fixed hedge delay instead of\n"
        "                     the tail-derived one\n"
        "  --engine lua|js    (default lua)\n"
        "  --benchmark NAME   named benchmark (default fibo)\n"
        "  --variant V        baseline|typed|chkld (default typed)\n"
        "  --batch N          group N cells per RunBatch frame\n"
        "  --stats-json       request embedded tarch-stats-v1 artifacts\n"
        "  --deadline-ms N    per-request deadline override\n"
        "  --chaos N          add N connections sending malformed frames\n"
        "  --json FILE        also write a machine-readable bench\n"
        "                     summary (tarch-bench-serve-v1)\n"
        "  --trace-out FILE   record client-side spans of sampled\n"
        "                     requests and write Chrome-trace JSON\n"
        "  --trace-sample N   trace every Nth request (default 1)\n"
        "source options:\n"
        "  --lang ms|asm      source language (default ms)\n"
        "  --expect-error E   exit 0 only if the server answers with\n"
        "                     typed error E (e.g. VerifyRejected)\n",
        argv0);
    return code;
}

unsigned long long
parseNum(const char *argv0, const char *flag, const char *text,
         unsigned long long min, unsigned long long max)
{
    char *end = nullptr;
    const unsigned long long n = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || n < min || n > max) {
        std::fprintf(stderr, "%s: bad %s value '%s'\n", argv0, flag,
                     text);
        std::exit(2);
    }
    return n;
}

/** Throwing one-shot connect for the non-load modes. */
serve::Client
connect(const Options &opts)
{
    if (!opts.unixPath.empty())
        return serve::Client::connectUnix(opts.unixPath);
    return serve::Client::connectTcp(static_cast<uint16_t>(opts.tcpPort));
}

proto::CellRequest
makeCell(const Options &opts)
{
    proto::CellRequest cell;
    cell.engine = opts.engine;
    cell.variant = opts.variant;
    cell.wantStatsJson = opts.wantStats ? 1 : 0;
    cell.deadlineMs = opts.deadlineMs;
    cell.benchmark = opts.benchmark;
    return cell;
}

/** Small MiniScript whose work (and request key) varies with @p seed,
    so a --mix-source stream repeats sources often enough to exercise
    the shard-side source memo without collapsing to one key. */
std::string
syntheticScript(uint64_t seed)
{
    return strformat("local s = 0\nfor i = 1, %llu do s = s + i end\n"
                     "print(s)\n",
                     (unsigned long long)(500 + (seed % 8) * 97));
}

// ---------------------------------------------------------------------
// Closed loop.

/** One closed-loop worker's tally. */
struct LoopStats {
    std::vector<double> latenciesUs;
    uint64_t ok = 0;
    uint64_t busyRetries = 0;
    uint64_t typedErrors = 0;    // unexpected, non-retryable
    uint64_t drainCloses = 0;    // tolerated: server drained mid-run
    uint64_t reconnects = 0;     // transport lost, connection rebuilt
    uint64_t protocolErrors = 0;
};

void
closedLoop(const Options &opts, LoopStats &stats)
{
    serve::Client client = serve::Client::tryConnect(opts.endpoints[0]);
    if (!client.isOpen()) {
        stats.protocolErrors++;
        tarch_warn("cannot connect to %s",
                   opts.endpoints[0].describe().c_str());
        return;
    }
    if (opts.recorder != nullptr)
        client.enableTracing(opts.recorder, opts.traceSample);
    const proto::CellRequest cell = makeCell(opts);

    stats.latenciesUs.reserve(opts.requests);
    unsigned sent = 0;
    while (sent < opts.requests) {
        const auto t0 = Clock::now();
        serve::Client::Outcome outcome;
        if (opts.batch > 1) {
            proto::BatchRequest batch;
            const unsigned n =
                std::min<unsigned>(opts.batch, opts.requests - sent);
            batch.cells.assign(n, cell);
            proto::BatchResult result;
            proto::ErrorBody error;
            if (client.runBatch(batch, result, error)) {
                outcome.ok = true;
                sent += n - 1;  // loop tail adds the last one
                for (const auto &item : result.items)
                    if (!item.ok) {
                        outcome.ok = false;
                        outcome.error = item.error;
                        break;
                    }
            } else if (error.code ==
                       static_cast<uint16_t>(proto::ErrorCode::Draining)) {
                outcome.closed = true;
            } else {
                outcome.error = error;
            }
        } else {
            outcome = client.runCell(cell);
        }
        const double us = std::chrono::duration<double, std::micro>(
                              Clock::now() - t0)
                              .count();
        if (outcome.closed) {
            // Server drained underneath us: not a protocol error.
            stats.drainCloses++;
            return;
        }
        if (outcome.ok) {
            stats.ok++;
            stats.latenciesUs.push_back(us);
            sent++;
            continue;
        }
        if (outcome.lost()) {
            // Transport died (daemon killed, partial frame): rebuild
            // the connection and retry the request — routine churn,
            // not a protocol error.  A target that stays down reads as
            // a drain-time close.
            stats.reconnects++;
            client = serve::Client::tryConnect(opts.endpoints[0]);
            if (!client.isOpen()) {
                stats.drainCloses++;
                return;
            }
            if (opts.recorder != nullptr)
                client.enableTracing(opts.recorder, opts.traceSample);
            continue;
        }
        const auto code =
            static_cast<proto::ErrorCode>(outcome.error.code);
        if (outcome.error.retryable) {
            // BUSY/Draining backpressure: back off and retry.
            stats.busyRetries++;
            if (code == proto::ErrorCode::Draining) {
                stats.drainCloses++;
                return;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            continue;
        }
        stats.typedErrors++;
        tarch_warn("request failed: %s: %s",
                   std::string(proto::errorCodeName(code)).c_str(),
                   outcome.error.message.c_str());
        sent++;
    }
}

// ---------------------------------------------------------------------
// Open loop.

/** One open-loop worker's tally. */
struct OpenStats {
    serve::LatencyHistogram hist;
    uint64_t ok = 0;
    uint64_t shed = 0;           // retryable failure after all attempts
    uint64_t typedErrors = 0;
    uint64_t drainCloses = 0;
    serve::HedgedClient::Counters hedged;
};

void
openLoop(const Options &opts, unsigned index, OpenStats &stats)
{
    serve::HedgedClient::Options hopts;
    hopts.endpoints = opts.endpoints;
    if (opts.hedgeMs > 0) {
        hopts.defaultHedgeMs = opts.hedgeMs;
        // Never switch to the tail-derived delay: keep it fixed.
        hopts.minSamples = ~0ull;
    }
    hopts.recorder = opts.recorder;
    hopts.traceSampleEvery = opts.traceSample;
    serve::HedgedClient client(hopts);
    const proto::CellRequest cell = makeCell(opts);

    // This worker's slice of the total schedule: every connections-th
    // arrival, phase-staggered by the worker index.
    const uint64_t total = opts.requests;
    const uint64_t n = total / opts.connections +
                       (index < total % opts.connections ? 1 : 0);
    const double interval_us = 1e6 * opts.connections / opts.rate;
    const auto t0 = Clock::now() +
                    std::chrono::microseconds(static_cast<int64_t>(
                        interval_us * index / opts.connections));

    for (uint64_t i = 0; i < n; ++i) {
        const auto intended =
            t0 + std::chrono::microseconds(
                     static_cast<int64_t>(interval_us * (double)i));
        std::this_thread::sleep_until(intended);

        serve::Client::Outcome outcome;
        if (opts.mixSource > 0 && (i % 100) < opts.mixSource) {
            proto::SourceRequest src;
            src.engine = opts.engine;
            src.variant = opts.variant;
            src.deadlineMs = opts.deadlineMs;
            src.source = syntheticScript(index * 7919 + i);
            outcome = client.runSource(src);
        } else {
            outcome = client.runCell(cell);
        }
        // Open-loop accounting: latency runs from the INTENDED start,
        // so time spent queued behind a stall is charged to every
        // request it delayed.
        const auto us = std::chrono::duration_cast<
                            std::chrono::microseconds>(Clock::now() -
                                                       intended)
                            .count();
        if (outcome.ok) {
            stats.ok++;
            stats.hist.record(static_cast<uint64_t>(us));
            continue;
        }
        if (outcome.closed) {
            stats.drainCloses++;
            continue;
        }
        if (outcome.error.retryable) {
            // Shed (BUSY), draining, or lost after the hedged client
            // exhausted its attempts/budget.  The schedule must not
            // stall, so the request is dropped and counted — exactly
            // what a real open-loop client (a human, an upstream
            // service) would experience.
            stats.shed++;
            continue;
        }
        stats.typedErrors++;
        tarch_warn(
            "request failed: %s: %s",
            std::string(proto::errorCodeName(static_cast<proto::ErrorCode>(
                            outcome.error.code)))
                .c_str(),
            outcome.error.message.c_str());
    }
    stats.hedged = client.counters();
}

// ---------------------------------------------------------------------
// Chaos.

/**
 * Sacrificial chaos connection: send garbage (bad magic, oversized
 * length, truncated frame), which the server must answer with a typed
 * error and/or a clean close — never by crashing or hanging.
 */
void
chaosLoop(const Options &opts, unsigned seed, std::atomic<bool> &failed)
{
    {
        // Bad magic.
        serve::Client c = serve::Client::tryConnect(opts.endpoints[0]);
        if (!c.isOpen())
            return;  // churn during drain/chaos is fine
        std::string junk = "\xde\xad\xbe\xef";
        junk.resize(proto::kHeaderSize + (seed % 7), 'x');
        c.sendRaw(junk.data(), junk.size());
        serve::Client::Reply reply;
        // Either a typed error then close, or an immediate close.
        while (c.readReply(reply)) {}
    }
    {
        // Valid header, truncated payload, then disconnect.
        serve::Client c = serve::Client::tryConnect(opts.endpoints[0]);
        if (!c.isOpen())
            return;
        proto::CellRequest cell;
        cell.benchmark = opts.benchmark;
        const std::string frame = proto::encodeFrame(
            proto::MsgKind::RunCell, 1, proto::encodeCellRequest(cell));
        c.sendRaw(frame.data(), frame.size() / 2);
        c.close();
    }
    {
        // Malformed payload inside a valid frame: the connection must
        // survive and still answer a ping afterwards.
        serve::Client c = serve::Client::tryConnect(opts.endpoints[0]);
        if (!c.isOpen())
            return;
        const std::string frame = proto::encodeFrame(
            proto::MsgKind::RunCell, 7, std::string(3, '\xff'));
        c.sendRaw(frame.data(), frame.size());
        serve::Client::Reply reply;
        if (!c.readReply(reply) ||
            static_cast<proto::MsgKind>(reply.kind) !=
                proto::MsgKind::Error) {
            tarch_warn("chaos: malformed payload got no Error frame");
            failed.store(true);
            return;
        }
        if (!c.ping()) {
            tarch_warn("chaos: connection did not survive BadFrame");
            failed.store(true);
        }
    }
}

// ---------------------------------------------------------------------
// Reports.

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(p * (double)(sorted.size() - 1)));
    return sorted[idx];
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                     std::strerror(errno));
        return false;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

const char *
variantName(uint8_t variant)
{
    switch (variant) {
    case 0:
        return "baseline";
    case 1:
        return "typed";
    case 2:
        return "chkld";
    }
    return "unknown";
}

int
runClosedLoad(const Options &opts)
{
    std::vector<LoopStats> stats(opts.connections);
    std::vector<std::thread> threads;
    std::atomic<bool> chaosFailed{false};

    const auto t0 = Clock::now();
    for (unsigned i = 0; i < opts.connections; ++i)
        threads.emplace_back(closedLoop, std::cref(opts),
                             std::ref(stats[i]));
    for (unsigned i = 0; i < opts.chaos; ++i)
        threads.emplace_back(chaosLoop, std::cref(opts), i,
                             std::ref(chaosFailed));
    for (auto &t : threads)
        t.join();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();

    LoopStats total;
    for (auto &s : stats) {
        total.ok += s.ok;
        total.busyRetries += s.busyRetries;
        total.typedErrors += s.typedErrors;
        total.drainCloses += s.drainCloses;
        total.reconnects += s.reconnects;
        total.protocolErrors += s.protocolErrors;
        total.latenciesUs.insert(total.latenciesUs.end(),
                                 s.latenciesUs.begin(),
                                 s.latenciesUs.end());
    }
    std::sort(total.latenciesUs.begin(), total.latenciesUs.end());

    std::printf("connections:      %u (+%u chaos)\n", opts.connections,
                opts.chaos);
    std::printf("completed:        %llu\n",
                (unsigned long long)total.ok);
    std::printf("busy retries:     %llu\n",
                (unsigned long long)total.busyRetries);
    std::printf("typed errors:     %llu\n",
                (unsigned long long)total.typedErrors);
    std::printf("drain closes:     %llu\n",
                (unsigned long long)total.drainCloses);
    std::printf("reconnects:       %llu\n",
                (unsigned long long)total.reconnects);
    std::printf("protocol errors:  %llu\n",
                (unsigned long long)total.protocolErrors);
    std::printf("elapsed:          %.3f s\n", secs);
    if (secs > 0.0)
        std::printf("throughput:       %.1f req/s\n",
                    (double)total.ok / secs);
    std::printf("latency p50:      %.1f us\n",
                percentile(total.latenciesUs, 0.50));
    std::printf("latency p95:      %.1f us\n",
                percentile(total.latenciesUs, 0.95));
    std::printf("latency p99:      %.1f us\n",
                percentile(total.latenciesUs, 0.99));

    if (!opts.jsonOut.empty()) {
        const std::string json = strformat(
            "{\"schema\":\"tarch-bench-serve-v1\",\"mode\":\"closed\","
            "\"benchmark\":\"%s\",\"variant\":\"%s\","
            "\"connections\":%u,\"chaos\":%u,"
            "\"requests_per_connection\":%u,"
            "\"completed\":%llu,\"busy_retries\":%llu,"
            "\"typed_errors\":%llu,\"drain_closes\":%llu,"
            "\"reconnects\":%llu,\"protocol_errors\":%llu,"
            "\"elapsed_s\":%.3f,\"throughput_rps\":%.1f,"
            "\"latency_us\":{\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}}\n",
            opts.benchmark.c_str(), variantName(opts.variant),
            opts.connections, opts.chaos, opts.requests,
            (unsigned long long)total.ok,
            (unsigned long long)total.busyRetries,
            (unsigned long long)total.typedErrors,
            (unsigned long long)total.drainCloses,
            (unsigned long long)total.reconnects,
            (unsigned long long)total.protocolErrors, secs,
            secs > 0.0 ? (double)total.ok / secs : 0.0,
            percentile(total.latenciesUs, 0.50),
            percentile(total.latenciesUs, 0.95),
            percentile(total.latenciesUs, 0.99));
        if (!writeFile(opts.jsonOut, json))
            return 1;
    }

    if (total.protocolErrors > 0 || total.typedErrors > 0 ||
        chaosFailed.load())
        return 1;
    return 0;
}

int
runOpenLoad(const Options &opts)
{
    std::vector<OpenStats> stats(opts.connections);
    std::vector<std::thread> threads;
    std::atomic<bool> chaosFailed{false};

    const auto t0 = Clock::now();
    for (unsigned i = 0; i < opts.connections; ++i)
        threads.emplace_back(openLoop, std::cref(opts), i,
                             std::ref(stats[i]));
    for (unsigned i = 0; i < opts.chaos; ++i)
        threads.emplace_back(chaosLoop, std::cref(opts), i,
                             std::ref(chaosFailed));
    for (auto &t : threads)
        t.join();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();

    OpenStats total;
    serve::HedgedClient::Counters hc;
    for (auto &s : stats) {
        total.ok += s.ok;
        total.shed += s.shed;
        total.typedErrors += s.typedErrors;
        total.drainCloses += s.drainCloses;
        total.hist.merge(s.hist);
        hc.requests += s.hedged.requests;
        hc.hedges += s.hedged.hedges;
        hc.hedgeWins += s.hedged.hedgeWins;
        hc.retries += s.hedged.retries;
        hc.budgetDenied += s.hedged.budgetDenied;
        hc.lostConnections += s.hedged.lostConnections;
        hc.garbled += s.hedged.garbled;
    }

    std::printf("connections:      %u (+%u chaos)\n", opts.connections,
                opts.chaos);
    std::printf("offered:          %llu @ %.1f req/s\n",
                (unsigned long long)opts.requests, opts.rate);
    std::printf("completed:        %llu\n",
                (unsigned long long)total.ok);
    std::printf("shed busy:        %llu\n",
                (unsigned long long)total.shed);
    std::printf("typed errors:     %llu\n",
                (unsigned long long)total.typedErrors);
    std::printf("drain closes:     %llu\n",
                (unsigned long long)total.drainCloses);
    std::printf("reconnects:       %llu\n",
                (unsigned long long)hc.lostConnections);
    std::printf("hedges:           %llu (%llu won)\n",
                (unsigned long long)hc.hedges,
                (unsigned long long)hc.hedgeWins);
    std::printf("retries:          %llu (%llu budget-denied)\n",
                (unsigned long long)hc.retries,
                (unsigned long long)hc.budgetDenied);
    std::printf("protocol errors:  %llu\n",
                (unsigned long long)hc.garbled);
    std::printf("elapsed:          %.3f s\n", secs);
    if (secs > 0.0)
        std::printf("throughput:       %.1f req/s\n",
                    (double)total.ok / secs);
    std::printf("latency p50:      %.1f us\n",
                (double)total.hist.percentile(50.0));
    std::printf("latency p95:      %.1f us\n",
                (double)total.hist.percentile(95.0));
    std::printf("latency p99:      %.1f us\n",
                (double)total.hist.percentile(99.0));
    std::printf("latency max:      %.1f us\n",
                (double)total.hist.maxValue());

    if (!opts.jsonOut.empty()) {
        const std::string json = strformat(
            "{\"schema\":\"tarch-bench-serve-v1\",\"mode\":\"open\","
            "\"benchmark\":\"%s\",\"variant\":\"%s\","
            "\"connections\":%u,\"chaos\":%u,"
            "\"offered\":%llu,\"rate_rps\":%.1f,\"mix_source_pct\":%u,"
            "\"completed\":%llu,\"shed_busy\":%llu,"
            "\"typed_errors\":%llu,\"drain_closes\":%llu,"
            "\"reconnects\":%llu,\"hedges\":%llu,\"hedge_wins\":%llu,"
            "\"retries\":%llu,\"budget_denied\":%llu,"
            "\"protocol_errors\":%llu,"
            "\"elapsed_s\":%.3f,\"throughput_rps\":%.1f,"
            "\"latency_us\":{\"p50\":%llu,\"p95\":%llu,\"p99\":%llu,"
            "\"max\":%llu}}\n",
            opts.benchmark.c_str(), variantName(opts.variant),
            opts.connections, opts.chaos,
            (unsigned long long)opts.requests, opts.rate,
            opts.mixSource, (unsigned long long)total.ok,
            (unsigned long long)total.shed,
            (unsigned long long)total.typedErrors,
            (unsigned long long)total.drainCloses,
            (unsigned long long)hc.lostConnections,
            (unsigned long long)hc.hedges,
            (unsigned long long)hc.hedgeWins,
            (unsigned long long)hc.retries,
            (unsigned long long)hc.budgetDenied,
            (unsigned long long)hc.garbled, secs,
            secs > 0.0 ? (double)total.ok / secs : 0.0,
            (unsigned long long)total.hist.percentile(50.0),
            (unsigned long long)total.hist.percentile(95.0),
            (unsigned long long)total.hist.percentile(99.0),
            (unsigned long long)total.hist.maxValue());
        if (!writeFile(opts.jsonOut, json))
            return 1;
    }

    if (hc.garbled > 0 || total.typedErrors > 0 || chaosFailed.load())
        return 1;
    return 0;
}

// ---------------------------------------------------------------------
// Stateful sessions.

/** One session worker's tally. */
struct SessionStats {
    std::vector<double> latenciesUs;  ///< per-chunk round trips
    uint64_t sessions = 0;     ///< completed end to end
    uint64_t chunks = 0;       ///< chunk replies received
    uint64_t snapshotBytes = 0;
    uint64_t busyRetries = 0;
    uint64_t reconnects = 0;
    uint64_t sessionsLost = 0;  ///< UnknownSession after a reconnect
    uint64_t typedErrors = 0;
    uint64_t drainCloses = 0;
    uint64_t protocolErrors = 0;  ///< garbled frames or state divergence
};

/**
 * One stateful session: open a counter VM, bump it once per chunk, and
 * end with a read-back chunk whose output must equal the last bump's —
 * if any hop (idle-evict resume, router migration) dropped or forked
 * the VM state, the read-back diverges and counts as a protocol error.
 * Returns false when the worker should stop (target drained).
 */
bool
runOneSession(const Options &opts, serve::Client &client,
              SessionStats &stats)
{
    uint64_t session_id = 0;
    std::string last_output;
    // Step 0 = open, 1..N = increment chunks, N+1 = read-back,
    // N+2 = snapshot, N+3 = close.
    for (unsigned step = 0; step <= opts.sessionChunks + 3;) {
        const auto t0 = Clock::now();
        serve::Client::SessionOutcome outcome;
        const bool read_back = step == opts.sessionChunks + 1;
        if (step == 0) {
            proto::OpenSessionRequest open;
            open.engine = opts.engine;
            open.variant = opts.variant;
            open.deadlineMs = opts.deadlineMs;
            open.source = "c = 0";
            outcome = client.openSession(open);
        } else if (step <= opts.sessionChunks + 1) {
            proto::SubmitChunkRequest chunk;
            chunk.deadlineMs = opts.deadlineMs;
            chunk.sessionId = session_id;
            chunk.source =
                read_back ? "print(c)" : "c = c + 1\nprint(c)";
            outcome = client.submitChunk(chunk);
        } else if (step == opts.sessionChunks + 2) {
            outcome = client.snapshotSession(session_id);
        } else {
            outcome = client.closeSession(session_id);
        }
        const double us = std::chrono::duration<double, std::micro>(
                              Clock::now() - t0)
                              .count();
        if (outcome.closed) {
            stats.drainCloses++;
            return false;
        }
        if (outcome.lost()) {
            // Transport died mid-session.  Reconnect and retry the
            // same step: a router migrates the session to a new shard;
            // a lone daemon is gone and the retry reads UnknownSession
            // (counted, session abandoned) — either way no hang.
            stats.reconnects++;
            client = serve::Client::tryConnect(opts.endpoints[0]);
            if (!client.isOpen()) {
                stats.drainCloses++;
                return false;
            }
            continue;
        }
        if (!outcome.ok) {
            const auto code =
                static_cast<proto::ErrorCode>(outcome.error.code);
            if (code == proto::ErrorCode::UnknownSession) {
                stats.sessionsLost++;
                return true;  // abandoned; next session starts fresh
            }
            if (outcome.error.retryable) {
                stats.busyRetries++;
                if (code == proto::ErrorCode::Draining) {
                    stats.drainCloses++;
                    return false;
                }
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
                continue;
            }
            stats.typedErrors++;
            tarch_warn("session request failed: %s: %s",
                       std::string(proto::errorCodeName(code)).c_str(),
                       outcome.error.message.c_str());
            return true;
        }
        stats.latenciesUs.push_back(us);
        if (step == 0) {
            session_id = outcome.reply.sessionId;
            if (session_id == 0) {
                stats.protocolErrors++;
                tarch_warn("session opened with id 0");
                return true;
            }
        } else if (step <= opts.sessionChunks) {
            stats.chunks++;
            last_output = outcome.reply.output;
        } else if (read_back) {
            stats.chunks++;
            // The read-back print must match the last increment's: the
            // counter survived every chunk (and any migration between
            // them) bit-exactly.
            if (outcome.reply.output != last_output) {
                stats.protocolErrors++;
                tarch_warn("session state diverged: read-back '%s' != "
                           "last chunk '%s'",
                           outcome.reply.output.c_str(),
                           last_output.c_str());
            }
        } else if (step == opts.sessionChunks + 2) {
            if (outcome.snapshot.blob.empty()) {
                stats.protocolErrors++;
                tarch_warn("empty snapshot blob");
            }
            stats.snapshotBytes += outcome.snapshot.blob.size();
        } else {
            stats.sessions++;
        }
        ++step;
    }
    return true;
}

void
sessionLoop(const Options &opts, SessionStats &stats)
{
    serve::Client client = serve::Client::tryConnect(opts.endpoints[0]);
    if (!client.isOpen()) {
        stats.protocolErrors++;
        tarch_warn("cannot connect to %s",
                   opts.endpoints[0].describe().c_str());
        return;
    }
    if (opts.recorder != nullptr)
        client.enableTracing(opts.recorder, opts.traceSample);
    for (unsigned i = 0; i < opts.requests; ++i)
        if (!runOneSession(opts, client, stats))
            return;
}

int
runSessionLoad(const Options &opts)
{
    std::vector<SessionStats> stats(opts.connections);
    std::vector<std::thread> threads;
    std::atomic<bool> chaosFailed{false};

    const auto t0 = Clock::now();
    for (unsigned i = 0; i < opts.connections; ++i)
        threads.emplace_back(sessionLoop, std::cref(opts),
                             std::ref(stats[i]));
    for (unsigned i = 0; i < opts.chaos; ++i)
        threads.emplace_back(chaosLoop, std::cref(opts), i,
                             std::ref(chaosFailed));
    for (auto &t : threads)
        t.join();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();

    SessionStats total;
    for (auto &s : stats) {
        total.sessions += s.sessions;
        total.chunks += s.chunks;
        total.snapshotBytes += s.snapshotBytes;
        total.busyRetries += s.busyRetries;
        total.reconnects += s.reconnects;
        total.sessionsLost += s.sessionsLost;
        total.typedErrors += s.typedErrors;
        total.drainCloses += s.drainCloses;
        total.protocolErrors += s.protocolErrors;
        total.latenciesUs.insert(total.latenciesUs.end(),
                                 s.latenciesUs.begin(),
                                 s.latenciesUs.end());
    }
    std::sort(total.latenciesUs.begin(), total.latenciesUs.end());

    std::printf("connections:      %u (+%u chaos)\n", opts.connections,
                opts.chaos);
    std::printf("sessions done:    %llu (of %llu offered)\n",
                (unsigned long long)total.sessions,
                (unsigned long long)opts.connections *
                    (unsigned long long)opts.requests);
    std::printf("chunks run:       %llu\n",
                (unsigned long long)total.chunks);
    std::printf("snapshot bytes:   %llu\n",
                (unsigned long long)total.snapshotBytes);
    std::printf("busy retries:     %llu\n",
                (unsigned long long)total.busyRetries);
    std::printf("reconnects:       %llu\n",
                (unsigned long long)total.reconnects);
    std::printf("sessions lost:    %llu\n",
                (unsigned long long)total.sessionsLost);
    std::printf("typed errors:     %llu\n",
                (unsigned long long)total.typedErrors);
    std::printf("drain closes:     %llu\n",
                (unsigned long long)total.drainCloses);
    std::printf("protocol errors:  %llu\n",
                (unsigned long long)total.protocolErrors);
    std::printf("elapsed:          %.3f s\n", secs);
    if (secs > 0.0)
        std::printf("chunk rate:       %.1f chunks/s\n",
                    (double)total.chunks / secs);
    std::printf("chunk p50:        %.1f us\n",
                percentile(total.latenciesUs, 0.50));
    std::printf("chunk p99:        %.1f us\n",
                percentile(total.latenciesUs, 0.99));

    if (!opts.jsonOut.empty()) {
        const std::string json = strformat(
            "{\"schema\":\"tarch-bench-serve-v1\",\"mode\":\"session\","
            "\"connections\":%u,\"chaos\":%u,"
            "\"sessions_per_connection\":%u,\"chunks_per_session\":%u,"
            "\"sessions_done\":%llu,\"chunks_run\":%llu,"
            "\"snapshot_bytes\":%llu,\"busy_retries\":%llu,"
            "\"reconnects\":%llu,\"sessions_lost\":%llu,"
            "\"typed_errors\":%llu,\"drain_closes\":%llu,"
            "\"protocol_errors\":%llu,"
            "\"elapsed_s\":%.3f,\"chunk_rate\":%.1f,"
            "\"chunk_latency_us\":{\"p50\":%.1f,\"p99\":%.1f}}\n",
            opts.connections, opts.chaos, opts.requests,
            opts.sessionChunks, (unsigned long long)total.sessions,
            (unsigned long long)total.chunks,
            (unsigned long long)total.snapshotBytes,
            (unsigned long long)total.busyRetries,
            (unsigned long long)total.reconnects,
            (unsigned long long)total.sessionsLost,
            (unsigned long long)total.typedErrors,
            (unsigned long long)total.drainCloses,
            (unsigned long long)total.protocolErrors, secs,
            secs > 0.0 ? (double)total.chunks / secs : 0.0,
            percentile(total.latenciesUs, 0.50),
            percentile(total.latenciesUs, 0.99));
        if (!writeFile(opts.jsonOut, json))
            return 1;
    }

    if (total.protocolErrors > 0 || total.typedErrors > 0 ||
        chaosFailed.load())
        return 1;
    return 0;
}

/**
 * Pretty-print a v2 health JSON document: one aligned line per field,
 * with nested objects (replies_by_code) reduced to their nonzero
 * entries.  Unknown shapes (a v1 server, say) fall back to the raw
 * passthrough so the tool keeps working against old daemons.
 */
int
printHealth(const std::string &json)
{
    using tarch::obs::JsonValue;
    JsonValue root;
    std::string error;
    if (!tarch::obs::jsonParse(json, root, &error) ||
        root.kind != JsonValue::Kind::Object) {
        std::printf("%s\n", json.c_str());
        return 0;
    }
    for (const auto &[key, value] : root.fields) {
        switch (value.kind) {
        case JsonValue::Kind::Object: {
            std::printf("%-22s", (key + ":").c_str());
            bool any = false;
            for (const auto &[sub, count] : value.fields) {
                uint64_t n = 0;
                if (!count.asU64(n) || (n == 0 && sub != "ok"))
                    continue;
                std::printf("%s %s=%llu", any ? "," : "", sub.c_str(),
                            (unsigned long long)n);
                any = true;
            }
            std::printf("%s\n", any ? "" : " (all zero)");
            break;
        }
        case JsonValue::Kind::Array:
            std::printf("%-22s %zu entries\n", (key + ":").c_str(),
                        value.items.size());
            break;
        default:
            std::printf("%-22s %s\n", (key + ":").c_str(),
                        value.text.c_str());
            break;
        }
    }
    return 0;
}

int
runSource(const Options &opts)
{
    std::ifstream in(opts.sourceFile);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", opts.sourceFile.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();

    proto::SourceRequest req;
    req.engine = opts.engine;
    req.variant = opts.variant;
    req.wantStatsJson = opts.wantStats ? 1 : 0;
    req.lang = opts.lang;
    req.deadlineMs = opts.deadlineMs;
    req.source = text.str();

    serve::Client client = connect(opts);
    const auto outcome = client.runSource(req);
    if (outcome.closed) {
        std::fprintf(stderr, "server closed the connection\n");
        return 1;
    }
    if (outcome.ok) {
        if (!opts.expectError.empty()) {
            std::fprintf(stderr,
                         "expected error %s but the run succeeded\n",
                         opts.expectError.c_str());
            return 1;
        }
        std::printf("instructions: %llu\ncycles: %llu\n",
                    (unsigned long long)outcome.result.instructions,
                    (unsigned long long)outcome.result.cycles);
        if (!outcome.result.output.empty())
            std::printf("--- output ---\n%s",
                        outcome.result.output.c_str());
        if (!outcome.result.statsJson.empty())
            std::printf("--- stats ---\n%s\n",
                        outcome.result.statsJson.c_str());
        return 0;
    }
    const auto code = static_cast<proto::ErrorCode>(outcome.error.code);
    const std::string name{proto::errorCodeName(code)};
    if (!opts.expectError.empty()) {
        if (name == opts.expectError) {
            std::printf("got expected error %s:\n%s\n", name.c_str(),
                        outcome.error.message.c_str());
            return 0;
        }
        std::fprintf(stderr, "expected error %s, got %s: %s\n",
                     opts.expectError.c_str(), name.c_str(),
                     outcome.error.message.c_str());
        return 1;
    }
    std::fprintf(stderr, "error %s: %s\n", name.c_str(),
                 outcome.error.message.c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--unix") {
            opts.unixPath = next("--unix");
        } else if (arg == "--tcp") {
            opts.tcpPort = static_cast<int>(
                parseNum(argv[0], "--tcp", next("--tcp"), 1, 65535));
        } else if (arg == "--endpoint") {
            const char *text = next("--endpoint");
            serve::Endpoint ep;
            if (!serve::parseEndpoint(text, ep)) {
                std::fprintf(stderr,
                             "%s: bad --endpoint '%s' (want unix:PATH "
                             "or tcp:PORT)\n",
                             argv[0], text);
                return 2;
            }
            opts.endpoints.push_back(ep);
        } else if (arg == "--rate") {
            char *end = nullptr;
            opts.rate = std::strtod(next("--rate"), &end);
            if ((end && *end != '\0') || opts.rate <= 0.0) {
                std::fprintf(stderr, "%s: bad --rate value\n", argv[0]);
                return 2;
            }
        } else if (arg == "--mix-source") {
            opts.mixSource = static_cast<unsigned>(parseNum(
                argv[0], "--mix-source", next("--mix-source"), 0, 100));
        } else if (arg == "--hedge-ms") {
            opts.hedgeMs = static_cast<uint32_t>(
                parseNum(argv[0], "--hedge-ms", next("--hedge-ms"), 1,
                         3'600'000));
        } else if (arg == "--connections") {
            opts.connections = static_cast<unsigned>(parseNum(
                argv[0], "--connections", next("--connections"), 1,
                4096));
        } else if (arg == "--requests") {
            opts.requests = static_cast<unsigned>(
                parseNum(argv[0], "--requests", next("--requests"), 1,
                         100'000'000));
        } else if (arg == "--engine") {
            const std::string v = next("--engine");
            if (v == "lua") {
                opts.engine = 0;
            } else if (v == "js") {
                opts.engine = 1;
            } else {
                std::fprintf(stderr, "%s: bad --engine '%s'\n", argv[0],
                             v.c_str());
                return 2;
            }
        } else if (arg == "--benchmark") {
            opts.benchmark = next("--benchmark");
        } else if (arg == "--variant") {
            const std::string v = next("--variant");
            if (v == "baseline") {
                opts.variant = 0;
            } else if (v == "typed") {
                opts.variant = 1;
            } else if (v == "chkld") {
                opts.variant = 2;
            } else {
                std::fprintf(stderr, "%s: bad --variant '%s'\n", argv[0],
                             v.c_str());
                return 2;
            }
        } else if (arg == "--batch") {
            opts.batch = static_cast<unsigned>(
                parseNum(argv[0], "--batch", next("--batch"), 1, 4096));
        } else if (arg == "--session") {
            opts.sessionChunks = static_cast<unsigned>(parseNum(
                argv[0], "--session", next("--session"), 1, 100'000));
        } else if (arg == "--stats-json") {
            opts.wantStats = true;
        } else if (arg == "--deadline-ms") {
            opts.deadlineMs = static_cast<uint32_t>(
                parseNum(argv[0], "--deadline-ms", next("--deadline-ms"),
                         1, 86'400'000));
        } else if (arg == "--chaos") {
            opts.chaos = static_cast<unsigned>(
                parseNum(argv[0], "--chaos", next("--chaos"), 1, 1024));
        } else if (arg == "--source") {
            opts.sourceFile = next("--source");
        } else if (arg == "--lang") {
            const std::string v = next("--lang");
            if (v == "ms") {
                opts.lang = 0;
            } else if (v == "asm") {
                opts.lang = 1;
            } else {
                std::fprintf(stderr, "%s: bad --lang '%s'\n", argv[0],
                             v.c_str());
                return 2;
            }
        } else if (arg == "--expect-error") {
            opts.expectError = next("--expect-error");
        } else if (arg == "--health") {
            opts.health = true;
        } else if (arg == "--health-json") {
            opts.healthJson = true;
        } else if (arg == "--metrics") {
            opts.metricsMode = true;
        } else if (arg == "--json") {
            opts.jsonOut = next("--json");
        } else if (arg == "--trace-out") {
            opts.traceOut = next("--trace-out");
        } else if (arg == "--trace-sample") {
            opts.traceSample =
                parseNum(argv[0], "--trace-sample",
                         next("--trace-sample"), 1, ~0ull);
        } else if (arg == "--drain") {
            opts.drain = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         arg.c_str());
            return usage(argv[0], 2);
        }
    }
    // Normalize targets: --unix/--tcp and --endpoint are two spellings
    // of the same thing; every mode works off both.
    if (!opts.unixPath.empty()) {
        serve::Endpoint ep;
        ep.unixPath = opts.unixPath;
        opts.endpoints.insert(opts.endpoints.begin(), ep);
    } else if (opts.tcpPort > 0) {
        serve::Endpoint ep;
        ep.tcpPort = opts.tcpPort;
        opts.endpoints.insert(opts.endpoints.begin(), ep);
    }
    if (opts.endpoints.empty()) {
        std::fprintf(stderr, "%s: need --unix, --tcp, or --endpoint\n",
                     argv[0]);
        return usage(argv[0], 2);
    }
    if (opts.unixPath.empty() && opts.tcpPort < 0) {
        opts.unixPath = opts.endpoints[0].unixPath;
        opts.tcpPort = opts.endpoints[0].tcpPort;
    }

    try {
        if (opts.metricsMode) {
            tarch::serve::Client client = connect(opts);
            const std::string text = client.metricsText();
            if (text.empty()) {
                std::fprintf(stderr,
                             "no metrics reply (v1 peer or drained?)\n");
                return 1;
            }
            std::fputs(text.c_str(), stdout);
            return 0;
        }
        if (opts.health || opts.healthJson) {
            tarch::serve::Client client = connect(opts);
            const std::string json = client.stats();
            if (json.empty()) {
                std::fprintf(stderr, "no stats reply (server drained?)\n");
                return 1;
            }
            if (opts.healthJson) {
                std::printf("%s\n", json.c_str());
                return 0;
            }
            return printHealth(json);
        }
        if (opts.drain) {
            tarch::serve::Client client = connect(opts);
            if (!client.drain()) {
                std::fprintf(stderr, "drain request got no reply\n");
                return 1;
            }
            // Wait for the server to finish: it closes the connection
            // once the drain completes.
            tarch::serve::Client::Reply reply;
            while (client.readReply(reply)) {}
            std::printf("drain complete\n");
            return 0;
        }
        if (!opts.sourceFile.empty())
            return runSource(opts);

        tarch::obs::SpanRecorder recorder("tarch_bench_client");
        if (!opts.traceOut.empty())
            opts.recorder = &recorder;
        const int rc = opts.sessionChunks > 0 ? runSessionLoad(opts)
                       : opts.rate > 0.0     ? runOpenLoad(opts)
                                             : runClosedLoad(opts);
        if (!opts.traceOut.empty() &&
            writeFile(opts.traceOut, recorder.renderChromeTrace()))
            std::fprintf(stderr, "wrote %zu spans to %s\n",
                         recorder.size(), opts.traceOut.c_str());
        return rc;
    } catch (const tarch::FatalError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
}
