/**
 * @file
 * Type-inference / guard-elision CLI (the software-typed axis).
 *
 * Modes:
 *   tarch_typeinf --engine lua|js [options] file.ms
 *   tarch_typeinf --engine lua|js [options] --bench NAME
 *       analyze one MiniScript program;
 *   tarch_typeinf --check-all
 *       rewrite + soundness-verify every bundled benchmark under both
 *       engines (the CI zero-unsound-elision ratchet).
 *
 * Per-program options:
 *   --dump-facts      annotate the disassembly with the inferred facts
 *   --explain PC      account for the facts and elision verdict at PC
 *   --proto N         proto for --dump-facts/--explain (default: all /
 *                     proto 0)
 *   --elide           rewrite monomorphic sites before dumping, then
 *                     run the soundness verifier over the result
 *
 * Exit code follows tarch_verify: 0 clean, 1 warnings only, 2 errors
 * (a non-converging inference fixpoint is reported as a warning).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/elide.h"
#include "analysis/typeinf.h"
#include "common/log.h"
#include "harness/benchmarks.h"
#include "script/parser.h"
#include "vm/js/bytecode.h"
#include "vm/js/compiler.h"
#include "vm/lua/bytecode.h"
#include "vm/lua/compiler.h"

namespace {

using namespace tarch;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --engine lua|js [options] file.ms\n"
        "       %s --engine lua|js [options] --bench NAME\n"
        "       %s --check-all\n"
        "options:\n"
        "  --engine lua|js   MiniScript engine front-end\n"
        "  --bench NAME      use a bundled benchmark as the program\n"
        "  --dump-facts      annotate disassembly with inferred facts\n"
        "  --explain PC      explain facts and elision verdict at PC\n"
        "  --proto N         proto index for --dump-facts/--explain\n"
        "  --elide           rewrite monomorphic sites, then verify\n"
        "  --check-all       verify all bundled benchmarks, both engines\n"
        "exit code: 0 clean, 1 warnings only, 2 errors\n",
        argv0, argv0, argv0);
    return 2;
}

/** Split a disassembly into one string per bytecode pc. */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line))
        lines.push_back(line);
    return lines;
}

std::string
factsSuffix(const std::vector<analysis::typeinf::AVal> &facts,
            uint8_t top)
{
    std::string out;
    for (size_t i = 0; i < facts.size(); ++i) {
        if (facts[i].isBottom())
            continue;
        out += (out.empty() ? "" : " ") +
               strformat("%zu=%s", i,
                         analysis::typeinf::describe(facts[i], top)
                             .c_str());
    }
    return out.empty() ? "-" : out;
}

template <typename ModuleT>
void
dumpFacts(const ModuleT &m, const analysis::typeinf::ModuleFacts &facts,
          std::optional<size_t> only_proto, uint8_t top, bool is_js)
{
    for (size_t p = 0; p < m.protos.size(); ++p) {
        if (only_proto && *only_proto != p)
            continue;
        const auto &pr = m.protos[p];
        const analysis::typeinf::ProtoFacts &pf = facts.protos[p];
        std::printf("proto %zu (%s):\n", p, pr.name.c_str());
        if (pf.bailed) {
            std::printf("  inference bailed; no facts\n");
            continue;
        }
        const std::vector<std::string> lines = [&] {
            if constexpr (std::is_same_v<ModuleT, vm::lua::Module>)
                return splitLines(vm::lua::disassemble(pr.code));
            else
                return splitLines(vm::js::disassemble(pr.code));
        }();
        for (size_t pc = 0; pc < lines.size(); ++pc) {
            if (pc >= pf.reachable.size() || !pf.reachable[pc]) {
                std::printf("%s  ; unreachable\n", lines[pc].c_str());
                continue;
            }
            std::string note =
                factsSuffix(pf.regs[pc], top);
            if (is_js)
                note += "  stack: " + factsSuffix(pf.stack[pc], top);
            std::printf("%-44s  ; %s\n", lines[pc].c_str(),
                        note.c_str());
        }
    }
}

struct ProgramArgs {
    std::string engine;
    std::string source;
    bool dump_facts = false;
    bool elide = false;
    std::optional<size_t> explain_pc;
    std::optional<size_t> proto;
};

int
runProgram(const ProgramArgs &args)
{
    analysis::Report report;
    bool converged = true;
    if (args.engine == "lua") {
        vm::lua::Module m = vm::lua::compile(script::parse(args.source));
        if (args.elide) {
            const analysis::elide::Stats st =
                analysis::elide::rewriteLua(m);
            std::printf("elided %u/%u sites (arith %u/%u, table %u/%u)\n",
                        st.elided(), st.sites(), st.arithElided,
                        st.arithSites, st.tableElided, st.tableSites);
            analysis::elide::verifyLua(m, report);
        }
        const analysis::typeinf::ModuleFacts facts =
            analysis::typeinf::inferLua(m);
        converged = facts.converged;
        if (args.dump_facts)
            dumpFacts(m, facts, args.proto, analysis::typeinf::kTopLua,
                      false);
        if (args.explain_pc)
            std::fputs(analysis::elide::explainLua(
                           m, args.proto.value_or(0), *args.explain_pc)
                           .c_str(),
                       stdout);
    } else {
        vm::js::Module m = vm::js::compile(script::parse(args.source));
        if (args.elide) {
            const analysis::elide::Stats st =
                analysis::elide::rewriteJs(m);
            std::printf("elided %u/%u sites (arith %u/%u, elem %u/%u)\n",
                        st.elided(), st.sites(), st.arithElided,
                        st.arithSites, st.tableElided, st.tableSites);
            analysis::elide::verifyJs(m, report);
        }
        const analysis::typeinf::ModuleFacts facts =
            analysis::typeinf::inferJs(m);
        converged = facts.converged;
        if (args.dump_facts)
            dumpFacts(m, facts, args.proto, analysis::typeinf::kTopJs,
                      true);
        if (args.explain_pc)
            std::fputs(analysis::elide::explainJs(
                           m, args.proto.value_or(0), *args.explain_pc)
                           .c_str(),
                       stdout);
    }
    if (!converged) {
        analysis::Finding f;
        f.severity = analysis::Severity::Warning;
        f.check = "typeinf-converge";
        f.message = "interprocedural fixpoint hit its iteration cap; "
                    "facts were widened";
        report.findings.push_back(f);
    }
    if (args.elide || !report.findings.empty())
        std::fputs(report.render().c_str(), stdout);
    return report.exitCode();
}

int
checkAll()
{
    analysis::Report merged;
    for (const harness::BenchmarkInfo &bench : harness::benchmarks()) {
        for (const char *engine : {"lua", "js"}) {
            analysis::Report report;
            analysis::elide::Stats st;
            bool converged;
            if (std::strcmp(engine, "lua") == 0) {
                vm::lua::Module m =
                    vm::lua::compile(script::parse(bench.source));
                st = analysis::elide::rewriteLua(m);
                analysis::elide::verifyLua(m, report);
                converged = analysis::typeinf::inferLua(m).converged;
            } else {
                vm::js::Module m =
                    vm::js::compile(script::parse(bench.source));
                st = analysis::elide::rewriteJs(m);
                analysis::elide::verifyJs(m, report);
                converged = analysis::typeinf::inferJs(m).converged;
            }
            std::printf("%-4s %-16s elided %2u/%2u sites "
                        "(arith %u/%u, table %u/%u)%s%s\n",
                        engine, bench.name.c_str(), st.elided(),
                        st.sites(), st.arithElided, st.arithSites,
                        st.tableElided, st.tableSites,
                        converged ? "" : "  [fixpoint cap]",
                        report.findings.empty() ? ""
                                                : "  [UNSOUND]");
            for (analysis::Finding &f : report.findings) {
                f.location = std::string(engine) + "/" + bench.name +
                             " " + f.location;
                merged.findings.push_back(f);
            }
        }
    }
    if (!merged.findings.empty())
        std::fputs(merged.render().c_str(), stdout);
    else
        std::printf("all bundled benchmarks: zero unsound elisions\n");
    return merged.exitCode();
}

} // namespace

int
main(int argc, char **argv)
{
    ProgramArgs args;
    std::string bench_name, file;
    bool check_all = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--engine") {
            args.engine = value();
        } else if (arg == "--bench") {
            bench_name = value();
        } else if (arg == "--dump-facts") {
            args.dump_facts = true;
        } else if (arg == "--explain") {
            args.explain_pc = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--proto") {
            args.proto = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--elide") {
            args.elide = true;
        } else if (arg == "--check-all") {
            check_all = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option %s\n", argv[0],
                         arg.c_str());
            return usage(argv[0]);
        } else {
            file = arg;
        }
    }

    try {
        if (check_all)
            return checkAll();

        if (args.engine != "lua" && args.engine != "js") {
            std::fprintf(stderr, "%s: --engine must be lua or js\n",
                         argv[0]);
            return usage(argv[0]);
        }
        if (!bench_name.empty()) {
            args.source = harness::benchmark(bench_name).source;
        } else if (!file.empty()) {
            std::ifstream stream(file);
            if (!stream) {
                std::fprintf(stderr, "%s: cannot open %s\n", argv[0],
                             file.c_str());
                return 2;
            }
            std::ostringstream buf;
            buf << stream.rdbuf();
            args.source = buf.str();
        } else {
            return usage(argv[0]);
        }
        if (!args.dump_facts && !args.explain_pc)
            args.elide = true;  // default action: rewrite + verify
        return runProgram(args);
    } catch (const FatalError &err) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.what());
        return 2;
    }
}
