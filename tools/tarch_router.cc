/**
 * @file
 * tarch_router: cluster front-end for tarch_served shards
 * (docs/SERVING.md).
 *
 * Speaks tarch-rpc-v1 to clients and consistent-hashes RunCell /
 * RunSource / RunBatch requests onto N backend daemons by content key,
 * with per-shard outstanding windows, priority load shedding, and
 * failure-aware shard ejection + re-probe.
 *
 *   tarch_served --unix /tmp/shard0.sock &
 *   tarch_served --unix /tmp/shard1.sock &
 *   tarch_router --tcp 7410 --shard unix:/tmp/shard0.sock \
 *                           --shard unix:/tmp/shard1.sock
 *
 * SIGINT/SIGTERM (or a Drain request) triggers a graceful drain: stop
 * accepting, answer every routed request, close backends, exit 0.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "common/log.h"
#include "serve/router.h"

namespace {

// Self-pipe: the signal handler writes one byte; main polls the read
// end so the drain runs on a normal thread, not in signal context.
int g_signal_pipe[2] = {-1, -1};
std::atomic<int> g_signal{0};

void
onSignal(int sig)
{
    g_signal.store(sig);
    const char byte = 1;
    // Best-effort: a full pipe still leaves g_signal set.
    (void)!::write(g_signal_pipe[1], &byte, 1);
}

int
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s [--unix PATH] [--tcp PORT] --shard ENDPOINT... "
        "[options]\n"
        "listeners (at least one required):\n"
        "  --unix PATH          Unix domain socket\n"
        "  --tcp PORT           TCP on 127.0.0.1 (0 = ephemeral port)\n"
        "shards (repeatable, at least one required):\n"
        "  --shard ENDPOINT     backend daemon, unix:PATH or tcp:PORT\n"
        "options:\n"
        "  --window N           outstanding requests per shard "
        "(default 128)\n"
        "  --queue N            shed-queue capacity per shard "
        "(default 256)\n"
        "  --eject-after N      consecutive failures before ejection "
        "(default 3)\n"
        "  --backoff-floor-ms N first re-probe backoff (default 100)\n"
        "  --backoff-cap-ms N   max re-probe backoff (default 5000)\n"
        "  --vnodes N           ring points per shard (default 64)\n"
        "  --send-timeout-ms N  SO_SNDTIMEO on sockets (default 30000)\n"
        "  --max-payload N      per-frame payload cap in bytes\n"
        "observability (docs/OBSERVABILITY.md):\n"
        "  --trace-out FILE     write this process's Chrome-trace JSON "
        "(sampled v2 requests) at exit\n"
        "  --metrics-out FILE   append metrics CSV rows every "
        "--metrics-interval-ms (default 1000)\n"
        "  --metrics-interval-ms N\n"
        "  --no-tracing         answer Hello with v1 and skip backend "
        "probes (interop testing)\n",
        argv0);
    return code;
}

/** Append @p text to @p path, writing @p header first on creation. */
bool
appendFile(const std::string &path, const std::string &header,
           const std::string &text)
{
    const bool fresh = ::access(path.c_str(), F_OK) != 0;
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (f == nullptr)
        return false;
    if (fresh && !header.empty())
        std::fwrite(header.data(), 1, header.size(), f);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

uint64_t
wallMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

unsigned long long
parseNum(const char *argv0, const char *flag, const char *text,
         unsigned long long min, unsigned long long max)
{
    char *end = nullptr;
    const unsigned long long n = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || n < min || n > max) {
        std::fprintf(stderr, "%s: bad %s value '%s'\n", argv0, flag,
                     text);
        std::exit(2);
    }
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tarch;

    serve::Router::Config cfg;
    std::string trace_out;
    std::string metrics_out;
    uint64_t metrics_interval_ms = 1000;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--unix") {
            cfg.unixPath = next("--unix");
        } else if (arg == "--tcp") {
            cfg.tcpPort = static_cast<int>(
                parseNum(argv[0], "--tcp", next("--tcp"), 0, 65535));
        } else if (arg == "--shard") {
            const char *text = next("--shard");
            serve::Endpoint ep;
            if (!serve::parseEndpoint(text, ep)) {
                std::fprintf(stderr,
                             "%s: bad --shard endpoint '%s' (want "
                             "unix:PATH or tcp:PORT)\n",
                             argv[0], text);
                return usage(argv[0], 2);
            }
            cfg.shards.push_back(ep);
        } else if (arg == "--window") {
            cfg.windowPerShard = static_cast<size_t>(parseNum(
                argv[0], "--window", next("--window"), 1, 1u << 20));
        } else if (arg == "--queue") {
            cfg.queuePerShard = static_cast<size_t>(parseNum(
                argv[0], "--queue", next("--queue"), 1, 1u << 20));
        } else if (arg == "--eject-after") {
            cfg.ejectAfter = static_cast<unsigned>(parseNum(
                argv[0], "--eject-after", next("--eject-after"), 1,
                1'000'000));
        } else if (arg == "--backoff-floor-ms") {
            cfg.backoffFloorMs = static_cast<uint32_t>(
                parseNum(argv[0], "--backoff-floor-ms",
                         next("--backoff-floor-ms"), 1, 3'600'000));
        } else if (arg == "--backoff-cap-ms") {
            cfg.backoffCapMs = static_cast<uint32_t>(
                parseNum(argv[0], "--backoff-cap-ms",
                         next("--backoff-cap-ms"), 1, 3'600'000));
        } else if (arg == "--vnodes") {
            cfg.ringVnodes = static_cast<unsigned>(parseNum(
                argv[0], "--vnodes", next("--vnodes"), 1, 4096));
        } else if (arg == "--send-timeout-ms") {
            cfg.sendTimeoutMs = static_cast<uint32_t>(
                parseNum(argv[0], "--send-timeout-ms",
                         next("--send-timeout-ms"), 1, 3'600'000));
        } else if (arg == "--max-payload") {
            cfg.maxPayload = static_cast<uint32_t>(
                parseNum(argv[0], "--max-payload", next("--max-payload"),
                         64, serve::proto::kMaxPayload));
        } else if (arg == "--trace-out") {
            trace_out = next("--trace-out");
        } else if (arg == "--metrics-out") {
            metrics_out = next("--metrics-out");
        } else if (arg == "--metrics-interval-ms") {
            metrics_interval_ms =
                parseNum(argv[0], "--metrics-interval-ms",
                         next("--metrics-interval-ms"), 10, 3'600'000);
        } else if (arg == "--no-tracing") {
            cfg.advertiseTracing = false;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         arg.c_str());
            return usage(argv[0], 2);
        }
    }
    if (cfg.unixPath.empty() && cfg.tcpPort < 0) {
        std::fprintf(stderr, "%s: need --unix and/or --tcp\n", argv[0]);
        return usage(argv[0], 2);
    }
    if (cfg.shards.empty()) {
        std::fprintf(stderr, "%s: need at least one --shard\n", argv[0]);
        return usage(argv[0], 2);
    }

    if (::pipe(g_signal_pipe) != 0) {
        std::fprintf(stderr, "%s: pipe: %s\n", argv[0],
                     std::strerror(errno));
        return 1;
    }
    struct sigaction sa{};
    sa.sa_handler = onSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    try {
        serve::Router router(cfg);
        router.start();
        if (!cfg.unixPath.empty())
            tarch_inform("tarch_router: listening on unix:%s",
                         cfg.unixPath.c_str());
        if (cfg.tcpPort >= 0)
            tarch_inform("tarch_router: listening on tcp:127.0.0.1:%u",
                         router.tcpPort());
        for (const auto &shard : cfg.shards)
            tarch_inform("tarch_router: shard %s",
                         shard.describe().c_str());

        // Wait for a signal or an RPC-initiated drain, appending a
        // metrics CSV snapshot every interval when asked to.
        uint64_t next_csv_ms = wallMs();
        for (;;) {
            struct pollfd pfd = {g_signal_pipe[0], POLLIN, 0};
            ::poll(&pfd, 1, 200);
            if (!metrics_out.empty() && wallMs() >= next_csv_ms) {
                appendFile(metrics_out, obs::Registry::csvHeader(),
                           router.metrics().renderCsv(wallMs()));
                next_csv_ms = wallMs() + metrics_interval_ms;
            }
            if (g_signal.load() != 0) {
                tarch_inform("tarch_router: signal %d, draining",
                             g_signal.load());
                break;
            }
            if (router.drained())
                break;
        }
        router.stop();
        if (!metrics_out.empty())
            appendFile(metrics_out, obs::Registry::csvHeader(),
                       router.metrics().renderCsv(wallMs()));
        if (!trace_out.empty()) {
            if (writeFile(trace_out,
                          router.spanRecorder().renderChromeTrace()))
                tarch_inform("tarch_router: wrote %zu spans to %s",
                             router.spanRecorder().size(),
                             trace_out.c_str());
            else
                tarch_warn("tarch_router: cannot write %s: %s",
                           trace_out.c_str(), std::strerror(errno));
        }
        tarch_inform("tarch_router: drained; final %s",
                     router.health().toJson().c_str());
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
}
