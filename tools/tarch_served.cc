/**
 * @file
 * tarch_served: the simulation-as-a-service daemon (docs/SERVING.md).
 *
 * Listens on a Unix domain socket and/or TCP loopback port, speaks
 * tarch-rpc-v1, and serves named benchmark cells (through the shared
 * sweep cache), inline MiniScript/assembly runs (gated by the static
 * verifier), batches, health stats, and graceful drain.
 *
 *   tarch_served --unix /tmp/tarch.sock
 *   tarch_served --tcp 7410 --jobs 8 --queue 512 --deadline-ms 60000
 *
 * SIGINT/SIGTERM (or a Drain request) triggers a graceful drain: stop
 * accepting, answer in-flight requests, flush the cell cache, exit 0.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "common/log.h"
#include "serve/server.h"

namespace {

// Self-pipe: the signal handler writes one byte; main polls the read
// end so the drain runs on a normal thread, not in signal context.
int g_signal_pipe[2] = {-1, -1};
std::atomic<int> g_signal{0};

void
onSignal(int sig)
{
    g_signal.store(sig);
    const char byte = 1;
    // Best-effort: a full pipe still leaves g_signal set.
    (void)!::write(g_signal_pipe[1], &byte, 1);
}

int
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s [--unix PATH] [--tcp PORT] [options]\n"
        "listeners (at least one required):\n"
        "  --unix PATH        Unix domain socket\n"
        "  --tcp PORT         TCP on 127.0.0.1 (0 = ephemeral port)\n"
        "options:\n"
        "  --jobs N           simulation workers (default: "
        "TARCH_SERVE_JOBS env, else hardware)\n"
        "  --queue N          bounded request queue (default 256; full "
        "=> BUSY)\n"
        "  --deadline-ms N    default per-request deadline (default "
        "30000)\n"
        "  --cache-dir DIR    sweep-cache root shared with the bench "
        "binaries (default \".\")\n"
        "  --no-disk-cache    keep cells in memory only\n"
        "  --no-memory-cache  disable the in-memory cell/source memo "
        "(every request simulates)\n"
        "  --no-verify        skip static verification of inline source\n"
        "  --exec-mode M      core engine, exact or predecoded (default: "
        "TARCH_EXEC_MODE env,\n"
        "                     else exact); bit-identical stats, "
        "predecoded serves faster\n"
        "  --max-payload N    per-frame payload cap in bytes\n"
        "stateful sessions (docs/SERVING.md):\n"
        "  --session-dir DIR  evict idle sessions to tarch-snap-v1 "
        "files here and\n"
        "                     transparently resume them (default: "
        "in-memory only)\n"
        "  --session-idle-ms N  idle eviction threshold (default 60000; "
        "0 disables eviction)\n"
        "  --max-sessions N   live session cap; excess opens answer "
        "BUSY (default 256)\n"
        "observability (docs/OBSERVABILITY.md):\n"
        "  --trace-out FILE   write this process's Chrome-trace JSON "
        "(sampled v2 requests) at exit\n"
        "  --metrics-out FILE append metrics CSV rows every "
        "--metrics-interval-ms (default 1000)\n"
        "  --metrics-interval-ms N\n"
        "  --slow-log-us N    slow-log threshold (default 250000; 0 "
        "off)\n"
        "  --slow-log-sample N  also log every Nth request (0 off)\n"
        "  --no-tracing       answer Hello with v1 (interop testing)\n",
        argv0);
    return code;
}

/** Append @p text to @p path, writing @p header first on creation. */
bool
appendFile(const std::string &path, const std::string &header,
           const std::string &text)
{
    const bool fresh = ::access(path.c_str(), F_OK) != 0;
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (f == nullptr)
        return false;
    if (fresh && !header.empty())
        std::fwrite(header.data(), 1, header.size(), f);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

uint64_t
wallMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

unsigned long long
parseNum(const char *argv0, const char *flag, const char *text,
         unsigned long long min, unsigned long long max)
{
    char *end = nullptr;
    const unsigned long long n = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || n < min || n > max) {
        std::fprintf(stderr, "%s: bad %s value '%s'\n", argv0, flag,
                     text);
        std::exit(2);
    }
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tarch;

    serve::Server::Config cfg;
    std::string trace_out;
    std::string metrics_out;
    uint64_t metrics_interval_ms = 1000;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--unix") {
            cfg.unixPath = next("--unix");
        } else if (arg == "--tcp") {
            cfg.tcpPort = static_cast<int>(
                parseNum(argv[0], "--tcp", next("--tcp"), 0, 65535));
        } else if (arg == "--jobs") {
            cfg.jobs = static_cast<unsigned>(
                parseNum(argv[0], "--jobs", next("--jobs"), 1, 4096));
        } else if (arg == "--queue") {
            cfg.queueCapacity = static_cast<size_t>(parseNum(
                argv[0], "--queue", next("--queue"), 1, 1u << 20));
        } else if (arg == "--deadline-ms") {
            cfg.defaultDeadlineMs = static_cast<uint32_t>(
                parseNum(argv[0], "--deadline-ms", next("--deadline-ms"),
                         1, 86'400'000));
        } else if (arg == "--cache-dir") {
            cfg.sim.cacheDir = next("--cache-dir");
        } else if (arg == "--no-disk-cache") {
            cfg.sim.diskCache = false;
        } else if (arg == "--no-memory-cache") {
            cfg.sim.memoryCache = false;
        } else if (arg == "--exec-mode") {
            const char *text = next("--exec-mode");
            const auto mode = core::execModeFromName(text);
            if (!mode) {
                std::fprintf(stderr,
                             "%s: bad --exec-mode value '%s' (want "
                             "exact|predecoded)\n",
                             argv[0], text);
                return usage(argv[0], 2);
            }
            cfg.sim.execMode = *mode;
        } else if (arg == "--no-verify") {
            cfg.sim.verifySource = false;
        } else if (arg == "--session-dir") {
            cfg.sessions.snapshotDir = next("--session-dir");
        } else if (arg == "--session-idle-ms") {
            cfg.sessions.idleEvictMs = static_cast<uint64_t>(
                parseNum(argv[0], "--session-idle-ms",
                         next("--session-idle-ms"), 0, 86'400'000));
        } else if (arg == "--max-sessions") {
            cfg.sessions.maxSessions = static_cast<size_t>(
                parseNum(argv[0], "--max-sessions", next("--max-sessions"),
                         1, 1u << 20));
        } else if (arg == "--max-payload") {
            cfg.maxPayload = static_cast<uint32_t>(
                parseNum(argv[0], "--max-payload", next("--max-payload"),
                         64, serve::proto::kMaxPayload));
        } else if (arg == "--trace-out") {
            trace_out = next("--trace-out");
        } else if (arg == "--metrics-out") {
            metrics_out = next("--metrics-out");
        } else if (arg == "--metrics-interval-ms") {
            metrics_interval_ms =
                parseNum(argv[0], "--metrics-interval-ms",
                         next("--metrics-interval-ms"), 10, 3'600'000);
        } else if (arg == "--slow-log-us") {
            cfg.slowLog.thresholdUs =
                parseNum(argv[0], "--slow-log-us", next("--slow-log-us"),
                         0, ~0ull);
        } else if (arg == "--slow-log-sample") {
            cfg.slowLog.sampleEvery = parseNum(
                argv[0], "--slow-log-sample", next("--slow-log-sample"),
                0, ~0ull);
        } else if (arg == "--no-tracing") {
            cfg.advertiseTracing = false;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         arg.c_str());
            return usage(argv[0], 2);
        }
    }
    if (cfg.unixPath.empty() && cfg.tcpPort < 0) {
        std::fprintf(stderr, "%s: need --unix and/or --tcp\n", argv[0]);
        return usage(argv[0], 2);
    }
    // Sessions follow the stateless path's engine and verifier gates.
    cfg.sessions.execMode = cfg.sim.execMode;
    cfg.sessions.verifyChunks = cfg.sim.verifySource;

    if (::pipe(g_signal_pipe) != 0) {
        std::fprintf(stderr, "%s: pipe: %s\n", argv[0],
                     std::strerror(errno));
        return 1;
    }
    struct sigaction sa{};
    sa.sa_handler = onSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    try {
        serve::Server server(cfg);
        server.start();
        if (!cfg.unixPath.empty())
            tarch_inform("tarch_served: listening on unix:%s",
                         cfg.unixPath.c_str());
        if (cfg.tcpPort >= 0)
            tarch_inform("tarch_served: listening on tcp:127.0.0.1:%u",
                         server.tcpPort());
        tarch_inform("tarch_served: %s",
                     server.health().toJson().c_str());

        // Wait for a signal or an RPC-initiated drain, appending a
        // metrics CSV snapshot every interval when asked to.
        uint64_t next_csv_ms = wallMs();
        for (;;) {
            struct pollfd pfd = {g_signal_pipe[0], POLLIN, 0};
            ::poll(&pfd, 1, 200);
            if (!metrics_out.empty() && wallMs() >= next_csv_ms) {
                appendFile(metrics_out, obs::Registry::csvHeader(),
                           server.metrics().renderCsv(wallMs()));
                next_csv_ms = wallMs() + metrics_interval_ms;
            }
            if (g_signal.load() != 0) {
                tarch_inform("tarch_served: signal %d, draining",
                             g_signal.load());
                break;
            }
            if (server.drained())
                break;
        }
        server.stop();
        if (!metrics_out.empty())
            appendFile(metrics_out, obs::Registry::csvHeader(),
                       server.metrics().renderCsv(wallMs()));
        if (!trace_out.empty()) {
            if (writeFile(trace_out,
                          server.spanRecorder().renderChromeTrace()))
                tarch_inform("tarch_served: wrote %zu spans to %s",
                             server.spanRecorder().size(),
                             trace_out.c_str());
            else
                tarch_warn("tarch_served: cannot write %s: %s",
                           trace_out.c_str(), std::strerror(errno));
        }
        tarch_inform("tarch_served: drained; final %s",
                     server.health().toJson().c_str());
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
}
