// fuzz_differential: differential fuzzing driver for the three-way ISA
// matrix.  Generates grammar-driven MiniScript programs per seed, runs
// each through the reference interpreter and both guest VMs on all
// three ISA variants x deopt on/off x core execution mode (exact and
// predecoded fast path, compared bit-for-bit — docs/FASTPATH.md),
// checks outputs and machine-level stats invariants, and shrinks any
// divergence to a minimal reproducer.
//
//   fuzz_differential --seeds 0..500 --jobs 8 --out fuzz-out
//   fuzz_differential --replay fuzz-out/repro_42.ms
//   fuzz_differential --replay repro.ms --profile --trace-out pre
//   fuzz_differential --dump-seed 42
//
// In --replay mode the observability flags (--profile, --trace-out
// PREFIX, --interval-stats N, --json; see docs/OBSERVABILITY.md)
// re-run every DIVERGENT configuration with probe-bus sinks attached
// and emit its artifacts — a post-mortem view of exactly the runs that
// disagreed.
//
// Exit code 0: every seed clean.  1: at least one divergence (repro
// files written).  2: usage / IO error.

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/strutil.h"
#include "core/exec_mode.h"
#include "fuzz/oracle.h"
#include "fuzz/progen.h"
#include "fuzz/shrink.h"
#include "obs/session.h"

using namespace tarch;

namespace {

struct CliOptions {
    uint64_t seedBegin = 0;
    uint64_t seedEnd = 100; ///< exclusive
    unsigned jobs = 0;      ///< 0 = hardware concurrency
    std::string outDir = "fuzz-out";
    std::string replayFile;
    bool haveDumpSeed = false;
    uint64_t dumpSeed = 0;
    bool shrink = true;
    bool quiet = false;
    unsigned maxFailures = 5;
    fuzz::OracleOptions oracle;
    /** Observability sinks for --replay (divergent configs only). */
    obs::SessionConfig obs;
    std::string obsPrefix = "fuzz-obs";
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--seeds A..B] [--jobs N] [--out DIR] [--no-shrink]\n"
        "          [--max-failures K] [--max-instructions N] [--quiet]\n"
        "          [--exec-mode exact|predecoded|both]  (default: both —\n"
        "           every config also runs on the fast-path core and must\n"
        "           match its exact twin bit-for-bit)\n"
        "          [--checkpoint N]  (snapshot axis: capture every config\n"
        "           to a tarch-snap-v1 blob at ~N retired instructions,\n"
        "           restore into a fresh VM, and require the resumed run\n"
        "           to finish bit-identical to the uninterrupted one)\n"
        "       %s --replay FILE     (re-run one program, report, exit)\n"
        "           [--profile] [--trace-out PREFIX] [--interval-stats N]\n"
        "           [--json]         (instrument the divergent configs)\n"
        "       %s --dump-seed S     (print the program for one seed)\n",
        argv0, argv0, argv0);
    std::exit(2);
}

/** Parse a full decimal u64; malformed text is a usage error, not a
    std::invalid_argument crash. */
bool
parseU64(const std::string &text, uint64_t &value)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    value = n;
    return true;
}

bool
parseSeedRange(const std::string &text, uint64_t &begin, uint64_t &end)
{
    const size_t dots = text.find("..");
    if (dots == std::string::npos)
        return false;
    if (!parseU64(text.substr(0, dots), begin) ||
        !parseU64(text.substr(dots + 2), end))
        return false;
    return end > begin;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        // Malformed numeric values are usage errors (exit 2), never
        // uncaught std::invalid_argument crashes.
        const auto nextU64 = [&](const char *flag) -> uint64_t {
            const std::string text = next();
            uint64_t value;
            if (!parseU64(text, value)) {
                std::fprintf(stderr, "%s: bad %s value '%s'\n", argv[0],
                             flag, text.c_str());
                usage(argv[0]);
            }
            return value;
        };
        if (arg == "--seeds") {
            const std::string range = next();
            if (!parseSeedRange(range, opts.seedBegin, opts.seedEnd)) {
                std::fprintf(stderr,
                             "%s: bad --seeds range '%s' (want A..B "
                             "with B > A)\n",
                             argv[0], range.c_str());
                usage(argv[0]);
            }
        } else if (arg == "--jobs") {
            const uint64_t n = nextU64("--jobs");
            if (n == 0 || n > 4096) {
                std::fprintf(stderr, "%s: --jobs must be in 1..4096\n",
                             argv[0]);
                usage(argv[0]);
            }
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--out") {
            opts.outDir = next();
        } else if (arg == "--replay") {
            opts.replayFile = next();
        } else if (arg == "--dump-seed") {
            opts.haveDumpSeed = true;
            opts.dumpSeed = nextU64("--dump-seed");
        } else if (arg == "--no-shrink") {
            opts.shrink = false;
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--max-failures") {
            opts.maxFailures =
                static_cast<unsigned>(nextU64("--max-failures"));
        } else if (arg == "--max-instructions") {
            opts.oracle.maxInstructions = nextU64("--max-instructions");
        } else if (arg == "--checkpoint") {
            opts.oracle.checkpoint = nextU64("--checkpoint");
            if (opts.oracle.checkpoint == 0) {
                std::fprintf(stderr,
                             "%s: --checkpoint must be nonzero\n",
                             argv[0]);
                usage(argv[0]);
            }
        } else if (arg == "--exec-mode") {
            const std::string mode = next();
            if (mode == "both") {
                opts.oracle.execModeAxis = true;
            } else if (const auto parsed = core::execModeFromName(mode)) {
                opts.oracle.execModeAxis = false;
                opts.oracle.execMode = *parsed;
            } else {
                std::fprintf(stderr, "%s: bad --exec-mode value '%s'\n",
                             argv[0], mode.c_str());
                usage(argv[0]);
            }
        } else if (arg == "--profile") {
            opts.obs.profile = true;
        } else if (arg == "--trace-out") {
            opts.obs.chromeTrace = true;
            opts.obsPrefix = next();
        } else if (arg == "--interval-stats") {
            const uint64_t n = nextU64("--interval-stats");
            if (n == 0) {
                std::fprintf(stderr,
                             "%s: --interval-stats must be nonzero\n",
                             argv[0]);
                usage(argv[0]);
            }
            opts.obs.intervalCycles = n;
        } else if (arg == "--json") {
            opts.obs.statsJson = true;
        } else {
            usage(argv[0]);
        }
    }
    return opts;
}

/** "MiniLua/typed/deopt=on" -> "MiniLua.typed.deopt-on" (path-safe). */
std::string
configSlug(const std::string &name)
{
    std::string slug = name;
    for (char &c : slug) {
        if (c == '/')
            c = '.';
        else if (c == '=')
            c = '-';
    }
    return slug;
}

bool
writeTextFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    out << content;
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    return true;
}

/**
 * Re-run every configuration that diverged with the requested sinks
 * attached and emit its artifacts (stdout for profiles, files named
 * `<prefix>.<config slug>.<kind>` otherwise).
 */
void
instrumentDivergentConfigs(const std::string &source,
                           const fuzz::OracleResult &result,
                           const CliOptions &opts)
{
    std::vector<std::string> done;
    for (const fuzz::Divergence &d : result.divergences) {
        if (std::find(done.begin(), done.end(), d.config) != done.end())
            continue;
        done.push_back(d.config);
        // Look up over the full 48-config matrix so
        // ".../mode=predecoded" divergences resolve too.
        const auto configs = fuzz::allRunConfigs(true);
        const auto it = std::find_if(
            configs.begin(), configs.end(),
            [&](const fuzz::RunConfig &c) { return c.name() == d.config; });
        if (it == configs.end())
            continue;
        obs::Artifacts artifacts;
        const fuzz::RunRecord rec = fuzz::replayInstrumented(
            source, *it, opts.obs, artifacts, opts.oracle);
        const std::string slug = configSlug(d.config);
        std::printf("\ninstrumented %s%s\n", d.config.c_str(),
                    rec.crashed ? " (crashed; artifacts cover the run up "
                                  "to the fatal instruction)"
                                : "");
        if (opts.obs.profile)
            std::printf("%s\n%s", artifacts.profileByHandler.c_str(),
                        artifacts.profileFlat.c_str());
        if (opts.obs.chromeTrace) {
            const std::string path =
                opts.obsPrefix + "." + slug + ".trace.json";
            if (writeTextFile(path, artifacts.traceJson))
                std::printf("wrote %s\n", path.c_str());
        }
        if (opts.obs.intervalCycles != 0) {
            const std::string path =
                opts.obsPrefix + "." + slug + ".intervals.csv";
            if (writeTextFile(path, artifacts.intervalCsv))
                std::printf("wrote %s\n", path.c_str());
        }
        if (opts.obs.statsJson) {
            const std::string path =
                opts.obsPrefix + "." + slug + ".stats.json";
            if (writeTextFile(path, artifacts.statsJson))
                std::printf("wrote %s\n", path.c_str());
        }
    }
}

std::string
indentLines(const std::string &text, const char *prefix)
{
    std::string out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out += std::string(prefix) + line + "\n";
    return out;
}

int
replay(const CliOptions &opts)
{
    std::ifstream in(opts.replayFile);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", opts.replayFile.c_str());
        return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const fuzz::OracleResult result =
        fuzz::runOracle(buffer.str(), opts.oracle);
    if (!result.referenceOk) {
        std::fprintf(stderr, "reference interpreter rejected program: %s\n",
                     result.referenceError.c_str());
        return 2;
    }
    if (result.clean()) {
        std::printf("clean: all %zu runs match the reference semantics\n",
                    result.runs.size());
        if (opts.obs.any())
            std::printf("no divergent configs, nothing to instrument\n");
        return 0;
    }
    std::printf("%zu divergence(s):\n", result.divergences.size());
    for (const fuzz::Divergence &d : result.divergences)
        std::printf("  %s\n", d.describe().c_str());
    if (opts.obs.any())
        instrumentDivergentConfigs(buffer.str(), result, opts);
    return 1;
}

/** Outcome of one fuzzed seed (only divergent seeds are kept). */
struct Failure {
    uint64_t seed = 0;
    std::string program;
    std::string shrunken;
    std::vector<fuzz::Divergence> divergences;
};

void
writeRepro(const CliOptions &opts, const Failure &failure)
{
    std::filesystem::create_directories(opts.outDir);
    const std::string base =
        opts.outDir + strformat("/repro_%llu",
                                (unsigned long long)failure.seed);

    std::ofstream ms(base + ".ms");
    ms << strformat("-- fuzz_differential reproducer, seed %llu\n",
                    (unsigned long long)failure.seed);
    for (const fuzz::Divergence &d : failure.divergences)
        ms << indentLines(d.describe(), "-- ");
    ms << strformat("-- replay: fuzz_differential --replay %s.ms\n",
                    base.c_str());
    ms << failure.shrunken;

    // Expected output per dialect, for eyeballing without a rebuild.
    const fuzz::OracleResult ref =
        fuzz::runOracle(failure.shrunken, opts.oracle);
    std::ofstream expected(base + ".expected");
    expected << "-- reference output, Lua dialect:\n"
             << ref.expectedLua << "-- reference output, JS dialect:\n"
             << ref.expectedJs;
}

int
runFuzzCampaign(const CliOptions &opts)
{
    const unsigned jobs = tarch::resolveJobs(opts.jobs);

    // Fail before the campaign, not at the moment a reproducer needs
    // saving, if the output directory cannot exist.
    std::error_code ec;
    std::filesystem::create_directories(opts.outDir, ec);
    if (ec) {
        std::fprintf(stderr, "cannot create %s: %s\n", opts.outDir.c_str(),
                     ec.message().c_str());
        return 2;
    }

    std::atomic<uint64_t> cleanCount{0};
    std::atomic<uint64_t> skippedCount{0};
    std::atomic<bool> stop{false};
    std::mutex mu; // guards failures + stdout
    std::vector<Failure> failures;

    // One task per seed on the shared work-queue executor; --max-failures
    // flips `stop` and the remaining seeds become no-ops.
    tarch::parallelFor(
        opts.seedEnd - opts.seedBegin, jobs, [&](size_t index) {
            if (stop.load(std::memory_order_relaxed))
                return;
            const uint64_t seed = opts.seedBegin + index;
            const std::string program = fuzz::generateProgram(seed);
            const fuzz::OracleResult result =
                fuzz::runOracle(program, opts.oracle);
            if (!result.referenceOk) {
                // A generator bug, not a VM bug: count it loudly.
                ++skippedCount;
                std::lock_guard<std::mutex> lock(mu);
                std::fprintf(stderr,
                             "seed %llu: generator produced a program the "
                             "reference rejects: %s\n",
                             (unsigned long long)seed,
                             result.referenceError.c_str());
                return;
            }
            if (result.clean()) {
                const uint64_t done = ++cleanCount;
                if (!opts.quiet && done % 50 == 0) {
                    std::lock_guard<std::mutex> lock(mu);
                    std::printf("  %llu seeds clean...\n",
                                (unsigned long long)done);
                    std::fflush(stdout);
                }
                return;
            }

            Failure failure;
            failure.seed = seed;
            failure.program = program;
            failure.divergences = result.divergences;
            {
                std::lock_guard<std::mutex> lock(mu);
                std::printf("seed %llu DIVERGES (%zu finding(s)); %s\n",
                            (unsigned long long)seed,
                            result.divergences.size(),
                            opts.shrink ? "shrinking..." : "keeping as-is");
                std::fflush(stdout);
            }
            if (opts.shrink) {
                failure.shrunken = fuzz::shrinkLines(
                    program, [&opts](const std::string &candidate) {
                        return fuzz::runOracle(candidate, opts.oracle)
                            .diverges();
                    });
                // Re-derive the report for the minimized program.
                failure.divergences =
                    fuzz::runOracle(failure.shrunken, opts.oracle)
                        .divergences;
            } else {
                failure.shrunken = program;
            }
            std::lock_guard<std::mutex> lock(mu);
            writeRepro(opts, failure);
            std::printf("  wrote %s/repro_%llu.ms (%d lines)\n",
                        opts.outDir.c_str(), (unsigned long long)seed,
                        (int)std::count(failure.shrunken.begin(),
                                        failure.shrunken.end(), '\n'));
            std::fflush(stdout);
            failures.push_back(std::move(failure));
            if (failures.size() >= opts.maxFailures)
                stop.store(true, std::memory_order_relaxed);
        });

    std::printf("\n%llu/%llu seeds clean, %llu skipped, %zu divergent",
                (unsigned long long)cleanCount.load(),
                (unsigned long long)(opts.seedEnd - opts.seedBegin),
                (unsigned long long)skippedCount.load(), failures.size());
    if (failures.size() >= opts.maxFailures)
        std::printf(" (stopped at --max-failures)");
    std::printf("\n");
    if (!failures.empty()) {
        std::printf("reproducers in %s/:\n", opts.outDir.c_str());
        for (const Failure &f : failures) {
            std::printf("  repro_%llu.ms\n", (unsigned long long)f.seed);
            for (const fuzz::Divergence &d : f.divergences)
                std::printf("%s", indentLines(d.describe(), "    ").c_str());
        }
    }
    return failures.empty() && skippedCount.load() == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opts = parseArgs(argc, argv);
    if (!opts.replayFile.empty())
        return replay(opts);
    if (opts.haveDumpSeed) {
        std::fputs(fuzz::generateProgram(opts.dumpSeed).c_str(), stdout);
        return 0;
    }
    return runFuzzCampaign(opts);
}
