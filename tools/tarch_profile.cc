// tarch_profile: profile one (engine, variant, benchmark) cell with the
// observability layer (docs/OBSERVABILITY.md) attached, without running
// a whole bench sweep.
//
//   tarch_profile --engine lua --benchmark n-sieve
//   tarch_profile --engine js --variant typed --benchmark fibo \
//                 --trace-out prof --interval-stats 10000 --json
//   tarch_profile --validate-json FILE    (well-formedness gate, exit 0/1)
//   tarch_profile --check-stats FILE      (stats schema round-trip, exit 0/1)
//   tarch_profile --list                  (benchmark names)
//
// With no output flag, --profile is implied: running the tool bare
// prints the per-handler and flat cycle profiles.  The two validation
// modes use the in-repo JSON parser (obs/json.h), so CI can assert the
// exporters' output without python or jq.
//
// Exit code 0: success / file valid.  1: validation failed.
// 2: usage / IO error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/benchmarks.h"
#include "harness/experiment.h"
#include "obs/json.h"

using namespace tarch;

namespace {

struct CliOptions {
    std::string engine;    ///< "lua" or "js"
    std::string variant = "typed";
    std::string benchmark = "n-sieve";
    std::string validateJsonFile; ///< --validate-json mode
    std::string checkStatsFile;   ///< --check-stats mode
    bool list = false;
    bool profile = false;
    bool traceOut = false;
    bool json = false;
    uint64_t intervalCycles = 0;
    std::string prefix = "tarch-profile";
};

[[noreturn]] void
usage(const char *argv0, int exit_code)
{
    std::fprintf(
        stderr,
        "usage: %s --engine lua|js [--variant V] [--benchmark B]\n"
        "          [--profile] [--trace-out PREFIX] [--interval-stats N] "
        "[--json]\n"
        "       %s --validate-json FILE   (exit 0 iff FILE is well-formed "
        "JSON)\n"
        "       %s --check-stats FILE     (exit 0 iff FILE round-trips "
        "the stats schema)\n"
        "       %s --list                 (print benchmark names)\n"
        "  --variant V   baseline | typed | checked-load (default typed)\n"
        "  --benchmark B one of the Table 7 benchmarks (default n-sieve)\n"
        "  (no output flag implies --profile)\n",
        argv0, argv0, argv0, argv0);
    std::exit(exit_code);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             flag);
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "--engine") {
            opts.engine = next("--engine");
        } else if (arg == "--variant") {
            opts.variant = next("--variant");
        } else if (arg == "--benchmark") {
            opts.benchmark = next("--benchmark");
        } else if (arg == "--validate-json") {
            opts.validateJsonFile = next("--validate-json");
        } else if (arg == "--check-stats") {
            opts.checkStatsFile = next("--check-stats");
        } else if (arg == "--list") {
            opts.list = true;
        } else if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--trace-out") {
            opts.traceOut = true;
            opts.prefix = next("--trace-out");
        } else if (arg == "--interval-stats") {
            const char *text = next("--interval-stats");
            char *end = nullptr;
            const unsigned long long n = std::strtoull(text, &end, 10);
            if (end == text || *end != '\0' || n == 0) {
                std::fprintf(stderr,
                             "%s: bad --interval-stats value '%s'\n",
                             argv[0], text);
                usage(argv[0], 2);
            }
            opts.intervalCycles = n;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0], 2);
        }
    }
    return opts;
}

bool
readFile(const std::string &path, std::string &content)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    content = buffer.str();
    return true;
}

bool
writeTextFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    out << content;
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    return true;
}

int
validateJson(const std::string &path)
{
    std::string content;
    if (!readFile(path, content))
        return 2;
    std::string error;
    if (!obs::jsonWellFormed(content, &error)) {
        std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    std::printf("%s: well-formed JSON\n", path.c_str());
    return 0;
}

int
checkStats(const std::string &path)
{
    std::string content;
    if (!readFile(path, content))
        return 2;
    core::CoreStats stats;
    std::string error;
    if (!obs::statsFromJson(content, stats, &error)) {
        std::fprintf(stderr, "%s: stats dump rejected: %s\n",
                     path.c_str(), error.c_str());
        return 1;
    }
    // Round-trip: re-serialize and re-parse; the counters must survive
    // exactly (the exporter keeps u64 precision).
    core::CoreStats again;
    if (!obs::statsFromJson(obs::statsToJson(stats), again, &error)) {
        std::fprintf(stderr, "%s: re-serialized dump rejected: %s\n",
                     path.c_str(), error.c_str());
        return 1;
    }
    if (again.instructions != stats.instructions ||
        again.cycles != stats.cycles || again.hostcalls != stats.hostcalls) {
        std::fprintf(stderr, "%s: counters changed across round-trip\n",
                     path.c_str());
        return 1;
    }
    std::printf("%s: schema %s, %llu instructions, %llu cycles, "
                "round-trip ok\n",
                path.c_str(), obs::kStatsSchema,
                (unsigned long long)stats.instructions,
                (unsigned long long)stats.cycles);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opts = parseArgs(argc, argv);

    if (!opts.validateJsonFile.empty())
        return validateJson(opts.validateJsonFile);
    if (!opts.checkStatsFile.empty())
        return checkStats(opts.checkStatsFile);
    if (opts.list) {
        for (const harness::BenchmarkInfo &info : harness::benchmarks())
            std::printf("%s\n", info.name.c_str());
        return 0;
    }

    harness::Engine engine;
    if (opts.engine == "lua") {
        engine = harness::Engine::Lua;
    } else if (opts.engine == "js") {
        engine = harness::Engine::Js;
    } else {
        std::fprintf(stderr, "%s: --engine must be lua or js\n", argv[0]);
        usage(argv[0], 2);
    }

    vm::Variant variant;
    if (opts.variant == "baseline") {
        variant = vm::Variant::Baseline;
    } else if (opts.variant == "typed") {
        variant = vm::Variant::Typed;
    } else if (opts.variant == "checked-load") {
        variant = vm::Variant::CheckedLoad;
    } else {
        std::fprintf(stderr,
                     "%s: --variant must be baseline, typed, or "
                     "checked-load\n",
                     argv[0]);
        usage(argv[0], 2);
    }

    const harness::BenchmarkInfo *info = nullptr;
    for (const harness::BenchmarkInfo &b : harness::benchmarks()) {
        if (b.name == opts.benchmark) {
            info = &b;
            break;
        }
    }
    if (!info) {
        std::fprintf(stderr,
                     "%s: unknown benchmark '%s' (try --list)\n", argv[0],
                     opts.benchmark.c_str());
        return 2;
    }

    if (!opts.profile && !opts.traceOut && !opts.json &&
        opts.intervalCycles == 0)
        opts.profile = true;

    obs::SessionConfig obs_cfg;
    obs_cfg.profile = opts.profile;
    obs_cfg.chromeTrace = opts.traceOut;
    obs_cfg.intervalCycles = opts.intervalCycles;
    obs_cfg.statsJson = opts.json;

    const harness::RunResult result =
        harness::runOne(engine, variant, *info, obs_cfg);
    const std::string cell =
        std::string(engine == harness::Engine::Lua ? "lua" : "js") + "." +
        info->name + "." + std::string(vm::variantName(variant));

    std::printf("%s: %llu instructions, %llu cycles\n", cell.c_str(),
                (unsigned long long)result.stats.instructions,
                (unsigned long long)result.stats.cycles);
    if (opts.profile)
        std::printf("%s\n%s", result.obsArtifacts.profileByHandler.c_str(),
                    result.obsArtifacts.profileFlat.c_str());
    if (opts.traceOut) {
        const std::string path = opts.prefix + "." + cell + ".trace.json";
        if (!writeTextFile(path, result.obsArtifacts.traceJson))
            return 2;
        std::printf("wrote %s\n", path.c_str());
    }
    if (opts.intervalCycles != 0) {
        const std::string path =
            opts.prefix + "." + cell + ".intervals.csv";
        if (!writeTextFile(path, result.obsArtifacts.intervalCsv))
            return 2;
        std::printf("wrote %s\n", path.c_str());
    }
    if (opts.json) {
        const std::string path = opts.prefix + "." + cell + ".stats.json";
        if (!writeTextFile(path, result.obsArtifacts.statsJson))
            return 2;
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
