/**
 * @file
 * Static verifier CLI for TRV64 images.
 *
 * Two modes:
 *   tarch_verify [options] file.s
 *       assemble the file and verify it;
 *   tarch_verify --engine lua|js --variant baseline|typed|chkld
 *       generate the interpreter image for that engine/variant (the
 *       same generation path the VMs use) and verify it.
 *
 * Exit code: 0 clean, 1 warnings only, 2 at least one error-severity
 * finding (see docs/ANALYSIS.md for the diagnostic catalogue).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/checks.h"
#include "assembler/assembler.h"
#include "common/log.h"
#include "vm/image.h"
#include "vm/js/interp_gen.h"
#include "vm/lua/interp_gen.h"
#include "vm/variant.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] file.s\n"
        "       %s --engine lua|js --variant baseline|typed|chkld\n"
        "options:\n"
        "  --engine lua|js          verify a generated interpreter image\n"
        "  --variant V              base|baseline, typed, chkld|checked-load\n"
        "  --text-base ADDR         .text base for file mode (default 0x1000)\n"
        "  --data-base ADDR         .data base for file mode (default 0x100000)\n"
        "  --quiet                  print only the summary line\n"
        "exit code: 0 clean, 1 warnings only, 2 errors\n",
        argv0, argv0);
    return 2;
}

std::optional<tarch::vm::Variant>
parseVariant(const std::string &name)
{
    if (name == "base" || name == "baseline")
        return tarch::vm::Variant::Baseline;
    if (name == "typed")
        return tarch::vm::Variant::Typed;
    if (name == "chkld" || name == "checked-load")
        return tarch::vm::Variant::CheckedLoad;
    return std::nullopt;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tarch;

    std::string engine, variant_name, file;
    assembler::AsmOptions asm_opts;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--engine") {
            engine = value();
        } else if (arg == "--variant") {
            variant_name = value();
        } else if (arg == "--text-base") {
            asm_opts.textBase = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--data-base") {
            asm_opts.dataBase = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--quiet" || arg == "-q") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option %s\n", argv[0],
                         arg.c_str());
            return usage(argv[0]);
        } else {
            file = arg;
        }
    }

    std::string source, what;
    if (!engine.empty() || !variant_name.empty()) {
        if (engine.empty() || variant_name.empty() || !file.empty()) {
            std::fprintf(stderr,
                         "%s: --engine and --variant go together and "
                         "exclude a file argument\n",
                         argv[0]);
            return usage(argv[0]);
        }
        const auto variant = parseVariant(variant_name);
        if (!variant) {
            std::fprintf(stderr, "%s: unknown variant '%s'\n", argv[0],
                         variant_name.c_str());
            return usage(argv[0]);
        }
        const vm::GuestLayout layout;
        if (engine == "lua") {
            source = vm::lua::generateInterp(*variant, layout, layout.code,
                                             layout.consts)
                         .asmText;
        } else if (engine == "js") {
            source = vm::js::generateInterp(*variant, layout, layout.code,
                                            layout.consts, 4)
                         .asmText;
        } else {
            std::fprintf(stderr, "%s: unknown engine '%s'\n", argv[0],
                         engine.c_str());
            return usage(argv[0]);
        }
        asm_opts.textBase = layout.interpText;
        asm_opts.dataBase = layout.interpData;
        what = "image " + engine + "/" + variant_name;
    } else if (!file.empty()) {
        std::ifstream stream(file);
        if (!stream) {
            std::fprintf(stderr, "%s: cannot open %s\n", argv[0],
                         file.c_str());
            return 2;
        }
        std::ostringstream buf;
        buf << stream.rdbuf();
        source = buf.str();
        what = file;
    } else {
        return usage(argv[0]);
    }

    try {
        const assembler::Program prog =
            assembler::assemble(source, asm_opts);
        const analysis::Report report = analysis::verifyImage(prog);
        if (!quiet)
            std::fputs(report.render().c_str(), stdout);
        else
            std::printf("%s: %zu error(s), %zu warning(s)\n", what.c_str(),
                        report.count(analysis::Severity::Error),
                        report.count(analysis::Severity::Warning));
        return report.exitCode();
    } catch (const FatalError &err) {
        std::fprintf(stderr, "%s: %s\n", what.c_str(), err.what());
        return 2;
    }
}
