#include "typed/tag_codec.h"

namespace tarch::typed {

namespace {

constexpr uint64_t kPayloadMask = (1ULL << 47) - 1;
constexpr uint64_t kNanPrefix = 0x1FFFULL << 51;

} // namespace

ExtractedTag
TagCodec::extract(const TagConfig &config, uint64_t value_dword,
                  uint64_t tag_dword)
{
    ExtractedTag out{};
    if (config.nanDetect()) {
        if (isNanBoxed(value_dword)) {
            out.tag = static_cast<uint8_t>(
                (value_dword >> config.shift) & config.mask);
            out.fp = false;
            out.value = value_dword & kPayloadMask;
        } else {
            out.tag = kFloatTag;
            out.fp = true;
            out.value = value_dword;
        }
        return out;
    }
    out.tag = static_cast<uint8_t>((tag_dword >> config.shift) & config.mask);
    // Software convention (paper Section 4.1): tag MSB doubles as the F/I
    // bit when the engine extends its tag encoding.
    out.fp = (out.tag & 0x80) != 0;
    out.value = value_dword;
    return out;
}

InsertedTag
TagCodec::insert(const TagConfig &config, uint64_t value, uint8_t tag,
                 bool fp)
{
    InsertedTag out{};
    if (config.nanDetect()) {
        out.writesTagDword = false;
        if (fp) {
            out.valueDword = value;
        } else {
            out.valueDword = kNanPrefix |
                (static_cast<uint64_t>(tag & config.mask) << config.shift) |
                (value & kPayloadMask);
        }
        return out;
    }
    const uint64_t field =
        static_cast<uint64_t>(tag & config.mask) << config.shift;
    if (config.tagDwordOffset() == 0) {
        const uint64_t mask =
            static_cast<uint64_t>(config.mask) << config.shift;
        out.valueDword = (value & ~mask) | field;
        out.writesTagDword = false;
    } else {
        out.valueDword = value;
        out.writesTagDword = true;
        // The adjacent dword is tag + padding in every engine layout we
        // support, so the inserter emits the zero-extended field.
        out.tagDword = field;
    }
    return out;
}

} // namespace tarch::typed
