/**
 * @file
 * Reconfigurable tag extraction/insertion logic for tld/tsd (paper
 * Section 3.3) driven by the three special-purpose registers:
 *
 *   R_offset (3 bits): [1:0] selects the double-word holding the tag —
 *     00 same dword as the value, 01 next dword (+8), 11 previous (-8);
 *     bit [2] enables NaN detection for NaN-boxing engines.
 *   R_shift (6 bits): bit position of the tag field inside that dword.
 *   R_mask  (8 bits): mask of the (up to 8-bit) tag field.
 *
 * With NaN detection enabled, a loaded dword whose 13 MSBs are all ones
 * is a boxed non-FP value: the tag is (dword >> shift) & mask and F/I=0.
 * Any other bit pattern is a genuine double: the register gets the
 * synthetic tag kFloatTag and F/I=1.  Insertion is the inverse: F/I=1
 * values store raw bits; boxed values are reassembled as
 * 13 ones | (tag & mask) << shift | payload.
 *
 * Without NaN detection, the tag byte simply lives in the selected
 * dword; the engine may dedicate the tag MSB as the F/I flag (as our
 * MiniLua does, following paper Section 4.1).
 */

#ifndef TARCH_TYPED_TAG_CODEC_H
#define TARCH_TYPED_TAG_CODEC_H

#include <cstdint>

namespace tarch::typed {

/** Synthetic register tag for an unboxed IEEE double under NaN detection. */
constexpr uint8_t kFloatTag = 0xFF;

/** Register tag for values produced by untyped instructions. */
constexpr uint8_t kUntypedTag = 0xFE;

/** Special-purpose register state for tag extraction/insertion. */
struct TagConfig {
    uint8_t offset = 0;  ///< R_offset, 3 bits
    uint8_t shift = 0;   ///< R_shift, 6 bits
    uint8_t mask = 0xFF; ///< R_mask, 8 bits

    bool nanDetect() const { return (offset & 0b100) != 0; }
    /** Byte displacement of the tag dword relative to the value dword. */
    int tagDwordOffset() const
    {
        switch (offset & 0b11) {
          case 0b01: return 8;
          case 0b11: return -8;
          default: return 0;
        }
    }
};

/** Result of a tagged load's tag-path. */
struct ExtractedTag {
    uint8_t tag;
    bool fp;           ///< F/I bit
    uint64_t value;    ///< value register contents (payload for NaN boxes)
};

/** A tagged store's tag-path output. */
struct InsertedTag {
    uint64_t valueDword;   ///< dword stored at the value address
    bool writesTagDword;   ///< true when the tag lives in an adjacent dword
    uint64_t tagDword;     ///< dword stored at value address + offset
};

class TagCodec
{
  public:
    /** Top-13-bits-ones test used by the NaN detector. */
    static bool isNanBoxed(uint64_t dword) { return (dword >> 51) == 0x1FFF; }

    /**
     * Tag extraction for tld.
     * @param value_dword dword loaded from the value address
     * @param tag_dword   dword loaded from the tag address (equal to
     *                    value_dword when the offset selects the same word)
     */
    static ExtractedTag extract(const TagConfig &config, uint64_t value_dword,
                                uint64_t tag_dword);

    /**
     * Tag insertion for tsd.
     * @param value the register value field
     * @param tag   the register tag field
     * @param fp    the register F/I bit
     */
    static InsertedTag insert(const TagConfig &config, uint64_t value,
                              uint8_t tag, bool fp);
};

} // namespace tarch::typed

#endif // TARCH_TYPED_TAG_CODEC_H
