/**
 * @file
 * Type Rule Table (TRT): the small content-addressable memory of the
 * Typed Architecture pipeline (paper Section 3.2).
 *
 * A lookup key is (rule opcode class, source tag 1, source tag 2); a hit
 * yields the output type tag written to the destination register.  The
 * table is loaded once at engine launch via set_trt and cleared with
 * flush_trt.  The hardware prototype holds 8 entries; the capacity is a
 * constructor parameter so ablations can vary it.
 *
 * set_trt encoding (one 32-bit rule per push, paper leaves this open):
 *   bits [7:0]   output tag
 *   bits [15:8]  source tag 2
 *   bits [23:16] source tag 1
 *   bits [25:24] rule class (0 = xadd, 1 = xsub, 2 = xmul, 3 = tchk)
 */

#ifndef TARCH_TYPED_TYPE_RULE_TABLE_H
#define TARCH_TYPED_TYPE_RULE_TABLE_H

#include <cstdint>
#include <optional>
#include <vector>

namespace tarch::typed {

/** Rule class keyed together with the source tags. */
enum class RuleOp : uint8_t { Add = 0, Sub = 1, Mul = 2, Chk = 3 };

struct TypeRule {
    RuleOp op;
    uint8_t tagIn1;
    uint8_t tagIn2;
    uint8_t tagOut;
};

struct TrtStats {
    uint64_t lookups = 0;
    uint64_t hits = 0;

    uint64_t misses() const { return lookups - hits; }
};

class TypeRuleTable
{
  public:
    explicit TypeRuleTable(unsigned capacity = 8);

    /** Push a rule (set_trt).  Fatal if the table is full. */
    void push(const TypeRule &rule);

    /** Push from the packed 32-bit encoding used by set_trt. */
    void pushEncoded(uint32_t encoded);

    /** Pack a rule into the set_trt register encoding. */
    static uint32_t encode(const TypeRule &rule);

    /** Remove all rules (flush_trt). */
    void flush();

    /**
     * CAM lookup.  Counts statistics.
     * @return the output tag on hit, nullopt on a type miss
     */
    std::optional<uint8_t> lookup(RuleOp op, uint8_t tag1, uint8_t tag2);

    unsigned size() const { return static_cast<unsigned>(rules_.size()); }

    /** Read back rule @p idx (context save, Section 5). */
    const TypeRule &rule(unsigned idx) const { return rules_[idx]; }
    unsigned capacity() const { return capacity_; }
    const TrtStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

    /** Ordered rule contents + stats for machine snapshots (rule order
        matters: lookup is a first-match CAM scan). */
    struct Snapshot {
        std::vector<TypeRule> rules;
        TrtStats stats;
    };

    void
    saveState(Snapshot &out) const
    {
        out.rules = rules_;
        out.stats = stats_;
    }

    /** False (table unchanged) when the rules exceed capacity. */
    bool
    restoreState(const Snapshot &in)
    {
        if (in.rules.size() > capacity_)
            return false;
        rules_ = in.rules;
        stats_ = in.stats;
        return true;
    }

  private:
    unsigned capacity_;
    std::vector<TypeRule> rules_;
    TrtStats stats_;
};

} // namespace tarch::typed

#endif // TARCH_TYPED_TYPE_RULE_TABLE_H
