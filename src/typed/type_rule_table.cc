#include "typed/type_rule_table.h"

#include "common/log.h"

namespace tarch::typed {

TypeRuleTable::TypeRuleTable(unsigned capacity)
    : capacity_(capacity)
{
}

void
TypeRuleTable::push(const TypeRule &rule)
{
    if (rules_.size() >= capacity_)
        tarch_fatal("Type Rule Table overflow (capacity %u)", capacity_);
    rules_.push_back(rule);
}

uint32_t
TypeRuleTable::encode(const TypeRule &rule)
{
    return static_cast<uint32_t>(rule.tagOut) |
           (static_cast<uint32_t>(rule.tagIn2) << 8) |
           (static_cast<uint32_t>(rule.tagIn1) << 16) |
           (static_cast<uint32_t>(rule.op) << 24);
}

void
TypeRuleTable::pushEncoded(uint32_t encoded)
{
    TypeRule rule;
    rule.tagOut = static_cast<uint8_t>(encoded & 0xFF);
    rule.tagIn2 = static_cast<uint8_t>((encoded >> 8) & 0xFF);
    rule.tagIn1 = static_cast<uint8_t>((encoded >> 16) & 0xFF);
    rule.op = static_cast<RuleOp>((encoded >> 24) & 0x3);
    push(rule);
}

void
TypeRuleTable::flush()
{
    rules_.clear();
}

std::optional<uint8_t>
TypeRuleTable::lookup(RuleOp op, uint8_t tag1, uint8_t tag2)
{
    ++stats_.lookups;
    for (const TypeRule &rule : rules_) {
        if (rule.op == op && rule.tagIn1 == tag1 && rule.tagIn2 == tag2) {
            ++stats_.hits;
            return rule.tagOut;
        }
    }
    return std::nullopt;
}

} // namespace tarch::typed
