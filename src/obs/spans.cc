#include "obs/spans.h"

#include <chrono>
#include <functional>
#include <thread>
#include <unistd.h>

#include "common/strutil.h"
#include "obs/json.h"

namespace tarch::obs {

SpanRecorder::SpanRecorder(std::string process)
    : process_(std::move(process)),
      // Seed ids by pid so spans minted by the client, router, and
      // shard processes of one traced request land in disjoint ranges.
      nextSpanId_((static_cast<uint32_t>(::getpid()) << 16) | 1u)
{
}

uint64_t
SpanRecorder::wallNowUs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

uint32_t
SpanRecorder::nextSpanId()
{
    uint32_t id = nextSpanId_.fetch_add(1, std::memory_order_relaxed);
    if (id == 0)  // 0 means "no parent"; skip it on wraparound
        id = nextSpanId_.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
SpanRecorder::record(SpanRecord span)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() >= kMaxSpans) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    spans_.push_back(std::move(span));
}

size_t
SpanRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
}

std::vector<SpanRecord>
SpanRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
}

void
SpanRecorder::appendChromeEvents(std::string &out, int pid,
                                 bool &first) const
{
    const auto comma = [&] {
        if (!first)
            out += ",";
        first = false;
        out += "\n";
    };
    comma();
    out += strformat("{\"name\":\"process_name\",\"ph\":\"M\","
                     "\"pid\":%d,\"tid\":0,"
                     "\"args\":{\"name\":\"%s\"}}",
                     pid, jsonEscape(process_).c_str());
    const std::vector<SpanRecord> spans = snapshot();
    for (const SpanRecord &span : spans) {
        comma();
        std::string args = strformat(
            "{\"trace\":\"%016llx\",\"span\":%llu,\"parent\":%llu",
            (unsigned long long)span.traceId,
            (unsigned long long)span.spanId,
            (unsigned long long)span.parentSpanId);
        if (!span.detail.empty())
            args += ",\"detail\":\"" + jsonEscape(span.detail) + "\"";
        args += "}";
        out += strformat(
            "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
            "\"pid\":%d,\"tid\":%llu,\"cat\":\"serve\",\"args\":%s}",
            jsonEscape(span.name).c_str(),
            (unsigned long long)span.startUs,
            (unsigned long long)span.durUs, pid,
            (unsigned long long)(span.tid % 1000), args.c_str());
    }
}

std::string
SpanRecorder::renderChromeTrace() const
{
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    appendChromeEvents(out, 1, first);
    out += strformat("\n],\"displayTimeUnit\":\"ms\","
                     "\"otherData\":{\"process\":\"%s\","
                     "\"timebase\":\"wall-clock us\","
                     "\"dropped_spans\":%llu}}\n",
                     jsonEscape(process_).c_str(),
                     (unsigned long long)dropped_.load());
    return out;
}

// ---------------------------------------------------------------------
// SpanScope.

SpanScope::SpanScope(SpanRecorder *recorder, uint64_t trace_id,
                     uint32_t parent_span, const char *name)
    : recorder_(recorder), traceId_(trace_id),
      parentSpanId_(parent_span)
{
    if (!recorder_ || trace_id == 0) {
        recorder_ = nullptr;
        return;
    }
    spanId_ = recorder_->nextSpanId();
    startUs_ = SpanRecorder::wallNowUs();
    name_ = name;
}

void
SpanScope::end()
{
    if (!recorder_)
        return;
    SpanRecord span;
    span.traceId = traceId_;
    span.spanId = spanId_;
    span.parentSpanId = parentSpanId_;
    span.startUs = startUs_;
    const uint64_t now = SpanRecorder::wallNowUs();
    span.durUs = now > startUs_ ? now - startUs_ : 0;
    span.tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
    span.name = name_;
    span.detail = std::move(detail_);
    recorder_->record(std::move(span));
    recorder_ = nullptr;
}

} // namespace tarch::obs
