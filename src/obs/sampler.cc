#include "obs/sampler.h"

#include "common/log.h"
#include "common/strutil.h"

namespace tarch::obs {

core::CoreStats
statsDelta(const core::CoreStats &a, const core::CoreStats &b)
{
    core::CoreStats d;
    d.instructions = a.instructions - b.instructions;
    d.cycles = a.cycles - b.cycles;
    d.loads = a.loads - b.loads;
    d.stores = a.stores - b.stores;
    d.branches.condBranches = a.branches.condBranches - b.branches.condBranches;
    d.branches.condMispredicts =
        a.branches.condMispredicts - b.branches.condMispredicts;
    d.branches.jumps = a.branches.jumps - b.branches.jumps;
    d.branches.jumpMispredicts =
        a.branches.jumpMispredicts - b.branches.jumpMispredicts;
    d.icache.accesses = a.icache.accesses - b.icache.accesses;
    d.icache.misses = a.icache.misses - b.icache.misses;
    d.icache.writebacks = a.icache.writebacks - b.icache.writebacks;
    d.dcache.accesses = a.dcache.accesses - b.dcache.accesses;
    d.dcache.misses = a.dcache.misses - b.dcache.misses;
    d.dcache.writebacks = a.dcache.writebacks - b.dcache.writebacks;
    d.itlb.accesses = a.itlb.accesses - b.itlb.accesses;
    d.itlb.misses = a.itlb.misses - b.itlb.misses;
    d.dtlb.accesses = a.dtlb.accesses - b.dtlb.accesses;
    d.dtlb.misses = a.dtlb.misses - b.dtlb.misses;
    d.trt.lookups = a.trt.lookups - b.trt.lookups;
    d.trt.hits = a.trt.hits - b.trt.hits;
    d.typeOverflowMisses = a.typeOverflowMisses - b.typeOverflowMisses;
    d.chklbChecks = a.chklbChecks - b.chklbChecks;
    d.chklbMisses = a.chklbMisses - b.chklbMisses;
    d.deoptRedirects = a.deoptRedirects - b.deoptRedirects;
    d.deoptProbes = a.deoptProbes - b.deoptProbes;
    d.hostcalls = a.hostcalls - b.hostcalls;
    return d;
}

IntervalSampler::IntervalSampler(std::function<core::CoreStats()> snapshot,
                                 uint64_t interval_cycles)
    : snapshot_(std::move(snapshot)),
      interval_(interval_cycles),
      nextBoundary_(interval_cycles)
{
    if (interval_ == 0)
        tarch_fatal("IntervalSampler: interval of 0 cycles");
}

void
IntervalSampler::takeSample(uint64_t cycle)
{
    const core::CoreStats current = snapshot_();
    Sample sample;
    sample.cycle = cycle;
    sample.cumulative = current;
    sample.delta = statsDelta(current, last_);
    last_ = current;
    samples_.push_back(sample);
}

void
IntervalSampler::onEvent(const Event &event)
{
    if (event.kind != EventKind::Retire)
        return;
    lastCycle_ = event.cycle;
    if (event.cycle < nextBoundary_)
        return;
    takeSample(event.cycle);
    // A multi-cycle instruction can stride several boundaries; the next
    // one is the first boundary strictly after the recorded cycle.
    nextBoundary_ = (event.cycle / interval_ + 1) * interval_;
}

void
IntervalSampler::finish()
{
    if (finished_)
        return;
    finished_ = true;
    const core::CoreStats current = snapshot_();
    // Cycles advance with every retire, so an unchanged cycle counter
    // means no activity since the last boundary sample — adding an
    // all-zero delta row would break nothing but helps nobody.
    if (!samples_.empty() && current.cycles == samples_.back().cumulative.cycles)
        return;
    takeSample(current.cycles);
}

const char *
IntervalSampler::csvHeader()
{
    return "cycle,instructions,cycles,loads,stores,cond_branches,"
           "cond_mispredicts,jumps,jump_mispredicts,icache_accesses,"
           "icache_misses,icache_writebacks,dcache_accesses,"
           "dcache_misses,dcache_writebacks,itlb_accesses,itlb_misses,"
           "dtlb_accesses,dtlb_misses,trt_lookups,trt_hits,"
           "type_overflow_misses,chklb_checks,chklb_misses,"
           "deopt_redirects,deopt_probes,hostcalls";
}

std::string
IntervalSampler::renderCsv() const
{
    std::string out = std::string(csvHeader()) + "\n";
    for (const Sample &sample : samples_) {
        const core::CoreStats &d = sample.delta;
        out += strformat(
            "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
            "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
            "%llu,%llu,%llu,%llu,%llu\n",
            (unsigned long long)sample.cycle,
            (unsigned long long)d.instructions,
            (unsigned long long)d.cycles, (unsigned long long)d.loads,
            (unsigned long long)d.stores,
            (unsigned long long)d.branches.condBranches,
            (unsigned long long)d.branches.condMispredicts,
            (unsigned long long)d.branches.jumps,
            (unsigned long long)d.branches.jumpMispredicts,
            (unsigned long long)d.icache.accesses,
            (unsigned long long)d.icache.misses,
            (unsigned long long)d.icache.writebacks,
            (unsigned long long)d.dcache.accesses,
            (unsigned long long)d.dcache.misses,
            (unsigned long long)d.dcache.writebacks,
            (unsigned long long)d.itlb.accesses,
            (unsigned long long)d.itlb.misses,
            (unsigned long long)d.dtlb.accesses,
            (unsigned long long)d.dtlb.misses,
            (unsigned long long)d.trt.lookups,
            (unsigned long long)d.trt.hits,
            (unsigned long long)d.typeOverflowMisses,
            (unsigned long long)d.chklbChecks,
            (unsigned long long)d.chklbMisses,
            (unsigned long long)d.deoptRedirects,
            (unsigned long long)d.deoptProbes,
            (unsigned long long)d.hostcalls);
    }
    return out;
}

} // namespace tarch::obs
