/**
 * @file
 * The event probe bus: the simulated core publishes typed
 * micro-architectural events (instruction retire, branch outcome, cache
 * and TLB misses, TRT hits/misses, checked-load misses, deopt selector
 * activity, host calls, halt/fatal) to registered sinks.
 *
 * Design constraints (docs/OBSERVABILITY.md):
 *   - zero cost when off: with no sinks attached every emission site is
 *     a single empty-vector test, and the core never reads auxiliary
 *     state (miss counters, marker names) unless a sink is listening;
 *   - observation never perturbs the simulation: sinks receive copies
 *     of a POD event and have no mutable access to the core, so the 26
 *     CoreStats counters are bit-identical with and without sinks.
 *
 * This header is intentionally dependency-free (cstdint + vector) so
 * the core library can embed a ProbeBus without linking the obs
 * library; the sinks themselves (profiler, sampler, exporters) live in
 * tarch_obs.
 */

#ifndef TARCH_OBS_EVENT_H
#define TARCH_OBS_EVENT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tarch::obs {

/** Everything the core can tell a sink about.  See the field notes on
    Event for the per-kind meaning of `a` and `b`. */
enum class EventKind : uint8_t {
    Retire,        ///< one instruction retired; a = marker region (-1 none)
    MarkerEnter,   ///< control reached a marker PC; a = marker id
    Branch,        ///< conditional branch resolved; a = taken, b = mispredict
    Jump,          ///< jal/jalr resolved; a = indirect?, b = mispredict
    IcacheMiss,    ///< instruction fetch missed L1I
    DcacheMiss,    ///< data access missed L1D; a = effective address
    ItlbMiss,      ///< instruction fetch missed the ITLB
    DtlbMiss,      ///< data access missed the DTLB; a = effective address
    TrtHit,        ///< xadd/xsub/xmul/tchk rule hit; a/b = operand tags
    TrtMiss,       ///< type miss -> handler redirect; a/b = operand tags
    TypeOverflow,  ///< int32 fast-path overflow abort (OverflowMode::Int32)
    ChklbMiss,     ///< checked-load tag mismatch; a = observed, b = expected
    DeoptRedirect, ///< thdl selector chose the slow path; a = handler PC
    DeoptProbe,    ///< periodic fast-path probe; a = handler PC
    Hostcall,      ///< hcall invoked; a = id, b = charged instructions
    Halt,          ///< guest exit; a = exit code
    Fatal,         ///< simulation about to abort (bad PC / runaway guard)
    NumKinds,
};

constexpr size_t kNumEventKinds = static_cast<size_t>(EventKind::NumKinds);

/** Human-readable kind name (stable; used by exporters and reports). */
constexpr const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Retire: return "retire";
      case EventKind::MarkerEnter: return "marker-enter";
      case EventKind::Branch: return "branch";
      case EventKind::Jump: return "jump";
      case EventKind::IcacheMiss: return "icache-miss";
      case EventKind::DcacheMiss: return "dcache-miss";
      case EventKind::ItlbMiss: return "itlb-miss";
      case EventKind::DtlbMiss: return "dtlb-miss";
      case EventKind::TrtHit: return "trt-hit";
      case EventKind::TrtMiss: return "trt-miss";
      case EventKind::TypeOverflow: return "type-overflow";
      case EventKind::ChklbMiss: return "chklb-miss";
      case EventKind::DeoptRedirect: return "deopt-redirect";
      case EventKind::DeoptProbe: return "deopt-probe";
      case EventKind::Hostcall: return "hostcall";
      case EventKind::Halt: return "halt";
      case EventKind::Fatal: return "fatal";
      case EventKind::NumKinds: break;
    }
    return "?";
}

struct Event {
    EventKind kind = EventKind::Retire;
    uint64_t pc = 0;     ///< PC of the causing instruction
    uint64_t cycle = 0;  ///< cumulative cycle count at emission
    int64_t a = 0;       ///< kind-specific (see EventKind)
    int64_t b = 0;       ///< kind-specific (see EventKind)
};

/** A consumer of core events.  Sinks must not throw out of onEvent. */
class Sink
{
  public:
    virtual ~Sink() = default;
    virtual void onEvent(const Event &event) = 0;
};

/**
 * The dispatch fabric between one core and its sinks.  Attach order is
 * delivery order.  Not thread-safe by design: one core, one thread —
 * the parallel sweep gives every worker its own Core and its own bus.
 */
class ProbeBus
{
  public:
    /** True when at least one sink is listening; the core's emission
        guard.  Kept trivially inlineable — this is the only cost the
        bus adds to an un-instrumented simulation. */
    bool active() const { return !sinks_.empty(); }

    void attach(Sink *sink)
    {
        if (sink)
            sinks_.push_back(sink);
    }

    void detach(Sink *sink)
    {
        for (size_t i = 0; i < sinks_.size(); ++i) {
            if (sinks_[i] == sink) {
                sinks_.erase(sinks_.begin() +
                             static_cast<ptrdiff_t>(i));
                return;
            }
        }
    }

    size_t sinkCount() const { return sinks_.size(); }

    void emit(const Event &event) const
    {
        for (Sink *sink : sinks_)
            sink->onEvent(event);
    }

  private:
    std::vector<Sink *> sinks_;
};

} // namespace tarch::obs

#endif // TARCH_OBS_EVENT_H
