#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "common/strutil.h"

namespace tarch::obs {

// ---------------------------------------------------------------------
// LatencyHistogram (moved up from serve/loadgen in PR 9).

size_t
LatencyHistogram::bucketIndex(uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<size_t>(value);
    // msb >= 5; the top six bits pick (group, sub-bucket).
    unsigned msb = 63;
    while (!(value & (1ULL << msb)))
        --msb;
    const unsigned shift = msb - 5;
    const uint64_t sub = value >> shift;  // in [32, 64)
    const size_t index =
        static_cast<size_t>(msb - 4) * kSubBuckets +
        static_cast<size_t>(sub - kSubBuckets);
    return std::min(index, kBuckets - 1);
}

uint64_t
LatencyHistogram::bucketUpper(size_t index)
{
    const size_t group = index / kSubBuckets;
    const size_t sub = index % kSubBuckets;
    if (group == 0)
        return index;  // exact
    const unsigned shift = static_cast<unsigned>(group - 1);
    return ((static_cast<uint64_t>(sub) + kSubBuckets + 1) << shift) - 1;
}

void
LatencyHistogram::record(uint64_t value_us)
{
    ++counts_[bucketIndex(value_us)];
    ++count_;
    sum_ += static_cast<double>(value_us);
    max_ = std::max(max_, value_us);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (size_t i = 0; i < kBuckets; ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
}

double
LatencyHistogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t
LatencyHistogram::percentile(double pct) const
{
    if (count_ == 0)
        return 0;
    const double clamped = std::min(100.0, std::max(0.0, pct));
    const uint64_t target = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(clamped / 100.0 * static_cast<double>(count_))));
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        seen += counts_[i];
        if (seen >= target)
            return std::min(bucketUpper(i), max_);
    }
    return max_;
}

uint64_t
LatencyHistogram::countAtOrBelow(uint64_t value_us) const
{
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets && bucketUpper(i) <= value_us; ++i)
        seen += counts_[i];
    return seen;
}

// ---------------------------------------------------------------------
// ShardedCounter / Histogram.

void
ShardedCounter::add(uint64_t n)
{
    const size_t stripe =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        kStripes;
    stripes_[stripe].v.fetch_add(n, std::memory_order_relaxed);
}

uint64_t
ShardedCounter::value() const
{
    uint64_t total = 0;
    for (const Stripe &s : stripes_)
        total += s.v.load(std::memory_order_relaxed);
    return total;
}

void
Histogram::record(uint64_t value_us)
{
    std::lock_guard<std::mutex> lock(mu_);
    h_.record(value_us);
}

LatencyHistogram
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return h_;
}

// ---------------------------------------------------------------------
// Registry.

namespace {

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    const auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name[0]))
        return false;
    for (char c : name.substr(1))
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    return true;
}

/** Prometheus `le` bounds for microsecond latencies: the decades from
    100us to 10s, then +Inf. */
constexpr uint64_t kLeBoundsUs[] = {100,     1'000,     10'000,
                                    100'000, 1'000'000, 10'000'000};

std::string
joinLabels(const std::string &base, const std::string &extra)
{
    if (base.empty())
        return extra;
    if (extra.empty())
        return base;
    return base + "," + extra;
}

std::string
sampleLine(const std::string &name, const std::string &labels,
           const std::string &value)
{
    if (labels.empty())
        return name + " " + value + "\n";
    return name + "{" + labels + "} " + value + "\n";
}

std::string
u64str(uint64_t v)
{
    return strformat("%llu", (unsigned long long)v);
}

} // namespace

Registry::Family &
Registry::family(const std::string &name, const std::string &help,
                 Type type)
{
    // Internal misuse (bad charset, type clash) is a programming error;
    // keep the registry self-consistent rather than crashing a daemon.
    for (Family &fam : families_) {
        if (fam.name == name)
            return fam;
    }
    Family fam;
    fam.name = validMetricName(name) ? name : "tarch_invalid_metric";
    fam.help = help;
    fam.type = type;
    families_.push_back(std::move(fam));
    return families_.back();
}

Registry::Series &
Registry::findOrCreateSeries(Family &fam, const std::string &labels)
{
    for (Series &s : fam.series)
        if (s.labels == labels)
            return s;
    Series s;
    s.labels = labels;
    fam.series.push_back(std::move(s));
    return fam.series.back();
}

ShardedCounter &
Registry::counter(const std::string &name, const std::string &help,
                  const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    Series &s =
        findOrCreateSeries(family(name, help, Type::Counter), labels);
    if (!s.counter)
        s.counter = std::make_unique<ShardedCounter>();
    return *s.counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    Series &s = findOrCreateSeries(family(name, help, Type::Gauge), labels);
    if (!s.gauge)
        s.gauge = std::make_unique<Gauge>();
    return *s.gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    Series &s =
        findOrCreateSeries(family(name, help, Type::Histogram), labels);
    if (!s.histogram)
        s.histogram = std::make_unique<Histogram>();
    return *s.histogram;
}

void
Registry::counterFn(const std::string &name, const std::string &help,
                    const std::string &labels,
                    std::function<uint64_t()> fn)
{
    std::lock_guard<std::mutex> lock(mu_);
    Series &s =
        findOrCreateSeries(family(name, help, Type::Counter), labels);
    s.counterFn = std::move(fn);
}

void
Registry::gaugeFn(const std::string &name, const std::string &help,
                  const std::string &labels, std::function<int64_t()> fn)
{
    std::lock_guard<std::mutex> lock(mu_);
    Series &s = findOrCreateSeries(family(name, help, Type::Gauge), labels);
    s.gaugeFn = std::move(fn);
}

std::string
Registry::renderPrometheus() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const Family &fam : families_) {
        out += "# HELP " + fam.name + " " + fam.help + "\n";
        out += "# TYPE " + fam.name + " ";
        out += fam.type == Type::Counter   ? "counter"
               : fam.type == Type::Gauge   ? "gauge"
                                           : "histogram";
        out += "\n";
        for (const Series &s : fam.series) {
            switch (fam.type) {
              case Type::Counter: {
                uint64_t v = 0;
                if (s.counterFn)
                    v = s.counterFn();
                else if (s.counter)
                    v = s.counter->value();
                out += sampleLine(fam.name, s.labels, u64str(v));
                break;
              }
              case Type::Gauge: {
                int64_t v = 0;
                if (s.gaugeFn)
                    v = s.gaugeFn();
                else if (s.gauge)
                    v = s.gauge->value();
                out += sampleLine(fam.name, s.labels,
                                  strformat("%lld", (long long)v));
                break;
              }
              case Type::Histogram: {
                const LatencyHistogram h =
                    s.histogram ? s.histogram->snapshot()
                                : LatencyHistogram{};
                for (uint64_t bound : kLeBoundsUs)
                    out += sampleLine(
                        fam.name + "_bucket",
                        joinLabels(s.labels,
                                   "le=\"" + u64str(bound) + "\""),
                        u64str(h.countAtOrBelow(bound)));
                out += sampleLine(fam.name + "_bucket",
                                  joinLabels(s.labels, "le=\"+Inf\""),
                                  u64str(h.count()));
                out += sampleLine(fam.name + "_sum", s.labels,
                                  strformat("%.0f", h.sum()));
                out += sampleLine(fam.name + "_count", s.labels,
                                  u64str(h.count()));
                break;
              }
            }
        }
    }
    return out;
}

std::string
Registry::csvHeader()
{
    return "timestamp_ms,name,labels,value\n";
}

std::string
Registry::renderCsv(uint64_t timestamp_ms) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    const auto row = [&](const std::string &name,
                         const std::string &labels,
                         const std::string &value) {
        out += strformat("%llu,%s,\"%s\",%s\n",
                         (unsigned long long)timestamp_ms, name.c_str(),
                         labels.c_str(), value.c_str());
    };
    for (const Family &fam : families_) {
        for (const Series &s : fam.series) {
            switch (fam.type) {
              case Type::Counter: {
                uint64_t v = 0;
                if (s.counterFn)
                    v = s.counterFn();
                else if (s.counter)
                    v = s.counter->value();
                row(fam.name, s.labels, u64str(v));
                break;
              }
              case Type::Gauge: {
                int64_t v = 0;
                if (s.gaugeFn)
                    v = s.gaugeFn();
                else if (s.gauge)
                    v = s.gauge->value();
                row(fam.name, s.labels, strformat("%lld", (long long)v));
                break;
              }
              case Type::Histogram: {
                const LatencyHistogram h =
                    s.histogram ? s.histogram->snapshot()
                                : LatencyHistogram{};
                row(fam.name + "_count", s.labels, u64str(h.count()));
                row(fam.name + "_sum", s.labels,
                    strformat("%.0f", h.sum()));
                row(fam.name + "_p50", s.labels,
                    u64str(h.percentile(50.0)));
                row(fam.name + "_p99", s.labels,
                    u64str(h.percentile(99.0)));
                row(fam.name + "_max", s.labels, u64str(h.maxValue()));
                break;
              }
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Exposition lint (shared by tests, tarch_trace --lint-metrics, CI).

namespace {

struct ParsedSample {
    std::string family;  ///< declared family the sample belongs to
    std::string key;     ///< full "name{labels}" identity
    double value = 0.0;
    bool counterLike = false;  ///< counter sample or histogram
                               ///< _bucket/_count/_sum (monotonic)
};

/** Parse one exposition document; false + error on a lint violation. */
bool
parseExposition(const std::string &text,
                std::vector<ParsedSample> &samples, std::string *error)
{
    const auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    std::string current_family;
    std::string current_type;
    size_t lineno = 0;
    for (const std::string &line : split(text, '\n')) {
        ++lineno;
        if (line.empty())
            continue;
        const std::string where = strformat(" (line %zu)", lineno);
        if (line[0] == '#') {
            std::vector<std::string> tok = split(line, ' ');
            if (tok.size() < 3 || (tok[1] != "TYPE" && tok[1] != "HELP"))
                return fail("malformed comment line" + where);
            if (!validMetricName(tok[2]))
                return fail("bad metric name '" + tok[2] + "'" + where);
            if (tok[1] == "TYPE") {
                if (tok.size() != 4)
                    return fail("malformed TYPE line" + where);
                if (tok[3] != "counter" && tok[3] != "gauge" &&
                    tok[3] != "histogram")
                    return fail("unknown metric type '" + tok[3] + "'" +
                                where);
                current_family = tok[2];
                current_type = tok[3];
            }
            continue;
        }
        // Sample: name[{labels}] value
        const size_t space = line.rfind(' ');
        if (space == std::string::npos || space + 1 >= line.size())
            return fail("sample line without a value" + where);
        std::string ident = line.substr(0, space);
        const std::string value_text = line.substr(space + 1);
        std::string name = ident;
        const size_t brace = ident.find('{');
        if (brace != std::string::npos) {
            if (ident.back() != '}')
                return fail("unterminated label set" + where);
            name = ident.substr(0, brace);
        }
        if (!validMetricName(name))
            return fail("bad sample name '" + name + "'" + where);
        char *end = nullptr;
        const double value = std::strtod(value_text.c_str(), &end);
        if (end == value_text.c_str() || *end != '\0')
            return fail("unparseable sample value '" + value_text + "'" +
                        where);
        // Attribute the sample to the family declared above it;
        // histogram samples may carry _bucket/_sum/_count suffixes.
        bool matches = name == current_family;
        if (!matches && current_type == "histogram")
            matches = name == current_family + "_bucket" ||
                      name == current_family + "_sum" ||
                      name == current_family + "_count";
        if (!matches)
            return fail("sample '" + name +
                        "' outside its family's TYPE block" + where);
        ParsedSample sample;
        sample.family = current_family;
        sample.key = ident;
        sample.value = value;
        sample.counterLike =
            current_type == "counter" || current_type == "histogram";
        samples.push_back(std::move(sample));
    }
    if (samples.empty())
        return fail("no samples in exposition document");
    return true;
}

} // namespace

bool
Registry::lintPrometheus(const std::string &text, std::string *error)
{
    std::vector<ParsedSample> samples;
    return parseExposition(text, samples, error);
}

bool
Registry::countersMonotonic(const std::string &before,
                            const std::string &after, std::string *error)
{
    std::vector<ParsedSample> a, b;
    if (!parseExposition(before, a, error) ||
        !parseExposition(after, b, error))
        return false;
    for (const ParsedSample &sa : a) {
        if (!sa.counterLike)
            continue;
        for (const ParsedSample &sb : b) {
            if (sb.key != sa.key)
                continue;
            if (sb.value + 1e-9 < sa.value) {
                if (error)
                    *error = strformat(
                        "counter '%s' decreased: %.0f -> %.0f",
                        sa.key.c_str(), sa.value, sb.value);
                return false;
            }
            break;
        }
    }
    return true;
}

} // namespace tarch::obs
