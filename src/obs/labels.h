/**
 * @file
 * Nearest-label lookup over an assembled image: the single "where is
 * this PC, symbolically?" helper shared by the static verifier's
 * diagnostics (analysis::Cfg::locate), the execution tracer's dump
 * annotations, and the cycle-attribution profiler's flat report.
 *
 * Header-only so the core library (Tracer) can use it without a link
 * dependency on tarch_obs.
 */

#ifndef TARCH_OBS_LABELS_H
#define TARCH_OBS_LABELS_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "assembler/assembler.h"
#include "common/strutil.h"

namespace tarch::obs {

class LabelMap
{
  public:
    LabelMap() = default;

    /** Text-segment labels of @p prog, sorted by address. */
    explicit LabelMap(const assembler::Program &prog)
    {
        const uint64_t text_end = prog.textBase + 4 * prog.text.size();
        for (const auto &[name, addr] : prog.symbols) {
            if (addr >= prog.textBase && addr < text_end)
                labels_.emplace_back(addr, name);
        }
        std::sort(labels_.begin(), labels_.end());
    }

    bool empty() const { return labels_.empty(); }
    size_t size() const { return labels_.size(); }

    /** Labels sorted by address (for iteration / tests). */
    const std::vector<std::pair<uint64_t, std::string>> &
    labels() const
    {
        return labels_;
    }

    /** The nearest label at or before @p pc, or nullptr if none. */
    const std::pair<uint64_t, std::string> *
    nearest(uint64_t pc) const
    {
        const auto it = std::upper_bound(
            labels_.begin(), labels_.end(), pc,
            [](uint64_t value, const auto &entry) {
                return value < entry.first;
            });
        if (it == labels_.begin())
            return nullptr;
        return &*std::prev(it);
    }

    /** "label", "label+0x8", or plain hex when no label precedes. */
    std::string
    locate(uint64_t pc) const
    {
        const auto *entry = nearest(pc);
        if (!entry)
            return strformat("0x%llx",
                             static_cast<unsigned long long>(pc));
        if (entry->first == pc)
            return entry->second;
        return strformat("%s+0x%llx", entry->second.c_str(),
                         static_cast<unsigned long long>(pc - entry->first));
    }

  private:
    std::vector<std::pair<uint64_t, std::string>> labels_;
};

} // namespace tarch::obs

#endif // TARCH_OBS_LABELS_H
