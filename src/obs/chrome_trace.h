/**
 * @file
 * Chrome trace-event exporter sink.  Handler (marker-region) activity
 * becomes "ph":"X" duration spans and notable micro-architectural
 * events (TRT misses, type overflows, checked-load misses, deopt
 * redirects/probes, hostcalls, fatals) become "ph":"i" instant events,
 * all on a 1-cycle == 1-microsecond timebase so the result loads
 * directly into Perfetto / chrome://tracing.
 */

#ifndef TARCH_OBS_CHROME_TRACE_H
#define TARCH_OBS_CHROME_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/markers.h"
#include "obs/event.h"
#include "obs/labels.h"

namespace tarch::obs {

class ChromeTraceSink : public Sink
{
  public:
    /**
     * @param markers  marker table of the traced core (names for span
     *                 titles); may be null — spans then carry region ids
     * @param labels   nearest-label map for instant-event annotations
     */
    ChromeTraceSink(const core::Markers *markers, LabelMap labels);

    void onEvent(const Event &event) override;

    /** Close the open span at the last seen cycle (idempotent). */
    void finish();

    /** The complete trace as a JSON document (calls finish()). */
    std::string render();

    size_t spanCount() const { return spans_.size(); }
    size_t instantCount() const { return instants_.size(); }

  private:
    struct Span {
        int64_t region;
        uint64_t startCycle;
        uint64_t endCycle;
    };
    struct Instant {
        EventKind kind;
        uint64_t pc;
        uint64_t cycle;
        int64_t a;
        int64_t b;
    };

    void closeSpan(uint64_t cycle);
    std::string regionName(int64_t region) const;

    const core::Markers *markers_;
    LabelMap labels_;
    std::vector<Span> spans_;
    std::vector<Instant> instants_;
    int64_t openRegion_ = -1;
    uint64_t openStart_ = 0;
    bool spanOpen_ = false;
    uint64_t lastCycle_ = 0;
    bool finished_ = false;
};

} // namespace tarch::obs

#endif // TARCH_OBS_CHROME_TRACE_H
