/**
 * @file
 * Interval sampler sink: snapshots the full CoreStats aggregate every N
 * cycles into a time series of deltas, so a run's evolution (a deopt
 * storm, an MPKI phase change, a TRT warm-up) is visible instead of
 * only its end-of-run averages.
 *
 * Sampling semantics (pinned by tests/test_obs.cc):
 *   - a sample closes at the first retire whose cumulative cycle count
 *     reaches the next interval boundary (instructions are multi-cycle,
 *     so the recorded cycle can overshoot the boundary);
 *   - finish() closes one final partial sample iff cycles advanced
 *     since the last boundary sample — a run shorter than one interval
 *     yields exactly one sample, a run ending exactly on a boundary
 *     yields none extra;
 *   - the per-column deltas of all samples sum to the final aggregate.
 */

#ifndef TARCH_OBS_SAMPLER_H
#define TARCH_OBS_SAMPLER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/stats.h"
#include "obs/event.h"

namespace tarch::obs {

/** a - b, column-wise, over every scalar CoreStats counter. */
core::CoreStats statsDelta(const core::CoreStats &a,
                           const core::CoreStats &b);

class IntervalSampler : public Sink
{
  public:
    struct Sample {
        uint64_t cycle = 0;           ///< cumulative cycle at close
        core::CoreStats cumulative;   ///< aggregate at close
        core::CoreStats delta;        ///< cumulative - previous sample
    };

    /**
     * @param snapshot  returns the current CoreStats aggregate
     *                  (typically [&core] { return core.collectStats(); })
     * @param interval_cycles  sample every N cycles; fatal if 0
     */
    IntervalSampler(std::function<core::CoreStats()> snapshot,
                    uint64_t interval_cycles);

    void onEvent(const Event &event) override;

    /** Close the final partial sample (idempotent). */
    void finish();

    const std::vector<Sample> &samples() const { return samples_; }
    uint64_t intervalCycles() const { return interval_; }

    /** The time series as CSV (header + one row per sample). */
    std::string renderCsv() const;

    /** The CSV column names, shared with the renderer and its tests. */
    static const char *csvHeader();

  private:
    void takeSample(uint64_t cycle);

    std::function<core::CoreStats()> snapshot_;
    uint64_t interval_;
    uint64_t nextBoundary_;
    core::CoreStats last_;
    uint64_t lastCycle_ = 0;
    bool finished_ = false;
    std::vector<Sample> samples_;
};

} // namespace tarch::obs

#endif // TARCH_OBS_SAMPLER_H
