#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/strutil.h"

namespace tarch::obs {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strformat("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    return out;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : fields) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

bool
JsonValue::asU64(uint64_t &value) const
{
    if (kind != Kind::Number || text.empty() || text[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    value = n;
    return true;
}

// ---------------------------------------------------------------------
// Recursive-descent parser.

namespace {

class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text),
          error_(error)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing content after document");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &message)
    {
        if (error_ && error_->empty())
            *error_ = strformat("json: %s at offset %zu", message.c_str(),
                                pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return fail(strformat("expected '%s'", word));
        pos_ += len;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                ++pos_;
                continue;
            }
            if (pos_ + 1 >= text_.size())
                return fail("dangling escape");
            const char esc = text_[pos_ + 1];
            pos_ += 2;
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_ + static_cast<size_t>(i)];
                    if (!std::isxdigit(static_cast<unsigned char>(h)))
                        return fail("bad \\u escape digit");
                    code = code * 16 +
                           static_cast<unsigned>(
                               h <= '9'   ? h - '0'
                               : h <= 'F' ? h - 'A' + 10
                                          : h - 'a' + 10);
                }
                pos_ += 4;
                // Decoded as Latin-1-ish bytes; exact UTF-8 transcoding
                // is irrelevant for well-formedness checking.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            return fail("malformed number");
        if (text_[pos_] == '0') {
            ++pos_;
        } else {
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return fail("malformed fraction");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return fail("malformed exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        out.kind = JsonValue::Kind::Number;
        out.text = text_.substr(start, pos_ - start);
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                skipWs();
                JsonValue value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.fields.emplace_back(std::move(key), std::move(value));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                JsonValue value;
                if (!parseValue(value, depth + 1))
                    return false;
                out.items.push_back(std::move(value));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        }
        return parseNumber(out);
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace

bool
jsonParse(const std::string &text, JsonValue &out, std::string *error)
{
    if (error)
        error->clear();
    Parser parser(text, error);
    return parser.parseDocument(out);
}

bool
jsonWellFormed(const std::string &text, std::string *error)
{
    JsonValue ignored;
    return jsonParse(text, ignored, error);
}

// ---------------------------------------------------------------------
// Versioned CoreStats dump.

namespace {

/** Name/slot view of the 26 counters, single source of truth for both
    serialisation directions (and kept in column order with the
    IntervalSampler CSV header). */
std::vector<std::pair<const char *, uint64_t *>>
counterList(core::CoreStats &s)
{
    return {
        {"instructions", &s.instructions},
        {"cycles", &s.cycles},
        {"loads", &s.loads},
        {"stores", &s.stores},
        {"cond_branches", &s.branches.condBranches},
        {"cond_mispredicts", &s.branches.condMispredicts},
        {"jumps", &s.branches.jumps},
        {"jump_mispredicts", &s.branches.jumpMispredicts},
        {"icache_accesses", &s.icache.accesses},
        {"icache_misses", &s.icache.misses},
        {"icache_writebacks", &s.icache.writebacks},
        {"dcache_accesses", &s.dcache.accesses},
        {"dcache_misses", &s.dcache.misses},
        {"dcache_writebacks", &s.dcache.writebacks},
        {"itlb_accesses", &s.itlb.accesses},
        {"itlb_misses", &s.itlb.misses},
        {"dtlb_accesses", &s.dtlb.accesses},
        {"dtlb_misses", &s.dtlb.misses},
        {"trt_lookups", &s.trt.lookups},
        {"trt_hits", &s.trt.hits},
        {"type_overflow_misses", &s.typeOverflowMisses},
        {"chklb_checks", &s.chklbChecks},
        {"chklb_misses", &s.chklbMisses},
        {"deopt_redirects", &s.deoptRedirects},
        {"deopt_probes", &s.deoptProbes},
        {"hostcalls", &s.hostcalls},
    };
}

} // namespace

std::string
statsToJson(const core::CoreStats &stats)
{
    core::CoreStats mutable_copy = stats;
    std::string out = "{\n";
    out += strformat("  \"schema\": \"%s\",\n", kStatsSchema);
    out += "  \"counters\": {\n";
    const auto counters = counterList(mutable_copy);
    for (size_t i = 0; i < counters.size(); ++i) {
        out += strformat("    \"%s\": %llu%s\n", counters[i].first,
                         (unsigned long long)*counters[i].second,
                         i + 1 < counters.size() ? "," : "");
    }
    out += "  },\n";
    out += "  \"derived\": {\n";
    out += strformat("    \"ipc\": %.6f,\n", stats.ipc());
    out += strformat("    \"branch_mpki\": %.6f,\n", stats.branchMpki());
    out += strformat("    \"icache_mpki\": %.6f,\n", stats.icacheMpki());
    out += strformat("    \"dcache_mpki\": %.6f\n", stats.dcacheMpki());
    out += "  }\n}\n";
    return out;
}

bool
statsFromJson(const std::string &text, core::CoreStats &stats,
              std::string *error)
{
    const auto fail = [&](const std::string &message) {
        if (error)
            *error = message;
        return false;
    };
    JsonValue doc;
    if (!jsonParse(text, doc, error))
        return false;
    if (doc.kind != JsonValue::Kind::Object)
        return fail("stats dump is not a JSON object");
    const JsonValue *schema = doc.find("schema");
    if (!schema || schema->kind != JsonValue::Kind::String)
        return fail("missing \"schema\" field");
    if (schema->text != kStatsSchema)
        return fail(strformat("schema mismatch: got \"%s\", want \"%s\"",
                              schema->text.c_str(), kStatsSchema));
    const JsonValue *counters = doc.find("counters");
    if (!counters || counters->kind != JsonValue::Kind::Object)
        return fail("missing \"counters\" object");
    core::CoreStats parsed;
    for (const auto &[name, slot] : counterList(parsed)) {
        const JsonValue *field = counters->find(name);
        if (!field)
            return fail(strformat("missing counter \"%s\"", name));
        if (!field->asU64(*slot))
            return fail(strformat("counter \"%s\" is not a u64", name));
    }
    stats = parsed;
    return true;
}

} // namespace tarch::obs
