/**
 * @file
 * One-stop observability session: given a Core and a config, attaches
 * the requested sinks (profiler, interval sampler, Chrome trace) to the
 * core's probe bus, and on finish() detaches them and renders every
 * requested artifact.  This is the layer the bench front-ends, the
 * fuzzer replay path and tools/tarch_profile share, so flag plumbing
 * stays one line per binary.
 */

#ifndef TARCH_OBS_SESSION_H
#define TARCH_OBS_SESSION_H

#include <cstdint>
#include <memory>
#include <string>

#include "core/core.h"
#include "obs/chrome_trace.h"
#include "obs/profiler.h"
#include "obs/sampler.h"

namespace tarch::obs {

/** Which sinks to attach; default-constructed == everything off. */
struct SessionConfig {
    bool profile = false;         ///< cycle-attribution profiler
    bool chromeTrace = false;     ///< Chrome trace-event exporter
    uint64_t intervalCycles = 0;  ///< interval sampler period; 0 = off
    bool statsJson = false;       ///< versioned CoreStats JSON dump

    bool
    any() const
    {
        return profile || chromeTrace || intervalCycles != 0 || statsJson;
    }
};

/** Everything a finished session rendered, keyed by exporter. */
struct Artifacts {
    std::string profileByHandler; ///< per-region cycle table
    std::string profileFlat;      ///< nearest-label cycle table
    std::string traceJson;        ///< Chrome trace-event document
    std::string intervalCsv;      ///< CoreStats-delta time series
    std::string statsJson;        ///< versioned stats dump
};

class Session
{
  public:
    /** Attaches the sinks @p config asks for to @p core's probe bus. */
    Session(core::Core &core, const SessionConfig &config);

    /** Detaches any still-attached sinks. */
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Detach all sinks and render the requested artifacts (idempotent;
        the second call returns an empty set). */
    Artifacts finish();

    Profiler *profiler() { return profiler_.get(); }
    IntervalSampler *sampler() { return sampler_.get(); }
    ChromeTraceSink *trace() { return trace_.get(); }

  private:
    void detach();

    core::Core &core_;
    SessionConfig config_;
    std::unique_ptr<Profiler> profiler_;
    std::unique_ptr<IntervalSampler> sampler_;
    std::unique_ptr<ChromeTraceSink> trace_;
    bool attached_ = false;
    bool finished_ = false;
};

} // namespace tarch::obs

#endif // TARCH_OBS_SESSION_H
