#include "obs/session.h"

#include "obs/json.h"

namespace tarch::obs {

Session::Session(core::Core &core, const SessionConfig &config)
    : core_(core),
      config_(config)
{
    if (config_.profile) {
        profiler_ =
            std::make_unique<Profiler>(&core_.markers(), core_.labels());
        core_.probeBus().attach(profiler_.get());
    }
    if (config_.intervalCycles != 0) {
        sampler_ = std::make_unique<IntervalSampler>(
            [this] { return core_.collectStats(); },
            config_.intervalCycles);
        core_.probeBus().attach(sampler_.get());
    }
    if (config_.chromeTrace) {
        trace_ = std::make_unique<ChromeTraceSink>(&core_.markers(),
                                                   core_.labels());
        core_.probeBus().attach(trace_.get());
    }
    attached_ = true;
}

Session::~Session()
{
    detach();
}

void
Session::detach()
{
    if (!attached_)
        return;
    attached_ = false;
    if (profiler_)
        core_.probeBus().detach(profiler_.get());
    if (sampler_)
        core_.probeBus().detach(sampler_.get());
    if (trace_)
        core_.probeBus().detach(trace_.get());
}

Artifacts
Session::finish()
{
    Artifacts artifacts;
    if (finished_)
        return artifacts;
    finished_ = true;
    detach();
    if (profiler_) {
        artifacts.profileByHandler = profiler_->renderByHandler();
        artifacts.profileFlat = profiler_->renderFlat();
    }
    if (sampler_) {
        sampler_->finish();
        artifacts.intervalCsv = sampler_->renderCsv();
    }
    if (trace_)
        artifacts.traceJson = trace_->render();
    if (config_.statsJson)
        artifacts.statsJson = statsToJson(core_.collectStats());
    return artifacts;
}

} // namespace tarch::obs
