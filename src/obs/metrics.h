/**
 * @file
 * The serving-plane metrics registry (docs/OBSERVABILITY.md): cheap
 * sharded counters, gauges, and the log-bucketed LatencyHistogram
 * behind one Registry that renders Prometheus text exposition and a
 * long-format CSV for offline plots.
 *
 * Layering: this sits in obs (below serve) so Server, Router,
 * SimService, and HedgedClient can all share one metric vocabulary;
 * serve/loadgen.h aliases LatencyHistogram from here — the histogram
 * moved up a layer in PR 9 so the registry could own it without a
 * dependency inversion.
 *
 * Hot-path cost model: ShardedCounter::add is one relaxed fetch_add on
 * a cacheline-padded stripe picked by thread id; Gauge is a single
 * atomic; Histogram::record is an O(1) bucket increment under a mutex.
 * Most Server/Router counters are exported as CALLBACK series reading
 * the atomics those daemons already maintain, so exposition costs
 * nothing until somebody actually scrapes the Metrics endpoint.
 */

#ifndef TARCH_OBS_METRICS_H
#define TARCH_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tarch::obs {

/**
 * Log-bucketed histogram for microsecond latencies: values below 32
 * are exact; above that, each power-of-two range is split into 32
 * linear sub-buckets (~3% relative error), the HdrHistogram layout.
 * Fixed-size storage, O(1) record, merge by addition — each load
 * worker records into its own and the tool merges at the end.
 * NOT thread-safe; see obs::Histogram for the locked registry wrapper.
 */
class LatencyHistogram
{
  public:
    void record(uint64_t value_us);
    void merge(const LatencyHistogram &other);

    uint64_t count() const { return count_; }
    uint64_t maxValue() const { return max_; }
    double mean() const;
    /** Exact running sum of recorded values (not bucketed). */
    double sum() const { return sum_; }
    /** Smallest bucket upper bound covering @p pct percent of samples
        (pct in (0, 100]); 0 when empty.  Reported from the bucket
        ceiling, so it never under-states. */
    uint64_t percentile(double pct) const;
    /** Samples whose bucket lies entirely at or below @p value_us —
        the cumulative count behind a Prometheus `le` bucket.  Like
        percentile(), quantized to bucket boundaries (~3% error). */
    uint64_t countAtOrBelow(uint64_t value_us) const;

  private:
    static constexpr unsigned kSubBuckets = 32;  ///< per power of two
    static constexpr size_t kBuckets = kSubBuckets * 60;
    static size_t bucketIndex(uint64_t value);
    static uint64_t bucketUpper(size_t index);

    std::array<uint64_t, kBuckets> counts_{};
    uint64_t count_ = 0;
    uint64_t max_ = 0;
    double sum_ = 0.0;
};

/** Monotonic counter striped across cachelines: add() picks a stripe
    by thread id so concurrent writers do not bounce one line; value()
    sums the stripes (reads may be slightly stale, never torn). */
class ShardedCounter
{
  public:
    void add(uint64_t n = 1);
    uint64_t value() const;

  private:
    static constexpr size_t kStripes = 8;
    struct alignas(64) Stripe {
        std::atomic<uint64_t> v{0};
    };
    std::array<Stripe, kStripes> stripes_;
};

/** A settable instantaneous value (queue depth, in-flight count). */
class Gauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/** Thread-safe LatencyHistogram for registry use. */
class Histogram
{
  public:
    void record(uint64_t value_us);
    LatencyHistogram snapshot() const;

  private:
    mutable std::mutex mu_;
    LatencyHistogram h_;
};

/**
 * Name -> metric family registry.  Families are get-or-create by
 * (name, labels): calling counter() with the same name and labels from
 * two threads returns the SAME series, which is how per-worker
 * HedgedClients share one client-side counter set.  Series references
 * stay valid for the registry's lifetime.
 *
 * Names must match the Prometheus charset [a-zA-Z_:][a-zA-Z0-9_:]*;
 * labels are a pre-rendered `key="value"` list (possibly empty).
 */
class Registry
{
  public:
    ShardedCounter &counter(const std::string &name,
                            const std::string &help,
                            const std::string &labels = "");
    Gauge &gauge(const std::string &name, const std::string &help,
                 const std::string &labels = "");
    Histogram &histogram(const std::string &name, const std::string &help,
                         const std::string &labels = "");

    /** Register a read-on-scrape series backed by caller state (e.g. a
        daemon's existing atomics).  @p fn must stay valid for the
        registry's lifetime and be safe to call from any thread. */
    void counterFn(const std::string &name, const std::string &help,
                   const std::string &labels,
                   std::function<uint64_t()> fn);
    void gaugeFn(const std::string &name, const std::string &help,
                 const std::string &labels, std::function<int64_t()> fn);

    /** Prometheus text exposition (# HELP / # TYPE / samples).
        Histograms render cumulative `le` buckets at the decades of a
        microsecond scale plus +Inf, _sum and _count. */
    std::string renderPrometheus() const;

    /** Long-format CSV rows "timestamp_ms,name,labels,value"; the
        header line is csvHeader().  Histograms expand to _count, _sum,
        _p50, _p99 and _max rows. */
    std::string renderCsv(uint64_t timestamp_ms) const;
    static std::string csvHeader();

    /**
     * Lint one exposition document: name charset, one # TYPE line per
     * family with a known type, every sample attributable to a
     * declared family, parseable sample values.
     */
    static bool lintPrometheus(const std::string &text,
                               std::string *error);
    /**
     * Cross-scrape monotonicity: every counter-family sample (and
     * histogram _bucket/_count/_sum) present in both documents must
     * not decrease from @p before to @p after.
     */
    static bool countersMonotonic(const std::string &before,
                                  const std::string &after,
                                  std::string *error);

  private:
    enum class Type : uint8_t { Counter, Gauge, Histogram };

    struct Series {
        std::string labels;
        // Exactly one of these is active, per the family type.
        std::unique_ptr<ShardedCounter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::function<uint64_t()> counterFn;
        std::function<int64_t()> gaugeFn;
    };

    struct Family {
        std::string name;
        std::string help;
        Type type = Type::Counter;
        std::deque<Series> series;
    };

    Family &family(const std::string &name, const std::string &help,
                   Type type);
    Series &findOrCreateSeries(Family &fam, const std::string &labels);

    mutable std::mutex mu_;
    std::deque<Family> families_;  ///< deque: stable references
};

} // namespace tarch::obs

#endif // TARCH_OBS_METRICS_H
