#include "obs/profiler.h"

#include <algorithm>

#include "common/strutil.h"

namespace tarch::obs {

namespace {

constexpr const char *kNoLabel = "(no-label)";
constexpr const char *kPreMarker = "(pre-marker)";

} // namespace

Profiler::Profiler(const core::Markers *markers, LabelMap labels)
    : markers_(markers),
      labels_(std::move(labels))
{
}

std::string
Profiler::regionName(int64_t region) const
{
    if (region < 0)
        return kPreMarker;
    if (markers_ && static_cast<size_t>(region) < markers_->count())
        return markers_->name(static_cast<size_t>(region));
    return strformat("region#%lld", static_cast<long long>(region));
}

void
Profiler::onEvent(const Event &event)
{
    const auto label = [&]() -> std::string {
        const auto *entry = labels_.nearest(event.pc);
        return entry ? entry->second : std::string(kNoLabel);
    };
    const size_t kind = static_cast<size_t>(event.kind);

    switch (event.kind) {
      case EventKind::Retire: {
        // The cycle stamp is cumulative, so the delta since the last
        // retire is exactly this instruction's cost (fetch stalls,
        // operand stalls, redirects, host-call lump and, for the first
        // instruction, the constant pipeline-drain term).
        const uint64_t delta = event.cycle - lastCycle_;
        lastCycle_ = event.cycle;
        currentRegion_ = event.a;
        ProfileBucket &region = byRegion_[event.a];
        region.cycles += delta;
        ++region.instructions;
        ++region.events[kind];
        ProfileBucket &flat = byLabel_[label()];
        flat.cycles += delta;
        ++flat.instructions;
        ++flat.events[kind];
        ++totalInstructions_;
        break;
      }
      case EventKind::MarkerEnter:
        // Region changes are published before the instruction's other
        // events, so misses below attribute to the entered region.
        currentRegion_ = event.a;
        ++byRegion_[event.a].events[kind];
        ++byLabel_[label()].events[kind];
        break;
      case EventKind::Hostcall: {
        ProfileBucket &region = byRegion_[currentRegion_];
        ProfileBucket &flat = byLabel_[label()];
        ++region.events[kind];
        ++flat.events[kind];
        // The charged native-runtime instructions count toward the
        // region active at the hcall (same rule as Markers).
        region.instructions += static_cast<uint64_t>(event.b);
        flat.instructions += static_cast<uint64_t>(event.b);
        totalInstructions_ += static_cast<uint64_t>(event.b);
        break;
      }
      default: {
        ProfileBucket &region = byRegion_[currentRegion_];
        ProfileBucket &flat = byLabel_[label()];
        ++region.events[kind];
        ++flat.events[kind];
        if ((event.kind == EventKind::Branch ||
             event.kind == EventKind::Jump) &&
            event.b != 0) {
            ++region.branchMispredicts;
            ++flat.branchMispredicts;
        }
        break;
      }
    }
}

namespace {

struct Row {
    std::string name;
    const ProfileBucket *bucket;
};

std::string
renderTable(const char *title, std::vector<Row> rows, uint64_t total_cycles,
            size_t top)
{
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row &a, const Row &b) {
                         return a.bucket->cycles > b.bucket->cycles;
                     });
    if (top != 0 && rows.size() > top)
        rows.resize(top);

    std::string out = strformat("%s\n", title);
    out += strformat("  %-28s %12s %6s %12s %8s %8s %8s %8s %7s %7s\n",
                     "name", "cycles", "cyc%", "instrs", "ic-miss",
                     "dc-miss", "br-misp", "trt-miss", "chk-mis",
                     "hcalls");
    for (const Row &row : rows) {
        const ProfileBucket &b = *row.bucket;
        const double share =
            total_cycles
                ? 100.0 * static_cast<double>(b.cycles) /
                      static_cast<double>(total_cycles)
                : 0.0;
        out += strformat(
            "  %-28s %12llu %5.1f%% %12llu %8llu %8llu %8llu %8llu "
            "%7llu %7llu\n",
            row.name.c_str(), (unsigned long long)b.cycles, share,
            (unsigned long long)b.instructions,
            (unsigned long long)b.eventCount(EventKind::IcacheMiss),
            (unsigned long long)b.eventCount(EventKind::DcacheMiss),
            (unsigned long long)b.branchMispredicts,
            (unsigned long long)b.eventCount(EventKind::TrtMiss),
            (unsigned long long)b.eventCount(EventKind::ChklbMiss),
            (unsigned long long)b.eventCount(EventKind::Hostcall));
    }
    return out;
}

} // namespace

std::string
Profiler::renderByHandler(size_t top) const
{
    std::vector<Row> rows;
    rows.reserve(byRegion_.size());
    for (const auto &[region, bucket] : byRegion_)
        rows.push_back({regionName(region), &bucket});
    return renderTable(
        "per-handler profile (cycles charged to marker regions)",
        std::move(rows), lastCycle_, top);
}

std::string
Profiler::renderFlat(size_t top) const
{
    std::vector<Row> rows;
    rows.reserve(byLabel_.size());
    for (const auto &[label, bucket] : byLabel_)
        rows.push_back({label, &bucket});
    return renderTable(
        "flat profile (cycles charged to the nearest text label)",
        std::move(rows), lastCycle_, top);
}

} // namespace tarch::obs
