/**
 * @file
 * Cycle-attribution profiler sink: charges every simulated cycle and
 * every probe-bus event to (a) the marker region that was active when
 * the instruction retired (the per-handler view — same regions the
 * paper's Figure 2/9 per-bytecode profiles use) and (b) the nearest
 * preceding text label of the retiring PC (the flat view, same lookup
 * as the static verifier's diagnostics).
 *
 * Attribution is exact by construction: the cycle counter carried on
 * every Retire event is the core's cumulative cycle count, so the sum
 * of per-bucket cycles over either view equals CoreStats::cycles of a
 * completed run (the pipeline-drain constant is folded into the first
 * instruction's delta).  Instructions executed before the first marker
 * land in the synthetic "(pre-marker)" region.
 */

#ifndef TARCH_OBS_PROFILER_H
#define TARCH_OBS_PROFILER_H

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/markers.h"
#include "obs/event.h"
#include "obs/labels.h"

namespace tarch::obs {

/** One attribution bucket (a marker region or a text label). */
struct ProfileBucket {
    uint64_t cycles = 0;
    uint64_t instructions = 0;  ///< retires + charged host-call instructions
    uint64_t branchMispredicts = 0; ///< Branch/Jump events with b != 0
    std::array<uint64_t, kNumEventKinds> events{};

    uint64_t
    eventCount(EventKind kind) const
    {
        return events[static_cast<size_t>(kind)];
    }
};

class Profiler : public Sink
{
  public:
    /**
     * @param markers  the core's marker table (region names); may be
     *                 nullptr, in which case regions render by id
     * @param labels   nearest-label map of the loaded image (flat view)
     */
    Profiler(const core::Markers *markers, LabelMap labels);

    void onEvent(const Event &event) override;

    /** Total cycles charged so far (== last retire's cycle count). */
    uint64_t totalCycles() const { return lastCycle_; }
    uint64_t totalInstructions() const { return totalInstructions_; }

    /** Per-marker-region buckets, keyed by region id; -1 = pre-marker. */
    const std::map<int64_t, ProfileBucket> &byRegion() const
    {
        return byRegion_;
    }

    /** Per-nearest-label buckets (flat view). */
    const std::map<std::string, ProfileBucket> &byLabel() const
    {
        return byLabel_;
    }

    std::string regionName(int64_t region) const;

    /** Per-handler report: regions sorted by cycles, descending. */
    std::string renderByHandler(size_t top = 0) const;

    /** Flat report: nearest labels sorted by cycles, descending. */
    std::string renderFlat(size_t top = 0) const;

  private:
    const core::Markers *markers_;
    LabelMap labels_;

    std::map<int64_t, ProfileBucket> byRegion_;
    std::map<std::string, ProfileBucket> byLabel_;
    uint64_t lastCycle_ = 0;
    uint64_t totalInstructions_ = 0;
    int64_t currentRegion_ = -1;
};

} // namespace tarch::obs

#endif // TARCH_OBS_PROFILER_H
