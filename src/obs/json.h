/**
 * @file
 * Self-contained JSON utilities for the observability exporters: string
 * escaping, a strict well-formedness parser (used by CI to validate
 * emitted Chrome traces without external tooling), and the versioned
 * CoreStats dump/load pair gated on a schema identifier.
 *
 * The parser is a full RFC-8259 recursive-descent reader; numbers keep
 * their raw token text so 64-bit counters round-trip exactly (no
 * double conversion).
 */

#ifndef TARCH_OBS_JSON_H
#define TARCH_OBS_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/stats.h"

namespace tarch::obs {

/** Escape @p text for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &text);

/** A parsed JSON value (tree). */
struct JsonValue {
    enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text;  ///< raw number token, or decoded string body
    std::vector<JsonValue> items;                      ///< Array
    std::vector<std::pair<std::string, JsonValue>> fields; ///< Object

    const JsonValue *find(const std::string &key) const;
    bool asU64(uint64_t &value) const;
};

/**
 * Parse @p text as one JSON document.
 * @return true and fill @p out on success; false with a position-
 *         annotated message in @p error otherwise
 */
bool jsonParse(const std::string &text, JsonValue &out, std::string *error);

/** Well-formedness only (CI trace validation). */
bool jsonWellFormed(const std::string &text, std::string *error);

/** Schema identifier stamped into every stats dump.  Bump when the
    counter set changes. */
constexpr const char *kStatsSchema = "tarch-stats-v1";

/**
 * Serialize all 26 CoreStats counters (plus derived rates, which are
 * ignored on load) under the current schema version.
 */
std::string statsToJson(const core::CoreStats &stats);

/**
 * Parse a stats dump.  Rejects (returning false with a message) any
 * document whose "schema" is missing or not exactly kStatsSchema, and
 * any dump missing one of the 26 counters — the version gate that CI
 * round-trips through.
 */
bool statsFromJson(const std::string &text, core::CoreStats &stats,
                   std::string *error);

} // namespace tarch::obs

#endif // TARCH_OBS_JSON_H
