/**
 * @file
 * Dapper-style span recording for the serving plane: each process
 * (client, router, shard) records the stage spans of SAMPLED requests
 * into a bounded in-memory SpanRecorder keyed by the 16-byte trace
 * context that tarch-rpc v2 frames carry (serve/protocol.h), and
 * renders them as Chrome-trace JSON — the same Perfetto-loadable shape
 * the core profiler emits — so `tarch_trace merge` can stitch one
 * request's crossing of all three processes into a single file.
 *
 * Zero cost when off: an untraced request never calls into this file —
 * every serve-side call site guards on (recorder && sampled), and the
 * inert SpanScope constructor is a pointer check.  Timestamps are
 * wall-clock microseconds (CLOCK_REALTIME) so spans from different
 * processes on one machine share a timebase.
 */

#ifndef TARCH_OBS_SPANS_H
#define TARCH_OBS_SPANS_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tarch::obs {

/** One finished span of a sampled request. */
struct SpanRecord {
    uint64_t traceId = 0;
    uint32_t spanId = 0;
    uint32_t parentSpanId = 0;  ///< 0 = root
    uint64_t startUs = 0;       ///< wall-clock microseconds
    uint64_t durUs = 0;
    uint64_t tid = 0;           ///< recording thread (hashed id)
    std::string name;           ///< stage name, e.g. "server.queue"
    std::string detail;         ///< optional args annotation
};

class SpanRecorder
{
  public:
    /** @p process names the track in merged traces ("tarch_served"). */
    explicit SpanRecorder(std::string process = "tarch");

    /** Wall-clock microseconds (shared across local processes). */
    static uint64_t wallNowUs();

    /** Process-unique span id (seeded by pid so ids from cooperating
        local processes rarely collide within one trace). */
    uint32_t nextSpanId();

    void record(SpanRecord span);

    size_t size() const;
    uint64_t dropped() const { return dropped_.load(); }
    std::vector<SpanRecord> snapshot() const;
    const std::string &process() const { return process_; }

    /** A complete Chrome-trace JSON document for this process alone. */
    std::string renderChromeTrace() const;

    /** Append this recorder's events (ph:"X" spans + a process_name
        metadata record) to a merged document under @p pid. */
    void appendChromeEvents(std::string &out, int pid,
                            bool &first) const;

  private:
    /** Bound memory: a traced soak run must not grow without limit;
        spans past the cap are counted in dropped() instead. */
    static constexpr size_t kMaxSpans = 1 << 16;

    std::string process_;
    std::atomic<uint32_t> nextSpanId_;
    std::atomic<uint64_t> dropped_{0};
    mutable std::mutex mu_;
    std::vector<SpanRecord> spans_;
};

/**
 * RAII helper for one stage span: captures the start on construction,
 * records on end() (or destruction).  The default-constructed scope is
 * inert and free.
 */
class SpanScope
{
  public:
    SpanScope() = default;
    SpanScope(SpanRecorder *recorder, uint64_t trace_id,
              uint32_t parent_span, const char *name);
    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;
    ~SpanScope() { end(); }

    /** This scope's span id (0 when inert) — the parent for children. */
    uint32_t id() const { return spanId_; }
    bool active() const { return recorder_ != nullptr; }
    void setDetail(std::string detail) { detail_ = std::move(detail); }
    void end();

  private:
    SpanRecorder *recorder_ = nullptr;
    uint64_t traceId_ = 0;
    uint32_t spanId_ = 0;
    uint32_t parentSpanId_ = 0;
    uint64_t startUs_ = 0;
    const char *name_ = "";
    std::string detail_;
};

} // namespace tarch::obs

#endif // TARCH_OBS_SPANS_H
