#include "obs/chrome_trace.h"

#include "common/strutil.h"
#include "obs/json.h"

namespace tarch::obs {

ChromeTraceSink::ChromeTraceSink(const core::Markers *markers,
                                 LabelMap labels)
    : markers_(markers),
      labels_(std::move(labels))
{
}

std::string
ChromeTraceSink::regionName(int64_t region) const
{
    if (region < 0)
        return "(pre-marker)";
    if (markers_ && static_cast<size_t>(region) < markers_->count())
        return markers_->name(static_cast<size_t>(region));
    return strformat("region#%lld", static_cast<long long>(region));
}

void
ChromeTraceSink::closeSpan(uint64_t cycle)
{
    if (!spanOpen_)
        return;
    spanOpen_ = false;
    // Zero-width spans (two markers on consecutive stamps at the same
    // cycle) render invisibly; keep them anyway so span counts match
    // marker-entry counts minus one.
    spans_.push_back({openRegion_, openStart_, cycle});
}

void
ChromeTraceSink::onEvent(const Event &event)
{
    lastCycle_ = event.cycle;
    switch (event.kind) {
      case EventKind::MarkerEnter:
        closeSpan(event.cycle);
        openRegion_ = event.a;
        openStart_ = event.cycle;
        spanOpen_ = true;
        break;
      case EventKind::TrtMiss:
      case EventKind::TypeOverflow:
      case EventKind::ChklbMiss:
      case EventKind::DeoptRedirect:
      case EventKind::DeoptProbe:
      case EventKind::Hostcall:
      case EventKind::Fatal:
        instants_.push_back(
            {event.kind, event.pc, event.cycle, event.a, event.b});
        break;
      default:
        break;
    }
}

void
ChromeTraceSink::finish()
{
    if (finished_)
        return;
    finished_ = true;
    closeSpan(lastCycle_);
}

std::string
ChromeTraceSink::render()
{
    finish();
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    const auto comma = [&] {
        if (!first)
            out += ",";
        first = false;
        out += "\n";
    };
    for (const Span &span : spans_) {
        comma();
        out += strformat(
            "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
            "\"pid\":1,\"tid\":1,\"cat\":\"handler\"}",
            jsonEscape(regionName(span.region)).c_str(),
            (unsigned long long)span.startCycle,
            (unsigned long long)(span.endCycle - span.startCycle));
    }
    for (const Instant &instant : instants_) {
        comma();
        out += strformat(
            "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%llu,\"pid\":1,"
            "\"tid\":1,\"s\":\"t\",\"cat\":\"event\","
            "\"args\":{\"pc\":\"0x%llx\",\"at\":\"%s\",\"a\":%lld,"
            "\"b\":%lld}}",
            eventKindName(instant.kind),
            (unsigned long long)instant.cycle,
            (unsigned long long)instant.pc,
            jsonEscape(labels_.locate(instant.pc)).c_str(),
            (long long)instant.a, (long long)instant.b);
    }
    out += "\n],\"displayTimeUnit\":\"ms\","
           "\"otherData\":{\"timebase\":\"1 trace us = 1 core cycle\"}}\n";
    return out;
}

} // namespace tarch::obs
