#include "isa/encoding.h"

#include "common/bitops.h"

namespace tarch::isa {

namespace {

/** B/J immediates are byte offsets, stored divided by four. */
bool
scaledFits(int64_t imm, unsigned field_bits)
{
    return (imm & 3) == 0 && fitsSigned(imm >> 2, field_bits);
}

} // namespace

bool
immFits(const Instr &instr)
{
    switch (opcodeInfo(instr.op).format) {
      case Format::I:
      case Format::S:
        return fitsSigned(instr.imm, kImmBitsI);
      case Format::B:
        return scaledFits(instr.imm, kImmBitsB);
      case Format::U:
        return fitsSigned(instr.imm, kImmBitsU) ||
               (instr.imm >= 0 && instr.imm < (1LL << kImmBitsU));
      case Format::J:
        return scaledFits(instr.imm, kImmBitsJ);
      case Format::R:
      case Format::N:
        return true;
    }
    return false;
}

std::optional<uint32_t>
encode(const Instr &instr)
{
    if (!immFits(instr))
        return std::nullopt;
    const auto op_field = static_cast<uint32_t>(instr.op);
    uint64_t w = op_field;
    switch (opcodeInfo(instr.op).format) {
      case Format::R:
        w = insertBits(w, 11, 7, instr.rd);
        w = insertBits(w, 16, 12, instr.rs1);
        w = insertBits(w, 21, 17, instr.rs2);
        break;
      case Format::I:
        w = insertBits(w, 11, 7, instr.rd);
        w = insertBits(w, 16, 12, instr.rs1);
        w = insertBits(w, 31, 17, static_cast<uint64_t>(instr.imm));
        break;
      case Format::S:
        w = insertBits(w, 11, 7, static_cast<uint64_t>(instr.imm));
        w = insertBits(w, 16, 12, instr.rs1);
        w = insertBits(w, 21, 17, instr.rs2);
        w = insertBits(w, 31, 22,
                       static_cast<uint64_t>(instr.imm) >> 5);
        break;
      case Format::B: {
        const uint64_t scaled = static_cast<uint64_t>(instr.imm >> 2);
        w = insertBits(w, 11, 7, scaled);
        w = insertBits(w, 16, 12, instr.rs1);
        w = insertBits(w, 21, 17, instr.rs2);
        w = insertBits(w, 31, 22, scaled >> 5);
        break;
      }
      case Format::U:
        w = insertBits(w, 11, 7, instr.rd);
        w = insertBits(w, 31, 12, static_cast<uint64_t>(instr.imm));
        break;
      case Format::J: {
        const uint64_t scaled = static_cast<uint64_t>(instr.imm >> 2);
        w = insertBits(w, 11, 7, instr.rd);
        w = insertBits(w, 31, 12, scaled);
        break;
      }
      case Format::N:
        break;
    }
    return static_cast<uint32_t>(w);
}

std::optional<Instr>
decode(uint32_t word)
{
    const uint32_t op_field = static_cast<uint32_t>(bits(word, 6, 0));
    if (op_field >= kNumOpcodes)
        return std::nullopt;
    Instr instr;
    instr.op = static_cast<Opcode>(op_field);
    switch (opcodeInfo(instr.op).format) {
      case Format::R:
        instr.rd = static_cast<uint8_t>(bits(word, 11, 7));
        instr.rs1 = static_cast<uint8_t>(bits(word, 16, 12));
        instr.rs2 = static_cast<uint8_t>(bits(word, 21, 17));
        break;
      case Format::I:
        instr.rd = static_cast<uint8_t>(bits(word, 11, 7));
        instr.rs1 = static_cast<uint8_t>(bits(word, 16, 12));
        instr.imm = signExtend(bits(word, 31, 17), kImmBitsI);
        break;
      case Format::S:
        instr.rs1 = static_cast<uint8_t>(bits(word, 16, 12));
        instr.rs2 = static_cast<uint8_t>(bits(word, 21, 17));
        instr.imm = signExtend(bits(word, 31, 22) << 5 | bits(word, 11, 7),
                               kImmBitsS);
        break;
      case Format::B:
        instr.rs1 = static_cast<uint8_t>(bits(word, 16, 12));
        instr.rs2 = static_cast<uint8_t>(bits(word, 21, 17));
        instr.imm = signExtend(bits(word, 31, 22) << 5 | bits(word, 11, 7),
                               kImmBitsB) * 4;
        break;
      case Format::U:
        instr.rd = static_cast<uint8_t>(bits(word, 11, 7));
        instr.imm = signExtend(bits(word, 31, 12), kImmBitsU);
        break;
      case Format::J:
        instr.rd = static_cast<uint8_t>(bits(word, 11, 7));
        instr.imm = signExtend(bits(word, 31, 12), kImmBitsJ) * 4;
        break;
      case Format::N:
        break;
    }
    return instr;
}

} // namespace tarch::isa
