/**
 * @file
 * Textual disassembly of decoded instructions (debugging and tests).
 */

#ifndef TARCH_ISA_DISASM_H
#define TARCH_ISA_DISASM_H

#include <string>

#include "isa/instr.h"

namespace tarch::isa {

/**
 * Render @p instr as assembly text.  PC-relative targets are rendered as
 * "pc+<offset>" when @p pc is provided, or as raw offsets otherwise.
 */
std::string disassemble(const Instr &instr);

} // namespace tarch::isa

#endif // TARCH_ISA_DISASM_H
