#include "isa/instr.h"

#include <array>
#include <cctype>

#include "common/log.h"
#include "common/strutil.h"

namespace tarch::isa {

namespace {

constexpr std::array<std::string_view, kNumGprs> kGprNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0",   "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6",   "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8",   "s9", "s10", "s11", "t3", "t4", "t5", "t6",
};

std::optional<unsigned>
parseIndexed(std::string_view name, std::string_view prefix, unsigned limit)
{
    if (!startsWith(name, prefix))
        return std::nullopt;
    const std::string_view digits = name.substr(prefix.size());
    if (digits.empty() || digits.size() > 2)
        return std::nullopt;
    unsigned value = 0;
    for (char c : digits) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;
        value = value * 10 + static_cast<unsigned>(c - '0');
    }
    if (value >= limit)
        return std::nullopt;
    return value;
}

} // namespace

std::string_view
gprName(unsigned idx)
{
    if (idx >= kNumGprs)
        tarch_panic("bad GPR index %u", idx);
    return kGprNames[idx];
}

std::string
gprOrFprName(bool fp, unsigned idx)
{
    if (fp)
        return strformat("f%u", idx);
    return std::string(gprName(idx));
}

std::optional<unsigned>
parseGpr(std::string_view name)
{
    for (unsigned i = 0; i < kNumGprs; ++i) {
        if (name == kGprNames[i])
            return i;
    }
    if (auto idx = parseIndexed(name, "x", kNumGprs))
        return idx;
    // "fp" is the ABI alias for s0/x8.
    if (name == "fp")
        return 8U;
    return std::nullopt;
}

std::optional<unsigned>
parseFpr(std::string_view name)
{
    if (auto idx = parseIndexed(name, "f", kNumFprs))
        return idx;
    // ABI aliases: ft0-11 -> f0-7,f28-31; fs0-11 -> f8-9,f18-27;
    // fa0-7 -> f10-17.  Keep the common ft/fa/fs forms.
    if (auto idx = parseIndexed(name, "ft", 12))
        return *idx < 8 ? *idx : *idx + 20;
    if (auto idx = parseIndexed(name, "fa", 8))
        return *idx + 10;
    if (auto idx = parseIndexed(name, "fs", 12))
        return *idx < 2 ? *idx + 8 : *idx + 16;
    return std::nullopt;
}

} // namespace tarch::isa
