#include "isa/opcode.h"

#include <array>
#include <unordered_map>

#include "common/log.h"

namespace tarch::isa {

namespace {

constexpr std::array<OpcodeInfo, kNumOpcodes>
buildTable()
{
    std::array<OpcodeInfo, kNumOpcodes> t{};
    auto set = [&](Opcode op, std::string_view name, Format f, Syntax s,
                   ExecClass ec, bool frd = false, bool frs1 = false,
                   bool frs2 = false) {
        t[static_cast<unsigned>(op)] = {name, f, s, ec, frd, frs1, frs2};
    };
    using O = Opcode;
    using F = Format;
    using S = Syntax;
    using E = ExecClass;

    set(O::ADD,  "add",  F::R, S::R3, E::IntAlu);
    set(O::SUB,  "sub",  F::R, S::R3, E::IntAlu);
    set(O::MUL,  "mul",  F::R, S::R3, E::IntMul);
    set(O::MULH, "mulh", F::R, S::R3, E::IntMul);
    set(O::DIV,  "div",  F::R, S::R3, E::IntDiv);
    set(O::DIVU, "divu", F::R, S::R3, E::IntDiv);
    set(O::REM,  "rem",  F::R, S::R3, E::IntDiv);
    set(O::REMU, "remu", F::R, S::R3, E::IntDiv);
    set(O::AND,  "and",  F::R, S::R3, E::IntAlu);
    set(O::OR,   "or",   F::R, S::R3, E::IntAlu);
    set(O::XOR,  "xor",  F::R, S::R3, E::IntAlu);
    set(O::SLL,  "sll",  F::R, S::R3, E::IntAlu);
    set(O::SRL,  "srl",  F::R, S::R3, E::IntAlu);
    set(O::SRA,  "sra",  F::R, S::R3, E::IntAlu);
    set(O::SLT,  "slt",  F::R, S::R3, E::IntAlu);
    set(O::SLTU, "sltu", F::R, S::R3, E::IntAlu);

    set(O::ADDW, "addw", F::R, S::R3, E::IntAlu);
    set(O::SUBW, "subw", F::R, S::R3, E::IntAlu);
    set(O::MULW, "mulw", F::R, S::R3, E::IntMul);
    set(O::DIVW, "divw", F::R, S::R3, E::IntDiv);
    set(O::REMW, "remw", F::R, S::R3, E::IntDiv);
    set(O::ADDIW, "addiw", F::I, S::RegRegImm, E::IntAlu);
    set(O::SLLIW, "slliw", F::I, S::RegRegImm, E::IntAlu);
    set(O::SRLIW, "srliw", F::I, S::RegRegImm, E::IntAlu);
    set(O::SRAIW, "sraiw", F::I, S::RegRegImm, E::IntAlu);

    set(O::ADDI,  "addi",  F::I, S::RegRegImm, E::IntAlu);
    set(O::ANDI,  "andi",  F::I, S::RegRegImm, E::IntAlu);
    set(O::ORI,   "ori",   F::I, S::RegRegImm, E::IntAlu);
    set(O::XORI,  "xori",  F::I, S::RegRegImm, E::IntAlu);
    set(O::SLLI,  "slli",  F::I, S::RegRegImm, E::IntAlu);
    set(O::SRLI,  "srli",  F::I, S::RegRegImm, E::IntAlu);
    set(O::SRAI,  "srai",  F::I, S::RegRegImm, E::IntAlu);
    set(O::SLTI,  "slti",  F::I, S::RegRegImm, E::IntAlu);
    set(O::SLTIU, "sltiu", F::I, S::RegRegImm, E::IntAlu);

    set(O::LUI,   "lui",   F::U, S::UImm, E::IntAlu);
    set(O::AUIPC, "auipc", F::U, S::UImm, E::IntAlu);

    set(O::LB,  "lb",  F::I, S::Load, E::Load);
    set(O::LBU, "lbu", F::I, S::Load, E::Load);
    set(O::LH,  "lh",  F::I, S::Load, E::Load);
    set(O::LHU, "lhu", F::I, S::Load, E::Load);
    set(O::LW,  "lw",  F::I, S::Load, E::Load);
    set(O::LWU, "lwu", F::I, S::Load, E::Load);
    set(O::LD,  "ld",  F::I, S::Load, E::Load);
    set(O::SB,  "sb",  F::S, S::Store, E::Store);
    set(O::SH,  "sh",  F::S, S::Store, E::Store);
    set(O::SW,  "sw",  F::S, S::Store, E::Store);
    set(O::SD,  "sd",  F::S, S::Store, E::Store);

    set(O::BEQ,  "beq",  F::B, S::Branch, E::Branch);
    set(O::BNE,  "bne",  F::B, S::Branch, E::Branch);
    set(O::BLT,  "blt",  F::B, S::Branch, E::Branch);
    set(O::BGE,  "bge",  F::B, S::Branch, E::Branch);
    set(O::BLTU, "bltu", F::B, S::Branch, E::Branch);
    set(O::BGEU, "bgeu", F::B, S::Branch, E::Branch);
    set(O::JAL,  "jal",  F::J, S::Jal, E::Jump);
    set(O::JALR, "jalr", F::I, S::RegRegImm, E::Jump);

    set(O::FLD, "fld", F::I, S::Load, E::Load, true, false, false);
    set(O::FSD, "fsd", F::S, S::Store, E::Store, false, false, true);
    set(O::FADD_D,  "fadd.d",  F::R, S::R3, E::FpAlu, true, true, true);
    set(O::FSUB_D,  "fsub.d",  F::R, S::R3, E::FpAlu, true, true, true);
    set(O::FMUL_D,  "fmul.d",  F::R, S::R3, E::FpMul, true, true, true);
    set(O::FDIV_D,  "fdiv.d",  F::R, S::R3, E::FpDiv, true, true, true);
    set(O::FSQRT_D, "fsqrt.d", F::R, S::R2, E::FpSqrt, true, true, false);
    set(O::FSGNJ_D,  "fsgnj.d",  F::R, S::R3, E::FpAlu, true, true, true);
    set(O::FSGNJN_D, "fsgnjn.d", F::R, S::R3, E::FpAlu, true, true, true);
    set(O::FSGNJX_D, "fsgnjx.d", F::R, S::R3, E::FpAlu, true, true, true);
    set(O::FEQ_D, "feq.d", F::R, S::R3, E::FpAlu, false, true, true);
    set(O::FLT_D, "flt.d", F::R, S::R3, E::FpAlu, false, true, true);
    set(O::FLE_D, "fle.d", F::R, S::R3, E::FpAlu, false, true, true);
    set(O::FCVT_D_L, "fcvt.d.l", F::R, S::R2, E::FpAlu, true, false, false);
    set(O::FCVT_L_D, "fcvt.l.d", F::R, S::R2, E::FpAlu, false, true, false);
    set(O::FMV_X_D, "fmv.x.d", F::R, S::R2, E::FpAlu, false, true, false);
    set(O::FMV_D_X, "fmv.d.x", F::R, S::R2, E::FpAlu, true, false, false);

    set(O::TLD, "tld", F::I, S::Load, E::Load);
    set(O::TSD, "tsd", F::S, S::Store, E::Store);
    set(O::XADD, "xadd", F::R, S::R3, E::IntAlu);
    set(O::XSUB, "xsub", F::R, S::R3, E::IntAlu);
    set(O::XMUL, "xmul", F::R, S::R3, E::IntMul);
    set(O::SETOFFSET, "setoffset", F::R, S::Rs1, E::TypedCfg);
    set(O::SETMASK,   "setmask",   F::R, S::Rs1, E::TypedCfg);
    set(O::SETSHIFT,  "setshift",  F::R, S::Rs1, E::TypedCfg);
    set(O::SET_TRT,   "set_trt",   F::R, S::Rs1, E::TypedCfg);
    set(O::FLUSH_TRT, "flush_trt", F::N, S::None, E::TypedCfg);
    set(O::THDL, "thdl", F::J, S::Label, E::TypedCfg);
    set(O::TCHK, "tchk", F::R, S::Rs1Rs2, E::TypedChk);
    set(O::TGET, "tget", F::R, S::R2, E::IntAlu);
    set(O::TSET, "tset", F::R, S::R2, E::IntAlu);

    set(O::SETTYPE, "settype", F::R, S::Rs1, E::TypedCfg);
    set(O::CHKLB,   "chklb",   F::I, S::Load, E::Load);
    set(O::CHKLH,   "chklh",   F::I, S::Load, E::Load);
    set(O::CHKLD,   "chkld",   F::I, S::Load, E::Load);

    set(O::SYS,   "sys",   F::I, S::Imm, E::Sys);
    set(O::HCALL, "hcall", F::I, S::Imm, E::Sys);
    set(O::HALT,  "halt",  F::N, S::None, E::Halt);
    return t;
}

const std::array<OpcodeInfo, kNumOpcodes> kTable = buildTable();

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    const auto idx = static_cast<unsigned>(op);
    if (idx >= kNumOpcodes)
        tarch_panic("invalid opcode %u", idx);
    return kTable[idx];
}

std::optional<Opcode>
opcodeFromMnemonic(std::string_view mnemonic)
{
    static const std::unordered_map<std::string_view, Opcode> index = [] {
        std::unordered_map<std::string_view, Opcode> m;
        for (unsigned i = 0; i < kNumOpcodes; ++i)
            m.emplace(kTable[i].mnemonic, static_cast<Opcode>(i));
        return m;
    }();
    const auto it = index.find(mnemonic);
    if (it == index.end())
        return std::nullopt;
    return it->second;
}

bool
isLoad(Opcode op)
{
    return opcodeInfo(op).execClass == ExecClass::Load;
}

bool
isStore(Opcode op)
{
    return opcodeInfo(op).execClass == ExecClass::Store;
}

bool
isCondBranch(Opcode op)
{
    return opcodeInfo(op).format == Format::B;
}

} // namespace tarch::isa
