/**
 * @file
 * Decoded TRV64 instruction and register naming.
 */

#ifndef TARCH_ISA_INSTR_H
#define TARCH_ISA_INSTR_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "isa/opcode.h"

namespace tarch::isa {

constexpr unsigned kNumGprs = 32;
constexpr unsigned kNumFprs = 32;

/**
 * A decoded instruction.  The simulator executes these directly; the
 * 32-bit binary encoding (encoding.h) round-trips to and from this form.
 */
struct Instr {
    Opcode op = Opcode::HALT;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int64_t imm = 0;

    bool operator==(const Instr &) const = default;
};

/** ABI name of integer register @p idx (x0 -> "zero", x1 -> "ra", ...). */
std::string_view gprName(unsigned idx);

/** Name of FP register @p idx ("f0".."f31"). */
std::string gprOrFprName(bool fp, unsigned idx);

/** Parse a register name ("x5", "t0", "a7", "zero", ...) to its index. */
std::optional<unsigned> parseGpr(std::string_view name);

/** Parse an FP register name ("f0".."f31", "ft0".., "fa0".., "fs0"..). */
std::optional<unsigned> parseFpr(std::string_view name);

// Common ABI register indexes used by generated code.
namespace reg {
constexpr unsigned zero = 0, ra = 1, sp = 2, gp = 3, tp = 4;
constexpr unsigned t0 = 5, t1 = 6, t2 = 7;
constexpr unsigned s0 = 8, s1 = 9;
constexpr unsigned a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14, a5 = 15,
                   a6 = 16, a7 = 17;
constexpr unsigned s2 = 18, s3 = 19, s4 = 20, s5 = 21, s6 = 22, s7 = 23,
                   s8 = 24, s9 = 25, s10 = 26, s11 = 27;
constexpr unsigned t3 = 28, t4 = 29, t5 = 30, t6 = 31;
} // namespace reg

} // namespace tarch::isa

#endif // TARCH_ISA_INSTR_H
