/**
 * @file
 * 32-bit binary encoding of TRV64 instructions.
 *
 * Field layout is described in opcode.h.  PC-relative immediates (B- and
 * J-format) are stored divided by four since all instructions are word
 * aligned.
 */

#ifndef TARCH_ISA_ENCODING_H
#define TARCH_ISA_ENCODING_H

#include <cstdint>
#include <optional>

#include "isa/instr.h"

namespace tarch::isa {

/** Immediate widths (in bits, after /4 scaling for B/J) per format. */
constexpr unsigned kImmBitsI = 15;
constexpr unsigned kImmBitsS = 15;
constexpr unsigned kImmBitsB = 15; ///< scaled: +-64 KiB byte range
constexpr unsigned kImmBitsU = 20;
constexpr unsigned kImmBitsJ = 20; ///< scaled: +-2 MiB byte range

/**
 * Encode @p instr to its 32-bit form.
 * @return nullopt if an immediate does not fit its field.
 */
std::optional<uint32_t> encode(const Instr &instr);

/**
 * Decode a 32-bit word.
 * @return nullopt if the opcode field is invalid.
 */
std::optional<Instr> decode(uint32_t word);

/** Range check for an immediate of @p instr's format (pre-scaling value). */
bool immFits(const Instr &instr);

} // namespace tarch::isa

#endif // TARCH_ISA_ENCODING_H
