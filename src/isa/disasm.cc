#include "isa/disasm.h"

#include "common/strutil.h"

namespace tarch::isa {

std::string
disassemble(const Instr &instr)
{
    const OpcodeInfo &info = opcodeInfo(instr.op);
    const std::string rd = gprOrFprName(info.fpRd, instr.rd);
    const std::string rs1 = gprOrFprName(info.fpRs1, instr.rs1);
    const std::string rs2 = gprOrFprName(info.fpRs2, instr.rs2);
    const std::string m(info.mnemonic);
    switch (info.syntax) {
      case Syntax::None:
        return m;
      case Syntax::R3:
        return strformat("%s %s, %s, %s", m.c_str(), rd.c_str(), rs1.c_str(),
                         rs2.c_str());
      case Syntax::R2:
        return strformat("%s %s, %s", m.c_str(), rd.c_str(), rs1.c_str());
      case Syntax::Rs1Rs2:
        return strformat("%s %s, %s", m.c_str(), rs1.c_str(), rs2.c_str());
      case Syntax::Rs1:
        return strformat("%s %s", m.c_str(), rs1.c_str());
      case Syntax::RegRegImm:
        return strformat("%s %s, %s, %lld", m.c_str(), rd.c_str(),
                         rs1.c_str(), static_cast<long long>(instr.imm));
      case Syntax::Load:
        return strformat("%s %s, %lld(%s)", m.c_str(), rd.c_str(),
                         static_cast<long long>(instr.imm), rs1.c_str());
      case Syntax::Store:
        return strformat("%s %s, %lld(%s)", m.c_str(), rs2.c_str(),
                         static_cast<long long>(instr.imm), rs1.c_str());
      case Syntax::Branch:
        return strformat("%s %s, %s, pc%+lld", m.c_str(), rs1.c_str(),
                         rs2.c_str(), static_cast<long long>(instr.imm));
      case Syntax::Jal:
        return strformat("%s %s, pc%+lld", m.c_str(), rd.c_str(),
                         static_cast<long long>(instr.imm));
      case Syntax::UImm:
        return strformat("%s %s, %lld", m.c_str(), rd.c_str(),
                         static_cast<long long>(instr.imm));
      case Syntax::Label:
        return strformat("%s pc%+lld", m.c_str(),
                         static_cast<long long>(instr.imm));
      case Syntax::Imm:
        return strformat("%s %lld", m.c_str(),
                         static_cast<long long>(instr.imm));
    }
    return m;
}

} // namespace tarch::isa
