/**
 * @file
 * TRV64 opcode definitions.
 *
 * TRV64 is the RV64-flavoured guest ISA used throughout this reproduction.
 * It contains:
 *   - a base integer + double-precision FP subset comparable to RV64IMFD,
 *   - the Typed Architecture extension of Kim et al. (ASPLOS'17, Table 2):
 *     tld/tsd, xadd/xsub/xmul, setoffset/setmask/setshift/set_trt/flush_trt,
 *     thdl/tchk/tget/tset,
 *   - the paper's RISC-flavoured adaptation of Checked Load (settype/chklb),
 *   - simulator services: sys (syscall), hcall (host runtime intrinsic),
 *     halt.
 *
 * Instructions are 32 bits wide and word aligned.  Each opcode carries
 * static metadata (mnemonic, encoding format, assembly syntax, execution
 * class for the timing model, and which operands index the FP register
 * file).
 */

#ifndef TARCH_ISA_OPCODE_H
#define TARCH_ISA_OPCODE_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace tarch::isa {

/**
 * Binary encoding format.  Field placement mirrors RISC-V's split-immediate
 * trick so every format fits a fixed 32-bit word:
 *   R  : funct[31:22] rs2[21:17] rs1[16:12] rd[11:7] op[6:0]
 *   I  : imm15[31:17]            rs1[16:12] rd[11:7] op[6:0]
 *   S/B: imm[14:5][31:22] rs2    rs1        imm[4:0] op
 *   U/J: imm20[31:12]                       rd       op
 *   N  : op only
 * PC-relative immediates (B/J and thdl) are stored divided by 4.
 */
enum class Format : uint8_t { R, I, S, B, U, J, N };

/** Assembly operand syntax, used by the assembler and disassembler. */
enum class Syntax : uint8_t {
    None,      ///< no operands (flush_trt, halt)
    R3,        ///< rd, rs1, rs2
    R2,        ///< rd, rs1
    Rs1Rs2,    ///< rs1, rs2 (tchk)
    Rs1,       ///< rs1 (setoffset, setmask, setshift, set_trt, settype)
    RegRegImm, ///< rd, rs1, imm
    Load,      ///< rd, imm(rs1)
    Store,     ///< rs2, imm(rs1)
    Branch,    ///< rs1, rs2, label
    Jal,       ///< rd, label
    UImm,      ///< rd, imm20
    Label,     ///< label (thdl)
    Imm,       ///< imm (sys, hcall)
};

/** Functional-unit class consumed by the timing model. */
enum class ExecClass : uint8_t {
    IntAlu,
    IntMul,
    IntDiv,
    Load,
    Store,
    Branch,   ///< conditional branches
    Jump,     ///< jal/jalr
    FpAlu,    ///< fadd/fsub/compares/moves/converts
    FpMul,
    FpDiv,
    FpSqrt,
    TypedCfg, ///< typed special-register / TRT configuration
    TypedChk, ///< tchk (control-flow capable, no value computed)
    Sys,
    Halt,
};

enum class Opcode : uint8_t {
    // Integer register-register.
    ADD, SUB, MUL, MULH, DIV, DIVU, REM, REMU,
    AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    // 32-bit (word) forms, results sign-extended to 64 bits.
    ADDW, SUBW, MULW, DIVW, REMW,
    // Integer register-immediate.
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, SLTIU,
    ADDIW, SLLIW, SRLIW, SRAIW,
    // Upper-immediate.
    LUI, AUIPC,
    // Loads / stores.
    LB, LBU, LH, LHU, LW, LWU, LD,
    SB, SH, SW, SD,
    // Control flow.
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    JAL, JALR,
    // Double-precision FP.
    FLD, FSD,
    FADD_D, FSUB_D, FMUL_D, FDIV_D, FSQRT_D,
    FSGNJ_D, FSGNJN_D, FSGNJX_D,
    FEQ_D, FLT_D, FLE_D,
    FCVT_D_L, FCVT_L_D, FMV_X_D, FMV_D_X,
    // Typed Architecture extension (paper Table 2).
    TLD, TSD,
    XADD, XSUB, XMUL,
    SETOFFSET, SETMASK, SETSHIFT, SET_TRT, FLUSH_TRT,
    THDL, TCHK, TGET, TSET,
    // Checked Load extension (Anderson et al., paper Section 7.1 variant).
    SETTYPE, CHKLB, CHKLH, CHKLD,
    // Simulator services.
    SYS, HCALL, HALT,

    NumOpcodes,
};

constexpr unsigned kNumOpcodes = static_cast<unsigned>(Opcode::NumOpcodes);

/** Static per-opcode metadata. */
struct OpcodeInfo {
    std::string_view mnemonic;
    Format format;
    Syntax syntax;
    ExecClass execClass;
    bool fpRd;    ///< rd indexes the FP register file
    bool fpRs1;   ///< rs1 indexes the FP register file
    bool fpRs2;   ///< rs2 indexes the FP register file
};

/** Look up metadata for @p op. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Resolve a mnemonic to an opcode, or nullopt if unknown. */
std::optional<Opcode> opcodeFromMnemonic(std::string_view mnemonic);

/** True for tld/lb/lbu/.../chklb — instructions that read memory. */
bool isLoad(Opcode op);
/** True for tsd/sb/.../fsd — instructions that write memory. */
bool isStore(Opcode op);
/** True for conditional branches (B-format). */
bool isCondBranch(Opcode op);

} // namespace tarch::isa

#endif // TARCH_ISA_OPCODE_H
