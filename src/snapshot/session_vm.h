/**
 * @file
 * SessionVm: an engine-erased, snapshot-aware wrapper around the two
 * scripting VMs (MiniLua / MiniJS) for stateful serving sessions.
 *
 * A session VM is built from its first MiniScript chunk (compiled and
 * laid out, NOT run — the caller verifies the interpreter image first),
 * then accepts follow-on chunks through the same prepare / verify /
 * commit / run transaction the serving layer uses for one-shot
 * requests.  At any quiescent point it can be captured to a
 * tarch-snap-v1 Snapshot and later rebuilt on any host — including a
 * different shard — with the guarantee that continuing the rebuilt VM
 * is bit-identical to continuing the original.
 */

#ifndef TARCH_SNAPSHOT_SESSION_VM_H
#define TARCH_SNAPSHOT_SESSION_VM_H

#include <memory>
#include <string>
#include <vector>

#include "core/core.h"
#include "snapshot/snapshot.h"
#include "vm/variant.h"

namespace tarch::snapshot {

/** Engine selector carried in snapshots and the session protocol. */
enum class EngineId : uint8_t { Lua = 0, Js = 1 };

class SessionVm
{
  public:
    struct Config {
        EngineId engine = EngineId::Lua;
        vm::Variant variant = vm::Variant::Baseline;
        core::ExecMode execMode = core::defaultExecMode();
        bool deopt = false;
        /** Runaway guard for each chunk run; 0 keeps the core default.
            Host policy — NOT serialized into snapshots. */
        uint64_t maxInstructions = 0;
    };
    // Guard elision is deliberately absent: sessions mutate globals
    // across chunks, which invalidates whole-module type inference, so
    // session VMs always run with elide=false.

    /**
     * Compile and lay out @p firstChunk without running it.  Throws
     * FatalError on compile/assembly errors.
     */
    SessionVm(const Config &cfg, const std::string &firstChunk);
    ~SessionVm();
    SessionVm(const SessionVm &) = delete;
    SessionVm &operator=(const SessionVm &) = delete;

    const Config &config() const { return cfg_; }
    /** Source chunks accepted so far, in submit order. */
    const std::vector<std::string> &chunks() const { return chunks_; }

    /** The current interpreter image (verify chunk 1 before run()). */
    const assembler::Program &program() const;

    /**
     * Stage a follow-on chunk: compile against the session's
     * accumulated globals and regenerate the interpreter.  Mutates no
     * machine state.  False with @p error set on compile errors.
     */
    bool prepare(const std::string &source, std::string &error);

    /** The staged interpreter image, or nullptr when nothing staged. */
    const assembler::Program *stagedProgram() const;

    /** Install the staged chunk (after verification).  On failure the
        stage is discarded and the session must be closed. */
    bool commit(std::string &error);

    /** Drop the staged chunk (verifier rejection). */
    void discardStaged();

    /** Run the machine to halt; returns the guest exit code. */
    int run();

    const std::string &output() const;
    core::CoreStats stats() const;
    core::Core &core();

    /** Capture to a tarch-snap-v1 snapshot (pure). */
    Snapshot snapshot(uint64_t sessionId) const;

    /**
     * Rebuild a VM from @p snap: replay its chunk sequence (compile +
     * commit, no runs), then overwrite with the recorded state.
     * Null with @p error set on any mismatch.  @p maxInstructions is
     * the restoring host's own runaway guard (0 = core default).
     */
    static std::unique_ptr<SessionVm> restore(const Snapshot &snap,
                                              std::string &error,
                                              uint64_t maxInstructions = 0);

  private:
    struct Impl;

    Config cfg_;
    std::vector<std::string> chunks_;
    std::unique_ptr<Impl> impl_;
};

} // namespace tarch::snapshot

#endif // TARCH_SNAPSHOT_SESSION_VM_H
