/**
 * @file
 * tarch-snap-v1: the versioned binary snapshot format for a complete
 * simulated machine (docs/SNAPSHOT.md).
 *
 * A blob is a fixed 24-byte header (magic, version, flags, body length,
 * FNV-1a body checksum) followed by the body: the VM's rebuild inputs
 * (engine, variant, execution mode, every source chunk submitted so
 * far) and the complete vm::VmState — registers, typed state, all
 * statistics counters, the timing / branch-predictor / cache / TLB /
 * DRAM model state, the full guest memory image, and the host runtime
 * tables.  All integers are little-endian; strings are a u32 length
 * followed by raw bytes.
 *
 * Decoding is strict in the tarch-rpc style: every length is bounded by
 * the bytes actually present, enum and bool fields are range-checked,
 * the checksum must match, and the body must be consumed exactly.  Any
 * truncated or bit-flipped blob decodes to a clean typed error — never
 * a crash, never a silent mis-restore.
 *
 * The restore contract: rebuild a VM from the recorded inputs (chunk
 * replay), overwrite it with the recorded state, and continuing the run
 * is bit-identical — all 26 CoreStats counters, output and exit code —
 * to never having snapshotted, in both execution modes.
 */

#ifndef TARCH_SNAPSHOT_SNAPSHOT_H
#define TARCH_SNAPSHOT_SNAPSHOT_H

#include <cstdint>
#include <string>
#include <vector>

#include "vm/vm_state.h"

namespace tarch::snapshot {

constexpr uint32_t kMagic = 0x504E5354u;  ///< "TSNP" little-endian
constexpr uint16_t kVersion = 1;
constexpr size_t kHeaderBytes = 24;
/** Hard decoder bound on a whole blob (header + body). */
constexpr uint64_t kMaxBlobBytes = 256ull << 20;

/** A decoded tarch-snap-v1 blob: rebuild inputs + machine state. */
struct Snapshot {
    /** Serving-layer session identity (0 outside sessions). */
    uint64_t sessionId = 0;
    uint8_t engine = 0;    ///< 0 = MiniLua, 1 = MiniJS
    uint8_t variant = 0;   ///< vm::Variant
    uint8_t execMode = 0;  ///< core::ExecMode
    uint8_t deopt = 0;     ///< DeoptConfig::enabled
    uint8_t elide = 0;     ///< guard elision (always 0 for sessions)
    /** Source chunks in submit order; [0] built the VM. */
    std::vector<std::string> chunks;
    vm::VmState state;
};

/** Serialize; deterministic for a given snapshot. */
std::string encode(const Snapshot &snap);

/**
 * Strict decode.  False with @p error set ("bad-snapshot: ...") on any
 * malformation; @p out is unspecified then and must not be used.
 */
bool decode(const std::string &blob, Snapshot &out, std::string &error);

} // namespace tarch::snapshot

#endif // TARCH_SNAPSHOT_SNAPSHOT_H
