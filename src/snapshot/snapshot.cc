#include "snapshot/snapshot.h"

#include <cstring>

#include "isa/instr.h"

namespace tarch::snapshot {

namespace {

// ---------------------------------------------------------------------
// Primitive writers (little-endian, append-only), mirroring the
// tarch-rpc codec idiom so the two wire formats read the same way.

void
putU8(std::string &out, uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU16(std::string &out, uint16_t v)
{
    for (int i = 0; i < 2; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out += s;
}

void
putBytes(std::string &out, const uint8_t *data, size_t len)
{
    out.append(reinterpret_cast<const char *>(data), len);
}

/**
 * Strict bounds-checked reader.  Any out-of-bounds read latches the
 * error state and returns zero values; the caller checks failed() (or
 * done()) once at the end instead of after every field.
 */
class Reader
{
  public:
    Reader(const std::string &buf, size_t begin, size_t end)
        : buf_(buf), pos_(begin), end_(end)
    {
    }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return static_cast<uint8_t>(buf_[pos_++]);
    }

    uint16_t
    u16()
    {
        if (!need(2))
            return 0;
        uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<uint16_t>(
                static_cast<uint8_t>(buf_[pos_ + i]))
                 << (8 * i);
        pos_ += 2;
        return v;
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(
                static_cast<uint8_t>(buf_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(
                static_cast<uint8_t>(buf_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    std::string
    str()
    {
        const uint32_t len = u32();
        if (!need(len))
            return {};
        std::string s = buf_.substr(pos_, len);
        pos_ += len;
        return s;
    }

    bool
    bytes(uint8_t *dst, size_t len)
    {
        if (!need(len))
            return false;
        std::memcpy(dst, buf_.data() + pos_, len);
        pos_ += len;
        return true;
    }

    /** A u8 that must be 0 or 1. */
    bool
    flag()
    {
        const uint8_t v = u8();
        if (v > 1)
            ok_ = false;
        return v != 0;
    }

    /** A u32 element count capped at @p max (anti-OOM sanity bound). */
    uint32_t
    count(uint32_t max)
    {
        const uint32_t n = u32();
        if (n > max) {
            ok_ = false;
            return 0;
        }
        return n;
    }

    bool failed() const { return !ok_; }
    bool done() const { return ok_ && pos_ == end_; }

  private:
    bool
    need(size_t n)
    {
        if (!ok_ || end_ - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const std::string &buf_;
    size_t pos_;
    size_t end_;
    bool ok_ = true;
};

/** FNV-1a (the request-key hash; duplicated here so the snapshot layer
    does not depend on the serving protocol). */
uint64_t
fnv1a64(const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint64_t h = 14695981039346656037ULL;
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

// Sanity caps: generous for real machines, small enough that a
// corrupted count cannot drive a multi-gigabyte allocation.
constexpr uint32_t kMaxVecElems = 1u << 22;
constexpr uint32_t kMaxPages = 1u << 20;    ///< 4 GiB of guest memory
constexpr uint32_t kMaxChunks = 1u << 16;

// ---------------------------------------------------------------------
// Body encode.

void
encodeMachine(std::string &out, const core::MachineState &m)
{
    putU64(out, m.pc);
    putU8(out, m.halted ? 1 : 0);
    putU64(out, static_cast<uint64_t>(static_cast<int64_t>(m.exitCode)));
    putU64(out, m.heapBreak);
    putU64(out,
           static_cast<uint64_t>(static_cast<int64_t>(m.currentRegion)));
    putStr(out, m.output);

    putU8(out, m.typedState.tagConfig.offset);
    putU8(out, m.typedState.tagConfig.shift);
    putU8(out, m.typedState.tagConfig.mask);
    putU64(out, m.typedState.rhdl);
    putU16(out, m.typedState.chklbExpectedType);

    putU32(out, static_cast<uint32_t>(m.regs.gprs.size()));
    for (const core::TaggedReg &r : m.regs.gprs) {
        putU64(out, r.v);
        putU8(out, r.t);
        putU8(out, r.f ? 1 : 0);
    }
    putU32(out, static_cast<uint32_t>(m.regs.fprs.size()));
    for (uint64_t f : m.regs.fprs)
        putU64(out, f);

    putU64(out, m.instructions);
    putU64(out, m.loads);
    putU64(out, m.stores);
    putU64(out, m.typeOverflowMisses);
    putU64(out, m.deoptRedirects);
    putU64(out, m.deoptProbes);
    putU64(out, m.chklbChecks);
    putU64(out, m.chklbMisses);
    putU64(out, m.hostcallCount);
    putU32(out, static_cast<uint32_t>(m.deoptCounters.size()));
    putBytes(out, m.deoptCounters.data(), m.deoptCounters.size());
    putU32(out, static_cast<uint32_t>(m.deoptTags.size()));
    for (uint64_t t : m.deoptTags)
        putU64(out, t);

    putU64(out, m.timing.issue);
    putU32(out, m.timing.pendingRedirect);
    for (uint64_t r : m.timing.regReady)
        putU64(out, r);

    putU32(out, static_cast<uint32_t>(m.markers.hits.size()));
    for (uint64_t h : m.markers.hits)
        putU64(out, h);
    putU32(out, static_cast<uint32_t>(m.markers.regionInstrs.size()));
    for (uint64_t r : m.markers.regionInstrs)
        putU64(out, r);

    putU64(out, m.trt.stats.lookups);
    putU64(out, m.trt.stats.hits);
    putU32(out, static_cast<uint32_t>(m.trt.rules.size()));
    for (const typed::TypeRule &rule : m.trt.rules) {
        putU8(out, static_cast<uint8_t>(rule.op));
        putU8(out, rule.tagIn1);
        putU8(out, rule.tagIn2);
        putU8(out, rule.tagOut);
    }

    putU64(out, m.branch.stats.condBranches);
    putU64(out, m.branch.stats.condMispredicts);
    putU64(out, m.branch.stats.jumps);
    putU64(out, m.branch.stats.jumpMispredicts);
    putU64(out, m.branch.gshare.history);
    putU32(out, static_cast<uint32_t>(m.branch.gshare.counters.size()));
    putBytes(out, m.branch.gshare.counters.data(),
             m.branch.gshare.counters.size());
    putU64(out, m.branch.btb.useClock);
    putU32(out, static_cast<uint32_t>(m.branch.btb.entries.size()));
    for (const auto &e : m.branch.btb.entries) {
        putU8(out, e.valid ? 1 : 0);
        putU64(out, e.pc);
        putU64(out, e.target);
        putU64(out, e.lastUse);
    }
    putU32(out, m.branch.ras.top);
    putU32(out, m.branch.ras.depth);
    putU32(out, static_cast<uint32_t>(m.branch.ras.stack.size()));
    for (uint64_t r : m.branch.ras.stack)
        putU64(out, r);

    for (const mem::Cache::Snapshot *cache : {&m.icache, &m.dcache}) {
        putU64(out, cache->stats.accesses);
        putU64(out, cache->stats.misses);
        putU64(out, cache->stats.writebacks);
        putU64(out, cache->useClock);
        putU32(out, static_cast<uint32_t>(cache->lines.size()));
        for (const auto &line : cache->lines) {
            putU8(out, line.valid ? 1 : 0);
            putU8(out, line.dirty ? 1 : 0);
            putU64(out, line.tag);
            putU64(out, line.lastUse);
        }
    }
    for (const mem::Tlb::Snapshot *tlb : {&m.itlb, &m.dtlb}) {
        putU64(out, tlb->stats.accesses);
        putU64(out, tlb->stats.misses);
        putU64(out, tlb->useClock);
        putU32(out, static_cast<uint32_t>(tlb->entries.size()));
        for (const auto &entry : tlb->entries) {
            putU8(out, entry.valid ? 1 : 0);
            putU64(out, entry.vpn);
            putU64(out, entry.lastUse);
        }
    }
    putU64(out, m.dram.stats.accesses);
    putU64(out, m.dram.stats.rowHits);
    putU64(out, m.dram.stats.rowConflicts);
    putU64(out, m.dram.stats.totalLatency);
    putU32(out, static_cast<uint32_t>(m.dram.openRow.size()));
    for (int64_t row : m.dram.openRow)
        putU64(out, static_cast<uint64_t>(row));

    putU32(out, static_cast<uint32_t>(m.pages.size()));
    for (const auto &page : m.pages) {
        putU64(out, page.index);
        putBytes(out, page.bytes.data(), page.bytes.size());
    }
}

// ---------------------------------------------------------------------
// Body decode.

void
decodeMachine(Reader &r, core::MachineState &m)
{
    m.pc = r.u64();
    m.halted = r.flag();
    m.exitCode = static_cast<int>(static_cast<int64_t>(r.u64()));
    m.heapBreak = r.u64();
    m.currentRegion =
        static_cast<int32_t>(static_cast<int64_t>(r.u64()));
    m.output = r.str();

    m.typedState.tagConfig.offset = r.u8();
    m.typedState.tagConfig.shift = r.u8();
    m.typedState.tagConfig.mask = r.u8();
    m.typedState.rhdl = r.u64();
    m.typedState.chklbExpectedType = r.u16();

    if (r.count(kMaxVecElems) != m.regs.gprs.size())
        return;  // register file size is an architectural constant
    for (core::TaggedReg &reg : m.regs.gprs) {
        reg.v = r.u64();
        reg.t = r.u8();
        reg.f = r.flag();
    }
    if (r.count(kMaxVecElems) != m.regs.fprs.size())
        return;
    for (uint64_t &f : m.regs.fprs)
        f = r.u64();

    m.instructions = r.u64();
    m.loads = r.u64();
    m.stores = r.u64();
    m.typeOverflowMisses = r.u64();
    m.deoptRedirects = r.u64();
    m.deoptProbes = r.u64();
    m.chklbChecks = r.u64();
    m.chklbMisses = r.u64();
    m.hostcallCount = r.u64();
    m.deoptCounters.resize(r.count(kMaxVecElems));
    if (!m.deoptCounters.empty() &&
        !r.bytes(m.deoptCounters.data(), m.deoptCounters.size()))
        return;
    m.deoptTags.resize(r.count(kMaxVecElems));
    for (uint64_t &t : m.deoptTags)
        t = r.u64();

    m.timing.issue = r.u64();
    m.timing.pendingRedirect = r.u32();
    for (uint64_t &reg : m.timing.regReady)
        reg = r.u64();

    m.markers.hits.resize(r.count(kMaxVecElems));
    for (uint64_t &h : m.markers.hits)
        h = r.u64();
    m.markers.regionInstrs.resize(r.count(kMaxVecElems));
    for (uint64_t &reg : m.markers.regionInstrs)
        reg = r.u64();

    m.trt.stats.lookups = r.u64();
    m.trt.stats.hits = r.u64();
    m.trt.rules.resize(r.count(kMaxVecElems));
    for (typed::TypeRule &rule : m.trt.rules) {
        rule.op = static_cast<typed::RuleOp>(r.u8() & 0x3);
        rule.tagIn1 = r.u8();
        rule.tagIn2 = r.u8();
        rule.tagOut = r.u8();
    }

    m.branch.stats.condBranches = r.u64();
    m.branch.stats.condMispredicts = r.u64();
    m.branch.stats.jumps = r.u64();
    m.branch.stats.jumpMispredicts = r.u64();
    m.branch.gshare.history = r.u64();
    m.branch.gshare.counters.resize(r.count(kMaxVecElems));
    if (!m.branch.gshare.counters.empty() &&
        !r.bytes(m.branch.gshare.counters.data(),
                 m.branch.gshare.counters.size()))
        return;
    m.branch.btb.useClock = r.u64();
    m.branch.btb.entries.resize(r.count(kMaxVecElems));
    for (auto &e : m.branch.btb.entries) {
        e.valid = r.flag();
        e.pc = r.u64();
        e.target = r.u64();
        e.lastUse = r.u64();
    }
    m.branch.ras.top = r.u32();
    m.branch.ras.depth = r.u32();
    m.branch.ras.stack.resize(r.count(kMaxVecElems));
    for (uint64_t &ret : m.branch.ras.stack)
        ret = r.u64();

    for (mem::Cache::Snapshot *cache : {&m.icache, &m.dcache}) {
        cache->stats.accesses = r.u64();
        cache->stats.misses = r.u64();
        cache->stats.writebacks = r.u64();
        cache->useClock = r.u64();
        cache->lines.resize(r.count(kMaxVecElems));
        for (auto &line : cache->lines) {
            line.valid = r.flag();
            line.dirty = r.flag();
            line.tag = r.u64();
            line.lastUse = r.u64();
        }
    }
    for (mem::Tlb::Snapshot *tlb : {&m.itlb, &m.dtlb}) {
        tlb->stats.accesses = r.u64();
        tlb->stats.misses = r.u64();
        tlb->useClock = r.u64();
        tlb->entries.resize(r.count(kMaxVecElems));
        for (auto &entry : tlb->entries) {
            entry.valid = r.flag();
            entry.vpn = r.u64();
            entry.lastUse = r.u64();
        }
    }
    m.dram.stats.accesses = r.u64();
    m.dram.stats.rowHits = r.u64();
    m.dram.stats.rowConflicts = r.u64();
    m.dram.stats.totalLatency = r.u64();
    m.dram.openRow.resize(r.count(kMaxVecElems));
    for (int64_t &row : m.dram.openRow)
        row = static_cast<int64_t>(r.u64());

    m.pages.resize(r.count(kMaxPages));
    for (auto &page : m.pages) {
        page.index = r.u64();
        page.bytes.resize(mem::MainMemory::kPageBytes);
        if (!r.bytes(page.bytes.data(), page.bytes.size()))
            return;
    }
}

} // namespace

std::string
encode(const Snapshot &snap)
{
    std::string body;
    putU64(body, snap.sessionId);
    putU8(body, snap.engine);
    putU8(body, snap.variant);
    putU8(body, snap.execMode);
    putU8(body, snap.deopt);
    putU8(body, snap.elide);
    putU32(body, static_cast<uint32_t>(snap.chunks.size()));
    for (const std::string &chunk : snap.chunks)
        putStr(body, chunk);

    putU64(body, snap.state.codeCursor);
    putU64(body, snap.state.constCursor);
    putU64(body, snap.state.protoCount);
    putU64(body, snap.state.chunkCount);
    encodeMachine(body, snap.state.machine);

    putU32(body, static_cast<uint32_t>(snap.state.interns.size()));
    for (const auto &[text, addr] : snap.state.interns) {
        putStr(body, text);
        putU64(body, addr);
    }
    putU32(body, static_cast<uint32_t>(snap.state.shadow.size()));
    for (const auto &entry : snap.state.shadow) {
        putU64(body, entry.packedTable);
        putU64(body, entry.key);
        putU64(body, entry.value);
        putU8(body, entry.tag);
    }

    std::string blob;
    blob.reserve(kHeaderBytes + body.size());
    putU32(blob, kMagic);
    putU16(blob, kVersion);
    putU16(blob, 0);  // flags, reserved
    putU64(blob, body.size());
    putU64(blob, fnv1a64(body.data(), body.size()));
    blob += body;
    return blob;
}

bool
decode(const std::string &blob, Snapshot &out, std::string &error)
{
    const auto fail = [&error](const char *why) {
        error = std::string("bad-snapshot: ") + why;
        return false;
    };

    if (blob.size() < kHeaderBytes)
        return fail("truncated header");
    if (blob.size() > kMaxBlobBytes)
        return fail("oversized blob");
    Reader header(blob, 0, kHeaderBytes);
    if (header.u32() != kMagic)
        return fail("bad magic");
    if (header.u16() != kVersion)
        return fail("unsupported version");
    if (header.u16() != 0)
        return fail("nonzero reserved flags");
    const uint64_t body_len = header.u64();
    const uint64_t checksum = header.u64();
    if (body_len != blob.size() - kHeaderBytes)
        return fail("body length mismatch");
    if (checksum !=
        fnv1a64(blob.data() + kHeaderBytes, blob.size() - kHeaderBytes))
        return fail("checksum mismatch");

    Reader r(blob, kHeaderBytes, blob.size());
    out = Snapshot{};
    out.sessionId = r.u64();
    out.engine = r.u8();
    out.variant = r.u8();
    out.execMode = r.u8();
    out.deopt = r.flag() ? 1 : 0;
    out.elide = r.flag() ? 1 : 0;
    if (out.engine > 1 || out.variant > 2 || out.execMode > 1)
        return fail("out-of-range enum field");
    out.chunks.resize(r.count(kMaxChunks));
    for (std::string &chunk : out.chunks)
        chunk = r.str();
    if (out.chunks.empty())
        return fail("no source chunks");

    out.state.codeCursor = r.u64();
    out.state.constCursor = r.u64();
    out.state.protoCount = r.u64();
    out.state.chunkCount = r.u64();
    if (out.state.chunkCount != out.chunks.size())
        return fail("chunk count mismatch");
    decodeMachine(r, out.state.machine);

    out.state.interns.resize(r.count(kMaxVecElems));
    for (auto &[text, addr] : out.state.interns) {
        text = r.str();
        addr = r.u64();
    }
    out.state.shadow.resize(r.count(kMaxVecElems));
    for (auto &entry : out.state.shadow) {
        entry.packedTable = r.u64();
        entry.key = r.u64();
        entry.value = r.u64();
        entry.tag = r.u8();
    }

    if (r.failed())
        return fail("truncated or malformed body");
    if (!r.done())
        return fail("trailing bytes after body");
    return true;
}

} // namespace tarch::snapshot
