#include "snapshot/session_vm.h"

#include <optional>

#include "common/log.h"
#include "vm/js/js_vm.h"
#include "vm/lua/lua_vm.h"

namespace tarch::snapshot {

namespace {

template <typename Options>
Options
vmOptions(const SessionVm::Config &cfg)
{
    Options opts;
    opts.variant = cfg.variant;
    opts.elide = false;  // sessions mutate globals across chunks
    opts.coreConfig.execMode = cfg.execMode;
    opts.coreConfig.deopt.enabled = cfg.deopt;
    if (cfg.maxInstructions)
        opts.coreConfig.maxInstructions = cfg.maxInstructions;
    return opts;
}

} // namespace

struct SessionVm::Impl {
    std::unique_ptr<vm::lua::LuaVm> lua;
    std::unique_ptr<vm::js::JsVm> js;
    std::optional<vm::lua::LuaVm::StagedChunk> luaStaged;
    std::optional<vm::js::JsVm::StagedChunk> jsStaged;
    std::string stagedSource;
};

SessionVm::SessionVm(const Config &cfg, const std::string &firstChunk)
    : cfg_(cfg), impl_(std::make_unique<Impl>())
{
    if (cfg_.engine == EngineId::Lua)
        impl_->lua = std::make_unique<vm::lua::LuaVm>(
            firstChunk, vmOptions<vm::lua::LuaVm::Options>(cfg_));
    else
        impl_->js = std::make_unique<vm::js::JsVm>(
            firstChunk, vmOptions<vm::js::JsVm::Options>(cfg_));
    chunks_.push_back(firstChunk);
}

SessionVm::~SessionVm() = default;

const assembler::Program &
SessionVm::program() const
{
    return impl_->lua ? impl_->lua->program() : impl_->js->program();
}

bool
SessionVm::prepare(const std::string &source, std::string &error)
{
    discardStaged();
    try {
        if (impl_->lua)
            impl_->luaStaged = impl_->lua->prepareChunk(source);
        else
            impl_->jsStaged = impl_->js->prepareChunk(source);
    } catch (const FatalError &e) {
        error = e.what();
        return false;
    }
    impl_->stagedSource = source;
    return true;
}

const assembler::Program *
SessionVm::stagedProgram() const
{
    if (impl_->luaStaged)
        return &impl_->luaStaged->program;
    if (impl_->jsStaged)
        return &impl_->jsStaged->program;
    return nullptr;
}

bool
SessionVm::commit(std::string &error)
{
    bool ok = false;
    if (impl_->luaStaged)
        ok = impl_->lua->commitChunk(*impl_->luaStaged, error);
    else if (impl_->jsStaged)
        ok = impl_->js->commitChunk(*impl_->jsStaged, error);
    else {
        error = "no staged chunk";
        return false;
    }
    if (ok)
        chunks_.push_back(impl_->stagedSource);
    discardStaged();
    return ok;
}

void
SessionVm::discardStaged()
{
    impl_->luaStaged.reset();
    impl_->jsStaged.reset();
    impl_->stagedSource.clear();
}

int
SessionVm::run()
{
    return impl_->lua ? impl_->lua->run() : impl_->js->run();
}

const std::string &
SessionVm::output() const
{
    return impl_->lua ? impl_->lua->output() : impl_->js->output();
}

core::CoreStats
SessionVm::stats() const
{
    return (impl_->lua ? impl_->lua->core() : impl_->js->core())
        .collectStats();
}

core::Core &
SessionVm::core()
{
    return impl_->lua ? impl_->lua->core() : impl_->js->core();
}

Snapshot
SessionVm::snapshot(uint64_t sessionId) const
{
    Snapshot snap;
    snap.sessionId = sessionId;
    snap.engine = static_cast<uint8_t>(cfg_.engine);
    snap.variant = static_cast<uint8_t>(cfg_.variant);
    snap.execMode = static_cast<uint8_t>(cfg_.execMode);
    snap.deopt = cfg_.deopt ? 1 : 0;
    snap.elide = 0;
    snap.chunks = chunks_;
    if (impl_->lua)
        impl_->lua->saveState(snap.state);
    else
        impl_->js->saveState(snap.state);
    return snap;
}

std::unique_ptr<SessionVm>
SessionVm::restore(const Snapshot &snap, std::string &error,
                   uint64_t maxInstructions)
{
    if (snap.chunks.empty()) {
        error = "bad-snapshot: no source chunks";
        return nullptr;
    }
    Config cfg;
    cfg.engine = static_cast<EngineId>(snap.engine);
    cfg.variant = static_cast<vm::Variant>(snap.variant);
    cfg.execMode = static_cast<core::ExecMode>(snap.execMode);
    cfg.deopt = snap.deopt != 0;
    cfg.maxInstructions = maxInstructions;

    std::unique_ptr<SessionVm> vm;
    try {
        // Rebuild: replay every chunk through compile + commit, no
        // runs.  This reconstructs the program image, proto tables and
        // host bindings deterministically; restoreState() then
        // overwrites all machine and runtime state.
        vm = std::make_unique<SessionVm>(cfg, snap.chunks[0]);
        for (size_t i = 1; i < snap.chunks.size(); ++i) {
            if (!vm->prepare(snap.chunks[i], error))
                return nullptr;
            if (!vm->commit(error))
                return nullptr;
        }
    } catch (const FatalError &e) {
        error = std::string("bad-snapshot: rebuild failed: ") + e.what();
        return nullptr;
    }

    const bool ok = vm->impl_->lua
                        ? vm->impl_->lua->restoreState(snap.state)
                        : vm->impl_->js->restoreState(snap.state);
    if (!ok) {
        error = "bad-snapshot: state shape does not match rebuilt VM";
        return nullptr;
    }
    return vm;
}

} // namespace tarch::snapshot
