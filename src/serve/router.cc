#include "serve/router.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.h"
#include "common/strutil.h"

namespace tarch::serve {

// ---------------------------------------------------------------------
// HashRing.

namespace {

/** splitmix64 finalizer.  FNV-1a hashes of short labels that differ
    only in their trailing characters ("shard0#17" vs "shard0#18")
    land within ~2^48 of each other, so the top bits — which decide
    ring position — are nearly constant and a shard's vnodes collapse
    into a few narrow arcs.  Scrambling the hash restores uniform
    placement. */
uint64_t
mixPoint(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

void
HashRing::insert(size_t index, const std::string &id, unsigned vnodes)
{
    for (unsigned v = 0; v < vnodes; ++v) {
        const std::string point = id + "#" + std::to_string(v);
        points_[mixPoint(proto::fnv1a64(point.data(), point.size()))] =
            index;
    }
}

void
HashRing::erase(size_t index)
{
    for (auto it = points_.begin(); it != points_.end();) {
        if (it->second == index)
            it = points_.erase(it);
        else
            ++it;
    }
}

size_t
HashRing::owner(uint64_t key) const
{
    if (points_.empty())
        return npos;
    auto it = points_.lower_bound(key);
    if (it == points_.end())
        it = points_.begin();  // wrap around
    return it->second;
}

std::vector<size_t>
HashRing::owners(uint64_t key, size_t n) const
{
    std::vector<size_t> out;
    if (points_.empty() || n == 0)
        return out;
    auto it = points_.lower_bound(key);
    for (size_t visited = 0; visited < points_.size() && out.size() < n;
         ++visited) {
        if (it == points_.end())
            it = points_.begin();
        if (std::find(out.begin(), out.end(), it->second) == out.end())
            out.push_back(it->second);
        ++it;
    }
    return out;
}

// ---------------------------------------------------------------------
// ShardHealth.

bool
ShardHealth::admit(uint64_t now_ms)
{
    switch (state_) {
      case State::Healthy:
        return true;
      case State::Probing:
        // One probe is already in flight; hold the rest back until it
        // resolves.
        return false;
      case State::Ejected:
        if (now_ms < ejectedUntilMs_)
            return false;
        state_ = State::Probing;
        return true;
    }
    return false;
}

void
ShardHealth::recordSuccess()
{
    state_ = State::Healthy;
    consecutiveFailures_ = 0;
    backoffMs_ = 0;
}

void
ShardHealth::recordFailure(uint64_t now_ms)
{
    if (state_ == State::Ejected)
        return;  // already out; stragglers add nothing
    if (state_ == State::Probing) {
        // The probe failed: back off twice as long before the next one.
        eject(now_ms);
        return;
    }
    if (++consecutiveFailures_ >= opts_.ejectAfter)
        eject(now_ms);
}

void
ShardHealth::eject(uint64_t now_ms)
{
    backoffMs_ = backoffMs_ == 0
                     ? opts_.backoffFloorMs
                     : std::min(opts_.backoffCapMs, backoffMs_ * 2);
    ejectedUntilMs_ = now_ms + backoffMs_;
    state_ = State::Ejected;
    consecutiveFailures_ = 0;
    ++ejections_;
}

// ---------------------------------------------------------------------
// Router internals.

struct Router::ClientConn : FrameConn {};

struct Router::BackendConn : FrameConn {
    size_t shard = 0;
    /** Requests sent on THIS connection awaiting replies, by backend
        request id (guarded by the owning shard's mutex).  Lives on the
        connection, not the shard, so a reconnect's pendings are never
        confused with a dead connection's. */
    std::unordered_map<uint64_t, std::shared_ptr<Pending>> inFlight;
    uint64_t nextId = 1;
    /** Hello-probed protocol ceiling of this backend (per connection,
        so a shard replaced by an older binary re-probes on
        reconnect).  1 until proven otherwise — forwarding untraced is
        always safe. */
    uint16_t maxVersion = 1;
};

struct Router::Pending {
    std::shared_ptr<ClientConn> client;
    uint64_t clientId = 0;
    proto::MsgKind kind = proto::MsgKind::RunCell;
    RoutePriority priority = RoutePriority::Cell;
    std::string payload;
    std::atomic<bool> answered{false};
    /** Trace context stripped off the client's v2 frame (traceId 0 =
        untraced — no span is ever recorded for it). */
    proto::TraceContext trace;
    /** Steady-clock receive stamp for the latency histogram. */
    uint64_t startUs = 0;
    /** Wall-clock stamp taken when a traced request enters a shard's
        shed queue; the wait becomes a retroactive router.queue span
        when the request is finally sent. */
    uint64_t queueWallUs = 0;
    /** router.backend span, minted at forward time and recorded when
        the reply (or failure) answers the request. */
    uint32_t backendSpanId = 0;
    uint64_t backendStartUs = 0;
    /** Session id a stateful request names (0 for stateless kinds);
        used by the migration path to find the cached blob. */
    uint64_t sessionId = 0;
    /** Router-originated (blob refresh / migration restore): answered
        through completeInternal, never written to a client. */
    bool internal = false;
    /** Internal migration restore only: the client request to re-route
        once the restore lands on the new owner. */
    std::shared_ptr<Pending> resume;
    /** Migration attempts already spent on this client request — one
        per request; a second miss surfaces to the client. */
    unsigned migrations = 0;
};

struct Router::Shard {
    Endpoint ep;
    mutable std::mutex mu;
    std::shared_ptr<BackendConn> conn;  ///< null when disconnected
    ShedQueue<std::shared_ptr<Pending>> queue;
    ShardHealth health;
    std::atomic<uint64_t> forwardedCnt{0};
    std::atomic<uint64_t> completedCnt{0};
    std::atomic<uint64_t> failuresCnt{0};

    Shard(const Endpoint &e, size_t queue_capacity,
          const ShardHealth::Options &health_opts)
        : ep(e), queue(queue_capacity), health(health_opts)
    {
    }
};

// ---------------------------------------------------------------------
// Health.

/** The replies_by_code object: "ok" plus every ErrorCode name, all
    keys always rendered so schema-gated consumers can rely on them
    (mirrors server.cc). */
static std::string
repliesByCodeJson(
    const std::array<uint64_t, proto::kNumErrorCodes> &replies)
{
    std::string out =
        strformat("{\"ok\":%llu", (unsigned long long)replies[0]);
    for (uint16_t code = 1; code < proto::kNumErrorCodes; ++code)
        out += strformat(
            ",\"%s\":%llu",
            std::string(proto::errorCodeName(
                            static_cast<proto::ErrorCode>(code)))
                .c_str(),
            (unsigned long long)replies[code]);
    out += "}";
    return out;
}

std::string
Router::Health::toJson() const
{
    std::string shard_array = "[";
    for (size_t i = 0; i < shards.size(); ++i) {
        const ShardStats &s = shards[i];
        if (i > 0)
            shard_array += ",";
        shard_array += strformat(
            "{\"endpoint\":\"%s\",\"state\":\"%s\","
            "\"forwarded\":%llu,\"completed\":%llu,"
            "\"failures\":%llu,\"ejections\":%llu,"
            "\"in_flight\":%llu,\"queued\":%llu}",
            s.endpoint.c_str(), s.state.c_str(),
            (unsigned long long)s.forwarded,
            (unsigned long long)s.completed,
            (unsigned long long)s.failures,
            (unsigned long long)s.ejections,
            (unsigned long long)s.inFlight, (unsigned long long)s.queued);
    }
    shard_array += "]";
    return strformat(
        "{\"schema\":\"tarch-router-stats-v2\","
        "\"accepted_connections\":%llu,"
        "\"active_connections\":%llu,"
        "\"received\":%llu,"
        "\"forwarded\":%llu,"
        "\"completed\":%llu,"
        "\"errors\":%llu,"
        "\"shed_busy\":%llu,"
        "\"connection_lost\":%llu,"
        "\"framing_errors\":%llu,"
        "\"sessions_tracked\":%llu,"
        "\"sessions_migrated\":%llu,"
        "\"replies_by_code\":%s,"
        "\"draining\":%s,"
        "\"uptime_ms\":%llu,"
        "\"uptime_seconds\":%llu,"
        "\"shards\":%s}",
        (unsigned long long)acceptedConnections,
        (unsigned long long)activeConnections,
        (unsigned long long)received, (unsigned long long)forwarded,
        (unsigned long long)completed, (unsigned long long)errors,
        (unsigned long long)shedBusy, (unsigned long long)connectionLost,
        (unsigned long long)framingErrors,
        (unsigned long long)sessionsTracked,
        (unsigned long long)sessionsMigrated,
        repliesByCodeJson(repliesByCode).c_str(),
        draining ? "true" : "false", (unsigned long long)uptimeMs,
        (unsigned long long)(uptimeMs / 1000), shard_array.c_str());
}

// ---------------------------------------------------------------------
// Lifecycle.

Router::Router(const Config &config) : config_(config)
{
    ShardHealth::Options health_opts;
    health_opts.ejectAfter = config_.ejectAfter;
    health_opts.backoffFloorMs = config_.backoffFloorMs;
    health_opts.backoffCapMs = config_.backoffCapMs;
    for (size_t i = 0; i < config_.shards.size(); ++i) {
        shards_.push_back(std::make_unique<Shard>(
            config_.shards[i], config_.queuePerShard, health_opts));
        ring_.insert(i, config_.shards[i].describe(), config_.ringVnodes);
    }
    registerMetrics();
}

void
Router::registerMetrics()
{
    // Callback families read the atomics the router maintains anyway,
    // so the Metrics endpoint costs nothing until somebody scrapes it.
    const auto c = [this](const char *name, const char *help,
                          const char *labels,
                          const std::atomic<uint64_t> *v) {
        registry_.counterFn(name, help, labels,
                            [v] { return v->load(); });
    };
    c("tarch_router_received_total", "Client requests received", "",
      &received_);
    c("tarch_router_forwarded_total", "Requests forwarded to shards", "",
      &forwarded_);
    c("tarch_router_shed_busy_total",
      "Requests shed with a retryable BUSY", "", &shedBusy_);
    c("tarch_router_connection_lost_total",
      "Requests failed by a dying backend connection", "",
      &connectionLost_);
    c("tarch_router_framing_errors_total",
      "Malformed frames on either side", "", &framingErrors_);
    c("tarch_router_accepted_connections_total",
      "Frontend connections accepted", "", &acceptedConnections_);
    c("tarch_router_sessions_migrated_total",
      "Sessions moved to a new shard via cached-snapshot restore", "",
      &sessionsMigrated_);
    c("tarch_router_snapshot_refreshes_total",
      "Internal SnapshotSession requests refreshing the blob cache", "",
      &snapshotRefreshes_);
    registry_.gaugeFn("tarch_router_sessions_tracked",
                      "Stateful sessions with a blob-cache entry", "",
                      [this] {
                          std::lock_guard<std::mutex> lock(sessionsMu_);
                          return static_cast<int64_t>(sessions_.size());
                      });
    registry_.counterFn("tarch_router_replies_total",
                        "Replies sent to clients by outcome",
                        "code=\"ok\"",
                        [this] { return repliesByCode_[0].load(); });
    for (uint16_t code = 1; code < proto::kNumErrorCodes; ++code) {
        const std::string labels = strformat(
            "code=\"%s\"",
            std::string(proto::errorCodeName(
                            static_cast<proto::ErrorCode>(code)))
                .c_str());
        registry_.counterFn(
            "tarch_router_replies_total",
            "Replies sent to clients by outcome", labels,
            [this, code] { return repliesByCode_[code].load(); });
    }
    registry_.gaugeFn("tarch_router_outstanding", "Routed, unanswered",
                      "", [this] {
                          return static_cast<int64_t>(
                              outstanding_.load());
                      });
    registry_.gaugeFn("tarch_router_uptime_seconds",
                      "Seconds since start()", "", [this] {
                          return started_.load()
                                     ? static_cast<int64_t>(nowMs() /
                                                            1000)
                                     : 0;
                      });
    for (size_t i = 0; i < shards_.size(); ++i) {
        Shard *shard = shards_[i].get();
        const std::string labels =
            strformat("shard=\"%s\"", shard->ep.describe().c_str());
        registry_.counterFn("tarch_router_shard_forwarded_total",
                            "Requests forwarded, per shard", labels,
                            [shard] { return shard->forwardedCnt.load(); });
        registry_.counterFn("tarch_router_shard_failures_total",
                            "Connect/IO failures, per shard", labels,
                            [shard] { return shard->failuresCnt.load(); });
        registry_.gaugeFn("tarch_router_shard_queued",
                          "Shed-queue depth, per shard", labels,
                          [shard] {
                              std::lock_guard<std::mutex> lock(shard->mu);
                              return static_cast<int64_t>(
                                  shard->queue.size());
                          });
        registry_.gaugeFn("tarch_router_shard_in_flight",
                          "Outstanding window, per shard", labels,
                          [shard] {
                              std::lock_guard<std::mutex> lock(shard->mu);
                              return static_cast<int64_t>(
                                  shard->conn
                                      ? shard->conn->inFlight.size()
                                      : 0);
                          });
    }
    latencyUs_ = &registry_.histogram(
        "tarch_router_latency_us",
        "Client-visible latency, dispatch to answer (microseconds)");
}

void
Router::countReply(uint16_t code)
{
    repliesByCode_[code < repliesByCode_.size()
                       ? code
                       : static_cast<uint16_t>(
                             proto::ErrorCode::Internal)]
        .fetch_add(1);
}

Router::~Router()
{
    stop();
}

uint64_t
Router::nowMs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - startTime_)
            .count());
}

uint64_t
Router::nowUs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - startTime_)
            .count());
}

void
Router::start()
{
    if (shards_.empty())
        tarch_fatal("router: no backend shards configured");
    if (config_.unixPath.empty() && config_.tcpPort < 0)
        tarch_fatal("router: no listener configured (need a Unix socket "
                    "path or a TCP port)");
    if (started_.exchange(true))
        tarch_fatal("router: start() called twice");
    startTime_ = std::chrono::steady_clock::now();

    if (!config_.unixPath.empty()) {
        unixFd_ = bindUnixListener(config_.unixPath);
        if (unixFd_ < 0)
            tarch_fatal("router: cannot listen on %s: %s",
                        config_.unixPath.c_str(), std::strerror(errno));
        boundUnixPath_ = config_.unixPath;
    }
    if (config_.tcpPort >= 0) {
        tcpFd_ = bindTcpListener(config_.tcpPort, boundTcpPort_);
        if (tcpFd_ < 0)
            tarch_fatal("router: cannot listen on 127.0.0.1:%d: %s",
                        config_.tcpPort, std::strerror(errno));
    }

    if (unixFd_ >= 0)
        acceptors_.emplace_back([this] { acceptLoop(unixFd_); });
    if (tcpFd_ >= 0)
        acceptors_.emplace_back([this] { acceptLoop(tcpFd_); });
    reaper_ = std::thread([this] { reaperLoop(); });
    drainWaiter_ = std::thread([this] { drainWaiterLoop(); });
}

void
Router::acceptLoop(int listen_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load() || draining_.load())
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (errno == EMFILE || errno == ENFILE ||
                errno == ENOBUFS || errno == ENOMEM ||
                errno == EAGAIN || errno == EWOULDBLOCK) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                continue;
            }
            tarch_warn("router: accept: %s; listener closed",
                       std::strerror(errno));
            return;
        }
        if (draining_.load()) {
            ::close(fd);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        setSendTimeout(fd, config_.sendTimeoutMs);
        acceptedConnections_.fetch_add(1);
        auto conn = std::make_shared<ClientConn>();
        conn->fd = fd;
        {
            // Assign the reader under connsMu_ so an instant disconnect
            // cannot retire the connection while the thread object is
            // still being moved into place (see Server::acceptLoop).
            std::lock_guard<std::mutex> lock(connsMu_);
            conns_.push_back(conn);
            conn->reader =
                std::thread([this, conn] { clientReaderLoop(conn); });
        }
    }
}

void
Router::clientReaderLoop(std::shared_ptr<ClientConn> conn)
{
    for (;;) {
        uint8_t header[proto::kHeaderSize];
        const int got = readFull(conn->fd, header, sizeof(header));
        if (got <= 0)
            break;
        proto::FrameHeader fh;
        const proto::HeaderStatus status =
            proto::parseHeader(header, fh, config_.maxPayload);
        if (status != proto::HeaderStatus::Ok) {
            framingErrors_.fetch_add(1);
            const proto::ErrorCode code =
                status == proto::HeaderStatus::BadMagic
                    ? proto::ErrorCode::BadMagic
                : status == proto::HeaderStatus::BadVersion
                    ? proto::ErrorCode::BadVersion
                    : proto::ErrorCode::PayloadTooLarge;
            countReply(static_cast<uint16_t>(code));
            conn->sendFrame(proto::errorFrame(
                fh.requestId, code,
                strformat("framing error: %s",
                          std::string(proto::errorCodeName(code))
                              .c_str())));
            break;
        }
        std::string payload(fh.payloadLen, '\0');
        if (fh.payloadLen > 0 &&
            readFull(conn->fd, payload.data(), payload.size()) != 1)
            break;
        // v2 frames carry a trace-context prefix; strip it here so the
        // routing/forwarding path below sees exactly the v1 body.  The
        // stream stays framed either way, so a malformed context is a
        // typed per-request error, not a connection killer.
        proto::TraceContext ctx;
        if (fh.version == proto::kVersionTraced) {
            size_t body_offset = 0;
            if (!proto::isRequestKind(fh.kind) ||
                !proto::decodeTraceContext(payload, ctx, body_offset)) {
                errors_.fetch_add(1);
                countReply(
                    static_cast<uint16_t>(proto::ErrorCode::BadFrame));
                conn->sendFrame(proto::errorFrame(
                    fh.requestId, proto::ErrorCode::BadFrame,
                    "malformed v2 trace context"));
                continue;
            }
            payload.erase(0, body_offset);
        }
        dispatch(conn, fh, std::move(payload), ctx);
    }
    conn->shutdownNow();
    retireClient(conn);
}

void
Router::retireClient(const std::shared_ptr<ClientConn> &conn)
{
    std::lock_guard<std::mutex> lock(connsMu_);
    for (size_t i = 0; i < conns_.size(); ++i) {
        if (conns_[i] == conn) {
            conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
            break;
        }
    }
    reapList_.push_back(conn);
}

void
Router::reapRetired()
{
    std::vector<std::shared_ptr<FrameConn>> dead;
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        dead.swap(reapList_);
    }
    for (const std::shared_ptr<FrameConn> &conn : dead) {
        if (conn->reader.joinable())
            conn->reader.join();
        conn->closeFd();
    }
}

void
Router::reaperLoop()
{
    while (!stopping_.load()) {
        reapRetired();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

// ---------------------------------------------------------------------
// Request path.

void
Router::dispatch(const std::shared_ptr<ClientConn> &conn,
                 const proto::FrameHeader &header, std::string payload,
                 const proto::TraceContext &ctx)
{
    received_.fetch_add(1);
    const auto kind = static_cast<proto::MsgKind>(header.kind);
    switch (kind) {
      case proto::MsgKind::Ping:
        countReply(0);
        conn->sendFrame(proto::encodeFrame(proto::MsgKind::Pong,
                                           header.requestId, ""));
        return;
      case proto::MsgKind::Stats: {
        proto::StatsResult stats;
        stats.json = health().toJson();
        countReply(0);
        conn->sendFrame(
            proto::encodeFrame(proto::MsgKind::StatsResult,
                               header.requestId,
                               proto::encodeStatsResult(stats)));
        return;
      }
      case proto::MsgKind::Metrics: {
        proto::MetricsResult metrics;
        metrics.text = registry_.renderPrometheus();
        countReply(0);
        conn->sendFrame(
            proto::encodeFrame(proto::MsgKind::MetricsResult,
                               header.requestId,
                               proto::encodeMetricsResult(metrics)));
        return;
      }
      case proto::MsgKind::Hello: {
        proto::HelloResult hello;
        hello.maxVersion =
            config_.advertiseTracing ? proto::kMaxVersion : 1;
        countReply(0);
        conn->sendFrame(
            proto::encodeFrame(proto::MsgKind::HelloResult,
                               header.requestId,
                               proto::encodeHelloResult(hello)));
        return;
      }
      case proto::MsgKind::Drain:
        countReply(0);
        conn->sendFrame(proto::encodeFrame(proto::MsgKind::DrainStarted,
                                           header.requestId, ""));
        requestDrain();
        return;
      case proto::MsgKind::RunCell:
      case proto::MsgKind::RunSource:
      case proto::MsgKind::RunBatch:
      case proto::MsgKind::OpenSession:
      case proto::MsgKind::SubmitChunk:
      case proto::MsgKind::SnapshotSession:
      case proto::MsgKind::RestoreSession:
      case proto::MsgKind::CloseSession:
        break;
      default:
        errors_.fetch_add(1);
        countReply(
            static_cast<uint16_t>(proto::ErrorCode::UnknownKind));
        conn->sendFrame(proto::errorFrame(
            header.requestId, proto::ErrorCode::UnknownKind,
            strformat("unknown request kind %u", header.kind)));
        return;
    }

    // The router decodes just enough to compute the routing key (and to
    // reject malformed payloads here, exactly as a shard would).  The
    // payload bytes themselves are forwarded verbatim.
    uint64_t key = 0;
    uint64_t session_id = 0;
    RoutePriority priority = RoutePriority::Cell;
    bool ok = false;
    switch (kind) {
      case proto::MsgKind::RunCell: {
        proto::CellRequest req;
        ok = proto::decodeCellRequest(payload, req);
        if (ok)
            key = proto::cellRequestKey(req);
        priority = RoutePriority::Cell;
        break;
      }
      case proto::MsgKind::RunSource: {
        proto::SourceRequest req;
        ok = proto::decodeSourceRequest(payload, req);
        if (ok)
            key = proto::sourceRequestKey(req);
        priority = RoutePriority::Source;
        break;
      }
      case proto::MsgKind::OpenSession: {
        proto::OpenSessionRequest req;
        ok = proto::decodeOpenSessionRequest(payload, req);
        if (ok && req.sessionId == 0) {
            // The router owns id assignment: it must know the ring
            // position before the first byte reaches a shard, so a
            // shard-chosen id is useless to it.  The payload is
            // rewritten with the assigned id and the client learns it
            // from SessionOpened, exactly as with a shard-assigned id.
            std::lock_guard<std::mutex> lock(sessionsMu_);
            do
                req.sessionId = mixPoint(sessionSeq_++);
            while (req.sessionId == 0 ||
                   sessions_.count(req.sessionId) != 0);
            payload = proto::encodeOpenSessionRequest(req);
        }
        if (ok) {
            session_id = req.sessionId;
            key = proto::sessionRequestKey(session_id);
        }
        priority = RoutePriority::Source;
        break;
      }
      case proto::MsgKind::SubmitChunk: {
        proto::SubmitChunkRequest req;
        ok = proto::decodeSubmitChunkRequest(payload, req);
        if (ok) {
            session_id = req.sessionId;
            key = proto::sessionRequestKey(session_id);
        }
        priority = RoutePriority::Source;
        break;
      }
      case proto::MsgKind::SnapshotSession:
      case proto::MsgKind::CloseSession: {
        proto::SessionIdRequest req;
        ok = proto::decodeSessionIdRequest(payload, req);
        if (ok) {
            session_id = req.sessionId;
            key = proto::sessionRequestKey(session_id);
        }
        priority = RoutePriority::Source;
        break;
      }
      case proto::MsgKind::RestoreSession: {
        proto::RestoreSessionRequest req;
        ok = proto::decodeRestoreSessionRequest(payload, req);
        if (ok && req.sessionId == 0) {
            // sessionId 0 asks the SHARD to pick an id — fine point to
            // point, but through the router it would orphan the
            // session: follow-up chunks could not be routed to it.
            errors_.fetch_add(1);
            countReply(
                static_cast<uint16_t>(proto::ErrorCode::BadRequest));
            conn->sendFrame(proto::errorFrame(
                header.requestId, proto::ErrorCode::BadRequest,
                "router requires a nonzero session id on "
                "RestoreSession"));
            return;
        }
        if (ok) {
            session_id = req.sessionId;
            key = proto::sessionRequestKey(session_id);
        }
        priority = RoutePriority::Source;
        break;
      }
      default: {
        proto::BatchRequest req;
        ok = proto::decodeBatchRequest(payload, req);
        if (ok)
            key = proto::batchRequestKey(req);
        priority = RoutePriority::Batch;
        break;
      }
    }
    if (!ok) {
        errors_.fetch_add(1);
        countReply(static_cast<uint16_t>(proto::ErrorCode::BadFrame));
        conn->sendFrame(proto::errorFrame(header.requestId,
                                          proto::ErrorCode::BadFrame,
                                          "malformed request payload"));
        return;
    }

    auto pending = std::make_shared<Pending>();
    pending->client = conn;
    pending->clientId = header.requestId;
    pending->kind = kind;
    pending->priority = priority;
    pending->payload = std::move(payload);
    pending->trace = ctx;
    pending->startUs = nowUs();
    pending->sessionId = session_id;
    // Register with the drain barrier BEFORE the draining check: the
    // drain waiter only sees zero outstanding after every registered
    // request is answered, and a request registered after draining flips
    // is answered right here.
    outstanding_.fetch_add(1);
    if (draining_.load()) {
        answerError(pending, proto::ErrorCode::Draining,
                    "router is draining");
        return;
    }
    route(std::move(pending), key);
}

void
Router::route(std::shared_ptr<Pending> pending, uint64_t key)
{
    // Walk the ring from the key's owner: ejected or unconnectable
    // shards are skipped, so while a shard is out its keys fail over to
    // the next owner (and fail back automatically once it heals).
    // The scope is inert (a pointer check) for untraced requests.
    obs::SpanScope routeSpan(&spans_, pending->trace.traceId,
                             pending->trace.parentSpanId,
                             "router.route");
    const std::vector<size_t> order = ring_.owners(key, shards_.size());
    for (const size_t index : order)
        if (submitToShard(index, pending)) {
            if (routeSpan.active())
                routeSpan.setDetail(shards_[index]->ep.describe());
            return;
        }
    routeSpan.setDetail("no-healthy-shard");
    shedBusy_.fetch_add(1);
    answerError(pending, proto::ErrorCode::Busy,
                "no healthy shard available");
}


bool
Router::ensureBackend(Shard &shard, size_t shard_index)
{
    if (shard.conn && shard.conn->open.load())
        return true;
    const int fd = connectEndpoint(shard.ep);
    if (fd < 0)
        return false;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    setSendTimeout(fd, config_.sendTimeoutMs);
    auto conn = std::make_shared<BackendConn>();
    conn->fd = fd;
    conn->shard = shard_index;
    // Pipelined capability probe: Hello rides ahead of the first real
    // request under reserved id 0 (in-flight ids start at 1), and the
    // reader loop records the answer.  Until it lands, the connection
    // conservatively forwards untraced v1 frames — the probe never
    // blocks the request path, and a backend that dies on it fails
    // exactly as it would on any other send.
    if (config_.advertiseTracing)
        conn->sendFrame(proto::encodeFrame(proto::MsgKind::Hello, 0, ""));
    shard.conn = conn;
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        backends_.push_back(conn);
        conn->reader =
            std::thread([this, conn] { backendReaderLoop(conn); });
    }
    return true;
}

bool
Router::sendToBackend(Shard &shard,
                      const std::shared_ptr<Pending> &pending)
{
    const std::shared_ptr<BackendConn> conn = shard.conn;
    const uint64_t backend_id = conn->nextId++;
    conn->inFlight.emplace(backend_id, pending);
    const bool traced = pending->trace.recording();
    if (traced && pending->queueWallUs != 0) {
        // The shed-queue wait ends here; record it retroactively.
        obs::SpanRecord wait;
        wait.traceId = pending->trace.traceId;
        wait.spanId = spans_.nextSpanId();
        wait.parentSpanId = pending->trace.parentSpanId;
        wait.startUs = pending->queueWallUs;
        const uint64_t now = obs::SpanRecorder::wallNowUs();
        wait.durUs = now > wait.startUs ? now - wait.startUs : 0;
        wait.name = "router.queue";
        spans_.record(std::move(wait));
        pending->queueWallUs = 0;
    }
    std::string frame;
    if (traced) {
        // The backend span covers send to reply; it parents the
        // shard-side spans when the backend speaks v2.
        pending->backendSpanId = spans_.nextSpanId();
        pending->backendStartUs = obs::SpanRecorder::wallNowUs();
    }
    if (traced && conn->maxVersion >= proto::kVersionTraced) {
        proto::TraceContext fwd;
        fwd.traceId = pending->trace.traceId;
        fwd.parentSpanId = pending->backendSpanId;
        fwd.sampled = 1;
        frame = proto::encodeTracedFrame(pending->kind, backend_id, fwd,
                                         pending->payload);
    } else {
        frame = proto::encodeFrame(pending->kind, backend_id,
                                   pending->payload);
    }
    if (!conn->sendFrame(frame)) {
        // The connection shut itself down; its reader fails the rest.
        conn->inFlight.erase(backend_id);
        return false;
    }
    forwarded_.fetch_add(1);
    shard.forwardedCnt.fetch_add(1);
    return true;
}

bool
Router::submitToShard(size_t shard_index,
                      const std::shared_ptr<Pending> &pending)
{
    Shard &shard = *shards_[shard_index];
    std::shared_ptr<Pending> victim;
    bool handled = false;
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        if (!shard.health.admit(nowMs()))
            return false;
        if (!ensureBackend(shard, shard_index)) {
            shard.health.recordFailure(nowMs());
            shard.failuresCnt.fetch_add(1);
            return false;
        }
        if (shard.conn->inFlight.size() < config_.windowPerShard) {
            if (sendToBackend(shard, pending))
                return true;
            shard.health.recordFailure(nowMs());
            shard.failuresCnt.fetch_add(1);
            return false;  // fail over to the next ring owner
        }
        // Window full: queue behind it.  Overflow sheds the youngest
        // lowest-priority entry (possibly the incoming request itself)
        // rather than spilling to another shard — spilling would break
        // the key affinity that makes shard memos and hedged-request
        // dedup work, and under real overload it just spreads the
        // queueing everywhere.
        if (pending->trace.recording())
            pending->queueWallUs = obs::SpanRecorder::wallNowUs();
        auto res = shard.queue.push(pending, pending->priority);
        if (res.evicted)
            victim = std::move(res.victim);
        handled = true;
    }
    if (victim) {
        shedBusy_.fetch_add(1);
        answerError(victim, proto::ErrorCode::Busy,
                    "shed under overload");
    }
    return handled;
}

void
Router::backendReaderLoop(std::shared_ptr<BackendConn> conn)
{
    Shard &shard = *shards_[conn->shard];
    for (;;) {
        uint8_t header[proto::kHeaderSize];
        const int got = readFull(conn->fd, header, sizeof(header));
        if (got <= 0)
            break;
        proto::FrameHeader fh;
        if (proto::parseHeader(header, fh, proto::kMaxPayload) !=
            proto::HeaderStatus::Ok) {
            // A shard speaking garbage is indistinguishable from a dead
            // one: drop the connection and fail its in-flight work.
            framingErrors_.fetch_add(1);
            break;
        }
        std::string payload(fh.payloadLen, '\0');
        if (fh.payloadLen > 0 &&
            readFull(conn->fd, payload.data(), payload.size()) != 1)
            break;

        std::shared_ptr<Pending> pending;
        std::vector<std::shared_ptr<Pending>> refill_failed;
        {
            std::lock_guard<std::mutex> lock(shard.mu);
            // The pipelined Hello (reserved id 0) answering proves the
            // backend speaks v2; a v1 shard's typed UnknownKind error
            // simply leaves maxVersion at 1.
            if (fh.requestId == 0 &&
                fh.kind == static_cast<uint16_t>(
                               proto::MsgKind::HelloResult)) {
                proto::HelloResult hello;
                if (proto::decodeHelloResult(payload, hello))
                    conn->maxVersion = hello.maxVersion;
            }
            const auto it = conn->inFlight.find(fh.requestId);
            if (it != conn->inFlight.end()) {
                pending = it->second;
                conn->inFlight.erase(it);
            }
            // Any well-framed reply — even a typed error — proves the
            // shard alive.
            shard.health.recordSuccess();
            // Refill the freed window slot from the shed queue.
            std::shared_ptr<Pending> next;
            while (conn->open.load() &&
                   conn->inFlight.size() < config_.windowPerShard &&
                   shard.queue.pop(next)) {
                if (!sendToBackend(shard, next)) {
                    refill_failed.push_back(std::move(next));
                    break;
                }
            }
        }
        for (const std::shared_ptr<Pending> &failed : refill_failed) {
            connectionLost_.fetch_add(1);
            answerError(failed, proto::ErrorCode::ConnectionLost,
                        "backend shard connection lost");
        }
        if (pending) {
            shard.completedCnt.fetch_add(1);
            const auto reply_kind = static_cast<proto::MsgKind>(fh.kind);
            // Session bookkeeping first: a successful open/submit
            // schedules a blob refresh, and an UnknownSession miss with
            // a cached blob consumes the reply and migrates instead of
            // surfacing it.
            if (!handleSessionReply(conn->shard, pending, reply_kind,
                                    payload))
                answerPending(pending, reply_kind, payload);
        }
    }
    conn->shutdownNow();
    failShard(shard, conn);
    // Retire for join + close by the reaper.
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        for (size_t i = 0; i < backends_.size(); ++i) {
            if (backends_[i] == conn) {
                backends_.erase(backends_.begin() +
                                static_cast<ptrdiff_t>(i));
                break;
            }
        }
        reapList_.push_back(conn);
    }
}

void
Router::failShard(Shard &shard, const std::shared_ptr<BackendConn> &conn)
{
    std::vector<std::shared_ptr<Pending>> failed;
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.conn == conn)
            shard.conn = nullptr;
        for (auto &entry : conn->inFlight)
            failed.push_back(std::move(entry.second));
        conn->inFlight.clear();
        // Queued requests were waiting for THIS connection's window;
        // answer them too (retryable) instead of holding them for a
        // reconnect that may never come.
        std::shared_ptr<Pending> queued;
        while (shard.queue.pop(queued))
            failed.push_back(std::move(queued));
        if (!stopping_.load() && !draining_.load()) {
            shard.health.recordFailure(nowMs());
            shard.failuresCnt.fetch_add(1);
        }
    }
    for (const std::shared_ptr<Pending> &pending : failed) {
        connectionLost_.fetch_add(1);
        answerError(pending, proto::ErrorCode::ConnectionLost,
                    "backend shard connection lost");
    }
}

// ---------------------------------------------------------------------
// Answers.

void
Router::answerPending(const std::shared_ptr<Pending> &pending,
                      proto::MsgKind kind, const std::string &payload)
{
    bool expected = false;
    if (!pending->answered.compare_exchange_strong(expected, true))
        return;
    if (pending->internal) {
        // Router-originated work (blob refresh / migration restore):
        // no client frame, no client-reply accounting.  completeInternal
        // also releases the drain-barrier slot this pending holds.
        completeInternal(pending, kind, payload);
        return;
    }
    uint16_t code = 0;
    if (kind == proto::MsgKind::Error) {
        errors_.fetch_add(1);
        proto::ErrorBody body;
        code = proto::decodeErrorBody(payload, body)
                   ? body.code
                   : static_cast<uint16_t>(proto::ErrorCode::Internal);
    } else {
        completed_.fetch_add(1);
    }
    countReply(code);
    if (pending->backendSpanId != 0) {
        // Close the router.backend span minted at forward time.
        obs::SpanRecord span;
        span.traceId = pending->trace.traceId;
        span.spanId = pending->backendSpanId;
        span.parentSpanId = pending->trace.parentSpanId;
        span.startUs = pending->backendStartUs;
        const uint64_t now = obs::SpanRecorder::wallNowUs();
        span.durUs = now > span.startUs ? now - span.startUs : 0;
        span.name = "router.backend";
        if (code >= 1 && code < proto::kNumErrorCodes)
            span.detail = std::string(proto::errorCodeName(
                static_cast<proto::ErrorCode>(code)));
        spans_.record(std::move(span));
    }
    if (latencyUs_ != nullptr && pending->startUs != 0)
        latencyUs_->record(nowUs() - pending->startUs);
    pending->client->sendFrame(
        proto::encodeFrame(kind, pending->clientId, payload));
    if (outstanding_.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(drainMu_);
        drainCv_.notify_all();
    }
}

void
Router::answerError(const std::shared_ptr<Pending> &pending,
                    proto::ErrorCode code, const std::string &message)
{
    // A dying shard is exactly what the session blob cache is for: a
    // client session request failed by ConnectionLost migrates to the
    // current ring owner instead of bouncing back, given a cached blob
    // and a first attempt.  (Internal pendings and second misses fall
    // through to the normal retryable answer.)
    if (code == proto::ErrorCode::ConnectionLost && !pending->internal &&
        pending->sessionId != 0 && pending->migrations == 0 &&
        !draining_.load() && !stopping_.load() &&
        migrateSession(pending))
        return;
    proto::ErrorBody error;
    error.code = static_cast<uint16_t>(code);
    error.retryable = proto::errorRetryable(code) ? 1 : 0;
    error.message = message;
    answerPending(pending, proto::MsgKind::Error,
                  proto::encodeErrorBody(error));
}

// ---------------------------------------------------------------------
// Stateful sessions (docs/SERVING.md).

bool
Router::handleSessionReply(size_t shard_index,
                           const std::shared_ptr<Pending> &pending,
                           proto::MsgKind kind, const std::string &payload)
{
    // Internal pendings take the answerPending -> completeInternal
    // path so the exactly-once CAS stays in one place.
    if (pending->internal || pending->sessionId == 0)
        return false;
    if (kind == proto::MsgKind::Error) {
        // A shard that forgot the session (restarted, or the key moved
        // with the ring) is recoverable when a blob is cached: restore
        // it on the current owner, then re-route this very request.
        proto::ErrorBody body;
        if (proto::decodeErrorBody(payload, body) &&
            body.code == static_cast<uint16_t>(
                             proto::ErrorCode::UnknownSession) &&
            pending->migrations == 0 && !draining_.load() &&
            migrateSession(pending))
            return true;  // consumed: the migration owns the answer now
        return false;
    }
    switch (pending->kind) {
      case proto::MsgKind::OpenSession:
      case proto::MsgKind::SubmitChunk:
        // The session advanced; the cached blob (if any) is stale.
        // Refresh it in the background so a later migration resumes
        // from this chunk, not an older one.
        if (kind == proto::MsgKind::SessionOpened ||
            kind == proto::MsgKind::ChunkResult) {
            {
                std::lock_guard<std::mutex> lock(sessionsMu_);
                sessions_.emplace(pending->sessionId, std::string());
            }
            scheduleSnapshotRefresh(shard_index, pending->sessionId);
        }
        break;
      case proto::MsgKind::SnapshotSession: {
        // A client-requested snapshot refreshes the cache for free.
        proto::SessionSnapshotResult res;
        if (kind == proto::MsgKind::SessionSnapshot &&
            proto::decodeSessionSnapshotResult(payload, res)) {
            std::lock_guard<std::mutex> lock(sessionsMu_);
            sessions_[res.sessionId] = std::move(res.blob);
        }
        break;
      }
      case proto::MsgKind::RestoreSession:
        if (kind == proto::MsgKind::SessionOpened) {
            // The client handed us an authoritative blob; cache it.
            proto::RestoreSessionRequest req;
            if (proto::decodeRestoreSessionRequest(pending->payload,
                                                   req)) {
                std::lock_guard<std::mutex> lock(sessionsMu_);
                sessions_[req.sessionId] = std::move(req.blob);
            }
        }
        break;
      case proto::MsgKind::CloseSession:
        if (kind == proto::MsgKind::SessionClosed) {
            std::lock_guard<std::mutex> lock(sessionsMu_);
            sessions_.erase(pending->sessionId);
        }
        break;
      default:
        break;
    }
    return false;  // the reply still goes to the client
}

void
Router::completeInternal(const std::shared_ptr<Pending> &pending,
                         proto::MsgKind kind, const std::string &payload)
{
    if (pending->resume) {
        // Migration restore resolved.
        const std::shared_ptr<Pending> original = pending->resume;
        if (kind == proto::MsgKind::SessionOpened) {
            sessionsMigrated_.fetch_add(1);
            // The session lives on the new owner now; replay the
            // request that hit the miss.  Its migration budget is
            // spent, so a second miss surfaces to the client.
            route(original,
                  proto::sessionRequestKey(original->sessionId));
        } else {
            // The restore failed; the client sees that typed error
            // (e.g. bad-snapshot) rather than a silent hang.  A
            // ConnectionLost here cannot re-migrate: migrations is
            // already 1.
            answerPending(original, kind, payload);
        }
    } else if (kind == proto::MsgKind::SessionSnapshot) {
        // Background blob refresh landed.
        proto::SessionSnapshotResult res;
        if (proto::decodeSessionSnapshotResult(payload, res)) {
            std::lock_guard<std::mutex> lock(sessionsMu_);
            const auto it = sessions_.find(res.sessionId);
            // Only refresh a tracked session — racing a CloseSession
            // must not resurrect the entry.
            if (it != sessions_.end())
                it->second = std::move(res.blob);
        }
    }
    // A failed refresh keeps the previous (stale but restorable) blob.
    // Internal work holds a drain-barrier slot like any routed request;
    // release it.
    if (outstanding_.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(drainMu_);
        drainCv_.notify_all();
    }
}

void
Router::scheduleSnapshotRefresh(size_t shard_index, uint64_t session_id)
{
    proto::SessionIdRequest req;
    req.sessionId = session_id;
    auto refresh = std::make_shared<Pending>();
    refresh->kind = proto::MsgKind::SnapshotSession;
    // Background work sheds first under overload; a missed refresh only
    // ages the cached blob.
    refresh->priority = RoutePriority::Batch;
    refresh->payload = proto::encodeSessionIdRequest(req);
    refresh->sessionId = session_id;
    refresh->internal = true;
    refresh->startUs = nowUs();
    snapshotRefreshes_.fetch_add(1);
    outstanding_.fetch_add(1);
    // Pin the refresh to the shard that just answered: the session
    // lives THERE even if a ring change has moved the key's owner.
    if (!submitToShard(shard_index, refresh))
        answerError(refresh, proto::ErrorCode::Busy,
                    "snapshot refresh not sent");
}

bool
Router::migrateSession(const std::shared_ptr<Pending> &original)
{
    std::string blob;
    {
        std::lock_guard<std::mutex> lock(sessionsMu_);
        const auto it = sessions_.find(original->sessionId);
        if (it == sessions_.end() || it->second.empty())
            return false;  // nothing to restore from
        blob = it->second;
    }
    ++original->migrations;
    proto::RestoreSessionRequest req;
    req.sessionId = original->sessionId;
    req.blob = std::move(blob);  // deadlineMs 0: shard default applies
    auto restore = std::make_shared<Pending>();
    restore->kind = proto::MsgKind::RestoreSession;
    restore->priority = RoutePriority::Source;
    restore->payload = proto::encodeRestoreSessionRequest(req);
    restore->trace = original->trace;  // stays on the client's trace
    restore->sessionId = original->sessionId;
    restore->internal = true;
    restore->resume = original;
    restore->startUs = nowUs();
    outstanding_.fetch_add(1);
    // route() walks the ring from the key's owner and skips ejected
    // shards, so the restore lands wherever this session's follow-up
    // requests will land.
    route(std::move(restore),
          proto::sessionRequestKey(original->sessionId));
    return true;
}

// ---------------------------------------------------------------------
// Drain / stop / health.

void
Router::requestDrain()
{
    if (draining_.exchange(true))
        return;
    if (unixFd_ >= 0)
        ::shutdown(unixFd_, SHUT_RDWR);
    if (tcpFd_ >= 0)
        ::shutdown(tcpFd_, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(drainMu_);
    drainCv_.notify_all();
}

void
Router::drainWaiterLoop()
{
    {
        std::unique_lock<std::mutex> lock(drainMu_);
        drainCv_.wait(lock, [this] { return draining_.load(); });
        drainCv_.wait(lock, [this] { return outstanding_.load() == 0; });
    }
    // Every routed request is answered; release the backends, then the
    // clients.
    for (const std::unique_ptr<Shard> &shard : shards_) {
        std::shared_ptr<BackendConn> conn;
        {
            std::lock_guard<std::mutex> lock(shard->mu);
            conn = shard->conn;
        }
        if (conn)
            conn->shutdownNow();
    }
    std::vector<std::shared_ptr<ClientConn>> conns;
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        conns = conns_;
    }
    for (const std::shared_ptr<ClientConn> &conn : conns)
        conn->shutdownNow();
    drained_.store(true);
    std::lock_guard<std::mutex> lock(drainMu_);
    drainCv_.notify_all();
}

bool
Router::drained() const
{
    return drained_.load();
}

void
Router::waitDrained()
{
    std::unique_lock<std::mutex> lock(drainMu_);
    drainCv_.wait(lock, [this] { return drained_.load(); });
}

void
Router::stop()
{
    if (!started_.load())
        return;
    if (stopping_.exchange(true))
        return;
    requestDrain();
    if (drainWaiter_.joinable())
        waitDrained();
    else
        drained_.store(true);
    for (std::thread &t : acceptors_)
        t.join();
    acceptors_.clear();
    if (reaper_.joinable())
        reaper_.join();
    if (drainWaiter_.joinable())
        drainWaiter_.join();
    // Final sweep: every connection is always in conns_, backends_, or
    // reapList_, so snapshotting all three and joining reclaims every
    // reader (a reader mid-retirement re-adds itself to reapList_; the
    // trailing clear drops that bookkeeping entry after the join).
    std::vector<std::shared_ptr<FrameConn>> sweep;
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        sweep.insert(sweep.end(), conns_.begin(), conns_.end());
        sweep.insert(sweep.end(), backends_.begin(), backends_.end());
        sweep.insert(sweep.end(), reapList_.begin(), reapList_.end());
        conns_.clear();
        backends_.clear();
        reapList_.clear();
    }
    for (const std::shared_ptr<FrameConn> &conn : sweep)
        conn->shutdownNow();
    for (const std::shared_ptr<FrameConn> &conn : sweep) {
        if (conn->reader.joinable())
            conn->reader.join();
        conn->closeFd();
    }
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        reapList_.clear();
    }
    if (unixFd_ >= 0) {
        ::close(unixFd_);
        unixFd_ = -1;
    }
    if (tcpFd_ >= 0) {
        ::close(tcpFd_);
        tcpFd_ = -1;
    }
    if (!boundUnixPath_.empty())
        ::unlink(boundUnixPath_.c_str());
}

Router::Health
Router::health() const
{
    Health h;
    h.acceptedConnections = acceptedConnections_.load();
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        uint64_t active = 0;
        for (const std::shared_ptr<ClientConn> &conn : conns_)
            if (conn->open.load())
                ++active;
        h.activeConnections = active;
    }
    h.received = received_.load();
    h.forwarded = forwarded_.load();
    h.completed = completed_.load();
    h.errors = errors_.load();
    h.shedBusy = shedBusy_.load();
    h.connectionLost = connectionLost_.load();
    h.framingErrors = framingErrors_.load();
    {
        std::lock_guard<std::mutex> lock(sessionsMu_);
        h.sessionsTracked = sessions_.size();
    }
    h.sessionsMigrated = sessionsMigrated_.load();
    for (size_t i = 0; i < repliesByCode_.size(); ++i)
        h.repliesByCode[i] = repliesByCode_[i].load();
    h.draining = draining_.load();
    h.uptimeMs = nowMs();
    h.shards.reserve(shards_.size());
    for (const std::unique_ptr<Shard> &shard : shards_) {
        ShardStats stats;
        stats.endpoint = shard->ep.describe();
        stats.forwarded = shard->forwardedCnt.load();
        stats.completed = shard->completedCnt.load();
        stats.failures = shard->failuresCnt.load();
        {
            std::lock_guard<std::mutex> lock(shard->mu);
            switch (shard->health.state()) {
              case ShardHealth::State::Healthy:
                stats.state = "healthy";
                break;
              case ShardHealth::State::Ejected:
                stats.state = "ejected";
                break;
              case ShardHealth::State::Probing:
                stats.state = "probing";
                break;
            }
            stats.ejections = shard->health.ejections();
            stats.inFlight =
                shard->conn ? shard->conn->inFlight.size() : 0;
            stats.queued = shard->queue.size();
        }
        h.shards.push_back(std::move(stats));
    }
    return h;
}

} // namespace tarch::serve
