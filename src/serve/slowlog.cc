#include "serve/slowlog.h"

#include "common/strutil.h"
#include "obs/json.h"
#include "serve/protocol.h"

namespace tarch::serve {

SlowLog::SlowLog() : SlowLog(Options()) {}

bool
SlowLog::shouldLog(uint64_t total_us)
{
    std::lock_guard<std::mutex> lock(mu_);
    bool log = false;
    if (opts_.sampleEvery > 0) {
        if (++sampleTick_ % opts_.sampleEvery == 0)
            log = true;
    }
    if (opts_.thresholdUs > 0 && total_us >= opts_.thresholdUs)
        log = true;
    return log;
}

void
SlowLog::record(SlowLogEntry entry)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++recorded_;
    if (opts_.capacity == 0)
        return;
    if (ring_.size() < opts_.capacity) {
        ring_.push_back(std::move(entry));
    } else {
        ring_[next_] = std::move(entry);
        next_ = (next_ + 1) % opts_.capacity;
    }
}

uint64_t
SlowLog::recorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return recorded_;
}

std::vector<SlowLogEntry>
SlowLog::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SlowLogEntry> out;
    out.reserve(ring_.size());
    // Oldest first: [next_, end) then [0, next_) once the ring wrapped.
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(next_ + i) % ring_.size()]);
    return out;
}

std::string
SlowLog::toJson() const
{
    const std::vector<SlowLogEntry> entries = snapshot();
    std::string out = "[";
    bool first = true;
    for (const SlowLogEntry &e : entries) {
        if (!first)
            out += ",";
        first = false;
        out += strformat(
            "{\"wall_ms\":%llu,\"trace_id\":\"%016llx\","
            "\"kind\":%u,\"error_code\":%u,\"error\":\"%s\","
            "\"from_cache\":%u,\"queue_us\":%llu,\"run_us\":%llu,"
            "\"total_us\":%llu,\"detail\":\"%s\"}",
            (unsigned long long)e.wallMs, (unsigned long long)e.traceId,
            (unsigned)e.kind, (unsigned)e.errorCode,
            e.errorCode == 0
                ? "ok"
                : std::string(proto::errorCodeName(
                      static_cast<proto::ErrorCode>(e.errorCode)))
                      .c_str(),
            (unsigned)e.fromCache, (unsigned long long)e.queueUs,
            (unsigned long long)e.runUs, (unsigned long long)e.totalUs,
            obs::jsonEscape(e.detail).c_str());
    }
    out += "]";
    return out;
}

} // namespace tarch::serve
