#include "serve/hedged_client.h"

#include <algorithm>
#include <poll.h>

namespace tarch::serve {

namespace {

/** Decode a matched reply frame into a convenience Outcome; sets
    @p garbled only for the undecodable-payload fallback (a server sent
    ConnectionLost Error frame is routine, not garbled). */
Client::Outcome
decodeOutcome(const Client::Reply &reply, bool &garbled)
{
    Client::Outcome outcome;
    if (static_cast<proto::MsgKind>(reply.kind) ==
            proto::MsgKind::CellResult &&
        proto::decodeCellResult(reply.payload, outcome.result)) {
        outcome.ok = true;
        return outcome;
    }
    if (static_cast<proto::MsgKind>(reply.kind) == proto::MsgKind::Error &&
        proto::decodeErrorBody(reply.payload, outcome.error))
        return outcome;
    // Undecodable reply: treat like a dead connection (retryable).
    garbled = true;
    outcome.error.code =
        static_cast<uint16_t>(proto::ErrorCode::ConnectionLost);
    outcome.error.retryable = 1;
    outcome.error.message = "garbled reply";
    return outcome;
}

bool
retryable(const Client::Outcome &outcome)
{
    return !outcome.ok && !outcome.closed &&
           proto::errorRetryable(
               static_cast<proto::ErrorCode>(outcome.error.code));
}

} // namespace

HedgedClient::HedgedClient(const Options &opts)
    : opts_(opts), budgetTokens_(opts.retryBudgetInitial),
      epoch_(std::chrono::steady_clock::now())
{
    for (size_t i = 0; i < opts_.endpoints.size(); ++i) {
        nodes_.push_back(
            std::make_unique<Node>(opts_.endpoints[i], opts_.health));
        // Suffix the ring id with the slot so duplicate endpoints still
        // get distinct ring positions.
        ring_.insert(i,
                     opts_.endpoints[i].describe() + "@" +
                         std::to_string(i),
                     opts_.ringVnodes);
    }
}

uint64_t
HedgedClient::nowMs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

uint64_t
HedgedClient::nowUs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

uint64_t
HedgedClient::hedgeDelayUs() const
{
    if (latencies_.count() < opts_.minSamples)
        return static_cast<uint64_t>(opts_.defaultHedgeMs) * 1000;
    const uint64_t tail = latencies_.percentile(opts_.hedgePercentile);
    const uint64_t floor_us =
        static_cast<uint64_t>(opts_.hedgeFloorMs) * 1000;
    const uint64_t cap_us = static_cast<uint64_t>(opts_.hedgeCapMs) * 1000;
    return std::min(cap_us, std::max(floor_us, tail));
}

bool
HedgedClient::ensureNode(Node &node)
{
    if (node.client.isOpen())
        return true;
    node.client = Client::tryConnect(node.ep);
    return node.client.isOpen();
}

bool
HedgedClient::spendBudget()
{
    if (budgetTokens_ < 1.0) {
        ++counters_.budgetDenied;
        return false;
    }
    budgetTokens_ -= 1.0;
    return true;
}

Client::Outcome
HedgedClient::runCell(const proto::CellRequest &req)
{
    return run(proto::MsgKind::RunCell, proto::encodeCellRequest(req),
               proto::cellRequestKey(req));
}

Client::Outcome
HedgedClient::runSource(const proto::SourceRequest &req)
{
    return run(proto::MsgKind::RunSource,
               proto::encodeSourceRequest(req),
               proto::sourceRequestKey(req));
}

Client::Outcome
HedgedClient::run(proto::MsgKind kind, const std::string &payload,
                  uint64_t key)
{
    ++counters_.requests;
    budgetTokens_ =
        std::min(opts_.retryBudgetCap,
                 budgetTokens_ + opts_.retryBudgetRatio);

    struct Flight {
        size_t node;
        uint64_t id;
        bool hedge;
    };
    std::vector<Flight> flights;
    const std::vector<size_t> order = ring_.owners(key, nodes_.size());
    size_t next_in_order = 0;
    unsigned attempts = 0;

    // Launch one attempt on the next live endpoint in ring order.
    const auto launch = [&](bool hedge) -> bool {
        while (next_in_order < order.size() &&
               attempts < opts_.maxAttempts) {
            const size_t node_index = order[next_in_order++];
            Node &node = *nodes_[node_index];
            if (!node.health.admit(nowMs()))
                continue;
            if (!ensureNode(node)) {
                node.health.recordFailure(nowMs());
                continue;
            }
            const uint64_t id = node.client.sendRequest(kind, payload);
            if (id == 0) {
                ++counters_.lostConnections;
                node.health.recordFailure(nowMs());
                continue;
            }
            flights.push_back(Flight{node_index, id, hedge});
            ++attempts;
            return true;
        }
        return false;
    };

    Client::Outcome last;
    last.error.code =
        static_cast<uint16_t>(proto::ErrorCode::ConnectionLost);
    last.error.retryable = 1;
    last.error.message = "no endpoint reachable";

    if (!launch(false))
        return last;

    const uint64_t start_us = nowUs();
    uint64_t hedge_at_us = start_us + hedgeDelayUs();
    bool hedge_decided = false;  // hedge fired or permanently declined

    for (;;) {
        std::vector<pollfd> fds;
        fds.reserve(flights.size());
        for (const Flight &flight : flights)
            fds.push_back(
                pollfd{nodes_[flight.node]->client.fd(), POLLIN, 0});

        int timeout_ms = -1;
        if (!hedge_decided) {
            const uint64_t now = nowUs();
            timeout_ms = now >= hedge_at_us
                             ? 0
                             : static_cast<int>(
                                   (hedge_at_us - now) / 1000 + 1);
        }
        const int ready =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                   timeout_ms);
        if (ready == 0 && !hedge_decided) {
            // The first attempt is past the tail estimate: hedge to the
            // next endpoint on the ring (budget permitting).
            hedge_decided = true;
            if (spendBudget() && launch(true))
                ++counters_.hedges;
            continue;
        }
        if (ready < 0)
            continue;  // EINTR

        for (size_t i = 0; i < fds.size() && i < flights.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLERR | POLLHUP)))
                continue;
            const Flight flight = flights[i];
            Node &node = *nodes_[flight.node];
            Client::Reply reply;
            const Client::IoStatus st = node.client.readFrame(reply);
            if (st != Client::IoStatus::Ok) {
                if (st == Client::IoStatus::Garbled)
                    ++counters_.garbled;
                ++counters_.lostConnections;
                node.health.recordFailure(nowMs());
                flights.erase(flights.begin() +
                              static_cast<ptrdiff_t>(i));
                last = Client::Outcome{};
                last.error.code = static_cast<uint16_t>(
                    proto::ErrorCode::ConnectionLost);
                last.error.retryable = 1;
                last.error.message = "connection lost";
                break;  // pollfds are stale; rebuild
            }
            if (reply.requestId != flight.id)
                continue;  // stale reply from an abandoned hedge
            node.health.recordSuccess();
            bool reply_garbled = false;
            Client::Outcome outcome = decodeOutcome(reply, reply_garbled);
            if (reply_garbled)
                ++counters_.garbled;
            if (outcome.ok || !retryable(outcome)) {
                if (flight.hedge)
                    ++counters_.hedgeWins;
                latencies_.record(nowUs() - start_us);
                return outcome;
            }
            // Retryable (Busy/Draining/...): give up on this flight,
            // keep any sibling flight alive.
            last = std::move(outcome);
            flights.erase(flights.begin() + static_cast<ptrdiff_t>(i));
            break;  // pollfds are stale; rebuild
        }

        if (flights.empty()) {
            // Every flight failed retryably; sequential retry on the
            // next ring owner, budget permitting.
            if (attempts >= opts_.maxAttempts ||
                next_in_order >= order.size() || !spendBudget())
                return last;
            if (!launch(false))
                return last;
            ++counters_.retries;
            hedge_at_us = nowUs() + hedgeDelayUs();
            hedge_decided = false;
        }
    }
}

} // namespace tarch::serve
