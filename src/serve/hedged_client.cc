#include "serve/hedged_client.h"

#include <algorithm>
#include <poll.h>

namespace tarch::serve {

namespace {

/** Decode a matched reply frame into a convenience Outcome; sets
    @p garbled only for the undecodable-payload fallback (a server sent
    ConnectionLost Error frame is routine, not garbled). */
Client::Outcome
decodeOutcome(const Client::Reply &reply, bool &garbled)
{
    Client::Outcome outcome;
    if (static_cast<proto::MsgKind>(reply.kind) ==
            proto::MsgKind::CellResult &&
        proto::decodeCellResult(reply.payload, outcome.result)) {
        outcome.ok = true;
        return outcome;
    }
    if (static_cast<proto::MsgKind>(reply.kind) == proto::MsgKind::Error &&
        proto::decodeErrorBody(reply.payload, outcome.error))
        return outcome;
    // Undecodable reply: treat like a dead connection (retryable).
    garbled = true;
    outcome.error.code =
        static_cast<uint16_t>(proto::ErrorCode::ConnectionLost);
    outcome.error.retryable = 1;
    outcome.error.message = "garbled reply";
    return outcome;
}

bool
retryable(const Client::Outcome &outcome)
{
    return !outcome.ok && !outcome.closed &&
           proto::errorRetryable(
               static_cast<proto::ErrorCode>(outcome.error.code));
}

} // namespace

HedgedClient::HedgedClient(const Options &opts)
    : opts_(opts), budgetTokens_(opts.retryBudgetInitial),
      epoch_(std::chrono::steady_clock::now())
{
    for (size_t i = 0; i < opts_.endpoints.size(); ++i) {
        nodes_.push_back(
            std::make_unique<Node>(opts_.endpoints[i], opts_.health));
        // Suffix the ring id with the slot so duplicate endpoints still
        // get distinct ring positions.
        ring_.insert(i,
                     opts_.endpoints[i].describe() + "@" +
                         std::to_string(i),
                     opts_.ringVnodes);
    }
    if (opts_.registry) {
        obs::Registry &reg = *opts_.registry;
        mRequests_ = &reg.counter("tarch_client_requests_total",
                                  "Requests issued");
        mHedges_ = &reg.counter("tarch_client_hedges_total",
                                "Hedge attempts launched");
        mHedgeWins_ = &reg.counter("tarch_client_hedge_wins_total",
                                   "Requests won by the hedge");
        mRetries_ = &reg.counter("tarch_client_retries_total",
                                 "Sequential retries after a "
                                 "retryable error");
        mBudgetDenied_ =
            &reg.counter("tarch_client_budget_denied_total",
                         "Hedges/retries denied by the retry budget");
        mLost_ = &reg.counter("tarch_client_lost_connections_total",
                              "Connections lost mid-request");
        mGarbled_ = &reg.counter("tarch_client_garbled_total",
                                 "Unparseable response frames");
        mLatencyUs_ = &reg.histogram(
            "tarch_client_latency_us",
            "Request latency, first send to winning reply "
            "(microseconds)");
    }
}

uint64_t
HedgedClient::nowMs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

uint64_t
HedgedClient::nowUs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

uint64_t
HedgedClient::hedgeDelayUs() const
{
    if (latencies_.count() < opts_.minSamples)
        return static_cast<uint64_t>(opts_.defaultHedgeMs) * 1000;
    const uint64_t tail = latencies_.percentile(opts_.hedgePercentile);
    const uint64_t floor_us =
        static_cast<uint64_t>(opts_.hedgeFloorMs) * 1000;
    const uint64_t cap_us = static_cast<uint64_t>(opts_.hedgeCapMs) * 1000;
    return std::min(cap_us, std::max(floor_us, tail));
}

bool
HedgedClient::ensureNode(Node &node)
{
    if (node.client.isOpen())
        return true;
    node.client = Client::tryConnect(node.ep);
    return node.client.isOpen();
}

bool
HedgedClient::spendBudget()
{
    if (budgetTokens_ < 1.0) {
        ++counters_.budgetDenied;
        if (mBudgetDenied_)
            mBudgetDenied_->add();
        return false;
    }
    budgetTokens_ -= 1.0;
    return true;
}

Client::Outcome
HedgedClient::runCell(const proto::CellRequest &req)
{
    return run(proto::MsgKind::RunCell, proto::encodeCellRequest(req),
               proto::cellRequestKey(req), req.benchmark);
}

Client::Outcome
HedgedClient::runSource(const proto::SourceRequest &req)
{
    return run(proto::MsgKind::RunSource,
               proto::encodeSourceRequest(req),
               proto::sourceRequestKey(req), "source");
}

Client::Outcome
HedgedClient::run(proto::MsgKind kind, const std::string &payload,
                  uint64_t key, const std::string &detail)
{
    ++counters_.requests;
    if (mRequests_)
        mRequests_->add();
    budgetTokens_ =
        std::min(opts_.retryBudgetCap,
                 budgetTokens_ + opts_.retryBudgetRatio);

    // Sampled tracing: one root span for the request, one child span
    // per attempt; the attempt's context is forwarded so server/router
    // spans nest under it.
    const bool traced = opts_.recorder && opts_.traceSampleEvery > 0 &&
                        ++traceTick_ % opts_.traceSampleEvery == 0;
    uint64_t trace_id = 0;
    if (traced) {
        struct {
            uint64_t self;
            uint64_t tick;
            uint64_t now;
        } seed = {reinterpret_cast<uint64_t>(this), traceTick_,
                  obs::SpanRecorder::wallNowUs()};
        trace_id = proto::fnv1a64(&seed, sizeof(seed));
        if (trace_id == 0)
            trace_id = 1;
    }
    obs::SpanScope root(traced ? opts_.recorder : nullptr, trace_id, 0,
                        "client.request");
    if (root.active())
        root.setDetail(detail);

    struct Flight {
        size_t node;
        uint64_t id;
        bool hedge;
        uint32_t spanId = 0;
        uint64_t startUs = 0;  ///< wall clock; only when traced
    };
    std::vector<Flight> flights;
    const std::vector<size_t> order = ring_.owners(key, nodes_.size());
    size_t next_in_order = 0;
    unsigned attempts = 0;

    // Record a client.attempt span for a flight that just resolved.
    const auto endAttempt = [&](const Flight &flight,
                                const char *outcome) {
        if (!traced || flight.spanId == 0)
            return;
        obs::SpanRecord span;
        span.traceId = trace_id;
        span.spanId = flight.spanId;
        span.parentSpanId = root.id();
        span.startUs = flight.startUs;
        const uint64_t now = obs::SpanRecorder::wallNowUs();
        span.durUs = now > flight.startUs ? now - flight.startUs : 0;
        span.name = "client.attempt";
        span.detail = std::string(flight.hedge ? "hedge/" : "first/") +
                      outcome;
        opts_.recorder->record(std::move(span));
    };

    // Launch one attempt on the next live endpoint in ring order.
    const auto launch = [&](bool hedge) -> bool {
        while (next_in_order < order.size() &&
               attempts < opts_.maxAttempts) {
            const size_t node_index = order[next_in_order++];
            Node &node = *nodes_[node_index];
            if (!node.health.admit(nowMs()))
                continue;
            if (!ensureNode(node)) {
                node.health.recordFailure(nowMs());
                continue;
            }
            Flight flight{node_index, 0, hedge, 0, 0};
            uint64_t id = 0;
            if (traced) {
                flight.spanId = opts_.recorder->nextSpanId();
                flight.startUs = obs::SpanRecorder::wallNowUs();
                proto::TraceContext ctx;
                ctx.traceId = trace_id;
                ctx.parentSpanId = flight.spanId;
                ctx.sampled = 1;
                id = node.client.sendTracedRequest(kind, ctx, payload);
            } else {
                id = node.client.sendRequest(kind, payload);
            }
            if (id == 0) {
                ++counters_.lostConnections;
                if (mLost_)
                    mLost_->add();
                endAttempt(flight, "send-failed");
                node.health.recordFailure(nowMs());
                continue;
            }
            flight.id = id;
            flights.push_back(flight);
            ++attempts;
            return true;
        }
        return false;
    };

    Client::Outcome last;
    last.error.code =
        static_cast<uint16_t>(proto::ErrorCode::ConnectionLost);
    last.error.retryable = 1;
    last.error.message = "no endpoint reachable";

    if (!launch(false))
        return last;

    const uint64_t start_us = nowUs();
    uint64_t hedge_at_us = start_us + hedgeDelayUs();
    bool hedge_decided = false;  // hedge fired or permanently declined

    for (;;) {
        std::vector<pollfd> fds;
        fds.reserve(flights.size());
        for (const Flight &flight : flights)
            fds.push_back(
                pollfd{nodes_[flight.node]->client.fd(), POLLIN, 0});

        int timeout_ms = -1;
        if (!hedge_decided) {
            const uint64_t now = nowUs();
            timeout_ms = now >= hedge_at_us
                             ? 0
                             : static_cast<int>(
                                   (hedge_at_us - now) / 1000 + 1);
        }
        const int ready =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                   timeout_ms);
        if (ready == 0 && !hedge_decided) {
            // The first attempt is past the tail estimate: hedge to the
            // next endpoint on the ring (budget permitting).
            hedge_decided = true;
            if (spendBudget() && launch(true)) {
                ++counters_.hedges;
                if (mHedges_)
                    mHedges_->add();
            }
            continue;
        }
        if (ready < 0)
            continue;  // EINTR

        for (size_t i = 0; i < fds.size() && i < flights.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLERR | POLLHUP)))
                continue;
            const Flight flight = flights[i];
            Node &node = *nodes_[flight.node];
            Client::Reply reply;
            const Client::IoStatus st = node.client.readFrame(reply);
            if (st != Client::IoStatus::Ok) {
                if (st == Client::IoStatus::Garbled) {
                    ++counters_.garbled;
                    if (mGarbled_)
                        mGarbled_->add();
                }
                ++counters_.lostConnections;
                if (mLost_)
                    mLost_->add();
                endAttempt(flight, "lost");
                node.health.recordFailure(nowMs());
                flights.erase(flights.begin() +
                              static_cast<ptrdiff_t>(i));
                last = Client::Outcome{};
                last.error.code = static_cast<uint16_t>(
                    proto::ErrorCode::ConnectionLost);
                last.error.retryable = 1;
                last.error.message = "connection lost";
                break;  // pollfds are stale; rebuild
            }
            if (reply.requestId != flight.id)
                continue;  // stale reply from an abandoned hedge
            node.health.recordSuccess();
            bool reply_garbled = false;
            Client::Outcome outcome = decodeOutcome(reply, reply_garbled);
            if (reply_garbled) {
                ++counters_.garbled;
                if (mGarbled_)
                    mGarbled_->add();
            }
            if (outcome.ok || !retryable(outcome)) {
                if (flight.hedge) {
                    ++counters_.hedgeWins;
                    if (mHedgeWins_)
                        mHedgeWins_->add();
                }
                endAttempt(flight, outcome.ok ? "won" : "error");
                // Abandoned sibling flights: their replies are
                // discarded later, but the spans end now.
                for (size_t j = 0; j < flights.size(); ++j)
                    if (flights[j].id != flight.id)
                        endAttempt(flights[j], "abandoned");
                const uint64_t latency_us = nowUs() - start_us;
                latencies_.record(latency_us);
                if (mLatencyUs_)
                    mLatencyUs_->record(latency_us);
                return outcome;
            }
            // Retryable (Busy/Draining/...): give up on this flight,
            // keep any sibling flight alive.
            endAttempt(flight, "retryable-error");
            last = std::move(outcome);
            flights.erase(flights.begin() + static_cast<ptrdiff_t>(i));
            break;  // pollfds are stale; rebuild
        }

        if (flights.empty()) {
            // Every flight failed retryably; sequential retry on the
            // next ring owner, budget permitting.
            if (attempts >= opts_.maxAttempts ||
                next_in_order >= order.size() || !spendBudget())
                return last;
            if (!launch(false))
                return last;
            ++counters_.retries;
            if (mRetries_)
                mRetries_->add();
            hedge_at_us = nowUs() + hedgeDelayUs();
            hedge_decided = false;
        }
    }
}

} // namespace tarch::serve
