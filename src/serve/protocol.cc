#include "serve/protocol.h"

#include <cstring>

namespace tarch::serve::proto {

namespace {

// ------------------------------------------------------------------
// Little-endian primitives over a std::string buffer.

void
putU8(std::string &buf, uint8_t v)
{
    buf.push_back(static_cast<char>(v));
}

void
putU16(std::string &buf, uint16_t v)
{
    buf.push_back(static_cast<char>(v & 0xFF));
    buf.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void
putU32(std::string &buf, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU64(std::string &buf, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putStr(std::string &buf, const std::string &s)
{
    putU32(buf, static_cast<uint32_t>(s.size()));
    buf.append(s);
}

/** Bounds-checked cursor; any failed read latches ok == false. */
class Reader
{
  public:
    explicit Reader(const std::string &buf) : buf_(buf) {}

    bool
    u8(uint8_t &v)
    {
        if (!need(1))
            return false;
        v = static_cast<uint8_t>(buf_[pos_++]);
        return true;
    }

    bool
    u16(uint16_t &v)
    {
        if (!need(2))
            return false;
        v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<uint16_t>(
                static_cast<uint8_t>(buf_[pos_ + i]))
                 << (8 * i);
        pos_ += 2;
        return true;
    }

    bool
    u32(uint32_t &v)
    {
        if (!need(4))
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(
                static_cast<uint8_t>(buf_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return true;
    }

    bool
    u64(uint64_t &v)
    {
        if (!need(8))
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(
                static_cast<uint8_t>(buf_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return true;
    }

    bool
    str(std::string &s)
    {
        uint32_t len = 0;
        if (!u32(len) || !need(len))
            return false;
        s.assign(buf_, pos_, len);
        pos_ += len;
        return true;
    }

    /** Strict decoders require the payload consumed exactly. */
    bool
    done() const
    {
        return ok_ && pos_ == buf_.size();
    }

    bool failed() const { return !ok_; }

  private:
    bool
    need(size_t n)
    {
        if (!ok_ || buf_.size() - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const std::string &buf_;
    size_t pos_ = 0;
    bool ok_ = true;
};

constexpr uint32_t kMaxBatchCells = 4096;

} // namespace

bool
isRequestKind(uint16_t kind)
{
    switch (static_cast<MsgKind>(kind)) {
      case MsgKind::RunCell:
      case MsgKind::RunSource:
      case MsgKind::RunBatch:
      case MsgKind::Stats:
      case MsgKind::Drain:
      case MsgKind::Ping:
      case MsgKind::Metrics:
      case MsgKind::Hello:
      case MsgKind::OpenSession:
      case MsgKind::SubmitChunk:
      case MsgKind::SnapshotSession:
      case MsgKind::RestoreSession:
      case MsgKind::CloseSession:
        return true;
      default:
        return false;
    }
}

std::string_view
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::BadMagic: return "bad-magic";
      case ErrorCode::BadVersion: return "bad-version";
      case ErrorCode::BadFrame: return "bad-frame";
      case ErrorCode::UnknownKind: return "unknown-kind";
      case ErrorCode::PayloadTooLarge: return "payload-too-large";
      case ErrorCode::BadRequest: return "bad-request";
      case ErrorCode::UnknownBenchmark: return "unknown-benchmark";
      case ErrorCode::VerifyRejected: return "verify-rejected";
      case ErrorCode::CompileFailed: return "compile-failed";
      case ErrorCode::SimFailed: return "sim-failed";
      case ErrorCode::Busy: return "busy";
      case ErrorCode::DeadlineExceeded: return "deadline-exceeded";
      case ErrorCode::Draining: return "draining";
      case ErrorCode::Internal: return "internal";
      case ErrorCode::ConnectionLost: return "connection-lost";
      case ErrorCode::BadSnapshot: return "bad-snapshot";
      case ErrorCode::UnknownSession: return "unknown-session";
    }
    return "unknown";
}

bool
errorRetryable(ErrorCode code)
{
    return code == ErrorCode::Busy || code == ErrorCode::Draining ||
           code == ErrorCode::ConnectionLost;
}

HeaderStatus
parseHeader(const uint8_t header[kHeaderSize], FrameHeader &out,
            uint32_t max_payload)
{
    const auto u16at = [&](size_t off) {
        return static_cast<uint16_t>(header[off] | (header[off + 1] << 8));
    };
    const auto u32at = [&](size_t off) {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(header[off + i]) << (8 * i);
        return v;
    };
    uint64_t id = 0;
    for (int i = 0; i < 8; ++i)
        id |= static_cast<uint64_t>(header[8 + i]) << (8 * i);
    out.version = u16at(4);
    out.kind = u16at(6);
    out.requestId = id;
    out.payloadLen = u32at(16);
    if (u32at(0) != kMagic)
        return HeaderStatus::BadMagic;
    if (out.version != kVersion && out.version != kVersionTraced)
        return HeaderStatus::BadVersion;
    if (out.payloadLen > max_payload || out.payloadLen > kMaxPayload)
        return HeaderStatus::TooLarge;
    return HeaderStatus::Ok;
}

std::string
encodeFrame(MsgKind kind, uint64_t request_id, const std::string &payload)
{
    std::string buf;
    buf.reserve(kHeaderSize + payload.size());
    putU32(buf, kMagic);
    putU16(buf, kVersion);
    putU16(buf, static_cast<uint16_t>(kind));
    putU64(buf, request_id);
    putU32(buf, static_cast<uint32_t>(payload.size()));
    buf.append(payload);
    return buf;
}

// ---------------------------------------------------------------------
// Trace context (v2).

std::string
encodeTraceContext(const TraceContext &ctx)
{
    std::string buf;
    buf.reserve(kTraceContextSize);
    putU64(buf, ctx.traceId);
    putU32(buf, ctx.parentSpanId);
    putU8(buf, ctx.sampled);
    putU8(buf, 0);  // reserved, must be zero
    putU8(buf, 0);
    putU8(buf, 0);
    return buf;
}

bool
decodeTraceContext(const std::string &payload, TraceContext &out,
                   size_t &body_offset)
{
    // Strict like every other decoder: every truncation of the
    // context bytes, a nonzero reserved byte, and an out-of-range
    // sampled flag are all rejected.
    if (payload.size() < kTraceContextSize)
        return false;
    const auto *p = reinterpret_cast<const uint8_t *>(payload.data());
    out.traceId = 0;
    for (int i = 0; i < 8; ++i)
        out.traceId |= static_cast<uint64_t>(p[i]) << (8 * i);
    out.parentSpanId = 0;
    for (int i = 0; i < 4; ++i)
        out.parentSpanId |= static_cast<uint32_t>(p[8 + i]) << (8 * i);
    out.sampled = p[12];
    if (out.sampled > 1 || p[13] != 0 || p[14] != 0 || p[15] != 0)
        return false;
    body_offset = kTraceContextSize;
    return true;
}

std::string
encodeTracedFrame(MsgKind kind, uint64_t request_id,
                  const TraceContext &ctx, const std::string &payload)
{
    std::string buf;
    buf.reserve(kHeaderSize + kTraceContextSize + payload.size());
    putU32(buf, kMagic);
    putU16(buf, kVersionTraced);
    putU16(buf, static_cast<uint16_t>(kind));
    putU64(buf, request_id);
    putU32(buf,
           static_cast<uint32_t>(kTraceContextSize + payload.size()));
    buf.append(encodeTraceContext(ctx));
    buf.append(payload);
    return buf;
}

// ---------------------------------------------------------------------
// Bodies.

std::string
encodeCellRequest(const CellRequest &req)
{
    std::string buf;
    putU8(buf, req.engine);
    putU8(buf, req.variant);
    putU8(buf, req.wantStatsJson);
    putU32(buf, req.deadlineMs);
    putStr(buf, req.benchmark);
    return buf;
}

bool
decodeCellRequest(const std::string &payload, CellRequest &out)
{
    Reader r(payload);
    if (!r.u8(out.engine) || !r.u8(out.variant) ||
        !r.u8(out.wantStatsJson) || !r.u32(out.deadlineMs) ||
        !r.str(out.benchmark))
        return false;
    return r.done() && out.engine <= 1 && out.variant <= 2 &&
           out.wantStatsJson <= 1;
}

std::string
encodeSourceRequest(const SourceRequest &req)
{
    std::string buf;
    putU8(buf, req.engine);
    putU8(buf, req.variant);
    putU8(buf, req.wantStatsJson);
    putU8(buf, req.lang);
    putU32(buf, req.deadlineMs);
    putStr(buf, req.source);
    return buf;
}

bool
decodeSourceRequest(const std::string &payload, SourceRequest &out)
{
    Reader r(payload);
    if (!r.u8(out.engine) || !r.u8(out.variant) ||
        !r.u8(out.wantStatsJson) || !r.u8(out.lang) ||
        !r.u32(out.deadlineMs) || !r.str(out.source))
        return false;
    return r.done() && out.engine <= 1 && out.variant <= 2 &&
           out.wantStatsJson <= 1 && out.lang <= 1;
}

std::string
encodeBatchRequest(const BatchRequest &req)
{
    std::string buf;
    putU32(buf, static_cast<uint32_t>(req.cells.size()));
    for (const CellRequest &cell : req.cells)
        putStr(buf, encodeCellRequest(cell));
    return buf;
}

bool
decodeBatchRequest(const std::string &payload, BatchRequest &out)
{
    Reader r(payload);
    uint32_t count = 0;
    if (!r.u32(count) || count > kMaxBatchCells)
        return false;
    out.cells.clear();
    out.cells.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        std::string body;
        CellRequest cell;
        if (!r.str(body) || !decodeCellRequest(body, cell))
            return false;
        out.cells.push_back(std::move(cell));
    }
    return r.done();
}

std::string
encodeCellResult(const CellResult &result)
{
    std::string buf;
    putU8(buf, result.engine);
    putU8(buf, result.variant);
    putU8(buf, result.fromCache);
    putStr(buf, result.benchmark);
    putU64(buf, result.instructions);
    putU64(buf, result.cycles);
    putStr(buf, result.output);
    putStr(buf, result.statsJson);
    return buf;
}

bool
decodeCellResult(const std::string &payload, CellResult &out)
{
    Reader r(payload);
    if (!r.u8(out.engine) || !r.u8(out.variant) || !r.u8(out.fromCache) ||
        !r.str(out.benchmark) || !r.u64(out.instructions) ||
        !r.u64(out.cycles) || !r.str(out.output) || !r.str(out.statsJson))
        return false;
    return r.done() && out.engine <= 1 && out.variant <= 2 &&
           out.fromCache <= 2;
}

std::string
encodeErrorBody(const ErrorBody &error)
{
    std::string buf;
    putU16(buf, error.code);
    putU8(buf, error.retryable);
    putStr(buf, error.message);
    return buf;
}

bool
decodeErrorBody(const std::string &payload, ErrorBody &out)
{
    Reader r(payload);
    if (!r.u16(out.code) || !r.u8(out.retryable) || !r.str(out.message))
        return false;
    return r.done() && out.retryable <= 1;
}

std::string
encodeBatchResult(const BatchResult &result)
{
    std::string buf;
    putU32(buf, static_cast<uint32_t>(result.items.size()));
    for (const BatchResult::Item &item : result.items) {
        putU8(buf, item.ok ? 1 : 0);
        putStr(buf, item.ok ? encodeCellResult(item.result)
                            : encodeErrorBody(item.error));
    }
    return buf;
}

bool
decodeBatchResult(const std::string &payload, BatchResult &out)
{
    Reader r(payload);
    uint32_t count = 0;
    if (!r.u32(count) || count > kMaxBatchCells)
        return false;
    out.items.clear();
    out.items.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        uint8_t ok = 0;
        std::string body;
        if (!r.u8(ok) || ok > 1 || !r.str(body))
            return false;
        BatchResult::Item item;
        item.ok = ok == 1;
        if (item.ok ? !decodeCellResult(body, item.result)
                    : !decodeErrorBody(body, item.error))
            return false;
        out.items.push_back(std::move(item));
    }
    return r.done();
}

// --- Stateful sessions ---------------------------------------------

std::string
encodeOpenSessionRequest(const OpenSessionRequest &req)
{
    std::string buf;
    putU8(buf, req.engine);
    putU8(buf, req.variant);
    putU32(buf, req.deadlineMs);
    putU64(buf, req.sessionId);
    putStr(buf, req.source);
    return buf;
}

bool
decodeOpenSessionRequest(const std::string &payload,
                         OpenSessionRequest &out)
{
    Reader r(payload);
    if (!r.u8(out.engine) || !r.u8(out.variant) ||
        !r.u32(out.deadlineMs) || !r.u64(out.sessionId) ||
        !r.str(out.source))
        return false;
    return r.done() && out.engine <= 1 && out.variant <= 2;
}

std::string
encodeSubmitChunkRequest(const SubmitChunkRequest &req)
{
    std::string buf;
    putU32(buf, req.deadlineMs);
    putU64(buf, req.sessionId);
    putStr(buf, req.source);
    return buf;
}

bool
decodeSubmitChunkRequest(const std::string &payload,
                         SubmitChunkRequest &out)
{
    Reader r(payload);
    if (!r.u32(out.deadlineMs) || !r.u64(out.sessionId) ||
        !r.str(out.source))
        return false;
    return r.done() && out.sessionId != 0;
}

std::string
encodeSessionIdRequest(const SessionIdRequest &req)
{
    std::string buf;
    putU64(buf, req.sessionId);
    return buf;
}

bool
decodeSessionIdRequest(const std::string &payload, SessionIdRequest &out)
{
    Reader r(payload);
    if (!r.u64(out.sessionId))
        return false;
    return r.done() && out.sessionId != 0;
}

std::string
encodeRestoreSessionRequest(const RestoreSessionRequest &req)
{
    std::string buf;
    putU32(buf, req.deadlineMs);
    putU64(buf, req.sessionId);
    putStr(buf, req.blob);
    return buf;
}

bool
decodeRestoreSessionRequest(const std::string &payload,
                            RestoreSessionRequest &out)
{
    Reader r(payload);
    if (!r.u32(out.deadlineMs) || !r.u64(out.sessionId) ||
        !r.str(out.blob))
        return false;
    return r.done() && !out.blob.empty();
}

std::string
encodeSessionReply(const SessionReply &reply)
{
    std::string buf;
    putU64(buf, reply.sessionId);
    putU64(buf, reply.chunkIndex);
    putU64(buf, reply.instructions);
    putU64(buf, reply.cycles);
    putStr(buf, reply.output);
    return buf;
}

bool
decodeSessionReply(const std::string &payload, SessionReply &out)
{
    Reader r(payload);
    if (!r.u64(out.sessionId) || !r.u64(out.chunkIndex) ||
        !r.u64(out.instructions) || !r.u64(out.cycles) ||
        !r.str(out.output))
        return false;
    return r.done();
}

std::string
encodeSessionSnapshotResult(const SessionSnapshotResult &result)
{
    std::string buf;
    putU64(buf, result.sessionId);
    putStr(buf, result.blob);
    return buf;
}

bool
decodeSessionSnapshotResult(const std::string &payload,
                            SessionSnapshotResult &out)
{
    Reader r(payload);
    if (!r.u64(out.sessionId) || !r.str(out.blob))
        return false;
    return r.done() && !out.blob.empty();
}

std::string
encodeSessionClosedResult(const SessionClosedResult &result)
{
    std::string buf;
    putU64(buf, result.sessionId);
    return buf;
}

bool
decodeSessionClosedResult(const std::string &payload,
                          SessionClosedResult &out)
{
    Reader r(payload);
    if (!r.u64(out.sessionId))
        return false;
    return r.done();
}

std::string
encodeStatsResult(const StatsResult &result)
{
    std::string buf;
    putStr(buf, result.json);
    return buf;
}

bool
decodeStatsResult(const std::string &payload, StatsResult &out)
{
    Reader r(payload);
    if (!r.str(out.json))
        return false;
    return r.done();
}

std::string
encodeMetricsResult(const MetricsResult &result)
{
    std::string buf;
    putStr(buf, result.text);
    return buf;
}

bool
decodeMetricsResult(const std::string &payload, MetricsResult &out)
{
    Reader r(payload);
    if (!r.str(out.text))
        return false;
    return r.done();
}

std::string
encodeHelloResult(const HelloResult &result)
{
    std::string buf;
    putU16(buf, result.maxVersion);
    return buf;
}

bool
decodeHelloResult(const std::string &payload, HelloResult &out)
{
    Reader r(payload);
    if (!r.u16(out.maxVersion))
        return false;
    if (out.maxVersion < 1)
        return false;
    return r.done();
}

std::string
errorFrame(uint64_t request_id, ErrorCode code, const std::string &message)
{
    ErrorBody body;
    body.code = static_cast<uint16_t>(code);
    body.retryable = errorRetryable(code) ? 1 : 0;
    body.message = message;
    return encodeFrame(MsgKind::Error, request_id, encodeErrorBody(body));
}

// ---------------------------------------------------------------------
// Request keys.

uint64_t
fnv1a64(const void *data, size_t len, uint64_t seed)
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

namespace {

uint64_t
hashStr(const std::string &s, uint64_t seed)
{
    // Length-prefixed so ("ab","c") and ("a","bc") cannot collide.
    const uint32_t len = static_cast<uint32_t>(s.size());
    const uint64_t h = fnv1a64(&len, sizeof(len), seed);
    return fnv1a64(s.data(), s.size(), h);
}

} // namespace

uint64_t
cellRequestKey(const CellRequest &req)
{
    const uint8_t fields[3] = {/*tag=*/0, req.engine, req.variant};
    return hashStr(req.benchmark, fnv1a64(fields, sizeof(fields)));
}

uint64_t
sourceRequestKey(const SourceRequest &req)
{
    const uint8_t fields[4] = {/*tag=*/1, req.engine, req.variant,
                               req.lang};
    return hashStr(req.source, fnv1a64(fields, sizeof(fields)));
}

uint64_t
sessionRequestKey(uint64_t session_id)
{
    uint8_t buf[9] = {/*tag=*/2};
    for (int i = 0; i < 8; ++i)
        buf[1 + i] = static_cast<uint8_t>((session_id >> (8 * i)) & 0xFF);
    return fnv1a64(buf, sizeof(buf));
}

uint64_t
batchRequestKey(const BatchRequest &req)
{
    uint64_t h = fnv1a64("batch", 5);
    for (const CellRequest &cell : req.cells) {
        const uint64_t k = cellRequestKey(cell);
        h = fnv1a64(&k, sizeof(k), h);
    }
    return h;
}

} // namespace tarch::serve::proto
