#include "serve/socket_util.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace tarch::serve {

int
readFull(int fd, void *buf, size_t len)
{
    auto *p = static_cast<uint8_t *>(buf);
    size_t got = 0;
    while (got < len) {
        const ssize_t n = ::recv(fd, p + got, len - got, 0);
        if (n == 0)
            return got == 0 ? 0 : -1;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return got == 0 ? 0 : -1;
        }
        got += static_cast<size_t>(n);
    }
    return 1;
}

bool
sendAll(int fd, const char *data, size_t len)
{
    size_t sent = 0;
    while (sent < len) {
        const ssize_t n =
            ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // EAGAIN here is the SO_SNDTIMEO send timeout: the peer
            // stopped reading, so give the connection up.
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

std::string
Endpoint::describe() const
{
    if (!unixPath.empty())
        return "unix:" + unixPath;
    return "tcp:" + std::to_string(tcpPort);
}

bool
parseEndpoint(const std::string &text, Endpoint &out)
{
    out = Endpoint{};
    if (text.rfind("unix:", 0) == 0) {
        out.unixPath = text.substr(5);
        return !out.unixPath.empty();
    }
    if (text.rfind("tcp:", 0) == 0) {
        const std::string port = text.substr(4);
        if (port.empty())
            return false;
        char *end = nullptr;
        const unsigned long n = std::strtoul(port.c_str(), &end, 10);
        if (end == port.c_str() || *end != '\0' || n == 0 || n > 65535)
            return false;
        out.tcpPort = static_cast<int>(n);
        return true;
    }
    return false;
}

int
connectEndpoint(const Endpoint &ep)
{
    if (!ep.unixPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (ep.unixPath.size() >= sizeof(addr.sun_path)) {
            errno = ENAMETOOLONG;
            return -1;
        }
        std::strncpy(addr.sun_path, ep.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            const int err = errno;
            ::close(fd);
            errno = err;
            return -1;
        }
        return fd;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(ep.tcpPort));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

void
setSendTimeout(int fd, uint32_t timeout_ms)
{
    if (timeout_ms == 0)
        return;
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

int
bindUnixListener(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    ::unlink(path.c_str());
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        return -1;
    }
    return fd;
}

int
bindTcpListener(int port, uint16_t &bound_port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    // Loopback only: the serving stack is a local sidecar/cluster, not
    // an internet-facing endpoint.
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        return -1;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len) ==
        0)
        bound_port = ntohs(bound.sin_port);
    return fd;
}

FrameConn::~FrameConn()
{
    if (fd >= 0)
        ::close(fd);
}

bool
FrameConn::sendFrame(const std::string &frame)
{
    std::lock_guard<std::mutex> lock(writeMu);
    if (!open.load())
        return false;
    if (!sendAll(fd, frame.data(), frame.size())) {
        // The failed send may have left a PARTIAL frame on the wire —
        // the byte stream is desynchronized and any further frame
        // would be garbage spliced mid-frame.  Shut the socket down so
        // the reader stops consuming requests whose answers can never
        // be delivered and the connection is reclaimed.
        open.store(false);
        ::shutdown(fd, SHUT_RDWR);
        return false;
    }
    return true;
}

void
FrameConn::shutdownNow()
{
    if (open.exchange(false))
        ::shutdown(fd, SHUT_RDWR);
}

void
FrameConn::closeFd()
{
    std::lock_guard<std::mutex> lock(writeMu);
    open.store(false);
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace tarch::serve
