#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <functional>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.h"
#include "common/strutil.h"
#include "serve/socket_util.h"

namespace tarch::serve {

// ---------------------------------------------------------------------
// Connection / Job.

/** FrameConn (socket_util.h) carries the fd, the serialized frame
    writer — which shuts the connection down on ANY send failure,
    because a send-timeout mid-frame leaves the byte stream
    desynchronized — and the reader thread.  Shared with Router. */
struct Server::Connection : FrameConn {};

struct Server::Job {
    std::shared_ptr<Connection> conn;
    uint64_t requestId = 0;
    proto::MsgKind kind = proto::MsgKind::RunCell;
    proto::CellRequest cell;
    proto::SourceRequest source;
    proto::BatchRequest batch;
    proto::OpenSessionRequest openSession;
    proto::SubmitChunkRequest submitChunk;
    proto::SessionIdRequest sessionId;
    proto::RestoreSessionRequest restoreSession;
    std::chrono::steady_clock::time_point deadline;
    /** Queue-wait accounting + stage histograms. */
    std::chrono::steady_clock::time_point enqueuedAt;
    /** Wall-clock enqueue time: the server.queue span must share the
        cross-process timebase, not the steady clock. */
    uint64_t enqueueWallUs = 0;
    /** v2 trace context ({} for v1 frames — traceId 0 records nothing). */
    proto::TraceContext trace;
    std::atomic<bool> answered{false};
};

// ---------------------------------------------------------------------
// Health.

/** The replies_by_code object: "ok" plus every ErrorCode name, all
    keys always rendered so schema-gated consumers can rely on them. */
static std::string
repliesByCodeJson(
    const std::array<uint64_t, proto::kNumErrorCodes> &replies)
{
    std::string out =
        strformat("{\"ok\":%llu", (unsigned long long)replies[0]);
    for (uint16_t code = 1; code < proto::kNumErrorCodes; ++code)
        out += strformat(
            ",\"%s\":%llu",
            std::string(proto::errorCodeName(
                            static_cast<proto::ErrorCode>(code)))
                .c_str(),
            (unsigned long long)replies[code]);
    out += "}";
    return out;
}

std::string
Server::Health::toJson() const
{
    return strformat(
        "{\"schema\":\"tarch-serve-stats-v2\","
        "\"accepted_connections\":%llu,"
        "\"active_connections\":%llu,"
        "\"reclaimed_connections\":%llu,"
        "\"received\":%llu,"
        "\"completed\":%llu,"
        "\"errors\":%llu,"
        "\"busy_rejected\":%llu,"
        "\"deadline_exceeded\":%llu,"
        "\"framing_errors\":%llu,"
        "\"queue_depth\":%llu,"
        "\"in_flight\":%llu,"
        "\"replies_by_code\":%s,"
        "\"cache_mem_hits\":%llu,"
        "\"cache_disk_hits\":%llu,"
        "\"source_mem_hits\":%llu,"
        "\"simulated\":%llu,"
        "\"single_flight_waits\":%llu,"
        "\"verify_rejected\":%llu,"
        "\"sessions_open\":%llu,"
        "\"sessions_opened\":%llu,"
        "\"sessions_closed\":%llu,"
        "\"session_chunks_run\":%llu,"
        "\"sessions_evicted\":%llu,"
        "\"sessions_resumed\":%llu,"
        "\"sessions_restored\":%llu,"
        "\"session_snapshots\":%llu,"
        "\"draining\":%s,"
        "\"uptime_ms\":%llu,"
        "\"uptime_seconds\":%llu,"
        "\"slow_log\":%s}",
        (unsigned long long)acceptedConnections,
        (unsigned long long)activeConnections,
        (unsigned long long)reclaimedConnections,
        (unsigned long long)received, (unsigned long long)completed,
        (unsigned long long)errors, (unsigned long long)busyRejected,
        (unsigned long long)deadlineExceeded,
        (unsigned long long)framingErrors, (unsigned long long)queueDepth,
        (unsigned long long)inFlight,
        repliesByCodeJson(repliesByCode).c_str(),
        (unsigned long long)sim.memHits,
        (unsigned long long)sim.diskHits,
        (unsigned long long)sim.sourceMemHits,
        (unsigned long long)sim.simulated,
        (unsigned long long)sim.singleFlightWaits,
        (unsigned long long)sim.verifyRejected,
        (unsigned long long)sessions.openNow,
        (unsigned long long)sessions.opened,
        (unsigned long long)sessions.closed,
        (unsigned long long)sessions.chunksRun,
        (unsigned long long)sessions.evicted,
        (unsigned long long)sessions.resumed,
        (unsigned long long)sessions.restored,
        (unsigned long long)sessions.snapshots,
        draining ? "true" : "false", (unsigned long long)uptimeMs,
        (unsigned long long)(uptimeMs / 1000), slowLogJson.c_str());
}

// ---------------------------------------------------------------------
// Lifecycle.

Server::Server(const Config &config)
    : config_(config), service_(config.sim), sessions_(config.sessions),
      slowLog_(config.slowLog)
{
    registerMetrics();
}

void
Server::registerMetrics()
{
    // Counters the server already maintains are exported as callback
    // series: exposition reads the atomics at scrape time, so a daemon
    // nobody scrapes pays nothing for its metrics plane.
    static const char *kKindNames[14] = {
        nullptr,        "run_cell",        "run_source",
        "run_batch",    "stats",           "drain",
        "ping",         "metrics",         "hello",
        "open_session", "submit_chunk",    "snapshot_session",
        "restore_session", "close_session"};
    for (int k = 1; k < 14; ++k)
        registry_.counterFn(
            "tarch_serve_requests_total", "Well-framed requests by kind",
            strformat("kind=\"%s\"", kKindNames[k]),
            [this, k] { return requestsByKind_[k].load(); });
    registry_.counterFn("tarch_serve_replies_total",
                        "Reply frames sent by outcome", "code=\"ok\"",
                        [this] { return repliesByCode_[0].load(); });
    for (uint16_t code = 1; code < proto::kNumErrorCodes; ++code)
        registry_.counterFn(
            "tarch_serve_replies_total", "Reply frames sent by outcome",
            strformat("code=\"%s\"",
                      std::string(proto::errorCodeName(
                                      static_cast<proto::ErrorCode>(code)))
                          .c_str()),
            [this, code] { return repliesByCode_[code].load(); });
    registry_.counterFn("tarch_serve_busy_rejected_total",
                        "Requests shed by the full queue", "",
                        [this] { return busyRejected_.load(); });
    registry_.counterFn("tarch_serve_deadline_exceeded_total",
                        "Requests answered DeadlineExceeded", "",
                        [this] { return deadlineExceeded_.load(); });
    registry_.counterFn("tarch_serve_framing_errors_total",
                        "Connections poisoned by framing errors", "",
                        [this] { return framingErrors_.load(); });
    registry_.counterFn(
        "tarch_serve_cache_hits_total", "Cell cache hits by tier",
        "tier=\"mem\"", [this] { return service_.counters().memHits; });
    registry_.counterFn(
        "tarch_serve_cache_hits_total", "Cell cache hits by tier",
        "tier=\"disk\"", [this] { return service_.counters().diskHits; });
    registry_.counterFn(
        "tarch_serve_cache_hits_total", "Cell cache hits by tier",
        "tier=\"source_mem\"",
        [this] { return service_.counters().sourceMemHits; });
    registry_.counterFn(
        "tarch_serve_simulated_total", "Requests actually simulated", "",
        [this] { return service_.counters().simulated; });
    registry_.counterFn(
        "tarch_serve_single_flight_waits_total",
        "Requests that parked behind an identical in-flight one", "",
        [this] { return service_.counters().singleFlightWaits; });
    registry_.counterFn(
        "tarch_serve_verify_rejected_total",
        "Source requests rejected by the static verifier", "",
        [this] { return service_.counters().verifyRejected; });
    // Session plane (docs/SERVING.md, "Stateful sessions").
    registry_.gaugeFn("tarch_serve_sessions_open",
                      "Live in-memory sessions", "", [this] {
                          return static_cast<int64_t>(
                              sessions_.counters().openNow);
                      });
    registry_.counterFn("tarch_serve_sessions_opened_total",
                        "Sessions created by OpenSession", "", [this] {
                            return sessions_.counters().opened;
                        });
    registry_.counterFn("tarch_serve_sessions_closed_total",
                        "Sessions closed (explicitly or on a fault)", "",
                        [this] { return sessions_.counters().closed; });
    registry_.counterFn("tarch_serve_session_chunks_total",
                        "Session chunks compiled, verified and run", "",
                        [this] {
                            return sessions_.counters().chunksRun;
                        });
    registry_.counterFn("tarch_serve_sessions_evicted_total",
                        "Idle sessions parked to disk as snapshots", "",
                        [this] { return sessions_.counters().evicted; });
    registry_.counterFn("tarch_serve_sessions_resumed_total",
                        "Evicted sessions transparently resumed", "",
                        [this] { return sessions_.counters().resumed; });
    registry_.counterFn(
        "tarch_serve_sessions_migrated_total",
        "Sessions installed from RestoreSession blobs", "",
        [this] { return sessions_.counters().restored; });
    registry_.counterFn("tarch_serve_session_snapshots_total",
                        "SnapshotSession blobs served", "", [this] {
                            return sessions_.counters().snapshots;
                        });
    SessionManager::Metrics sessionMetrics;
    sessionMetrics.snapshotBytes = &registry_.histogram(
        "tarch_serve_snapshot_bytes",
        "tarch-snap-v1 blob size (bytes)", "");
    sessionMetrics.snapshotUs = &registry_.histogram(
        "tarch_serve_snapshot_latency_us",
        "Session snapshot encode latency (microseconds)", "");
    sessionMetrics.restoreUs = &registry_.histogram(
        "tarch_serve_restore_latency_us",
        "Session restore/resume latency (microseconds)", "");
    sessions_.setMetrics(sessionMetrics);
    registry_.counterFn("tarch_serve_accepted_connections_total",
                        "Connections accepted", "",
                        [this] { return acceptedConnections_.load(); });
    registry_.counterFn("tarch_serve_slow_log_recorded_total",
                        "Requests captured by the slow log", "",
                        [this] { return slowLog_.recorded(); });
    registry_.gaugeFn("tarch_serve_queue_depth",
                      "Requests waiting for a worker", "", [this] {
                          return static_cast<int64_t>(
                              pool_ ? pool_->pending() : 0);
                      });
    registry_.gaugeFn("tarch_serve_in_flight",
                      "Requests queued or executing", "", [this] {
                          std::lock_guard<std::mutex> lock(jobsMu_);
                          return static_cast<int64_t>(jobs_.size());
                      });
    registry_.gaugeFn("tarch_serve_uptime_seconds",
                      "Seconds since start()", "", [this] {
                          if (!started_.load())
                              return int64_t{0};
                          return static_cast<int64_t>(
                              std::chrono::duration_cast<
                                  std::chrono::seconds>(
                                  std::chrono::steady_clock::now() -
                                  startTime_)
                                  .count());
                      });
    stageQueueUs_ = &registry_.histogram(
        "tarch_serve_stage_latency_us",
        "Per-stage request latency (microseconds)", "stage=\"queue\"");
    stageRunUs_ = &registry_.histogram(
        "tarch_serve_stage_latency_us",
        "Per-stage request latency (microseconds)", "stage=\"run\"");
    stageTotalUs_ = &registry_.histogram(
        "tarch_serve_stage_latency_us",
        "Per-stage request latency (microseconds)", "stage=\"total\"");
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (config_.unixPath.empty() && config_.tcpPort < 0)
        tarch_fatal("serve: no listener configured (need a Unix socket "
                    "path or a TCP port)");
    if (started_.exchange(true))
        tarch_fatal("serve: start() called twice");
    startTime_ = std::chrono::steady_clock::now();

    Pool::Options pool_opts;
    pool_opts.jobs = config_.jobs;
    pool_opts.jobsEnvVar = "TARCH_SERVE_JOBS";
    pool_opts.queueCapacity = config_.queueCapacity;
    pool_ = std::make_unique<Pool>(pool_opts);

    if (!config_.unixPath.empty()) {
        unixFd_ = bindUnixListener(config_.unixPath);
        if (unixFd_ < 0)
            tarch_fatal("serve: cannot listen on %s: %s",
                        config_.unixPath.c_str(), std::strerror(errno));
        boundUnixPath_ = config_.unixPath;
    }

    if (config_.tcpPort >= 0) {
        tcpFd_ = bindTcpListener(config_.tcpPort, boundTcpPort_);
        if (tcpFd_ < 0)
            tarch_fatal("serve: cannot listen on 127.0.0.1:%d: %s",
                        config_.tcpPort, std::strerror(errno));
    }

    if (unixFd_ >= 0)
        acceptors_.emplace_back([this] { acceptLoop(unixFd_); });
    if (tcpFd_ >= 0)
        acceptors_.emplace_back([this] { acceptLoop(tcpFd_); });
    reaper_ = std::thread([this] { reaperLoop(); });
    drainWaiter_ = std::thread([this] { drainWaiterLoop(); });
}

void
Server::acceptLoop(int listen_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load() || draining_.load())
                return; // the listener was shut down for drain/stop
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (errno == EMFILE || errno == ENFILE ||
                errno == ENOBUFS || errno == ENOMEM ||
                errno == EAGAIN || errno == EWOULDBLOCK) {
                // Resource exhaustion is transient (the reaper frees
                // fds as clients disconnect); back off briefly instead
                // of permanently abandoning the listener.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                continue;
            }
            tarch_warn("serve: accept: %s; listener closed",
                       std::strerror(errno));
            return;
        }
        if (draining_.load()) {
            ::close(fd);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        setSendTimeout(fd, config_.sendTimeoutMs);
        acceptedConnections_.fetch_add(1);
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lock(connsMu_);
            conns_.push_back(conn);
            // The reader must be assigned under connsMu_: a client that
            // disconnects instantly lets readerLoop retire the
            // connection while this assignment is still in flight, and
            // the reaper would then read conn->reader mid-move (and,
            // seeing it unjoinable, drop a joinable thread —
            // std::terminate).  retireConnection takes connsMu_, so the
            // lock orders retirement after the assignment completes.
            conn->reader =
                std::thread([this, conn] { readerLoop(conn); });
        }
    }
}

void
Server::readerLoop(std::shared_ptr<Connection> conn)
{
    for (;;) {
        uint8_t header[proto::kHeaderSize];
        const int got = readFull(conn->fd, header, sizeof(header));
        if (got <= 0) {
            // got == 0: clean close at a frame boundary.  got < 0: a
            // mid-frame disconnect — nothing left to answer either way.
            break;
        }
        proto::FrameHeader fh;
        const proto::HeaderStatus status =
            proto::parseHeader(header, fh, config_.maxPayload);
        if (status != proto::HeaderStatus::Ok) {
            // A framing error poisons the byte stream: answer with the
            // matching typed error, then isolate (close) only this
            // connection.
            framingErrors_.fetch_add(1);
            const proto::ErrorCode code =
                status == proto::HeaderStatus::BadMagic
                    ? proto::ErrorCode::BadMagic
                : status == proto::HeaderStatus::BadVersion
                    ? proto::ErrorCode::BadVersion
                    : proto::ErrorCode::PayloadTooLarge;
            countReply(static_cast<uint16_t>(code));
            conn->sendFrame(proto::errorFrame(
                fh.requestId, code,
                strformat("framing error: %s",
                          std::string(proto::errorCodeName(code))
                              .c_str())));
            break;
        }
        std::string payload(fh.payloadLen, '\0');
        if (fh.payloadLen > 0 &&
            readFull(conn->fd, payload.data(), payload.size()) != 1)
            break; // mid-frame disconnect
        proto::TraceContext ctx;
        if (fh.version == proto::kVersionTraced) {
            // v2: the payload is prefixed by a 16-byte trace context.
            // A truncated or malformed context is a payload error, not
            // a framing error — typed reply, connection survives.
            size_t body_offset = 0;
            if (!proto::isRequestKind(fh.kind) ||
                !proto::decodeTraceContext(payload, ctx, body_offset)) {
                errors_.fetch_add(1);
                countReply(static_cast<uint16_t>(
                    proto::ErrorCode::BadFrame));
                conn->sendFrame(proto::errorFrame(
                    fh.requestId, proto::ErrorCode::BadFrame,
                    "malformed v2 trace context"));
                continue;
            }
            payload.erase(0, body_offset);
        }
        dispatch(conn, fh, std::move(payload), ctx);
    }
    conn->shutdownNow();
    // Hand the connection to the reaper, which joins this thread and
    // closes the fd — churned connections must not accumulate.
    retireConnection(conn);
}

void
Server::retireConnection(const std::shared_ptr<Connection> &conn)
{
    std::lock_guard<std::mutex> lock(connsMu_);
    for (size_t i = 0; i < conns_.size(); ++i) {
        if (conns_[i] == conn) {
            conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
            break;
        }
    }
    reapList_.push_back(conn);
}

void
Server::reapConnections(std::vector<std::shared_ptr<Connection>> &dead)
{
    for (const std::shared_ptr<Connection> &conn : dead) {
        // The reader pushed itself onto the reap list as its last act,
        // so this join completes promptly.
        if (conn->reader.joinable())
            conn->reader.join();
        conn->closeFd();
        reclaimedConnections_.fetch_add(1);
    }
    dead.clear();
}

void
Server::countReply(uint16_t code)
{
    if (code < repliesByCode_.size())
        repliesByCode_[code].fetch_add(1);
}

void
Server::dispatch(const std::shared_ptr<Connection> &conn,
                 const proto::FrameHeader &header, std::string payload,
                 const proto::TraceContext &ctx)
{
    received_.fetch_add(1);
    if (header.kind < requestsByKind_.size())
        requestsByKind_[header.kind].fetch_add(1);
    const auto kind = static_cast<proto::MsgKind>(header.kind);
    switch (kind) {
      case proto::MsgKind::Ping:
        countReply(0);
        conn->sendFrame(
            proto::encodeFrame(proto::MsgKind::Pong, header.requestId, ""));
        return;
      case proto::MsgKind::Stats: {
        proto::StatsResult stats;
        stats.json = health().toJson();
        countReply(0);
        conn->sendFrame(proto::encodeFrame(proto::MsgKind::StatsResult,
                                           header.requestId,
                                           proto::encodeStatsResult(stats)));
        return;
      }
      case proto::MsgKind::Metrics: {
        proto::MetricsResult metrics;
        metrics.text = registry_.renderPrometheus();
        countReply(0);
        conn->sendFrame(
            proto::encodeFrame(proto::MsgKind::MetricsResult,
                               header.requestId,
                               proto::encodeMetricsResult(metrics)));
        return;
      }
      case proto::MsgKind::Hello: {
        proto::HelloResult hello;
        hello.maxVersion =
            config_.advertiseTracing ? proto::kMaxVersion : 1;
        countReply(0);
        conn->sendFrame(
            proto::encodeFrame(proto::MsgKind::HelloResult,
                               header.requestId,
                               proto::encodeHelloResult(hello)));
        return;
      }
      case proto::MsgKind::Drain:
        countReply(0);
        conn->sendFrame(proto::encodeFrame(proto::MsgKind::DrainStarted,
                                           header.requestId, ""));
        requestDrain();
        return;
      case proto::MsgKind::RunCell:
      case proto::MsgKind::RunSource:
      case proto::MsgKind::RunBatch:
      case proto::MsgKind::OpenSession:
      case proto::MsgKind::SubmitChunk:
      case proto::MsgKind::SnapshotSession:
      case proto::MsgKind::RestoreSession:
      case proto::MsgKind::CloseSession:
        enqueue(conn, header, std::move(payload), ctx);
        return;
      default:
        errors_.fetch_add(1);
        countReply(
            static_cast<uint16_t>(proto::ErrorCode::UnknownKind));
        conn->sendFrame(proto::errorFrame(
            header.requestId, proto::ErrorCode::UnknownKind,
            strformat("unknown request kind %u", header.kind)));
        return;
    }
}

void
Server::enqueue(const std::shared_ptr<Connection> &conn,
                const proto::FrameHeader &header, std::string payload,
                const proto::TraceContext &ctx)
{
    auto job = std::make_shared<Job>();
    job->conn = conn;
    job->requestId = header.requestId;
    job->kind = static_cast<proto::MsgKind>(header.kind);
    job->trace = ctx;
    job->enqueuedAt = std::chrono::steady_clock::now();
    if (ctx.recording())
        job->enqueueWallUs = obs::SpanRecorder::wallNowUs();

    uint32_t deadline_ms = 0;
    bool ok = false;
    switch (job->kind) {
      case proto::MsgKind::RunCell:
        ok = proto::decodeCellRequest(payload, job->cell);
        deadline_ms = job->cell.deadlineMs;
        break;
      case proto::MsgKind::RunSource:
        ok = proto::decodeSourceRequest(payload, job->source);
        deadline_ms = job->source.deadlineMs;
        break;
      case proto::MsgKind::RunBatch:
        ok = proto::decodeBatchRequest(payload, job->batch);
        for (const proto::CellRequest &cell : job->batch.cells)
            deadline_ms = std::max(deadline_ms, cell.deadlineMs);
        break;
      case proto::MsgKind::OpenSession:
        ok = proto::decodeOpenSessionRequest(payload, job->openSession);
        deadline_ms = job->openSession.deadlineMs;
        break;
      case proto::MsgKind::SubmitChunk:
        ok = proto::decodeSubmitChunkRequest(payload, job->submitChunk);
        deadline_ms = job->submitChunk.deadlineMs;
        break;
      case proto::MsgKind::SnapshotSession:
      case proto::MsgKind::CloseSession:
        // No deadline field: snapshot/close are cheap bookkeeping, the
        // server default bounds them.
        ok = proto::decodeSessionIdRequest(payload, job->sessionId);
        break;
      case proto::MsgKind::RestoreSession:
        ok = proto::decodeRestoreSessionRequest(payload,
                                                job->restoreSession);
        deadline_ms = job->restoreSession.deadlineMs;
        break;
      default:
        break;
    }
    if (!ok) {
        // Malformed payload inside a well-framed request: typed error,
        // and the connection survives.
        errors_.fetch_add(1);
        countReply(static_cast<uint16_t>(proto::ErrorCode::BadFrame));
        conn->sendFrame(proto::errorFrame(header.requestId,
                                          proto::ErrorCode::BadFrame,
                                          "malformed request payload"));
        return;
    }
    if (deadline_ms == 0)
        deadline_ms = config_.defaultDeadlineMs;
    job->deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(deadline_ms);

    {
        // Check-and-register under jobsMu_ so no job slips in after the
        // drain waiter saw jobs_ empty; the rejection frame itself goes
        // out after the lock is dropped — sendFrame can block on a slow
        // client, and jobsMu_ gates finishJob on every worker.
        std::unique_lock<std::mutex> lock(jobsMu_);
        if (draining_.load()) {
            lock.unlock();
            errors_.fetch_add(1);
            countReply(
                static_cast<uint16_t>(proto::ErrorCode::Draining));
            conn->sendFrame(proto::errorFrame(
                header.requestId, proto::ErrorCode::Draining,
                "server is draining"));
            return;
        }
        jobs_.push_back(job);
    }
    if (!pool_->trySubmit([this, job] { execute(job); })) {
        // Backpressure: a full queue answers a retryable BUSY frame
        // instead of stalling the socket.
        finishJob(job);
        busyRejected_.fetch_add(1);
        errors_.fetch_add(1);
        countReply(static_cast<uint16_t>(proto::ErrorCode::Busy));
        conn->sendFrame(proto::errorFrame(header.requestId,
                                          proto::ErrorCode::Busy,
                                          "request queue is full"));
    }
}

proto::CellResult
Server::runCellChecked(const proto::CellRequest &req,
                       const RequestTrace &trace)
{
    return service_.runCell(req, trace);
}

void
Server::execute(const std::shared_ptr<Job> &job)
{
    // The reaper may already have answered (deadline spent in queue);
    // skip the simulation entirely in that case.
    if (job->answered.load()) {
        finishJob(job);
        return;
    }
    const auto dequeuedAt = std::chrono::steady_clock::now();
    const uint64_t queue_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            dequeuedAt - job->enqueuedAt)
            .count());
    stageQueueUs_->record(queue_us);

    const bool traced = job->trace.recording();
    if (traced) {
        // server.queue covers reader-enqueue to worker-pickup; it is
        // recorded retroactively (its timing already happened), so the
        // span id is minted here and parented like server.run.
        obs::SpanRecord queueSpan;
        queueSpan.traceId = job->trace.traceId;
        queueSpan.spanId = spans_.nextSpanId();
        queueSpan.parentSpanId = job->trace.parentSpanId;
        queueSpan.startUs = job->enqueueWallUs;
        queueSpan.durUs = queue_us;
        queueSpan.tid = std::hash<std::thread::id>{}(
            std::this_thread::get_id());
        queueSpan.name = "server.queue";
        spans_.record(std::move(queueSpan));
    }
    obs::SpanScope runSpan(traced ? &spans_ : nullptr,
                           job->trace.traceId, job->trace.parentSpanId,
                           "server.run");
    RequestTrace trace;
    if (runSpan.active()) {
        trace.recorder = &spans_;
        trace.traceId = job->trace.traceId;
        trace.parentSpan = runSpan.id();
    }

    if (dequeuedAt >= job->deadline) {
        answer(job,
               proto::errorFrame(job->requestId,
                                 proto::ErrorCode::DeadlineExceeded,
                                 "deadline exceeded before execution"),
               static_cast<uint16_t>(proto::ErrorCode::DeadlineExceeded));
        finishJob(job);
        return;
    }

    std::string frame;
    uint16_t reply_code = 0;
    uint8_t from_cache = 0;
    std::string detail;
    try {
        switch (job->kind) {
          case proto::MsgKind::RunCell: {
            detail = job->cell.benchmark;
            const proto::CellResult result =
                runCellChecked(job->cell, trace);
            from_cache = result.fromCache;
            frame = proto::encodeFrame(proto::MsgKind::CellResult,
                                       job->requestId,
                                       proto::encodeCellResult(result));
            break;
          }
          case proto::MsgKind::RunSource: {
            detail = strformat(
                "src/%016llx", (unsigned long long)
                                   proto::sourceRequestKey(job->source));
            const proto::CellResult result =
                service_.runSource(job->source, trace);
            from_cache = result.fromCache;
            frame = proto::encodeFrame(proto::MsgKind::CellResult,
                                       job->requestId,
                                       proto::encodeCellResult(result));
            break;
          }
          case proto::MsgKind::RunBatch: {
            detail = strformat("batch(%zu)", job->batch.cells.size());
            proto::BatchResult batch;
            batch.items.reserve(job->batch.cells.size());
            for (const proto::CellRequest &cell : job->batch.cells) {
                proto::BatchResult::Item item;
                if (std::chrono::steady_clock::now() >= job->deadline) {
                    item.ok = false;
                    item.error.code = static_cast<uint16_t>(
                        proto::ErrorCode::DeadlineExceeded);
                    item.error.message =
                        "batch deadline exceeded before this cell";
                } else {
                    try {
                        item.result = runCellChecked(cell, trace);
                        item.ok = true;
                    } catch (const ServiceError &e) {
                        item.ok = false;
                        item.error.code =
                            static_cast<uint16_t>(e.code);
                        item.error.retryable =
                            proto::errorRetryable(e.code) ? 1 : 0;
                        item.error.message = e.message;
                    }
                }
                batch.items.push_back(std::move(item));
            }
            frame = proto::encodeFrame(proto::MsgKind::BatchResult,
                                       job->requestId,
                                       proto::encodeBatchResult(batch));
            break;
          }
          case proto::MsgKind::OpenSession: {
            detail = strformat(
                "open/%016llx",
                (unsigned long long)job->openSession.sessionId);
            const proto::SessionReply reply =
                sessions_.open(job->openSession, trace);
            frame = proto::encodeFrame(proto::MsgKind::SessionOpened,
                                       job->requestId,
                                       proto::encodeSessionReply(reply));
            break;
          }
          case proto::MsgKind::SubmitChunk: {
            detail = strformat(
                "sess/%016llx",
                (unsigned long long)job->submitChunk.sessionId);
            const proto::SessionReply reply =
                sessions_.submit(job->submitChunk, trace);
            frame = proto::encodeFrame(proto::MsgKind::ChunkResult,
                                       job->requestId,
                                       proto::encodeSessionReply(reply));
            break;
          }
          case proto::MsgKind::SnapshotSession: {
            detail = strformat(
                "snap/%016llx",
                (unsigned long long)job->sessionId.sessionId);
            const proto::SessionSnapshotResult result =
                sessions_.snapshot(job->sessionId.sessionId, trace);
            frame = proto::encodeFrame(
                proto::MsgKind::SessionSnapshot, job->requestId,
                proto::encodeSessionSnapshotResult(result));
            break;
          }
          case proto::MsgKind::RestoreSession: {
            detail = strformat(
                "restore/%016llx",
                (unsigned long long)job->restoreSession.sessionId);
            const proto::SessionReply reply =
                sessions_.restore(job->restoreSession, trace);
            frame = proto::encodeFrame(proto::MsgKind::SessionOpened,
                                       job->requestId,
                                       proto::encodeSessionReply(reply));
            break;
          }
          case proto::MsgKind::CloseSession: {
            detail = strformat(
                "close/%016llx",
                (unsigned long long)job->sessionId.sessionId);
            const proto::SessionClosedResult result =
                sessions_.close(job->sessionId.sessionId);
            frame = proto::encodeFrame(
                proto::MsgKind::SessionClosed, job->requestId,
                proto::encodeSessionClosedResult(result));
            break;
          }
          default:
            frame = proto::errorFrame(job->requestId,
                                      proto::ErrorCode::Internal,
                                      "unexpected job kind");
            reply_code =
                static_cast<uint16_t>(proto::ErrorCode::Internal);
            break;
        }
    } catch (const ServiceError &e) {
        frame = proto::errorFrame(job->requestId, e.code, e.message);
        reply_code = static_cast<uint16_t>(e.code);
    } catch (const std::exception &e) {
        frame = proto::errorFrame(job->requestId,
                                  proto::ErrorCode::Internal, e.what());
        reply_code = static_cast<uint16_t>(proto::ErrorCode::Internal);
    }

    const uint64_t run_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - dequeuedAt)
            .count());
    stageRunUs_->record(run_us);
    const uint64_t total_us = queue_us + run_us;
    stageTotalUs_->record(total_us);
    if (runSpan.active()) {
        if (!detail.empty())
            runSpan.setDetail(detail);
        runSpan.end();
    }
    if (slowLog_.shouldLog(total_us)) {
        SlowLogEntry entry;
        entry.wallMs = obs::SpanRecorder::wallNowUs() / 1000;
        entry.traceId = job->trace.traceId;
        entry.kind = static_cast<uint16_t>(job->kind);
        entry.errorCode = reply_code;
        entry.fromCache = from_cache;
        entry.queueUs = queue_us;
        entry.runUs = run_us;
        entry.totalUs = total_us;
        entry.detail = detail;
        slowLog_.record(std::move(entry));
    }

    // A request whose deadline passed during simulation is answered by
    // the reaper; the late result is discarded here (answer() refuses a
    // second reply) and the connection survives.
    answer(job, frame, reply_code);
    finishJob(job);
}

bool
Server::answer(const std::shared_ptr<Job> &job, const std::string &frame,
               uint16_t code)
{
    bool expected = false;
    if (!job->answered.compare_exchange_strong(expected, true))
        return false;
    if (code != 0)
        errors_.fetch_add(1);
    else
        completed_.fetch_add(1);
    countReply(code);
    job->conn->sendFrame(frame);
    return true;
}

void
Server::finishJob(const std::shared_ptr<Job> &job)
{
    std::lock_guard<std::mutex> lock(jobsMu_);
    for (size_t i = 0; i < jobs_.size(); ++i) {
        if (jobs_[i] == job) {
            jobs_.erase(jobs_.begin() + static_cast<ptrdiff_t>(i));
            break;
        }
    }
    if (jobs_.empty())
        jobsCv_.notify_all();
}

void
Server::reaperLoop()
{
    while (!stopping_.load()) {
        std::vector<std::shared_ptr<Job>> expired;
        const auto now = std::chrono::steady_clock::now();
        {
            std::lock_guard<std::mutex> lock(jobsMu_);
            for (const std::shared_ptr<Job> &job : jobs_)
                if (!job->answered.load() && now >= job->deadline)
                    expired.push_back(job);
        }
        for (const std::shared_ptr<Job> &job : expired) {
            if (answer(job,
                       proto::errorFrame(
                           job->requestId,
                           proto::ErrorCode::DeadlineExceeded,
                           "deadline exceeded"),
                       static_cast<uint16_t>(
                           proto::ErrorCode::DeadlineExceeded)))
                deadlineExceeded_.fetch_add(1);
            // The job stays in jobs_ until its worker finishes — drain
            // still waits for the simulation itself to retire.
        }
        std::vector<std::shared_ptr<Connection>> dead;
        {
            std::lock_guard<std::mutex> lock(connsMu_);
            dead.swap(reapList_);
        }
        reapConnections(dead);
        // Idle SESSIONS are not expired work: they are evicted to disk
        // as snapshots (state movement, internally rate-limited) and
        // transparently resumed — never answered DeadlineExceeded, and
        // they pin no worker while idle.
        sessions_.sweepIdle();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

void
Server::requestDrain()
{
    if (draining_.exchange(true))
        return;
    // Wake the acceptors; their listen sockets stay bound (and are
    // closed in stop()) but accept() now fails immediately.
    if (unixFd_ >= 0)
        ::shutdown(unixFd_, SHUT_RDWR);
    if (tcpFd_ >= 0)
        ::shutdown(tcpFd_, SHUT_RDWR);
    // Wake the pre-created drain waiter (see start()); taking drainMu_
    // pairs with its predicate check so the notify cannot be missed.
    std::lock_guard<std::mutex> lock(drainMu_);
    drainCv_.notify_all();
}

void
Server::drainWaiterLoop()
{
    {
        std::unique_lock<std::mutex> lock(drainMu_);
        drainCv_.wait(lock, [this] { return draining_.load(); });
    }
    {
        std::unique_lock<std::mutex> lock(jobsMu_);
        jobsCv_.wait(lock, [this] { return jobs_.empty(); });
    }
    if (pool_)
        pool_->drain();
    // Every job has retired, so all sessions are quiescent; park them
    // on disk so a restart (or a migrating router) can resume them.
    sessions_.evictAll();
    closeAllConnections();
    drained_.store(true);
    std::lock_guard<std::mutex> lock(drainMu_);
    drainCv_.notify_all();
}

bool
Server::drained() const
{
    return drained_.load();
}

void
Server::waitDrained()
{
    std::unique_lock<std::mutex> lock(drainMu_);
    drainCv_.wait(lock, [this] { return drained_.load(); });
}

void
Server::closeAllConnections()
{
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        conns = conns_;
    }
    for (const std::shared_ptr<Connection> &conn : conns)
        conn->shutdownNow();
}

void
Server::stop()
{
    if (!started_.load())
        return;
    if (stopping_.exchange(true))
        return;
    requestDrain();
    // No waiter thread means start() threw before spawning threads —
    // there is nothing in flight to wait for.
    if (drainWaiter_.joinable())
        waitDrained();
    else
        drained_.store(true);
    for (std::thread &t : acceptors_)
        t.join();
    acceptors_.clear();
    if (reaper_.joinable())
        reaper_.join();
    if (drainWaiter_.joinable())
        drainWaiter_.join();
    // Final sweep: the reaper is gone, so reclaim whatever it had not
    // gotten to — both still-registered connections and retired ones.
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        conns.swap(conns_);
        conns.insert(conns.end(), reapList_.begin(), reapList_.end());
        reapList_.clear();
    }
    reapConnections(conns);
    // A reader that was mid-exit during the swap re-added itself to
    // reapList_; it was joined and closed via the conns_ snapshot
    // above, so only the bookkeeping entry is left to drop.
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        reapList_.clear();
    }
    if (pool_)
        pool_->close();
    if (unixFd_ >= 0) {
        ::close(unixFd_);
        unixFd_ = -1;
    }
    if (tcpFd_ >= 0) {
        ::close(tcpFd_);
        tcpFd_ = -1;
    }
    if (!boundUnixPath_.empty())
        ::unlink(boundUnixPath_.c_str());
}

Server::Health
Server::health() const
{
    Health h;
    h.acceptedConnections = acceptedConnections_.load();
    h.reclaimedConnections = reclaimedConnections_.load();
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        uint64_t active = 0;
        for (const std::shared_ptr<Connection> &conn : conns_)
            if (conn->open.load())
                ++active;
        h.activeConnections = active;
    }
    h.received = received_.load();
    h.completed = completed_.load();
    h.errors = errors_.load();
    h.busyRejected = busyRejected_.load();
    h.deadlineExceeded = deadlineExceeded_.load();
    h.framingErrors = framingErrors_.load();
    h.queueDepth = pool_ ? pool_->pending() : 0;
    {
        std::lock_guard<std::mutex> lock(jobsMu_);
        h.inFlight = jobs_.size();
    }
    for (size_t i = 0; i < repliesByCode_.size(); ++i)
        h.repliesByCode[i] = repliesByCode_[i].load();
    h.slowLogJson = slowLog_.toJson();
    h.sim = service_.counters();
    h.sessions = sessions_.counters();
    h.draining = draining_.load();
    h.uptimeMs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - startTime_)
            .count());
    return h;
}

} // namespace tarch::serve
