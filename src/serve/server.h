/**
 * @file
 * tarch_served's engine: listeners (TCP loopback and/or Unix domain
 * socket), per-connection frame readers, a bounded request queue
 * dispatched onto a common::Pool of simulation workers, per-request
 * deadlines enforced by a reaper thread, and graceful drain.
 *
 * Concurrency shape:
 *   - one acceptor thread per listener;
 *   - one reader thread per live connection (parses tarch-rpc-v1
 *     frames; cheap requests — ping/stats/drain — are answered inline,
 *     simulation requests are queued);
 *   - a Pool of workers executing queued requests through SimService;
 *   - one reaper thread that answers expired requests with
 *     DeadlineExceeded (the worker's late result is then discarded —
 *     the connection survives) and reclaims disconnected clients
 *     (joins the dead reader thread, closes the fd, forgets the
 *     connection), so connection churn never accumulates fds;
 *   - responses are written under a per-connection mutex, so pipelined
 *     requests on one connection interleave safely.
 *
 * Backpressure: a full queue answers BUSY (retryable) immediately
 * instead of stalling the socket.  Framing errors (bad magic/version,
 * oversized length prefix) poison only the offending connection: a
 * final typed error frame is sent and that connection is closed.
 * Drain (SIGINT/SIGTERM or the Drain request): stop accepting, answer
 * new requests with Draining, finish every in-flight request, then
 * close connections and report drained.
 */

#ifndef TARCH_SERVE_SERVER_H
#define TARCH_SERVE_SERVER_H

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/session.h"
#include "serve/slowlog.h"

namespace tarch::serve {

class Server
{
  public:
    struct Config {
        /** Unix domain socket path; empty = no Unix listener. */
        std::string unixPath;
        /** TCP port on 127.0.0.1; -1 = no TCP listener, 0 = pick an
            ephemeral port (see tcpPort()). */
        int tcpPort = -1;
        /** Simulation worker threads; 0 = TARCH_SERVE_JOBS env, else
            hardware concurrency. */
        unsigned jobs = 0;
        /** Bounded request queue; a full queue answers BUSY. */
        size_t queueCapacity = 256;
        /** Applied when a request carries deadlineMs == 0. */
        uint32_t defaultDeadlineMs = 30'000;
        /** Per-frame payload cap (also bounded by proto::kMaxPayload). */
        uint32_t maxPayload = 16u << 20;
        /** SO_SNDTIMEO on accepted sockets: bounds how long a response
            write can block on a peer that stopped reading, so one stuck
            client cannot wedge a worker (or the connection reaper)
            forever.  0 = no timeout. */
        uint32_t sendTimeoutMs = 30'000;
        /** Answer Hello with maxVersion=1 (pretend to be an untraced
            v1 server).  Interop-test hook; v2 frames are still parsed
            if a client sends them anyway. */
        bool advertiseTracing = true;
        SlowLog::Options slowLog;
        SimService::Options sim;
        /** Stateful session table (docs/SERVING.md).  Idle sessions
            are evicted to sessions.snapshotDir by the reaper tick and
            transparently resumed on their next request. */
        SessionManager::Options sessions;
    };

    /** Snapshot for the Stats request and the daemon's exit report. */
    struct Health {
        uint64_t acceptedConnections = 0;
        uint64_t activeConnections = 0;
        /** Disconnected clients fully reclaimed: reader joined, fd
            closed, connection forgotten. */
        uint64_t reclaimedConnections = 0;
        uint64_t received = 0;   ///< well-framed requests read
        uint64_t completed = 0;  ///< answered with a non-error result
        uint64_t errors = 0;     ///< answered with a typed error
        uint64_t busyRejected = 0;
        uint64_t deadlineExceeded = 0;
        uint64_t framingErrors = 0;
        uint64_t queueDepth = 0;
        uint64_t inFlight = 0;
        /** Replies sent, by outcome: index 0 = ok, else the ErrorCode. */
        std::array<uint64_t, proto::kNumErrorCodes> repliesByCode{};
        SessionManager::Counters sessions;
        SimService::Counters sim;
        bool draining = false;
        uint64_t uptimeMs = 0;
        /** Pre-rendered slow_log JSON array ("[]" when empty). */
        std::string slowLogJson = "[]";

        std::string toJson() const;
    };

    explicit Server(const Config &config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind listeners and spawn all threads; throws FatalError when no
        listener is configured or a bind fails. */
    void start();

    /** Begin a graceful drain (idempotent, non-blocking): close the
        listeners and refuse new work; in-flight requests finish. */
    void requestDrain();

    /** True once a drain finished: every accepted request answered and
        every connection closed. */
    bool drained() const;

    /** Block until drained() (requires requestDrain, a Drain request,
        or stop()). */
    void waitDrained();

    /** Drain, wait, join every thread.  Idempotent; the destructor
        calls it. */
    void stop();

    bool draining() const { return draining_.load(); }

    /** Actual TCP port after start() (0 when no TCP listener). */
    uint16_t tcpPort() const { return boundTcpPort_; }

    Health health() const;

    /** The server's span recorder: spans of sampled v2 requests land
        here; the daemon dumps it (--trace-out) at exit. */
    obs::SpanRecorder &spanRecorder() { return spans_; }
    /** The server's metric registry (also served via Metrics frames). */
    obs::Registry &metrics() { return registry_; }
    SlowLog &slowLog() { return slowLog_; }
    SessionManager &sessions() { return sessions_; }

  private:
    struct Connection;
    struct Job;

    void acceptLoop(int listen_fd);
    void readerLoop(std::shared_ptr<Connection> conn);
    void reaperLoop();
    void drainWaiterLoop();
    /** Move @p conn from conns_ to the reap list (reader is exiting). */
    void retireConnection(const std::shared_ptr<Connection> &conn);
    /** Join each dead reader, close its fd, and count it reclaimed. */
    void reapConnections(std::vector<std::shared_ptr<Connection>> &dead);
    /** Handle one well-framed request from @p conn. */
    void dispatch(const std::shared_ptr<Connection> &conn,
                  const proto::FrameHeader &header, std::string payload,
                  const proto::TraceContext &ctx);
    void enqueue(const std::shared_ptr<Connection> &conn,
                 const proto::FrameHeader &header, std::string payload,
                 const proto::TraceContext &ctx);
    void execute(const std::shared_ptr<Job> &job);
    proto::CellResult runCellChecked(const proto::CellRequest &req,
                                     const RequestTrace &trace);
    /** Send @p frame answering @p job exactly once; false if a reply
        was already sent (deadline reaper won the race).  @p code is 0
        for a result frame, else the ErrorCode being sent. */
    bool answer(const std::shared_ptr<Job> &job, const std::string &frame,
                uint16_t code);
    /** Bump replies_by_code (index 0 = ok) for every reply frame. */
    void countReply(uint16_t code);
    void registerMetrics();
    void finishJob(const std::shared_ptr<Job> &job);
    void closeAllConnections();

    Config config_;
    SimService service_;
    SessionManager sessions_;
    std::unique_ptr<Pool> pool_;

    int unixFd_ = -1;
    int tcpFd_ = -1;
    uint16_t boundTcpPort_ = 0;
    std::string boundUnixPath_;

    std::vector<std::thread> acceptors_;
    std::thread reaper_;

    mutable std::mutex connsMu_;
    std::vector<std::shared_ptr<Connection>> conns_;
    /** Connections whose reader exited, awaiting join + fd close by
        the reaper (guarded by connsMu_). */
    std::vector<std::shared_ptr<Connection>> reapList_;

    mutable std::mutex jobsMu_;
    std::condition_variable jobsCv_;
    std::vector<std::shared_ptr<Job>> jobs_;  ///< queued + executing

    std::atomic<bool> started_{false};
    std::atomic<bool> draining_{false};
    std::atomic<bool> drained_{false};
    std::atomic<bool> stopping_{false};
    mutable std::mutex drainMu_;
    std::condition_variable drainCv_;
    /** Spawned in start(), parked on drainCv_ until a drain begins;
        pre-creating it keeps requestDrain() free of thread-object
        assignment races with stop(). */
    std::thread drainWaiter_;

    std::chrono::steady_clock::time_point startTime_;
    std::atomic<uint64_t> acceptedConnections_{0};
    std::atomic<uint64_t> reclaimedConnections_{0};
    std::atomic<uint64_t> received_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> errors_{0};
    std::atomic<uint64_t> busyRejected_{0};
    std::atomic<uint64_t> deadlineExceeded_{0};
    std::atomic<uint64_t> framingErrors_{0};
    /** Replies by outcome, index 0 = ok, else the ErrorCode. */
    std::array<std::atomic<uint64_t>, proto::kNumErrorCodes>
        repliesByCode_{};
    /** Requests by MsgKind (1..13); index 0 unused. */
    std::array<std::atomic<uint64_t>, 14> requestsByKind_{};

    obs::SpanRecorder spans_{"tarch_served"};
    obs::Registry registry_;
    SlowLog slowLog_;
    /** Stage histograms live in registry_; cached for hot-path use. */
    obs::Histogram *stageQueueUs_ = nullptr;
    obs::Histogram *stageRunUs_ = nullptr;
    obs::Histogram *stageTotalUs_ = nullptr;
};

} // namespace tarch::serve

#endif // TARCH_SERVE_SERVER_H
