#include "serve/loadgen.h"

#include <algorithm>
#include <cmath>

namespace tarch::serve {

size_t
LatencyHistogram::bucketIndex(uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<size_t>(value);
    // msb >= 5; the top six bits pick (group, sub-bucket).
    unsigned msb = 63;
    while (!(value & (1ULL << msb)))
        --msb;
    const unsigned shift = msb - 5;
    const uint64_t sub = value >> shift;  // in [32, 64)
    const size_t index =
        static_cast<size_t>(msb - 4) * kSubBuckets +
        static_cast<size_t>(sub - kSubBuckets);
    return std::min(index, kBuckets - 1);
}

uint64_t
LatencyHistogram::bucketUpper(size_t index)
{
    const size_t group = index / kSubBuckets;
    const size_t sub = index % kSubBuckets;
    if (group == 0)
        return index;  // exact
    const unsigned shift = static_cast<unsigned>(group - 1);
    return ((static_cast<uint64_t>(sub) + kSubBuckets + 1) << shift) - 1;
}

void
LatencyHistogram::record(uint64_t value_us)
{
    ++counts_[bucketIndex(value_us)];
    ++count_;
    sum_ += static_cast<double>(value_us);
    max_ = std::max(max_, value_us);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (size_t i = 0; i < kBuckets; ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
}

double
LatencyHistogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t
LatencyHistogram::percentile(double pct) const
{
    if (count_ == 0)
        return 0;
    const double clamped = std::min(100.0, std::max(0.0, pct));
    const uint64_t target = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(clamped / 100.0 * static_cast<double>(count_))));
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        seen += counts_[i];
        if (seen >= target)
            return std::min(bucketUpper(i), max_);
    }
    return max_;
}

std::vector<uint64_t>
openLoopLatencies(const std::vector<uint64_t> &service_us,
                  uint64_t interval_us)
{
    std::vector<uint64_t> latencies;
    latencies.reserve(service_us.size());
    uint64_t worker_free_at = 0;
    for (size_t i = 0; i < service_us.size(); ++i) {
        const uint64_t intended = static_cast<uint64_t>(i) * interval_us;
        const uint64_t start = std::max(intended, worker_free_at);
        const uint64_t done = start + service_us[i];
        worker_free_at = done;
        latencies.push_back(done - intended);
    }
    return latencies;
}

} // namespace tarch::serve
