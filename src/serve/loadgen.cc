#include "serve/loadgen.h"

#include <algorithm>

namespace tarch::serve {

std::vector<uint64_t>
openLoopLatencies(const std::vector<uint64_t> &service_us,
                  uint64_t interval_us)
{
    std::vector<uint64_t> latencies;
    latencies.reserve(service_us.size());
    uint64_t worker_free_at = 0;
    for (size_t i = 0; i < service_us.size(); ++i) {
        const uint64_t intended = static_cast<uint64_t>(i) * interval_us;
        const uint64_t start = std::max(intended, worker_free_at);
        const uint64_t done = start + service_us[i];
        worker_free_at = done;
        latencies.push_back(done - intended);
    }
    return latencies;
}

} // namespace tarch::serve
