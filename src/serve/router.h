/**
 * @file
 * tarch-router: a cluster front-end that speaks tarch-rpc-v1 to
 * clients and consistent-hashes simulation requests onto N backend
 * tarch_served shards (docs/SERVING.md).
 *
 * Routing is content-addressed: RunCell/RunSource/RunBatch hash to a
 * stable request key (protocol.h) and land on the key's ring owner, so
 * repeats of the same cell hit the same shard's memo and a hedged
 * duplicate collapses into the shard's single-flight.  Each shard has
 * a bounded outstanding-request window; excess work queues in a
 * priority shed-queue that answers the lowest-priority youngest
 * request with a retryable BUSY when full — under overload the router
 * degrades by shedding bulk work, never by stalling the socket.
 *
 * Shard failures are routine: K consecutive connect/IO failures eject
 * a shard from rotation, a doubling backoff schedules a single probe
 * request, and a probe success heals it.  While a shard is out, its
 * keys walk to the next ring owner.  A backend that dies mid-request
 * answers every request it still owed with a retryable ConnectionLost
 * — clients (hedged or not) retry; the router never invents results.
 *
 * The frontend concurrency shape mirrors Server: acceptor threads, a
 * reader thread per client connection, one reader per live backend
 * connection, and a reaper that joins dead readers and closes fds.
 */

#ifndef TARCH_SERVE_ROUTER_H
#define TARCH_SERVE_ROUTER_H

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/spans.h"
#include "serve/protocol.h"
#include "serve/socket_util.h"

namespace tarch::serve {

// ---------------------------------------------------------------------
// Consistent-hash ring.

/**
 * Classic consistent hashing: each shard contributes `vnodes` points
 * (hashes of "id#k") on a 64-bit ring; a key is owned by the first
 * point at or after it.  Adding or removing one shard of N moves only
 * ~1/N of the keyspace — the property that keeps shard-local memo
 * caches warm across topology changes.
 */
class HashRing
{
  public:
    /** Add shard @p index with ring points derived from @p id. */
    void insert(size_t index, const std::string &id, unsigned vnodes);
    /** Remove every point belonging to shard @p index. */
    void erase(size_t index);

    bool empty() const { return points_.empty(); }

    /** The owning shard for @p key; index npos when the ring is empty. */
    size_t owner(uint64_t key) const;

    /** Up to @p n DISTINCT shard indices in ring order starting at
        @p key's owner — the failover walk order. */
    std::vector<size_t> owners(uint64_t key, size_t n) const;

    static constexpr size_t npos = static_cast<size_t>(-1);

  private:
    std::map<uint64_t, size_t> points_;
};

// ---------------------------------------------------------------------
// Per-shard failure tracking.

/**
 * Health state machine for one shard.  Not thread-safe: the owner
 * serializes calls (Router uses the per-shard mutex).  Time is passed
 * in, so tests drive the backoff clock synthetically.
 *
 *   Healthy --K consecutive failures--> Ejected(backoff)
 *   Ejected --backoff elapsed--> Probing (admit() lets ONE request by)
 *   Probing --success--> Healthy (failure streak and backoff reset)
 *   Probing --failure--> Ejected (backoff doubled, up to the cap)
 */
class ShardHealth
{
  public:
    struct Options {
        unsigned ejectAfter = 3;      ///< consecutive failures to eject
        uint32_t backoffFloorMs = 100;
        uint32_t backoffCapMs = 5'000;
    };

    enum class State : uint8_t { Healthy, Ejected, Probing };

    explicit ShardHealth(const Options &opts) : opts_(opts) {}

    /** May a request be sent now?  In Ejected state this flips to
        Probing once the backoff expires and admits exactly one probe;
        further calls return false until the probe resolves. */
    bool admit(uint64_t now_ms);
    void recordSuccess();
    void recordFailure(uint64_t now_ms);

    State state() const { return state_; }
    uint64_t ejections() const { return ejections_; }
    /** Current backoff interval (what the NEXT ejection would wait). */
    uint32_t backoffMs() const { return backoffMs_; }

  private:
    void eject(uint64_t now_ms);

    Options opts_;
    State state_ = State::Healthy;
    unsigned consecutiveFailures_ = 0;
    uint32_t backoffMs_ = 0;       ///< 0 until first ejection
    uint64_t ejectedUntilMs_ = 0;
    uint64_t ejections_ = 0;
};

// ---------------------------------------------------------------------
// Priority shed-queue.

/** Routing priorities: lower value = more important.  Cacheable named
    cells outrank one-off source runs, which outrank bulk batches —
    under overload the router sheds bulk first. */
enum class RoutePriority : uint8_t {
    Cell = 0,
    Source = 1,
    Batch = 2,
};
constexpr size_t kRoutePriorities = 3;

/**
 * A bounded queue with one FIFO lane per priority.  When full, a push
 * evicts the YOUNGEST entry of the LOWEST priority lane that is less
 * important than the incoming item (the youngest has waited least, so
 * shedding it wastes the least work); if nothing queued is less
 * important, the incoming item itself is shed.  Evicted/shed items are
 * answered with a retryable BUSY by the caller.
 */
template <typename T>
class ShedQueue
{
  public:
    explicit ShedQueue(size_t capacity) : capacity_(capacity) {}

    struct PushResult {
        bool accepted = false;  ///< item is now queued
        bool evicted = false;   ///< victim holds a shed entry
        T victim{};
    };

    PushResult push(T item, RoutePriority priority)
    {
        PushResult res;
        const auto lane = static_cast<size_t>(priority);
        if (size_ < capacity_) {
            lanes_[lane].push_back(std::move(item));
            ++size_;
            res.accepted = true;
            return res;
        }
        for (size_t victim_lane = kRoutePriorities; victim_lane-- > 0;) {
            if (victim_lane <= lane)
                break;  // nothing queued is less important
            if (lanes_[victim_lane].empty())
                continue;
            res.victim = std::move(lanes_[victim_lane].back());
            lanes_[victim_lane].pop_back();
            res.evicted = true;
            lanes_[lane].push_back(std::move(item));
            res.accepted = true;
            return res;
        }
        res.victim = std::move(item);  // shed the incoming item
        res.evicted = true;
        return res;
    }

    /** Highest priority first, FIFO within a lane. */
    bool pop(T &out)
    {
        for (auto &lane : lanes_) {
            if (lane.empty())
                continue;
            out = std::move(lane.front());
            lane.pop_front();
            --size_;
            return true;
        }
        return false;
    }

    size_t size() const { return size_; }

  private:
    size_t capacity_;
    size_t size_ = 0;
    std::deque<T> lanes_[kRoutePriorities];
};

// ---------------------------------------------------------------------
// The router.

class Router
{
  public:
    struct Config {
        /** Frontend listeners (same semantics as Server::Config). */
        std::string unixPath;
        int tcpPort = -1;
        /** Backend shard endpoints (at least one). */
        std::vector<Endpoint> shards;
        /** Outstanding (sent, unanswered) requests per shard. */
        size_t windowPerShard = 128;
        /** Shed-queue capacity per shard (beyond the window). */
        size_t queuePerShard = 256;
        unsigned ejectAfter = 3;
        uint32_t backoffFloorMs = 100;
        uint32_t backoffCapMs = 5'000;
        unsigned ringVnodes = 64;
        uint32_t maxPayload = 16u << 20;
        /** SO_SNDTIMEO on client and backend sockets. */
        uint32_t sendTimeoutMs = 30'000;
        /** Answer frontend Hello with v2 (and Hello-probe backends for
            trace-context forwarding).  False pins the router to plain
            v1 behavior — the interop tests use it to stand in for an
            old binary. */
        bool advertiseTracing = true;
    };

    struct ShardStats {
        std::string endpoint;
        std::string state;  ///< "healthy" | "ejected" | "probing"
        uint64_t forwarded = 0;
        uint64_t completed = 0;
        uint64_t failures = 0;
        uint64_t ejections = 0;
        uint64_t inFlight = 0;
        uint64_t queued = 0;
    };

    /** Snapshot for the Stats request ("tarch-router-stats-v2"). */
    struct Health {
        uint64_t acceptedConnections = 0;
        uint64_t activeConnections = 0;
        uint64_t received = 0;
        uint64_t forwarded = 0;
        uint64_t completed = 0;
        uint64_t errors = 0;
        uint64_t shedBusy = 0;
        uint64_t connectionLost = 0;
        uint64_t framingErrors = 0;
        /** Stateful sessions this router has routed and still tracks
            (close drops them). */
        uint64_t sessionsTracked = 0;
        /** Sessions moved to a new owner via the cached-blob
            snapshot -> RestoreSession path (dead shard or ring move). */
        uint64_t sessionsMigrated = 0;
        bool draining = false;
        uint64_t uptimeMs = 0;
        /** Replies sent to clients by outcome: index 0 = ok, else
            the proto::ErrorCode.  Every key renders in the JSON so the
            schema is stable whether or not an error has happened. */
        std::array<uint64_t, proto::kNumErrorCodes> repliesByCode{};
        std::vector<ShardStats> shards;

        std::string toJson() const;
    };

    explicit Router(const Config &config);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /** Bind the frontend and spawn threads; throws FatalError on a
        config/bind error.  Backend connections are lazy — a shard that
        is down at start() simply begins ejected-on-first-use. */
    void start();

    void requestDrain();
    bool drained() const;
    void waitDrained();
    void stop();

    bool draining() const { return draining_.load(); }
    uint16_t tcpPort() const { return boundTcpPort_; }

    Health health() const;

    /** Stage spans of sampled traced requests crossing this router. */
    obs::SpanRecorder &spanRecorder() { return spans_; }
    /** The router's metric families (served by the Metrics request). */
    obs::Registry &metrics() { return registry_; }

  private:
    struct ClientConn;
    struct BackendConn;
    struct Pending;
    struct Shard;

    uint64_t nowMs() const;
    uint64_t nowUs() const;
    void acceptLoop(int listen_fd);
    void clientReaderLoop(std::shared_ptr<ClientConn> conn);
    void backendReaderLoop(std::shared_ptr<BackendConn> conn);
    void reaperLoop();
    void drainWaiterLoop();
    void retireClient(const std::shared_ptr<ClientConn> &conn);
    void reapRetired();

    /** Handle one well-framed client request.  @p ctx is the stripped
        v2 trace context (all-zero for untraced v1 frames). */
    void dispatch(const std::shared_ptr<ClientConn> &conn,
                  const proto::FrameHeader &header, std::string payload,
                  const proto::TraceContext &ctx);
    /** Hash, walk the ring, and hand @p pending to a shard. */
    void route(std::shared_ptr<Pending> pending, uint64_t key);
    /** True if @p pending was sent or queued on @p shard. */
    bool submitToShard(size_t shard_index,
                       const std::shared_ptr<Pending> &pending);
    /** Ensure a live backend connection (lazy connect). */
    bool ensureBackend(Shard &shard, size_t shard_index);
    /** Send @p pending on the shard's connection; shard mutex held. */
    bool sendToBackend(Shard &shard,
                       const std::shared_ptr<Pending> &pending);
    /** Fail every in-flight and queued request of a dead backend. */
    void failShard(Shard &shard,
                   const std::shared_ptr<BackendConn> &conn);

    /** Answer @p pending exactly once (CAS on answered). */
    void answerPending(const std::shared_ptr<Pending> &pending,
                       proto::MsgKind kind, const std::string &payload);
    void answerError(const std::shared_ptr<Pending> &pending,
                     proto::ErrorCode code, const std::string &message);

    // -- stateful sessions (docs/SERVING.md) -------------------------
    //
    // The router keeps a per-session tarch-snap-v1 blob cache: after
    // every successful open/submit it refreshes the blob with an
    // internally originated SnapshotSession, and when the owning shard
    // dies (ConnectionLost) or forgets the session (UnknownSession,
    // e.g. after a ring move), it migrates — RestoreSession with the
    // cached blob on the current ring owner, then the original request
    // is re-routed.  One migration attempt per request; a second miss
    // surfaces to the client.

    /** Client-facing session bookkeeping for a session reply; true
        when the reply was consumed (a migration is now in flight). */
    bool handleSessionReply(size_t shard_index,
                            const std::shared_ptr<Pending> &pending,
                            proto::MsgKind kind,
                            const std::string &payload);
    /** Router-originated pendings (blob refresh / migration restore)
        complete here instead of writing to a client. */
    void completeInternal(const std::shared_ptr<Pending> &pending,
                          proto::MsgKind kind,
                          const std::string &payload);
    /** Fire-and-forget SnapshotSession to refresh the blob cache. */
    void scheduleSnapshotRefresh(size_t shard_index, uint64_t session_id);
    /** Route an internal RestoreSession carrying @p original; false
        when no blob is cached (caller answers the original itself). */
    bool migrateSession(const std::shared_ptr<Pending> &original);

    /** Bump the per-outcome reply counter (0 = ok, else ErrorCode). */
    void countReply(uint16_t code);
    /** Register the tarch_router_* families (constructor only). */
    void registerMetrics();

    Config config_;
    HashRing ring_;
    std::vector<std::unique_ptr<Shard>> shards_;

    int unixFd_ = -1;
    int tcpFd_ = -1;
    uint16_t boundTcpPort_ = 0;
    std::string boundUnixPath_;

    std::vector<std::thread> acceptors_;
    std::thread reaper_;
    std::thread drainWaiter_;

    mutable std::mutex connsMu_;
    std::vector<std::shared_ptr<ClientConn>> conns_;
    /** Live backend connections (connsMu_); every BackendConn is in
        here or in reapList_, so stop() can always join its reader. */
    std::vector<std::shared_ptr<BackendConn>> backends_;
    /** Dead client/backend readers awaiting join + close (connsMu_). */
    std::vector<std::shared_ptr<FrameConn>> reapList_;

    /** Requests routed but not yet answered (drain barrier). */
    std::atomic<uint64_t> outstanding_{0};
    mutable std::mutex drainMu_;
    std::condition_variable drainCv_;

    std::atomic<bool> started_{false};
    std::atomic<bool> draining_{false};
    std::atomic<bool> drained_{false};
    std::atomic<bool> stopping_{false};

    std::chrono::steady_clock::time_point startTime_;
    std::atomic<uint64_t> acceptedConnections_{0};
    std::atomic<uint64_t> received_{0};
    std::atomic<uint64_t> forwarded_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> errors_{0};
    std::atomic<uint64_t> shedBusy_{0};
    std::atomic<uint64_t> connectionLost_{0};
    std::atomic<uint64_t> framingErrors_{0};
    std::atomic<uint64_t> sessionsMigrated_{0};
    std::atomic<uint64_t> snapshotRefreshes_{0};
    /** Session id -> latest cached tarch-snap-v1 blob ("" until the
        first refresh lands).  sessionSeq_ feeds router-assigned ids. */
    mutable std::mutex sessionsMu_;
    std::unordered_map<uint64_t, std::string> sessions_;
    uint64_t sessionSeq_ = 1;
    /** Replies by outcome (0 = ok, else the proto::ErrorCode). */
    std::array<std::atomic<uint64_t>, proto::kNumErrorCodes>
        repliesByCode_{};

    obs::SpanRecorder spans_{"tarch_router"};
    obs::Registry registry_;
    /** Client-visible time from dispatch to answer (registry-owned). */
    obs::Histogram *latencyUs_ = nullptr;
};

} // namespace tarch::serve

#endif // TARCH_SERVE_ROUTER_H
