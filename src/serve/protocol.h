/**
 * @file
 * tarch-rpc-v1: the length-prefixed, versioned binary wire protocol
 * spoken between tarch_served and its clients (docs/SERVING.md).
 *
 * Every message is one frame: a fixed 20-byte header (magic, version,
 * message kind, request id, payload length) followed by payloadLen
 * payload bytes.  All integers are little-endian; strings are a u32
 * length followed by raw bytes.  Responses echo the request id of the
 * frame they answer, so requests may be pipelined on one connection
 * and answered in completion order.
 *
 * Decoders are strict: every length is bounded by the bytes that are
 * actually present, enum fields are range-checked, and a payload must
 * be consumed exactly — trailing garbage is a malformed frame.  A
 * malformed payload yields a typed Error response; a malformed header
 * (bad magic/version/oversized length) poisons the byte stream and
 * closes only the offending connection.
 *
 * Version 2 (the traced minor revision, PR 9): the header is
 * unchanged, but a request frame stamped kVersionTraced carries a
 * 16-byte trace/span context as a payload PREFIX ahead of the v1 body;
 * responses are always v1.  Because v1 decoders reject trailing bytes,
 * the context rides under a version bump rather than as an optional
 * suffix, and a client only sends v2 after a Hello exchange proves the
 * peer speaks it — against a v1 peer (which answers Hello with a typed
 * UnknownKind error) requests degrade to untraced v1 frames, never to
 * framing errors.  The context is deliberately EXCLUDED from request
 * keys: tracing must not break shard affinity or single-flight dedup.
 */

#ifndef TARCH_SERVE_PROTOCOL_H
#define TARCH_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tarch::serve::proto {

// ---------------------------------------------------------------------
// Framing.

constexpr uint32_t kMagic = 0x43505254u;  ///< "TRPC" little-endian
constexpr uint16_t kVersion = 1;
/** Minor revision: same header, but request payloads carry a 16-byte
    trace-context prefix.  Sent only after Hello negotiation. */
constexpr uint16_t kVersionTraced = 2;
constexpr uint16_t kMaxVersion = kVersionTraced;
constexpr size_t kHeaderSize = 20;
constexpr size_t kTraceContextSize = 16;
/** Hard upper bound any parser accepts; servers may configure less. */
constexpr uint32_t kMaxPayload = 64u << 20;

/** Message kinds.  Requests are < 128, responses >= 128. */
enum class MsgKind : uint16_t {
    // requests
    RunCell = 1,    ///< named (engine, benchmark, variant) cell
    RunSource = 2,  ///< inline MiniScript or assembly source
    RunBatch = 3,   ///< several cells in one frame
    Stats = 4,      ///< server health/stats snapshot
    Drain = 5,      ///< graceful drain: stop accepting, finish in-flight
    Ping = 6,
    Metrics = 7,    ///< Prometheus text exposition snapshot
    Hello = 8,      ///< capability probe (max protocol version)
    // Stateful sessions (docs/SERVING.md, "Stateful sessions").
    OpenSession = 9,      ///< create a session from its first chunk
    SubmitChunk = 10,     ///< run a follow-on chunk on a live session
    SnapshotSession = 11, ///< capture a tarch-snap-v1 blob
    RestoreSession = 12,  ///< install a blob (eviction resume/migration)
    CloseSession = 13,

    // responses
    CellResult = 128,
    BatchResult = 129,
    StatsResult = 130,
    Pong = 131,
    DrainStarted = 132,
    MetricsResult = 133,
    HelloResult = 134,
    SessionOpened = 135,   ///< answers OpenSession and RestoreSession
    ChunkResult = 136,
    SessionSnapshot = 137,
    SessionClosed = 138,
    Error = 255,
};

bool isRequestKind(uint16_t kind);

/** Typed error codes carried by Error frames. */
enum class ErrorCode : uint16_t {
    BadMagic = 1,
    BadVersion = 2,
    BadFrame = 3,         ///< malformed payload or truncated stream
    UnknownKind = 4,
    PayloadTooLarge = 5,
    BadRequest = 6,       ///< well-formed payload, invalid field values
    UnknownBenchmark = 7,
    VerifyRejected = 8,   ///< static verifier found error-severity issues
    CompileFailed = 9,    ///< source did not compile/assemble
    SimFailed = 10,       ///< guest run raised a fatal error
    Busy = 11,            ///< request queue full — retryable
    DeadlineExceeded = 12,
    Draining = 13,        ///< server is draining; no new work
    Internal = 14,
    /** The transport died before a reply: synthesized by clients for
        their own dead connections and by the router when a backend
        shard drops mid-request.  A daemon never sends it.  Retryable:
        simulations are idempotent and deduplicated server-side. */
    ConnectionLost = 15,
    /** A tarch-snap-v1 blob failed strict decode or did not match its
        rebuilt machine.  Never retryable: the blob itself is bad. */
    BadSnapshot = 16,
    /** No live or evicted session with that id on this shard.  Not
        retryable here — but a router holding a cached blob answers it
        by migrating the session (RestoreSession) and retrying. */
    UnknownSession = 17,
};

/** One past the highest ErrorCode: sizes replies-by-code tables. */
constexpr uint16_t kNumErrorCodes = 18;

std::string_view errorCodeName(ErrorCode code);

/** True for errors a client should retry (possibly after a backoff). */
bool errorRetryable(ErrorCode code);

struct FrameHeader {
    uint16_t version = kVersion;  ///< kVersion or kVersionTraced
    uint16_t kind = 0;
    uint64_t requestId = 0;
    uint32_t payloadLen = 0;
};

enum class HeaderStatus : uint8_t {
    Ok,
    BadMagic,
    BadVersion,
    TooLarge,
};

/**
 * Parse a 20-byte header.  @p max_payload caps payloadLen (pass the
 * server's configured limit, itself capped by kMaxPayload).  Accepts
 * versions 1 and 2 and reports which in @p out.version.
 */
HeaderStatus parseHeader(const uint8_t header[kHeaderSize],
                         FrameHeader &out, uint32_t max_payload);

/** Serialize one complete v1 frame (header + payload). */
std::string encodeFrame(MsgKind kind, uint64_t request_id,
                        const std::string &payload);

// ---------------------------------------------------------------------
// Trace context (tarch-rpc v2).

/**
 * The 16-byte context prefixed to every v2 request payload: trace id,
 * the sender's span id (the receiver's parent), a sampled flag, and
 * three reserved zero bytes.  A zero traceId or clear sampled flag
 * means "propagate but do not record".
 */
struct TraceContext {
    uint64_t traceId = 0;
    uint32_t parentSpanId = 0;
    uint8_t sampled = 0;

    bool recording() const { return sampled != 0 && traceId != 0; }
};

/** Exactly kTraceContextSize bytes. */
std::string encodeTraceContext(const TraceContext &ctx);

/**
 * Strict decode of exactly kTraceContextSize bytes from the FRONT of
 * @p payload; false on short payloads, a nonzero reserved byte, or an
 * out-of-range sampled flag.  On success @p body_offset is the start
 * of the v1 body.
 */
bool decodeTraceContext(const std::string &payload, TraceContext &out,
                        size_t &body_offset);

/** Serialize a v2 frame: header (version kVersionTraced) + context +
    v1 payload. */
std::string encodeTracedFrame(MsgKind kind, uint64_t request_id,
                              const TraceContext &ctx,
                              const std::string &payload);

// ---------------------------------------------------------------------
// Payload bodies.

enum class EngineId : uint8_t { Lua = 0, Js = 1 };
enum class SourceLang : uint8_t { MiniScript = 0, Assembly = 1 };

/** RunCell payload, and one element of a RunBatch. */
struct CellRequest {
    uint8_t engine = 0;        ///< EngineId
    uint8_t variant = 0;       ///< vm::Variant (0 base, 1 typed, 2 chkld)
    uint8_t wantStatsJson = 0; ///< embed a tarch-stats-v1 JSON artifact
    uint32_t deadlineMs = 0;   ///< 0 = server default
    std::string benchmark;
};

/** RunSource payload. */
struct SourceRequest {
    uint8_t engine = 0;        ///< EngineId (ignored for Assembly)
    uint8_t variant = 0;
    uint8_t wantStatsJson = 0;
    uint8_t lang = 0;          ///< SourceLang
    uint32_t deadlineMs = 0;
    std::string source;
};

struct BatchRequest {
    std::vector<CellRequest> cells;
};

/** CellResult payload (also embedded in BatchResult items). */
struct CellResult {
    uint8_t engine = 0;
    uint8_t variant = 0;
    uint8_t fromCache = 0;  ///< 0 simulated, 1 memory cache, 2 disk cache
    std::string benchmark;  ///< empty for source runs
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    std::string output;     ///< guest program output
    std::string statsJson;  ///< tarch-stats-v1 dump; empty unless asked
};

struct ErrorBody {
    uint16_t code = 0;      ///< ErrorCode
    uint8_t retryable = 0;
    std::string message;
};

struct BatchResult {
    struct Item {
        bool ok = false;
        CellResult result;  ///< valid when ok
        ErrorBody error;    ///< valid when !ok
    };
    std::vector<Item> items;
};

// --- Stateful sessions ---------------------------------------------
//
// A session is a long-lived VM on one shard: OpenSession builds it
// from its first MiniScript chunk (verifier-gated like RunSource) and
// runs it; each SubmitChunk compiles, verifies, installs and runs a
// follow-on chunk on the same machine.  SnapshotSession captures the
// complete machine as a tarch-snap-v1 blob; RestoreSession installs a
// blob (idle-eviction resume and shard migration both ride on it).

/** OpenSession payload. */
struct OpenSessionRequest {
    uint8_t engine = 0;       ///< EngineId
    uint8_t variant = 0;
    uint32_t deadlineMs = 0;  ///< for the first chunk's run
    /** Session id; 0 lets the shard assign one.  Routers propose ids
        so the ring position is known before the session exists. */
    uint64_t sessionId = 0;
    std::string source;       ///< first chunk (MiniScript)
};

/** SubmitChunk payload. */
struct SubmitChunkRequest {
    uint32_t deadlineMs = 0;
    uint64_t sessionId = 0;
    std::string source;
};

/** SnapshotSession and CloseSession payload. */
struct SessionIdRequest {
    uint64_t sessionId = 0;
};

/** RestoreSession payload.  sessionId duplicates the blob's embedded
    id so routers can place the frame without decoding the blob; the
    shard rejects a nonzero mismatch as BadSnapshot. */
struct RestoreSessionRequest {
    uint32_t deadlineMs = 0;
    uint64_t sessionId = 0;
    std::string blob;  ///< complete tarch-snap-v1 blob
};

/** SessionOpened and ChunkResult payload. */
struct SessionReply {
    uint64_t sessionId = 0;
    uint64_t chunkIndex = 0;    ///< chunks run so far (1 after open)
    uint64_t instructions = 0;  ///< cumulative machine counters
    uint64_t cycles = 0;
    std::string output;         ///< output delta of THIS chunk's run
};

/** SessionSnapshot payload. */
struct SessionSnapshotResult {
    uint64_t sessionId = 0;
    std::string blob;
};

/** SessionClosed payload. */
struct SessionClosedResult {
    uint64_t sessionId = 0;
};

struct StatsResult {
    std::string json;  ///< tarch-serve-stats-v2 document
};

struct MetricsResult {
    std::string text;  ///< Prometheus text exposition
};

/** HelloResult payload: the responder's maximum protocol version.  A
    v1 peer answers Hello with a typed UnknownKind error instead —
    which a prober treats as maxVersion == 1. */
struct HelloResult {
    uint16_t maxVersion = kMaxVersion;
};

// Encoders never fail; decoders return false on any malformation
// (truncation, out-of-range enum, length past the end, trailing bytes).
std::string encodeCellRequest(const CellRequest &req);
bool decodeCellRequest(const std::string &payload, CellRequest &out);

std::string encodeSourceRequest(const SourceRequest &req);
bool decodeSourceRequest(const std::string &payload, SourceRequest &out);

std::string encodeBatchRequest(const BatchRequest &req);
bool decodeBatchRequest(const std::string &payload, BatchRequest &out);

std::string encodeCellResult(const CellResult &result);
bool decodeCellResult(const std::string &payload, CellResult &out);

std::string encodeErrorBody(const ErrorBody &error);
bool decodeErrorBody(const std::string &payload, ErrorBody &out);

std::string encodeBatchResult(const BatchResult &result);
bool decodeBatchResult(const std::string &payload, BatchResult &out);

std::string encodeStatsResult(const StatsResult &result);
bool decodeStatsResult(const std::string &payload, StatsResult &out);

std::string encodeMetricsResult(const MetricsResult &result);
bool decodeMetricsResult(const std::string &payload, MetricsResult &out);

std::string encodeHelloResult(const HelloResult &result);
bool decodeHelloResult(const std::string &payload, HelloResult &out);

std::string encodeOpenSessionRequest(const OpenSessionRequest &req);
bool decodeOpenSessionRequest(const std::string &payload,
                              OpenSessionRequest &out);

std::string encodeSubmitChunkRequest(const SubmitChunkRequest &req);
bool decodeSubmitChunkRequest(const std::string &payload,
                              SubmitChunkRequest &out);

std::string encodeSessionIdRequest(const SessionIdRequest &req);
bool decodeSessionIdRequest(const std::string &payload,
                            SessionIdRequest &out);

std::string encodeRestoreSessionRequest(const RestoreSessionRequest &req);
bool decodeRestoreSessionRequest(const std::string &payload,
                                 RestoreSessionRequest &out);

std::string encodeSessionReply(const SessionReply &reply);
bool decodeSessionReply(const std::string &payload, SessionReply &out);

std::string encodeSessionSnapshotResult(const SessionSnapshotResult &r);
bool decodeSessionSnapshotResult(const std::string &payload,
                                 SessionSnapshotResult &out);

std::string encodeSessionClosedResult(const SessionClosedResult &r);
bool decodeSessionClosedResult(const std::string &payload,
                               SessionClosedResult &out);

/** Convenience: a complete Error frame for @p request_id. */
std::string errorFrame(uint64_t request_id, ErrorCode code,
                       const std::string &message);

// ---------------------------------------------------------------------
// Request keys: content-addressed routing.
//
// Every simulation request hashes to a stable 64-bit key over the
// fields that determine its result (engine, variant, benchmark name or
// source text) — the same content addressing the sweep cache uses — so
// a consistent-hash router and a hedging client independently map the
// same request to the same shard, where the single-flight memo
// deduplicates it.  Deadlines, the stats-JSON flag, and the v2 trace
// context are deliberately excluded: they change the reply envelope
// (or the request's observability), not the simulation.

/** FNV-1a over @p len bytes, chainable via @p seed. */
uint64_t fnv1a64(const void *data, size_t len,
                 uint64_t seed = 14695981039346656037ULL);

uint64_t cellRequestKey(const CellRequest &req);
uint64_t sourceRequestKey(const SourceRequest &req);
/** Folded over the batch's cells (a batch routes as one unit). */
uint64_t batchRequestKey(const BatchRequest &req);

/**
 * The routing key for everything that touches session @p session_id:
 * every request of one session must hash to the same ring position, so
 * the key covers the id alone (never chunk text — chunks differ).
 */
uint64_t sessionRequestKey(uint64_t session_id);

} // namespace tarch::serve::proto

#endif // TARCH_SERVE_PROTOCOL_H
