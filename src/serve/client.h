/**
 * @file
 * tarch-rpc-v1 client: connects to a tarch_served / tarch_router
 * instance over TCP loopback or a Unix domain socket, frames requests,
 * and decodes responses.  The convenience calls are closed-loop (send
 * one request, read its reply); the raw frame interface underneath
 * supports pipelining and deliberately malformed traffic for
 * robustness tests and the load generator's chaos mode.
 *
 * Transport failures are DATA, not process death: a dead backend must
 * never take a router or load generator down with it.  Socket errors
 * (send failure, recv EOF mid-frame, garbled response bytes) poison
 * only this connection and surface as a typed, retryable
 * ConnectionLost outcome; only the throwing connect*() constructors
 * and programming errors raise FatalError.
 */

#ifndef TARCH_SERVE_CLIENT_H
#define TARCH_SERVE_CLIENT_H

#include <cstdint>
#include <string>

#include "obs/spans.h"
#include "serve/protocol.h"
#include "serve/socket_util.h"

namespace tarch::serve {

class Client
{
  public:
    /** Both connectors throw FatalError when the endpoint is down. */
    static Client connectUnix(const std::string &path);
    static Client connectTcp(uint16_t port);  ///< 127.0.0.1:port
    /** Non-throwing connect; a dead endpoint yields a closed Client
        (isOpen() == false).  Routers and hedging clients use this —
        shard death is routine, not fatal. */
    static Client tryConnect(const Endpoint &ep);

    Client() = default;  ///< closed; tryConnect target
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    ~Client();

    /** One decoded response frame. */
    struct Reply {
        uint16_t kind = 0;  ///< proto::MsgKind
        uint64_t requestId = 0;
        std::string payload;
    };

    /** How the last read (or the connection as a whole) ended. */
    enum class IoStatus : uint8_t {
        Ok,       ///< a complete frame was read
        Closed,   ///< clean EOF at a frame boundary (drained server)
        Lost,     ///< disconnect mid-frame or a send/recv error
        Garbled,  ///< response bytes failed to parse — stream poisoned
    };

    /** Outcome of a convenience call: a result or a typed error. */
    struct Outcome {
        bool ok = false;
        bool closed = false;  ///< connection ended before a reply
        proto::CellResult result;
        /** On !ok && !closed: either a typed error the server sent, or
            a client-synthesized retryable ConnectionLost when the
            transport died (send failure, mid-frame EOF, garbled
            bytes). */
        proto::ErrorBody error;

        bool lost() const
        {
            return !ok && !closed &&
                   error.code == static_cast<uint16_t>(
                                     proto::ErrorCode::ConnectionLost);
        }
    };

    /** Outcome of a stateful-session call (docs/SERVING.md).  reply is
        valid for open/submit/restore/close (close fills sessionId
        only); snapshot is valid for snapshotSession. */
    struct SessionOutcome {
        bool ok = false;
        bool closed = false;
        proto::SessionReply reply;
        proto::SessionSnapshotResult snapshot;
        proto::ErrorBody error;

        bool lost() const
        {
            return !ok && !closed &&
                   error.code == static_cast<uint16_t>(
                                     proto::ErrorCode::ConnectionLost);
        }
    };

    // -- closed-loop convenience -------------------------------------

    Outcome runCell(const proto::CellRequest &req);
    Outcome runSource(const proto::SourceRequest &req);
    /** Explicit-context variants: send under the given v2 trace
        context (degrading to an untraced v1 frame when the peer has
        not proven v2 via Hello).  Used by HedgedClient, which owns the
        root span and hands each attempt its child context. */
    Outcome runCell(const proto::CellRequest &req,
                    const proto::TraceContext &ctx);
    Outcome runSource(const proto::SourceRequest &req,
                      const proto::TraceContext &ctx);
    /** Returns false (with @p error filled) on a typed error reply or
        a closed/lost connection. */
    bool runBatch(const proto::BatchRequest &req, proto::BatchResult &out,
                  proto::ErrorBody &error);

    // -- stateful sessions -------------------------------------------

    SessionOutcome openSession(const proto::OpenSessionRequest &req);
    SessionOutcome submitChunk(const proto::SubmitChunkRequest &req);
    SessionOutcome snapshotSession(uint64_t session_id);
    SessionOutcome restoreSession(const proto::RestoreSessionRequest &req);
    SessionOutcome closeSession(uint64_t session_id);
    /** Explicit-context variant for routers, which own the root span. */
    SessionOutcome sessionCall(proto::MsgKind kind,
                               const std::string &payload,
                               const proto::TraceContext &ctx);
    /** Server health JSON; empty on a closed/lost connection. */
    std::string stats();
    /** Prometheus text exposition; empty on a closed/lost connection
        or a v1 peer (UnknownKind). */
    std::string metricsText();
    bool ping();
    /** Ask the server to drain; true once DrainStarted is read. */
    bool drain();

    // -- tracing -------------------------------------------------------

    /**
     * Capability probe: ask the peer its max protocol version.  A v1
     * peer answers Hello with a typed UnknownKind error — reported
     * here as 1, never as a failure.  0 on a dead connection.  The
     * result is cached; peerMaxVersion() probes once per connection.
     */
    uint16_t hello();
    uint16_t peerMaxVersion();

    /**
     * Record a root client.request span (into @p recorder) and send a
     * v2 trace context on every @p sample_every-th convenience call —
     * given the peer Hello-negotiated v2.  Null @p recorder turns
     * tracing back off.
     */
    void enableTracing(obs::SpanRecorder *recorder,
                       uint64_t sample_every = 1);
    bool tracingEnabled() const { return recorder_ != nullptr; }

    // -- raw frame interface -----------------------------------------

    /**
     * Send a frame with the next request id (returned).  Returns 0 on
     * a send failure; the connection is then poisoned (a partial frame
     * may be on the wire) and closed.
     */
    uint64_t sendRequest(proto::MsgKind kind, const std::string &payload);
    /** sendRequest under a v2 trace context; falls back to an untraced
        v1 frame when @p ctx is empty or the peer only speaks v1. */
    uint64_t sendTracedRequest(proto::MsgKind kind,
                               const proto::TraceContext &ctx,
                               const std::string &payload);
    /** Send arbitrary bytes (chaos/malformed-frame injection). */
    bool sendRaw(const void *data, size_t len);
    /**
     * Read one response frame.  Never throws: Lost/Garbled poison and
     * close the connection instead of aborting the process.
     */
    IoStatus readFrame(Reply &out);
    /** Compatibility wrapper: true only on IoStatus::Ok. */
    bool readReply(Reply &out) { return readFrame(out) == IoStatus::Ok; }

    /** Status of the most recent read/send failure (Ok if none). */
    IoStatus lastStatus() const { return lastStatus_; }

    bool isOpen() const { return fd_ >= 0; }
    int fd() const { return fd_; }  ///< for poll(); -1 when closed
    void close();

  private:
    explicit Client(int fd) : fd_(fd) {}

    /** Close and record why, synthesizing the outcome error. */
    Outcome lostOutcome(const char *what);
    Outcome awaitCellOutcome(uint64_t request_id);
    SessionOutcome lostSessionOutcome(const char *what);
    SessionOutcome awaitSessionOutcome(uint64_t request_id,
                                       proto::MsgKind expect);
    /** Shared front half of the session conveniences: sample a root
        span, send, await @p expect. */
    SessionOutcome sessionRequest(proto::MsgKind kind,
                                  const std::string &payload,
                                  const char *detail);
    /** True when this convenience call should be sampled. */
    bool sampleTrace();
    uint64_t newTraceId();

    int fd_ = -1;
    uint64_t nextId_ = 1;
    IoStatus lastStatus_ = IoStatus::Ok;

    obs::SpanRecorder *recorder_ = nullptr;
    uint64_t traceSampleEvery_ = 0;
    uint64_t traceTick_ = 0;
    /** Cached Hello result: 0 = not probed yet. */
    uint16_t peerMaxVersion_ = 0;
};

} // namespace tarch::serve

#endif // TARCH_SERVE_CLIENT_H
