/**
 * @file
 * tarch-rpc-v1 client: connects to a tarch_served instance over TCP
 * loopback or a Unix domain socket, frames requests, and decodes
 * responses.  The convenience calls are closed-loop (send one request,
 * read its reply); the raw frame interface underneath supports
 * pipelining and deliberately malformed traffic for robustness tests
 * and the load generator's chaos mode.
 */

#ifndef TARCH_SERVE_CLIENT_H
#define TARCH_SERVE_CLIENT_H

#include <cstdint>
#include <string>

#include "serve/protocol.h"

namespace tarch::serve {

class Client
{
  public:
    /** Both connectors throw FatalError when the endpoint is down. */
    static Client connectUnix(const std::string &path);
    static Client connectTcp(uint16_t port);  ///< 127.0.0.1:port

    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    ~Client();

    /** One decoded response frame. */
    struct Reply {
        uint16_t kind = 0;  ///< proto::MsgKind
        uint64_t requestId = 0;
        std::string payload;
    };

    /** Outcome of a convenience call: a result or a typed error. */
    struct Outcome {
        bool ok = false;
        bool closed = false;  ///< connection ended before a reply
        proto::CellResult result;
        proto::ErrorBody error;
    };

    // -- closed-loop convenience -------------------------------------

    Outcome runCell(const proto::CellRequest &req);
    Outcome runSource(const proto::SourceRequest &req);
    /** Returns false (with @p error filled) on a typed error reply or
        a closed connection. */
    bool runBatch(const proto::BatchRequest &req, proto::BatchResult &out,
                  proto::ErrorBody &error);
    /** Server health JSON; empty on a closed connection. */
    std::string stats();
    bool ping();
    /** Ask the server to drain; true once DrainStarted is read. */
    bool drain();

    // -- raw frame interface -----------------------------------------

    /** Send a frame with the next request id (returned). */
    uint64_t sendRequest(proto::MsgKind kind, const std::string &payload);
    /** Send arbitrary bytes (chaos/malformed-frame injection). */
    bool sendRaw(const void *data, size_t len);
    /**
     * Read one response frame.  Returns false on a clean close (EOF at
     * a frame boundary — how a drained server ends the conversation);
     * throws FatalError on garbled response bytes.
     */
    bool readReply(Reply &out);

    bool isOpen() const { return fd_ >= 0; }
    void close();

  private:
    explicit Client(int fd) : fd_(fd) {}

    Outcome awaitCellOutcome(uint64_t request_id);

    int fd_ = -1;
    uint64_t nextId_ = 1;
};

} // namespace tarch::serve

#endif // TARCH_SERVE_CLIENT_H
