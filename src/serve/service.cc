#include "serve/service.h"

#include <memory>
#include <optional>

#include "analysis/checks.h"
#include "assembler/assembler.h"
#include "common/log.h"
#include "common/strutil.h"
#include "core/core.h"
#include "obs/json.h"
#include "vm/js/js_vm.h"
#include "vm/lua/lua_vm.h"

namespace tarch::serve {

namespace {

harness::Engine
toEngine(uint8_t engine)
{
    return engine == 0 ? harness::Engine::Lua : harness::Engine::Js;
}

vm::Variant
toVariant(uint8_t variant)
{
    return static_cast<vm::Variant>(variant);
}

const harness::BenchmarkInfo *
findBenchmark(const std::string &name)
{
    for (const harness::BenchmarkInfo &info : harness::benchmarks())
        if (info.name == name)
            return &info;
    return nullptr;
}

/** Drop the single-flight claim on destruction, success or error. */
class FlightGuard
{
  public:
    FlightGuard(std::mutex &mu, std::set<std::string> &in_progress,
                std::condition_variable &cv, const std::string &key)
        : mu_(mu), inProgress_(in_progress), cv_(cv), key_(key)
    {
    }

    ~FlightGuard()
    {
        std::lock_guard<std::mutex> lock(mu_);
        inProgress_.erase(key_);
        cv_.notify_all();
    }

  private:
    std::mutex &mu_;
    std::set<std::string> &inProgress_;
    std::condition_variable &cv_;
    std::string key_;
};

} // namespace

SimService::SimService(const Options &opts) : opts_(opts)
{
    if (opts_.diskCache && !harness::ensureCacheDir(opts_.cacheDir)) {
        tarch_warn("serve: cannot create sweep cache under %s; "
                   "disk cache disabled",
                   opts_.cacheDir.c_str());
        opts_.diskCache = false;
    }
}

proto::CellResult
SimService::runCell(const proto::CellRequest &req,
                    const RequestTrace &trace)
{
    const harness::BenchmarkInfo *info = findBenchmark(req.benchmark);
    if (!info)
        throw ServiceError{proto::ErrorCode::UnknownBenchmark,
                           "unknown benchmark '" + req.benchmark + "'"};
    const harness::Engine engine = toEngine(req.engine);
    const vm::Variant variant = toVariant(req.variant);
    const uint64_t key = harness::cellKey(engine, *info, variant);
    const std::string memo_key =
        strformat("%u/%s/%u/%016llx", req.engine, req.benchmark.c_str(),
                  req.variant, (unsigned long long)key);

    // Memory cache + single-flight: a burst of identical cold requests
    // simulates once; the rest block here and are served from the memo
    // (or, with only the disk cache on, from the cell the leader
    // wrote).  With every cache disabled the leader has no way to
    // publish its result, so waiting would add latency and then
    // re-simulate anyway — skip the single-flight claim entirely.
    const bool single_flight = opts_.memoryCache || opts_.diskCache;
    std::optional<FlightGuard> flight;
    if (single_flight) {
        // Opened lazily: only a request that actually parks behind an
        // in-flight leader records a sim.singleflight span.
        std::optional<obs::SpanScope> waitSpan;
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            if (opts_.memoryCache) {
                const auto hit = memo_.find(memo_key);
                if (hit != memo_.end()) {
                    {
                        std::lock_guard<std::mutex> clock(countersMu_);
                        ++counters_.memHits;
                    }
                    if (trace.recorder) {
                        obs::SpanScope s(trace.recorder, trace.traceId,
                                         trace.parentSpan, "sim.cache");
                        s.setDetail("mem-hit");
                    }
                    proto::CellResult result = hit->second;
                    result.fromCache = 1;
                    if (!req.wantStatsJson)
                        result.statsJson.clear();
                    return result;
                }
            }
            if (!inProgress_.count(memo_key))
                break;
            {
                std::lock_guard<std::mutex> clock(countersMu_);
                ++counters_.singleFlightWaits;
            }
            if (trace.recorder && !waitSpan)
                waitSpan.emplace(trace.recorder, trace.traceId,
                                 trace.parentSpan, "sim.singleflight");
            progressCv_.wait(lock);
        }
        inProgress_.insert(memo_key);
        flight.emplace(mu_, inProgress_, progressCv_, memo_key);
    }

    harness::RunResult run;
    uint8_t from_cache = 0;
    const std::string path =
        harness::cellPath(opts_.cacheDir, engine, info->name, variant);
    bool disk_hit = false;
    if (opts_.diskCache) {
        obs::SpanScope diskSpan(trace.recorder, trace.traceId,
                                trace.parentSpan, "sim.cache");
        disk_hit = harness::loadCell(run, path, key);
        diskSpan.setDetail(disk_hit ? "disk-hit" : "disk-miss");
    }
    if (disk_hit) {
        from_cache = 2;
        std::lock_guard<std::mutex> clock(countersMu_);
        ++counters_.diskHits;
    } else {
        {
            obs::SpanScope simSpan(trace.recorder, trace.traceId,
                                   trace.parentSpan, "sim.simulate");
            if (simSpan.active())
                simSpan.setDetail(req.benchmark);
            try {
                run = harness::runOne(engine, variant, *info,
                                      obs::SessionConfig{},
                                      opts_.execMode);
            } catch (const FatalError &e) {
                throw ServiceError{proto::ErrorCode::SimFailed, e.what()};
            }
        }
        {
            std::lock_guard<std::mutex> clock(countersMu_);
            ++counters_.simulated;
        }
        if (opts_.diskCache && !harness::saveCell(run, path, key))
            tarch_warn("serve: could not write sweep cache cell %s",
                       path.c_str());
    }

    proto::CellResult result;
    result.engine = req.engine;
    result.variant = req.variant;
    result.fromCache = from_cache;
    result.benchmark = req.benchmark;
    result.instructions = run.stats.instructions;
    result.cycles = run.stats.cycles;
    result.output = run.output;
    result.statsJson = obs::statsToJson(run.stats);

    if (opts_.memoryCache) {
        std::lock_guard<std::mutex> lock(mu_);
        memo_[memo_key] = result;
    }
    if (!req.wantStatsJson)
        result.statsJson.clear();
    return result;
}

proto::CellResult
SimService::runSource(const proto::SourceRequest &req,
                      const RequestTrace &trace)
{
    // Same memo + single-flight shape as runCell, but keyed by the
    // content-addressed sourceRequestKey and bounded (source text is
    // arbitrary, so the memo must evict).  A hedged duplicate of an
    // in-flight source run parks here and reuses the leader's result
    // instead of simulating twice.  Only successes are memoized:
    // errors re-verify so their messages stay fresh.
    const bool memoize =
        opts_.memoryCache && opts_.sourceMemoCapacity > 0;
    std::optional<FlightGuard> flight;
    std::string memo_key;
    if (memoize) {
        memo_key = strformat(
            "src/%016llx",
            (unsigned long long)proto::sourceRequestKey(req));
        std::optional<obs::SpanScope> waitSpan;
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            const auto hit = sourceMemo_.find(memo_key);
            if (hit != sourceMemo_.end()) {
                {
                    std::lock_guard<std::mutex> clock(countersMu_);
                    ++counters_.sourceMemHits;
                }
                if (trace.recorder) {
                    obs::SpanScope s(trace.recorder, trace.traceId,
                                     trace.parentSpan, "sim.cache");
                    s.setDetail("mem-hit");
                }
                proto::CellResult result = hit->second;
                result.fromCache = 1;
                if (!req.wantStatsJson)
                    result.statsJson.clear();
                return result;
            }
            if (!inProgress_.count(memo_key))
                break;
            {
                std::lock_guard<std::mutex> clock(countersMu_);
                ++counters_.singleFlightWaits;
            }
            if (trace.recorder && !waitSpan)
                waitSpan.emplace(trace.recorder, trace.traceId,
                                 trace.parentSpan, "sim.singleflight");
            progressCv_.wait(lock);
        }
        inProgress_.insert(memo_key);
        flight.emplace(mu_, inProgress_, progressCv_, memo_key);
    }

    proto::CellResult result = static_cast<proto::SourceLang>(req.lang) ==
                                       proto::SourceLang::Assembly
                                   ? runAssembly(req, trace)
                                   : runMiniScript(req, trace);
    {
        // Source runs count toward `simulated` too — leaving them out
        // made the stat undercount exactly the requests that cost the
        // most (no disk cache ever backs a source run).
        std::lock_guard<std::mutex> clock(countersMu_);
        ++counters_.simulated;
    }
    if (memoize) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!sourceMemo_.count(memo_key)) {
            sourceMemoOrder_.push_back(memo_key);
            if (sourceMemoOrder_.size() > opts_.sourceMemoCapacity) {
                sourceMemo_.erase(sourceMemoOrder_.front());
                sourceMemoOrder_.pop_front();
            }
        }
        sourceMemo_[memo_key] = result;
    }
    if (!req.wantStatsJson)
        result.statsJson.clear();
    return result;
}

template <typename Vm>
static proto::CellResult
runScriptVm(const proto::SourceRequest &req,
            const SimService::Options &opts, uint64_t *verify_rejected,
            const RequestTrace &trace)
{
    std::unique_ptr<Vm> vm;
    try {
        typename Vm::Options vm_opts;
        vm_opts.variant = static_cast<vm::Variant>(req.variant);
        vm_opts.coreConfig.maxInstructions = opts.sourceMaxInstructions;
        vm_opts.coreConfig.execMode = opts.execMode;
        vm = std::make_unique<Vm>(req.source, vm_opts);
    } catch (const FatalError &e) {
        throw ServiceError{proto::ErrorCode::CompileFailed, e.what()};
    }
    if (opts.verifySource) {
        obs::SpanScope verifySpan(trace.recorder, trace.traceId,
                                  trace.parentSpan, "sim.verify");
        const analysis::Report lint = analysis::verifyImage(vm->program());
        if (lint.hasErrors()) {
            verifySpan.setDetail("rejected");
            ++*verify_rejected;
            throw ServiceError{proto::ErrorCode::VerifyRejected,
                               lint.render()};
        }
    }
    {
        obs::SpanScope simSpan(trace.recorder, trace.traceId,
                               trace.parentSpan, "sim.simulate");
        try {
            vm->run();
        } catch (const FatalError &e) {
            throw ServiceError{proto::ErrorCode::SimFailed, e.what()};
        }
    }
    proto::CellResult result;
    result.engine = req.engine;
    result.variant = req.variant;
    const core::CoreStats stats = vm->core().collectStats();
    result.instructions = stats.instructions;
    result.cycles = stats.cycles;
    result.output = vm->output();
    // Always rendered: the caller memoizes the full result and trims
    // statsJson per-request.
    result.statsJson = obs::statsToJson(stats);
    return result;
}

proto::CellResult
SimService::runMiniScript(const proto::SourceRequest &req,
                          const RequestTrace &trace)
{
    uint64_t rejected = 0;
    try {
        proto::CellResult result =
            toEngine(req.engine) == harness::Engine::Lua
                ? runScriptVm<vm::lua::LuaVm>(req, opts_, &rejected,
                                              trace)
                : runScriptVm<vm::js::JsVm>(req, opts_, &rejected,
                                            trace);
        return result;
    } catch (...) {
        if (rejected) {
            std::lock_guard<std::mutex> clock(countersMu_);
            counters_.verifyRejected += rejected;
        }
        throw;
    }
}

proto::CellResult
SimService::runAssembly(const proto::SourceRequest &req,
                        const RequestTrace &trace)
{
    assembler::Program prog;
    try {
        prog = assembler::assemble(req.source);
    } catch (const FatalError &e) {
        throw ServiceError{proto::ErrorCode::CompileFailed, e.what()};
    }
    if (opts_.verifySource) {
        obs::SpanScope verifySpan(trace.recorder, trace.traceId,
                                  trace.parentSpan, "sim.verify");
        const analysis::Report lint = analysis::verifyImage(prog);
        if (lint.hasErrors()) {
            verifySpan.setDetail("rejected");
            {
                std::lock_guard<std::mutex> clock(countersMu_);
                ++counters_.verifyRejected;
            }
            throw ServiceError{proto::ErrorCode::VerifyRejected,
                               lint.render()};
        }
    }
    try {
        core::CoreConfig cfg;
        cfg.maxInstructions = opts_.sourceMaxInstructions;
        cfg.execMode = opts_.execMode;
        core::Core core(cfg);
        core.loadProgram(prog);
        obs::SpanScope simSpan(trace.recorder, trace.traceId,
                               trace.parentSpan, "sim.simulate");
        core.run();
        simSpan.end();
        proto::CellResult result;
        result.engine = req.engine;
        result.variant = req.variant;
        const core::CoreStats stats = core.collectStats();
        result.instructions = stats.instructions;
        result.cycles = stats.cycles;
        result.output = core.output();
        result.statsJson = obs::statsToJson(stats);
        return result;
    } catch (const FatalError &e) {
        throw ServiceError{proto::ErrorCode::SimFailed, e.what()};
    }
}

SimService::Counters
SimService::counters() const
{
    std::lock_guard<std::mutex> lock(countersMu_);
    return counters_;
}

} // namespace tarch::serve
