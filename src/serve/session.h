/**
 * @file
 * SessionManager: stateful scripting sessions for tarch_served
 * (docs/SERVING.md, "Stateful sessions").
 *
 * A session is a long-lived SessionVm owned by one shard.  OpenSession
 * builds it from its first MiniScript chunk and runs it; SubmitChunk
 * runs follow-on chunks on the same machine — each chunk is gated
 * through the static verifier exactly like RunSource.  SnapshotSession
 * and RestoreSession move the complete machine as tarch-snap-v1 blobs;
 * idle eviction and router-driven migration both ride on them.
 *
 * Lifecycle and concurrency:
 *   - the session table is guarded by tableMu_; each live session has
 *     its own mutex serializing chunk runs, plus an inUse count
 *     (guarded by tableMu_) that pins it against eviction;
 *   - the reaper thread calls sweepIdle() on its tick: sessions idle
 *     past idleEvictMs with no request in flight are encoded and moved
 *     to <snapshotDir>/sess_<id>.snap — eviction is state movement, a
 *     distinct path from the deadline reaper, never an "expired" reply;
 *   - a request naming an evicted session transparently resumes it
 *     from disk;
 *   - drain calls evictAll() so no session state is lost on shutdown.
 *
 * All entry points throw ServiceError; the server turns it into a
 * typed Error frame (BadSnapshot / UnknownSession for session-specific
 * failures).
 */

#ifndef TARCH_SERVE_SESSION_H
#define TARCH_SERVE_SESSION_H

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/exec_mode.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "snapshot/session_vm.h"

namespace tarch::serve {

class SessionManager
{
  public:
    struct Options {
        /** Where evicted sessions park as tarch-snap-v1 files; empty
            disables idle eviction (sessions stay pinned in memory). */
        std::string snapshotDir;
        /** Idle time before a session is evicted to disk; 0 = never. */
        uint32_t idleEvictMs = 60'000;
        /** Live in-memory sessions; opening past this answers Busy. */
        size_t maxSessions = 256;
        /** Gate every chunk through the static verifier. */
        bool verifyChunks = true;
        /** Runaway guard applied to each chunk run (0 = core default). */
        uint64_t maxInstructionsPerChunk = 100'000'000;
        core::ExecMode execMode = core::defaultExecMode();
    };

    /** Monotonic counters (openNow is a gauge), for health/metrics. */
    struct Counters {
        uint64_t opened = 0;
        uint64_t closed = 0;
        uint64_t chunksRun = 0;
        uint64_t evicted = 0;    ///< live -> disk (idle sweep or drain)
        uint64_t resumed = 0;    ///< disk -> live, transparently
        uint64_t restored = 0;   ///< RestoreSession blobs installed
        uint64_t snapshots = 0;  ///< SnapshotSession blobs served
        uint64_t openNow = 0;    ///< live in-memory sessions
    };

    /** Histograms owned by the server's registry; null = not recorded. */
    struct Metrics {
        obs::Histogram *snapshotBytes = nullptr;
        obs::Histogram *snapshotUs = nullptr;
        obs::Histogram *restoreUs = nullptr;
    };

    explicit SessionManager(const Options &opts);
    ~SessionManager();

    SessionManager(const SessionManager &) = delete;
    SessionManager &operator=(const SessionManager &) = delete;

    void setMetrics(const Metrics &metrics) { metrics_ = metrics; }

    /** Build a session from its first chunk, verify, run it.  A zero
        req.sessionId lets the shard assign one. */
    proto::SessionReply open(const proto::OpenSessionRequest &req,
                             const RequestTrace &trace = {});

    /** Compile/verify/commit/run one follow-on chunk. */
    proto::SessionReply submit(const proto::SubmitChunkRequest &req,
                               const RequestTrace &trace = {});

    /** Capture the session as a tarch-snap-v1 blob (session stays
        live). */
    proto::SessionSnapshotResult snapshot(uint64_t session_id,
                                          const RequestTrace &trace = {});

    /** Decode and install a blob (migration / explicit resume).  The
        session id under which it lands is the blob's embedded id. */
    proto::SessionReply restore(const proto::RestoreSessionRequest &req,
                                const RequestTrace &trace = {});

    /** Drop a session (live or evicted). */
    proto::SessionClosedResult close(uint64_t session_id);

    /** Evict sessions idle past idleEvictMs to disk.  Internally
        rate-limited, so a high-frequency reaper tick may call it
        unconditionally.  No-op while idleEvictMs == 0 or snapshotDir
        is unset. */
    void sweepIdle();

    /** Evict every quiescent session to disk (drain path); without a
        snapshotDir the sessions are dropped. */
    void evictAll();

    Counters counters() const;

  private:
    struct Session {
        uint64_t id = 0;
        /** Serializes chunk runs; never held while taking tableMu_
            except through release(). */
        std::mutex mu;
        std::unique_ptr<snapshot::SessionVm> vm;
        /** Bytes of vm->output() already reported: replies carry the
            delta of their own chunk only (guarded by mu). */
        size_t outputMark = 0;
        /** Guarded by tableMu_: in-flight requests pin the session
            against eviction, lastUsed drives the idle sweep. */
        unsigned inUse = 0;
        std::chrono::steady_clock::time_point lastUsed;
    };

    /** Pin + return the live session, transparently resuming it from
        disk; throws UnknownSession. */
    std::shared_ptr<Session> acquire(uint64_t session_id,
                                     const RequestTrace &trace);
    void release(const std::shared_ptr<Session> &session);
    /** Install a freshly built session; throws on id collision or a
        full table. */
    void install(const std::shared_ptr<Session> &session, bool pinned);
    std::string snapshotPath(uint64_t session_id) const;
    /** Encode under the session's mutex and atomically persist. */
    bool evictToDisk(const std::shared_ptr<Session> &session);
    proto::SessionReply replyFor(Session &session);

    Options opts_;
    Metrics metrics_;

    mutable std::mutex tableMu_;
    std::map<uint64_t, std::shared_ptr<Session>> sessions_;
    uint64_t nextId_ = 1;
    std::chrono::steady_clock::time_point lastSweep_{};

    mutable std::mutex countersMu_;
    Counters counters_;
};

} // namespace tarch::serve

#endif // TARCH_SERVE_SESSION_H
