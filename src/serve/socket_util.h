/**
 * @file
 * Shared socket plumbing for the serving stack: exact-length reads and
 * writes, listener binding, endpoint parsing/connecting, and the
 * per-connection frame writer (FrameConn) used by both the daemon
 * (server.cc) and the shard router (router.cc).
 *
 * Everything here is errno-reporting rather than throwing: the serving
 * path must survive dead peers, refused connects, and send timeouts —
 * a failed socket operation is an event to route around, not a fatal
 * condition.
 */

#ifndef TARCH_SERVE_SOCKET_UTIL_H
#define TARCH_SERVE_SOCKET_UTIL_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace tarch::serve {

/**
 * recv exactly @p len bytes.  1 = got them, 0 = clean EOF before the
 * first byte, -1 = disconnect or socket error mid-buffer.
 */
int readFull(int fd, void *buf, size_t len);

/**
 * send exactly @p len bytes (MSG_NOSIGNAL, EINTR-retried).  false on
 * any error — including an SO_SNDTIMEO timeout, which may leave a
 * PARTIAL frame on the wire: the caller must treat the stream as
 * desynchronized and close the connection.
 */
bool sendAll(int fd, const char *data, size_t len);

/** One backend/frontend address: a Unix socket path or a TCP loopback
    port.  Exactly one of the two is set. */
struct Endpoint {
    std::string unixPath;
    int tcpPort = -1;

    bool valid() const { return !unixPath.empty() || tcpPort >= 0; }
    /** "unix:/path" or "tcp:PORT" (for logs and stats JSON). */
    std::string describe() const;
};

/** Parse "unix:PATH" or "tcp:PORT"; false on malformed input. */
bool parseEndpoint(const std::string &text, Endpoint &out);

/**
 * Connect to @p ep (TCP targets 127.0.0.1).  Returns the connected fd
 * with TCP_NODELAY applied, or -1 with errno set.  Never throws: a
 * dead shard is an expected condition for routers and hedging clients.
 */
int connectEndpoint(const Endpoint &ep);

/** SO_SNDTIMEO; 0 ms = no timeout.  Best-effort. */
void setSendTimeout(int fd, uint32_t timeout_ms);

/** Bind + listen on a Unix socket path (unlinking any stale file).
    Returns the listening fd or -1 with errno set. */
int bindUnixListener(const std::string &path);

/** Bind + listen on 127.0.0.1:@p port (0 = ephemeral).  On success
    returns the fd and stores the actual port in @p bound_port. */
int bindTcpListener(int port, uint16_t &bound_port);

/**
 * One accepted connection: an fd, a write mutex so pipelined response
 * frames never interleave, and the reader thread that owns the receive
 * direction.  Shared by Server and Router.
 */
struct FrameConn {
    int fd = -1;
    std::mutex writeMu;
    std::atomic<bool> open{true};
    std::thread reader;

    ~FrameConn();

    /**
     * Serialized frame write.  On ANY send failure — including a
     * partial frame cut short by the send timeout — the byte stream is
     * desynchronized, so the connection is shut down (waking the
     * reader) rather than left half-alive writing frames onto a
     * corrupt stream.  Returns false once the connection is unusable.
     */
    bool sendFrame(const std::string &frame);

    /** Wake the reader and refuse further writes.  The exchange makes
        exactly one caller touch ::shutdown, and since closeFd() only
        runs after the reader exited (which sets open false first), the
        winner always sees a still-valid descriptor. */
    void shutdownNow();

    /** Release the descriptor once the reader is joined.  writeMu
        serializes against an in-progress sendFrame so the fd cannot be
        closed (and its number reused) mid-write. */
    void closeFd();
};

} // namespace tarch::serve

#endif // TARCH_SERVE_SOCKET_UTIL_H
