#include "serve/client.h"

#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.h"

namespace tarch::serve {

namespace {

int
readFull(int fd, void *buf, size_t len)
{
    auto *p = static_cast<uint8_t *>(buf);
    size_t got = 0;
    while (got < len) {
        const ssize_t n = ::recv(fd, p + got, len - got, 0);
        if (n == 0)
            return got == 0 ? 0 : -1;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return got == 0 ? 0 : -1;
        }
        got += static_cast<size_t>(n);
    }
    return 1;
}

} // namespace

Client
Client::connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        tarch_fatal("serve client: unix socket path too long: %s",
                    path.c_str());
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        tarch_fatal("serve client: socket(AF_UNIX): %s",
                    std::strerror(errno));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        tarch_fatal("serve client: cannot connect to %s: %s",
                    path.c_str(), std::strerror(err));
    }
    return Client(fd);
}

Client
Client::connectTcp(uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        tarch_fatal("serve client: socket(AF_INET): %s",
                    std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        tarch_fatal("serve client: cannot connect to 127.0.0.1:%u: %s",
                    port, std::strerror(err));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Client(fd);
}

Client::Client(Client &&other) noexcept
    : fd_(other.fd_), nextId_(other.nextId_)
{
    other.fd_ = -1;
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        nextId_ = other.nextId_;
        other.fd_ = -1;
    }
    return *this;
}

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::sendRaw(const void *data, size_t len)
{
    if (fd_ < 0)
        return false;
    const auto *p = static_cast<const char *>(data);
    size_t sent = 0;
    while (sent < len) {
        const ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

uint64_t
Client::sendRequest(proto::MsgKind kind, const std::string &payload)
{
    const uint64_t id = nextId_++;
    const std::string frame = proto::encodeFrame(kind, id, payload);
    if (!sendRaw(frame.data(), frame.size()))
        tarch_fatal("serve client: send failed: %s",
                    std::strerror(errno));
    return id;
}

bool
Client::readReply(Reply &out)
{
    if (fd_ < 0)
        return false;
    uint8_t header[proto::kHeaderSize];
    const int got = readFull(fd_, header, sizeof(header));
    if (got == 0)
        return false; // clean close (drained server)
    if (got < 0)
        tarch_fatal("serve client: connection lost mid-frame");
    proto::FrameHeader fh;
    if (proto::parseHeader(header, fh, proto::kMaxPayload) !=
        proto::HeaderStatus::Ok)
        tarch_fatal("serve client: garbled response header");
    out.kind = fh.kind;
    out.requestId = fh.requestId;
    out.payload.assign(fh.payloadLen, '\0');
    if (fh.payloadLen > 0 &&
        readFull(fd_, out.payload.data(), out.payload.size()) != 1)
        tarch_fatal("serve client: connection lost mid-frame");
    return true;
}

Client::Outcome
Client::awaitCellOutcome(uint64_t request_id)
{
    Outcome outcome;
    Reply reply;
    // Skip replies to other (pipelined) requests; closed-loop callers
    // never see any.
    for (;;) {
        if (!readReply(reply)) {
            outcome.closed = true;
            return outcome;
        }
        if (reply.requestId == request_id)
            break;
    }
    if (static_cast<proto::MsgKind>(reply.kind) ==
        proto::MsgKind::CellResult) {
        if (!proto::decodeCellResult(reply.payload, outcome.result))
            tarch_fatal("serve client: garbled CellResult payload");
        outcome.ok = true;
        return outcome;
    }
    if (static_cast<proto::MsgKind>(reply.kind) == proto::MsgKind::Error) {
        if (!proto::decodeErrorBody(reply.payload, outcome.error))
            tarch_fatal("serve client: garbled Error payload");
        return outcome;
    }
    tarch_fatal("serve client: unexpected reply kind %u to request %llu",
                reply.kind, (unsigned long long)request_id);
}

Client::Outcome
Client::runCell(const proto::CellRequest &req)
{
    const uint64_t id = sendRequest(proto::MsgKind::RunCell,
                                    proto::encodeCellRequest(req));
    return awaitCellOutcome(id);
}

Client::Outcome
Client::runSource(const proto::SourceRequest &req)
{
    const uint64_t id = sendRequest(proto::MsgKind::RunSource,
                                    proto::encodeSourceRequest(req));
    return awaitCellOutcome(id);
}

bool
Client::runBatch(const proto::BatchRequest &req, proto::BatchResult &out,
                 proto::ErrorBody &error)
{
    const uint64_t id = sendRequest(proto::MsgKind::RunBatch,
                                    proto::encodeBatchRequest(req));
    Reply reply;
    for (;;) {
        if (!readReply(reply)) {
            error.code =
                static_cast<uint16_t>(proto::ErrorCode::Draining);
            error.message = "connection closed before the batch reply";
            return false;
        }
        if (reply.requestId == id)
            break;
    }
    if (static_cast<proto::MsgKind>(reply.kind) ==
        proto::MsgKind::BatchResult) {
        if (!proto::decodeBatchResult(reply.payload, out))
            tarch_fatal("serve client: garbled BatchResult payload");
        return true;
    }
    if (static_cast<proto::MsgKind>(reply.kind) == proto::MsgKind::Error &&
        proto::decodeErrorBody(reply.payload, error))
        return false;
    tarch_fatal("serve client: unexpected reply kind %u to batch %llu",
                reply.kind, (unsigned long long)id);
}

std::string
Client::stats()
{
    const uint64_t id = sendRequest(proto::MsgKind::Stats, "");
    Reply reply;
    for (;;) {
        if (!readReply(reply))
            return "";
        if (reply.requestId == id)
            break;
    }
    proto::StatsResult stats;
    if (static_cast<proto::MsgKind>(reply.kind) !=
            proto::MsgKind::StatsResult ||
        !proto::decodeStatsResult(reply.payload, stats))
        tarch_fatal("serve client: garbled Stats reply");
    return stats.json;
}

bool
Client::ping()
{
    const uint64_t id = sendRequest(proto::MsgKind::Ping, "");
    Reply reply;
    for (;;) {
        if (!readReply(reply))
            return false;
        if (reply.requestId == id)
            break;
    }
    return static_cast<proto::MsgKind>(reply.kind) == proto::MsgKind::Pong;
}

bool
Client::drain()
{
    const uint64_t id = sendRequest(proto::MsgKind::Drain, "");
    Reply reply;
    for (;;) {
        if (!readReply(reply))
            return false;
        if (reply.requestId == id)
            break;
    }
    return static_cast<proto::MsgKind>(reply.kind) ==
           proto::MsgKind::DrainStarted;
}

} // namespace tarch::serve
