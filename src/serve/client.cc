#include "serve/client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.h"

namespace tarch::serve {

Client
Client::connectUnix(const std::string &path)
{
    Endpoint ep;
    ep.unixPath = path;
    const int fd = connectEndpoint(ep);
    if (fd < 0)
        tarch_fatal("serve client: cannot connect to %s: %s",
                    path.c_str(), std::strerror(errno));
    return Client(fd);
}

Client
Client::connectTcp(uint16_t port)
{
    Endpoint ep;
    ep.tcpPort = port;
    const int fd = connectEndpoint(ep);
    if (fd < 0)
        tarch_fatal("serve client: cannot connect to 127.0.0.1:%u: %s",
                    port, std::strerror(errno));
    return Client(fd);
}

Client
Client::tryConnect(const Endpoint &ep)
{
    return Client(ep.valid() ? connectEndpoint(ep) : -1);
}

Client::Client(Client &&other) noexcept
    : fd_(other.fd_), nextId_(other.nextId_),
      lastStatus_(other.lastStatus_), recorder_(other.recorder_),
      traceSampleEvery_(other.traceSampleEvery_),
      traceTick_(other.traceTick_),
      peerMaxVersion_(other.peerMaxVersion_)
{
    other.fd_ = -1;
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        nextId_ = other.nextId_;
        lastStatus_ = other.lastStatus_;
        recorder_ = other.recorder_;
        traceSampleEvery_ = other.traceSampleEvery_;
        traceTick_ = other.traceTick_;
        peerMaxVersion_ = other.peerMaxVersion_;
        other.fd_ = -1;
    }
    return *this;
}

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::sendRaw(const void *data, size_t len)
{
    if (fd_ < 0)
        return false;
    if (!sendAll(fd_, static_cast<const char *>(data), len)) {
        // A partial frame may be on the wire — this connection can no
        // longer speak the protocol.  Poison it; the caller retries on
        // a fresh connection (or another shard).
        lastStatus_ = IoStatus::Lost;
        close();
        return false;
    }
    return true;
}

uint64_t
Client::sendRequest(proto::MsgKind kind, const std::string &payload)
{
    const uint64_t id = nextId_++;
    const std::string frame = proto::encodeFrame(kind, id, payload);
    if (!sendRaw(frame.data(), frame.size()))
        return 0;
    return id;
}

uint64_t
Client::sendTracedRequest(proto::MsgKind kind,
                          const proto::TraceContext &ctx,
                          const std::string &payload)
{
    // Degrade, never break framing: only a peer that Hello-proved v2
    // gets a traced frame.
    if (ctx.traceId == 0 || peerMaxVersion() < proto::kVersionTraced)
        return sendRequest(kind, payload);
    const uint64_t id = nextId_++;
    const std::string frame =
        proto::encodeTracedFrame(kind, id, ctx, payload);
    if (!sendRaw(frame.data(), frame.size()))
        return 0;
    return id;
}

Client::IoStatus
Client::readFrame(Reply &out)
{
    if (fd_ < 0)
        return lastStatus_ == IoStatus::Ok ? IoStatus::Closed
                                           : lastStatus_;
    uint8_t header[proto::kHeaderSize];
    const int got = readFull(fd_, header, sizeof(header));
    if (got == 0) {
        // Clean close at a frame boundary (drained server).
        lastStatus_ = IoStatus::Closed;
        close();
        return IoStatus::Closed;
    }
    if (got < 0) {
        lastStatus_ = IoStatus::Lost;
        close();
        return IoStatus::Lost;
    }
    proto::FrameHeader fh;
    if (proto::parseHeader(header, fh, proto::kMaxPayload) !=
        proto::HeaderStatus::Ok) {
        lastStatus_ = IoStatus::Garbled;
        close();
        return IoStatus::Garbled;
    }
    out.kind = fh.kind;
    out.requestId = fh.requestId;
    out.payload.assign(fh.payloadLen, '\0');
    if (fh.payloadLen > 0 &&
        readFull(fd_, out.payload.data(), out.payload.size()) != 1) {
        lastStatus_ = IoStatus::Lost;
        close();
        return IoStatus::Lost;
    }
    return IoStatus::Ok;
}

Client::Outcome
Client::lostOutcome(const char *what)
{
    Outcome outcome;
    if (lastStatus_ == IoStatus::Closed) {
        outcome.closed = true;
        return outcome;
    }
    outcome.error.code =
        static_cast<uint16_t>(proto::ErrorCode::ConnectionLost);
    outcome.error.retryable = 1;
    outcome.error.message = what;
    return outcome;
}

Client::Outcome
Client::awaitCellOutcome(uint64_t request_id)
{
    Outcome outcome;
    if (request_id == 0)
        return lostOutcome("send failed");
    Reply reply;
    // Skip replies to other (pipelined or hedge-abandoned) requests;
    // closed-loop callers never see any.
    for (;;) {
        const IoStatus st = readFrame(reply);
        if (st == IoStatus::Closed) {
            outcome.closed = true;
            return outcome;
        }
        if (st != IoStatus::Ok)
            return lostOutcome(st == IoStatus::Garbled
                                   ? "garbled response stream"
                                   : "connection lost mid-frame");
        if (reply.requestId == request_id)
            break;
    }
    if (static_cast<proto::MsgKind>(reply.kind) ==
        proto::MsgKind::CellResult) {
        if (!proto::decodeCellResult(reply.payload, outcome.result)) {
            lastStatus_ = IoStatus::Garbled;
            close();
            return lostOutcome("garbled CellResult payload");
        }
        outcome.ok = true;
        return outcome;
    }
    if (static_cast<proto::MsgKind>(reply.kind) == proto::MsgKind::Error) {
        if (!proto::decodeErrorBody(reply.payload, outcome.error)) {
            lastStatus_ = IoStatus::Garbled;
            close();
            return lostOutcome("garbled Error payload");
        }
        return outcome;
    }
    lastStatus_ = IoStatus::Garbled;
    close();
    return lostOutcome("unexpected reply kind");
}

uint16_t
Client::hello()
{
    if (fd_ < 0)
        return 0;
    const uint64_t id = sendRequest(proto::MsgKind::Hello, "");
    if (id == 0)
        return 0;
    Reply reply;
    for (;;) {
        if (readFrame(reply) != IoStatus::Ok)
            return 0;
        if (reply.requestId == id)
            break;
    }
    if (static_cast<proto::MsgKind>(reply.kind) ==
        proto::MsgKind::HelloResult) {
        proto::HelloResult hello;
        if (!proto::decodeHelloResult(reply.payload, hello)) {
            lastStatus_ = IoStatus::Garbled;
            close();
            return 0;
        }
        peerMaxVersion_ = hello.maxVersion;
        return peerMaxVersion_;
    }
    if (static_cast<proto::MsgKind>(reply.kind) == proto::MsgKind::Error) {
        // A v1 peer does not know the Hello kind; that IS the answer.
        peerMaxVersion_ = 1;
        return peerMaxVersion_;
    }
    lastStatus_ = IoStatus::Garbled;
    close();
    return 0;
}

uint16_t
Client::peerMaxVersion()
{
    if (peerMaxVersion_ == 0 && fd_ >= 0)
        hello();
    return peerMaxVersion_;
}

void
Client::enableTracing(obs::SpanRecorder *recorder, uint64_t sample_every)
{
    recorder_ = recorder;
    traceSampleEvery_ = recorder ? sample_every : 0;
}

bool
Client::sampleTrace()
{
    if (!recorder_ || traceSampleEvery_ == 0)
        return false;
    return ++traceTick_ % traceSampleEvery_ == 0;
}

uint64_t
Client::newTraceId()
{
    // Unique enough across cooperating local processes: pid, object
    // identity, a per-client tick, and the wall clock, FNV-folded.
    struct {
        uint64_t pid;
        uint64_t self;
        uint64_t tick;
        uint64_t now;
    } seed = {static_cast<uint64_t>(::getpid()),
              reinterpret_cast<uint64_t>(this), traceTick_,
              obs::SpanRecorder::wallNowUs()};
    const uint64_t id = proto::fnv1a64(&seed, sizeof(seed));
    return id != 0 ? id : 1;
}

Client::Outcome
Client::runCell(const proto::CellRequest &req)
{
    if (sampleTrace() && peerMaxVersion() >= proto::kVersionTraced) {
        const uint64_t trace_id = newTraceId();
        // The root span covers the whole round trip: it is recorded by
        // the scope's destructor after the reply is read.
        obs::SpanScope root(recorder_, trace_id, 0, "client.request");
        root.setDetail(req.benchmark);
        proto::TraceContext ctx;
        ctx.traceId = trace_id;
        ctx.parentSpanId = root.id();
        ctx.sampled = 1;
        const uint64_t id = sendTracedRequest(
            proto::MsgKind::RunCell, ctx, proto::encodeCellRequest(req));
        return awaitCellOutcome(id);
    }
    const uint64_t id = sendRequest(proto::MsgKind::RunCell,
                                    proto::encodeCellRequest(req));
    return awaitCellOutcome(id);
}

Client::Outcome
Client::runCell(const proto::CellRequest &req,
                const proto::TraceContext &ctx)
{
    const uint64_t id = sendTracedRequest(proto::MsgKind::RunCell, ctx,
                                          proto::encodeCellRequest(req));
    return awaitCellOutcome(id);
}

Client::Outcome
Client::runSource(const proto::SourceRequest &req)
{
    if (sampleTrace() && peerMaxVersion() >= proto::kVersionTraced) {
        const uint64_t trace_id = newTraceId();
        obs::SpanScope root(recorder_, trace_id, 0, "client.request");
        root.setDetail("source");
        proto::TraceContext ctx;
        ctx.traceId = trace_id;
        ctx.parentSpanId = root.id();
        ctx.sampled = 1;
        const uint64_t id =
            sendTracedRequest(proto::MsgKind::RunSource, ctx,
                              proto::encodeSourceRequest(req));
        return awaitCellOutcome(id);
    }
    const uint64_t id = sendRequest(proto::MsgKind::RunSource,
                                    proto::encodeSourceRequest(req));
    return awaitCellOutcome(id);
}

Client::Outcome
Client::runSource(const proto::SourceRequest &req,
                  const proto::TraceContext &ctx)
{
    const uint64_t id =
        sendTracedRequest(proto::MsgKind::RunSource, ctx,
                          proto::encodeSourceRequest(req));
    return awaitCellOutcome(id);
}

bool
Client::runBatch(const proto::BatchRequest &req, proto::BatchResult &out,
                 proto::ErrorBody &error)
{
    const uint64_t id = sendRequest(proto::MsgKind::RunBatch,
                                    proto::encodeBatchRequest(req));
    if (id == 0) {
        error.code =
            static_cast<uint16_t>(proto::ErrorCode::ConnectionLost);
        error.retryable = 1;
        error.message = "send failed";
        return false;
    }
    Reply reply;
    for (;;) {
        const IoStatus st = readFrame(reply);
        if (st == IoStatus::Closed) {
            error.code =
                static_cast<uint16_t>(proto::ErrorCode::Draining);
            error.message = "connection closed before the batch reply";
            return false;
        }
        if (st != IoStatus::Ok) {
            error.code =
                static_cast<uint16_t>(proto::ErrorCode::ConnectionLost);
            error.retryable = 1;
            error.message = "connection lost before the batch reply";
            return false;
        }
        if (reply.requestId == id)
            break;
    }
    if (static_cast<proto::MsgKind>(reply.kind) ==
        proto::MsgKind::BatchResult) {
        if (proto::decodeBatchResult(reply.payload, out))
            return true;
        lastStatus_ = IoStatus::Garbled;
        close();
        error.code =
            static_cast<uint16_t>(proto::ErrorCode::ConnectionLost);
        error.retryable = 1;
        error.message = "garbled BatchResult payload";
        return false;
    }
    if (static_cast<proto::MsgKind>(reply.kind) == proto::MsgKind::Error &&
        proto::decodeErrorBody(reply.payload, error))
        return false;
    lastStatus_ = IoStatus::Garbled;
    close();
    error.code = static_cast<uint16_t>(proto::ErrorCode::ConnectionLost);
    error.retryable = 1;
    error.message = "unexpected reply kind to batch";
    return false;
}

Client::SessionOutcome
Client::lostSessionOutcome(const char *what)
{
    close();
    SessionOutcome outcome;
    outcome.error.code =
        static_cast<uint16_t>(proto::ErrorCode::ConnectionLost);
    outcome.error.retryable = 1;
    outcome.error.message = what;
    return outcome;
}

Client::SessionOutcome
Client::awaitSessionOutcome(uint64_t request_id, proto::MsgKind expect)
{
    SessionOutcome outcome;
    if (request_id == 0)
        return lostSessionOutcome("send failed");
    Reply reply;
    for (;;) {
        const IoStatus st = readFrame(reply);
        if (st == IoStatus::Closed) {
            outcome.closed = true;
            return outcome;
        }
        if (st != IoStatus::Ok)
            return lostSessionOutcome(st == IoStatus::Garbled
                                          ? "garbled response stream"
                                          : "connection lost mid-frame");
        if (reply.requestId == request_id)
            break;
    }
    const auto kind = static_cast<proto::MsgKind>(reply.kind);
    if (kind == proto::MsgKind::Error) {
        if (!proto::decodeErrorBody(reply.payload, outcome.error)) {
            lastStatus_ = IoStatus::Garbled;
            close();
            return lostSessionOutcome("garbled Error payload");
        }
        return outcome;
    }
    if (kind != expect) {
        lastStatus_ = IoStatus::Garbled;
        close();
        return lostSessionOutcome("unexpected reply kind");
    }
    bool decoded = false;
    switch (expect) {
      case proto::MsgKind::SessionOpened:
      case proto::MsgKind::ChunkResult:
        decoded = proto::decodeSessionReply(reply.payload, outcome.reply);
        break;
      case proto::MsgKind::SessionSnapshot:
        decoded = proto::decodeSessionSnapshotResult(reply.payload,
                                                     outcome.snapshot);
        break;
      case proto::MsgKind::SessionClosed: {
        proto::SessionClosedResult closedResult;
        decoded =
            proto::decodeSessionClosedResult(reply.payload, closedResult);
        outcome.reply.sessionId = closedResult.sessionId;
        break;
      }
      default:
        break;
    }
    if (!decoded) {
        lastStatus_ = IoStatus::Garbled;
        close();
        return lostSessionOutcome("garbled session reply payload");
    }
    outcome.ok = true;
    return outcome;
}

/** Request kind -> the success reply kind it must be answered with. */
static proto::MsgKind
sessionReplyKind(proto::MsgKind kind)
{
    switch (kind) {
      case proto::MsgKind::SubmitChunk:
        return proto::MsgKind::ChunkResult;
      case proto::MsgKind::SnapshotSession:
        return proto::MsgKind::SessionSnapshot;
      case proto::MsgKind::CloseSession:
        return proto::MsgKind::SessionClosed;
      default:  // OpenSession and RestoreSession
        return proto::MsgKind::SessionOpened;
    }
}

Client::SessionOutcome
Client::sessionRequest(proto::MsgKind kind, const std::string &payload,
                       const char *detail)
{
    if (sampleTrace() && peerMaxVersion() >= proto::kVersionTraced) {
        const uint64_t trace_id = newTraceId();
        obs::SpanScope root(recorder_, trace_id, 0, "client.request");
        root.setDetail(detail);
        proto::TraceContext ctx;
        ctx.traceId = trace_id;
        ctx.parentSpanId = root.id();
        ctx.sampled = 1;
        const uint64_t id = sendTracedRequest(kind, ctx, payload);
        return awaitSessionOutcome(id, sessionReplyKind(kind));
    }
    const uint64_t id = sendRequest(kind, payload);
    return awaitSessionOutcome(id, sessionReplyKind(kind));
}

Client::SessionOutcome
Client::openSession(const proto::OpenSessionRequest &req)
{
    return sessionRequest(proto::MsgKind::OpenSession,
                          proto::encodeOpenSessionRequest(req), "open");
}

Client::SessionOutcome
Client::submitChunk(const proto::SubmitChunkRequest &req)
{
    return sessionRequest(proto::MsgKind::SubmitChunk,
                          proto::encodeSubmitChunkRequest(req), "chunk");
}

Client::SessionOutcome
Client::snapshotSession(uint64_t session_id)
{
    proto::SessionIdRequest req;
    req.sessionId = session_id;
    return sessionRequest(proto::MsgKind::SnapshotSession,
                          proto::encodeSessionIdRequest(req), "snapshot");
}

Client::SessionOutcome
Client::restoreSession(const proto::RestoreSessionRequest &req)
{
    return sessionRequest(proto::MsgKind::RestoreSession,
                          proto::encodeRestoreSessionRequest(req),
                          "restore");
}

Client::SessionOutcome
Client::closeSession(uint64_t session_id)
{
    proto::SessionIdRequest req;
    req.sessionId = session_id;
    return sessionRequest(proto::MsgKind::CloseSession,
                          proto::encodeSessionIdRequest(req), "close");
}

Client::SessionOutcome
Client::sessionCall(proto::MsgKind kind, const std::string &payload,
                    const proto::TraceContext &ctx)
{
    const uint64_t id = sendTracedRequest(kind, ctx, payload);
    return awaitSessionOutcome(id, sessionReplyKind(kind));
}

std::string
Client::stats()
{
    const uint64_t id = sendRequest(proto::MsgKind::Stats, "");
    if (id == 0)
        return "";
    Reply reply;
    for (;;) {
        if (readFrame(reply) != IoStatus::Ok)
            return "";
        if (reply.requestId == id)
            break;
    }
    proto::StatsResult stats;
    if (static_cast<proto::MsgKind>(reply.kind) !=
            proto::MsgKind::StatsResult ||
        !proto::decodeStatsResult(reply.payload, stats)) {
        lastStatus_ = IoStatus::Garbled;
        close();
        return "";
    }
    return stats.json;
}

std::string
Client::metricsText()
{
    const uint64_t id = sendRequest(proto::MsgKind::Metrics, "");
    if (id == 0)
        return "";
    Reply reply;
    for (;;) {
        if (readFrame(reply) != IoStatus::Ok)
            return "";
        if (reply.requestId == id)
            break;
    }
    proto::MetricsResult metrics;
    if (static_cast<proto::MsgKind>(reply.kind) !=
            proto::MsgKind::MetricsResult ||
        !proto::decodeMetricsResult(reply.payload, metrics)) {
        // A v1 peer answers UnknownKind — not garbled, just absent.
        if (static_cast<proto::MsgKind>(reply.kind) ==
            proto::MsgKind::Error)
            return "";
        lastStatus_ = IoStatus::Garbled;
        close();
        return "";
    }
    return metrics.text;
}

bool
Client::ping()
{
    const uint64_t id = sendRequest(proto::MsgKind::Ping, "");
    if (id == 0)
        return false;
    Reply reply;
    for (;;) {
        if (readFrame(reply) != IoStatus::Ok)
            return false;
        if (reply.requestId == id)
            break;
    }
    return static_cast<proto::MsgKind>(reply.kind) == proto::MsgKind::Pong;
}

bool
Client::drain()
{
    const uint64_t id = sendRequest(proto::MsgKind::Drain, "");
    if (id == 0)
        return false;
    Reply reply;
    for (;;) {
        if (readFrame(reply) != IoStatus::Ok)
            return false;
        if (reply.requestId == id)
            break;
    }
    return static_cast<proto::MsgKind>(reply.kind) ==
           proto::MsgKind::DrainStarted;
}

} // namespace tarch::serve
