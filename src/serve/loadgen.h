/**
 * @file
 * Load-generation measurement: the open-loop latency accounting that
 * makes percentiles honest under stalls.  The log-bucketed
 * LatencyHistogram itself now lives in obs/metrics.h (PR 9), where the
 * metrics registry can serve it to every daemon without inverting the
 * obs -> serve layering; the alias below keeps existing serve-side
 * callers and tests source-compatible.
 *
 * A closed-loop load generator (send, wait, send) measures only
 * service time: when the server stalls, the generator stops sending,
 * so the stall appears in ONE sample instead of the dozens of requests
 * that would have arrived meanwhile — the "coordinated omission"
 * artifact, which can under-report p99 by orders of magnitude.  The
 * open-loop model fixes the arrival schedule in advance and charges
 * every request from its INTENDED start time, so queueing delay from
 * falling behind is part of the number.
 */

#ifndef TARCH_SERVE_LOADGEN_H
#define TARCH_SERVE_LOADGEN_H

#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace tarch::serve {

using LatencyHistogram = obs::LatencyHistogram;

/**
 * Pure model of one worker draining a fixed open-loop arrival schedule
 * (request i intended at i * interval): returns each request's latency
 * measured from its INTENDED start.  The same service times charged
 * closed-loop are just `service_us` itself — diffing the two exposes
 * exactly the queueing delay coordinated omission hides.
 */
std::vector<uint64_t>
openLoopLatencies(const std::vector<uint64_t> &service_us,
                  uint64_t interval_us);

} // namespace tarch::serve

#endif // TARCH_SERVE_LOADGEN_H
