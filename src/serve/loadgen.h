/**
 * @file
 * Load-generation measurement: an HdrHistogram-style log-bucketed
 * latency histogram and the open-loop latency accounting that makes
 * percentiles honest under stalls.
 *
 * A closed-loop load generator (send, wait, send) measures only
 * service time: when the server stalls, the generator stops sending,
 * so the stall appears in ONE sample instead of the dozens of requests
 * that would have arrived meanwhile — the "coordinated omission"
 * artifact, which can under-report p99 by orders of magnitude.  The
 * open-loop model fixes the arrival schedule in advance and charges
 * every request from its INTENDED start time, so queueing delay from
 * falling behind is part of the number.
 */

#ifndef TARCH_SERVE_LOADGEN_H
#define TARCH_SERVE_LOADGEN_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tarch::serve {

/**
 * Log-bucketed histogram for microsecond latencies: values below 32
 * are exact; above that, each power-of-two range is split into 32
 * linear sub-buckets (~3% relative error), the HdrHistogram layout.
 * Fixed-size storage, O(1) record, merge by addition — each load
 * worker records into its own and the tool merges at the end.
 */
class LatencyHistogram
{
  public:
    void record(uint64_t value_us);
    void merge(const LatencyHistogram &other);

    uint64_t count() const { return count_; }
    uint64_t maxValue() const { return max_; }
    double mean() const;
    /** Smallest bucket upper bound covering @p pct percent of samples
        (pct in (0, 100]); 0 when empty.  Reported from the bucket
        ceiling, so it never under-states. */
    uint64_t percentile(double pct) const;

  private:
    static constexpr unsigned kSubBuckets = 32;  ///< per power of two
    static constexpr size_t kBuckets = kSubBuckets * 60;
    static size_t bucketIndex(uint64_t value);
    static uint64_t bucketUpper(size_t index);

    std::array<uint64_t, kBuckets> counts_{};
    uint64_t count_ = 0;
    uint64_t max_ = 0;
    double sum_ = 0.0;
};

/**
 * Pure model of one worker draining a fixed open-loop arrival schedule
 * (request i intended at i * interval): returns each request's latency
 * measured from its INTENDED start.  The same service times charged
 * closed-loop are just `service_us` itself — diffing the two exposes
 * exactly the queueing delay coordinated omission hides.
 */
std::vector<uint64_t>
openLoopLatencies(const std::vector<uint64_t> &service_us,
                  uint64_t interval_us);

} // namespace tarch::serve

#endif // TARCH_SERVE_LOADGEN_H
