#include "serve/session.h"

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <thread>
#include <unistd.h>
#include <vector>

#include "analysis/checks.h"
#include "common/log.h"
#include "common/strutil.h"
#include "core/stats.h"

namespace tarch::serve {

namespace {

uint64_t
usSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

std::string
readFileToString(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string out;
    char buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool ok = !std::ferror(f);
    std::fclose(f);
    return ok ? out : "";
}

/** Temp file + rename, same publication discipline as the cell cache:
    concurrent evictors of the same session produce identical bytes, so
    whole-file rename wins either way. */
bool
writeFileAtomic(const std::string &path, const std::string &data)
{
    const std::string tmp = strformat(
        "%s.tmp.%ld.%zu", path.c_str(), (long)::getpid(),
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        const std::string parent =
            std::filesystem::path(path).parent_path().string();
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
        f = std::fopen(tmp.c_str(), "wb");
        if (!f)
            return false;
    }
    bool ok = data.empty() ||
              std::fwrite(data.data(), 1, data.size(), f) == data.size();
    if (std::fclose(f) != 0)
        ok = false;
    if (ok && std::rename(tmp.c_str(), path.c_str()) != 0)
        ok = false;
    if (!ok)
        std::remove(tmp.c_str());
    return ok;
}

} // namespace

SessionManager::SessionManager(const Options &opts) : opts_(opts)
{
    if (!opts_.snapshotDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts_.snapshotDir, ec);
        std::error_code probe;
        if (!std::filesystem::is_directory(opts_.snapshotDir, probe)) {
            tarch_warn("serve: cannot create session snapshot dir %s; "
                       "idle eviction disabled",
                       opts_.snapshotDir.c_str());
            opts_.snapshotDir.clear();
        }
    }
}

SessionManager::~SessionManager() = default;

std::string
SessionManager::snapshotPath(uint64_t session_id) const
{
    return strformat("%s/sess_%016llx.snap", opts_.snapshotDir.c_str(),
                     (unsigned long long)session_id);
}

proto::SessionReply
SessionManager::replyFor(Session &session)
{
    proto::SessionReply reply;
    reply.sessionId = session.id;
    reply.chunkIndex = session.vm->chunks().size();
    const core::CoreStats stats = session.vm->stats();
    reply.instructions = stats.instructions;
    reply.cycles = stats.cycles;
    reply.output = session.vm->output().substr(session.outputMark);
    session.outputMark = session.vm->output().size();
    return reply;
}

void
SessionManager::install(const std::shared_ptr<Session> &session,
                        bool pinned)
{
    std::lock_guard<std::mutex> lock(tableMu_);
    if (sessions_.size() >= opts_.maxSessions)
        throw ServiceError{proto::ErrorCode::Busy,
                           strformat("session table full (%zu live)",
                                     sessions_.size())};
    if (!sessions_.emplace(session->id, session).second)
        throw ServiceError{
            proto::ErrorCode::BadRequest,
            strformat("session %llu already live on this shard",
                      (unsigned long long)session->id)};
    session->inUse = pinned ? 1 : 0;
    session->lastUsed = std::chrono::steady_clock::now();
}

void
SessionManager::release(const std::shared_ptr<Session> &session)
{
    std::lock_guard<std::mutex> lock(tableMu_);
    if (session->inUse > 0)
        --session->inUse;
    session->lastUsed = std::chrono::steady_clock::now();
}

proto::SessionReply
SessionManager::open(const proto::OpenSessionRequest &req,
                     const RequestTrace &trace)
{
    if (req.engine > 1 || req.variant > 2)
        throw ServiceError{proto::ErrorCode::BadRequest,
                           "bad engine or variant"};

    uint64_t id = req.sessionId;
    {
        std::lock_guard<std::mutex> lock(tableMu_);
        if (id == 0) {
            while (sessions_.count(nextId_))
                ++nextId_;
            id = nextId_++;
        } else if (sessions_.count(id)) {
            throw ServiceError{
                proto::ErrorCode::BadRequest,
                strformat("session %llu already live on this shard",
                          (unsigned long long)id)};
        }
    }
    if (!opts_.snapshotDir.empty()) {
        std::error_code probe;
        if (std::filesystem::exists(snapshotPath(id), probe))
            throw ServiceError{
                proto::ErrorCode::BadRequest,
                strformat("session %llu is evicted on this shard",
                          (unsigned long long)id)};
    }

    obs::SpanScope span(trace.recorder, trace.traceId, trace.parentSpan,
                        "session.open");

    snapshot::SessionVm::Config cfg;
    cfg.engine = static_cast<snapshot::EngineId>(req.engine);
    cfg.variant = static_cast<vm::Variant>(req.variant);
    cfg.execMode = opts_.execMode;
    cfg.maxInstructions = opts_.maxInstructionsPerChunk;

    auto session = std::make_shared<Session>();
    session->id = id;
    try {
        session->vm =
            std::make_unique<snapshot::SessionVm>(cfg, req.source);
    } catch (const FatalError &e) {
        throw ServiceError{proto::ErrorCode::CompileFailed, e.what()};
    }
    if (opts_.verifyChunks) {
        obs::SpanScope verifySpan(trace.recorder, trace.traceId,
                                  trace.parentSpan, "session.verify");
        const analysis::Report lint =
            analysis::verifyImage(session->vm->program());
        if (lint.hasErrors())
            throw ServiceError{proto::ErrorCode::VerifyRejected,
                               lint.render()};
    }
    try {
        session->vm->run();
    } catch (const FatalError &e) {
        throw ServiceError{proto::ErrorCode::SimFailed, e.what()};
    }

    proto::SessionReply reply = replyFor(*session);
    install(session, /*pinned=*/false);
    {
        std::lock_guard<std::mutex> lock(countersMu_);
        ++counters_.opened;
        ++counters_.chunksRun;
    }
    return reply;
}

std::shared_ptr<SessionManager::Session>
SessionManager::acquire(uint64_t session_id, const RequestTrace &trace)
{
    {
        std::lock_guard<std::mutex> lock(tableMu_);
        auto it = sessions_.find(session_id);
        if (it != sessions_.end()) {
            ++it->second->inUse;
            return it->second;
        }
    }

    // Transparent resume of an evicted session: decode the parked blob
    // and rebuild the VM, exactly the RestoreSession path minus the
    // wire hop.
    const std::string path = opts_.snapshotDir.empty()
                                 ? std::string()
                                 : snapshotPath(session_id);
    const std::string blob =
        path.empty() ? std::string() : readFileToString(path);
    if (blob.empty())
        throw ServiceError{
            proto::ErrorCode::UnknownSession,
            strformat("no session %llu on this shard",
                      (unsigned long long)session_id)};

    obs::SpanScope span(trace.recorder, trace.traceId, trace.parentSpan,
                        "session.resume");
    const auto t0 = std::chrono::steady_clock::now();
    snapshot::Snapshot snap;
    std::string error;
    if (!snapshot::decode(blob, snap, error) ||
        snap.sessionId != session_id) {
        std::remove(path.c_str()); // quarantine: do not retry forever
        throw ServiceError{
            proto::ErrorCode::BadSnapshot,
            strformat("evicted session %llu is unreadable: %s",
                      (unsigned long long)session_id,
                      error.empty() ? "blob names a different session"
                                    : error.c_str())};
    }
    auto session = std::make_shared<Session>();
    session->id = session_id;
    session->vm = snapshot::SessionVm::restore(
        snap, error, opts_.maxInstructionsPerChunk);
    if (!session->vm) {
        std::remove(path.c_str());
        throw ServiceError{proto::ErrorCode::BadSnapshot, error};
    }
    session->outputMark = session->vm->output().size();

    std::lock_guard<std::mutex> lock(tableMu_);
    if (sessions_.size() >= opts_.maxSessions)
        throw ServiceError{proto::ErrorCode::Busy,
                           "session table full; resume later"};
    auto [it, inserted] = sessions_.emplace(session_id, session);
    ++it->second->inUse;
    it->second->lastUsed = std::chrono::steady_clock::now();
    if (inserted) {
        // The live VM is authoritative again; a stale parked blob must
        // not outlive it (close() would miss it otherwise).
        std::remove(path.c_str());
        std::lock_guard<std::mutex> counters(countersMu_);
        ++counters_.resumed;
        if (metrics_.restoreUs)
            metrics_.restoreUs->record(usSince(t0));
    }
    return it->second;
}

proto::SessionReply
SessionManager::submit(const proto::SubmitChunkRequest &req,
                       const RequestTrace &trace)
{
    std::shared_ptr<Session> session = acquire(req.sessionId, trace);
    try {
        std::lock_guard<std::mutex> lock(session->mu);
        obs::SpanScope span(trace.recorder, trace.traceId,
                            trace.parentSpan, "session.submit");
        std::string error;
        if (!session->vm->prepare(req.source, error))
            throw ServiceError{proto::ErrorCode::CompileFailed, error};
        if (opts_.verifyChunks) {
            obs::SpanScope verifySpan(trace.recorder, trace.traceId,
                                      trace.parentSpan,
                                      "session.verify");
            const analysis::Report lint =
                analysis::verifyImage(*session->vm->stagedProgram());
            if (lint.hasErrors()) {
                session->vm->discardStaged();
                throw ServiceError{proto::ErrorCode::VerifyRejected,
                                   lint.render()};
            }
        }
        if (!session->vm->commit(error))
            throw ServiceError{proto::ErrorCode::Internal, error};
        try {
            session->vm->run();
        } catch (const FatalError &e) {
            // The machine faulted mid-chunk; its state is not a
            // quiescent point, so the session cannot continue.
            {
                std::lock_guard<std::mutex> table(tableMu_);
                sessions_.erase(session->id);
            }
            {
                std::lock_guard<std::mutex> counters(countersMu_);
                ++counters_.closed;
            }
            throw ServiceError{
                proto::ErrorCode::SimFailed,
                strformat("%s (session closed)", e.what())};
        }
        proto::SessionReply reply = replyFor(*session);
        {
            std::lock_guard<std::mutex> counters(countersMu_);
            ++counters_.chunksRun;
        }
        release(session);
        return reply;
    } catch (...) {
        release(session);
        throw;
    }
}

proto::SessionSnapshotResult
SessionManager::snapshot(uint64_t session_id, const RequestTrace &trace)
{
    std::shared_ptr<Session> session = acquire(session_id, trace);
    try {
        proto::SessionSnapshotResult result;
        result.sessionId = session_id;
        {
            std::lock_guard<std::mutex> lock(session->mu);
            obs::SpanScope span(trace.recorder, trace.traceId,
                                trace.parentSpan, "session.snapshot");
            const auto t0 = std::chrono::steady_clock::now();
            result.blob =
                snapshot::encode(session->vm->snapshot(session_id));
            std::lock_guard<std::mutex> counters(countersMu_);
            ++counters_.snapshots;
            if (metrics_.snapshotUs)
                metrics_.snapshotUs->record(usSince(t0));
            if (metrics_.snapshotBytes)
                metrics_.snapshotBytes->record(result.blob.size());
        }
        release(session);
        return result;
    } catch (...) {
        release(session);
        throw;
    }
}

proto::SessionReply
SessionManager::restore(const proto::RestoreSessionRequest &req,
                        const RequestTrace &trace)
{
    obs::SpanScope span(trace.recorder, trace.traceId, trace.parentSpan,
                        "session.restore");
    const auto t0 = std::chrono::steady_clock::now();
    snapshot::Snapshot snap;
    std::string error;
    if (!snapshot::decode(req.blob, snap, error))
        throw ServiceError{proto::ErrorCode::BadSnapshot, error};
    if (req.sessionId != 0 && req.sessionId != snap.sessionId)
        throw ServiceError{
            proto::ErrorCode::BadSnapshot,
            strformat("bad-snapshot: request names session %llu but "
                      "the blob embeds %llu",
                      (unsigned long long)req.sessionId,
                      (unsigned long long)snap.sessionId)};

    auto session = std::make_shared<Session>();
    session->id = snap.sessionId;
    session->vm = snapshot::SessionVm::restore(
        snap, error, opts_.maxInstructionsPerChunk);
    if (!session->vm)
        throw ServiceError{proto::ErrorCode::BadSnapshot, error};
    session->outputMark = session->vm->output().size();

    proto::SessionReply reply;
    {
        std::lock_guard<std::mutex> lock(session->mu);
        reply = replyFor(*session);
    }
    install(session, /*pinned=*/false);
    if (!opts_.snapshotDir.empty())
        std::remove(snapshotPath(session->id).c_str());
    {
        std::lock_guard<std::mutex> counters(countersMu_);
        ++counters_.restored;
        if (metrics_.restoreUs)
            metrics_.restoreUs->record(usSince(t0));
    }
    return reply;
}

proto::SessionClosedResult
SessionManager::close(uint64_t session_id)
{
    bool existed = false;
    {
        std::lock_guard<std::mutex> lock(tableMu_);
        existed = sessions_.erase(session_id) != 0;
    }
    if (!opts_.snapshotDir.empty()) {
        // An evicted session closes by deleting its parked blob.
        if (std::remove(snapshotPath(session_id).c_str()) == 0)
            existed = true;
    }
    if (!existed)
        throw ServiceError{
            proto::ErrorCode::UnknownSession,
            strformat("no session %llu on this shard",
                      (unsigned long long)session_id)};
    {
        std::lock_guard<std::mutex> counters(countersMu_);
        ++counters_.closed;
    }
    proto::SessionClosedResult result;
    result.sessionId = session_id;
    return result;
}

bool
SessionManager::evictToDisk(const std::shared_ptr<Session> &session)
{
    // Caller holds the only reference: the session was removed from the
    // table with inUse == 0, so the VM is quiescent.
    const auto t0 = std::chrono::steady_clock::now();
    const std::string blob =
        snapshot::encode(session->vm->snapshot(session->id));
    if (!writeFileAtomic(snapshotPath(session->id), blob))
        return false;
    std::lock_guard<std::mutex> counters(countersMu_);
    ++counters_.evicted;
    if (metrics_.snapshotUs)
        metrics_.snapshotUs->record(usSince(t0));
    if (metrics_.snapshotBytes)
        metrics_.snapshotBytes->record(blob.size());
    return true;
}

void
SessionManager::sweepIdle()
{
    if (opts_.idleEvictMs == 0 || opts_.snapshotDir.empty())
        return;
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<Session>> victims;
    {
        std::lock_guard<std::mutex> lock(tableMu_);
        if (now - lastSweep_ < std::chrono::milliseconds(250))
            return;
        lastSweep_ = now;
        for (auto it = sessions_.begin(); it != sessions_.end();) {
            const std::shared_ptr<Session> &session = it->second;
            if (session->inUse == 0 &&
                now - session->lastUsed >=
                    std::chrono::milliseconds(opts_.idleEvictMs)) {
                victims.push_back(session);
                it = sessions_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const std::shared_ptr<Session> &session : victims) {
        if (evictToDisk(session))
            continue;
        tarch_warn("serve: cannot evict session %llu to %s; keeping it "
                   "live",
                   (unsigned long long)session->id,
                   opts_.snapshotDir.c_str());
        std::lock_guard<std::mutex> lock(tableMu_);
        sessions_.emplace(session->id, session);
    }
}

void
SessionManager::evictAll()
{
    std::vector<std::shared_ptr<Session>> victims;
    {
        std::lock_guard<std::mutex> lock(tableMu_);
        for (auto it = sessions_.begin(); it != sessions_.end();) {
            if (it->second->inUse == 0) {
                victims.push_back(it->second);
                it = sessions_.erase(it);
            } else {
                ++it; // drain finishes jobs first; defensive only
            }
        }
    }
    for (const std::shared_ptr<Session> &session : victims) {
        if (!opts_.snapshotDir.empty() && evictToDisk(session))
            continue;
        std::lock_guard<std::mutex> counters(countersMu_);
        ++counters_.closed;
    }
}

SessionManager::Counters
SessionManager::counters() const
{
    Counters out;
    {
        std::lock_guard<std::mutex> lock(countersMu_);
        out = counters_;
    }
    std::lock_guard<std::mutex> lock(tableMu_);
    out.openNow = sessions_.size();
    return out;
}

} // namespace tarch::serve
