/**
 * @file
 * Slow-request log: a bounded ring of structured records for requests
 * that crossed a latency threshold (or were sampled every Nth), dumped
 * through the Stats endpoint so an operator can ask "what were the
 * slowest things this server did recently" without replaying a trace.
 *
 * Each record carries the trace id (0 when the request was untraced),
 * the per-stage breakdown the server already measured (queue wait,
 * run time), and the outcome, so a slow-log line is enough to decide
 * whether to go pull the full Perfetto trace for that id.
 */

#ifndef TARCH_SERVE_SLOWLOG_H
#define TARCH_SERVE_SLOWLOG_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tarch::serve {

/** One logged request. */
struct SlowLogEntry {
    uint64_t wallMs = 0;     ///< wall-clock ms when the request finished
    uint64_t traceId = 0;    ///< 0 = untraced
    uint16_t kind = 0;       ///< proto::MsgKind of the request
    uint16_t errorCode = 0;  ///< 0 = ok, else proto::ErrorCode
    uint8_t fromCache = 0;   ///< 0 simulated, 1 memory, 2 disk
    uint64_t queueUs = 0;    ///< time spent queued before a worker
    uint64_t runUs = 0;      ///< service time in the worker
    uint64_t totalUs = 0;    ///< enqueue-to-reply
    std::string detail;      ///< benchmark name or source digest
};

/**
 * Threshold- and sampling-triggered ring buffer.  record() is cheap
 * when nothing matches: one branch on the threshold plus (optionally)
 * one relaxed counter increment for the sampler.
 */
class SlowLog
{
  public:
    struct Options {
        /** Log every request slower than this; 0 disables. */
        uint64_t thresholdUs = 250000;
        /** Also log every Nth request regardless of latency; 0 = off. */
        uint64_t sampleEvery = 0;
        size_t capacity = 64;
    };

    SlowLog();  ///< default Options (defined out of line: NSDMI order)
    explicit SlowLog(const Options &opts) : opts_(opts) {}

    const Options &options() const { return opts_; }

    /** True if this request should be logged (threshold or sampler). */
    bool shouldLog(uint64_t total_us);

    void record(SlowLogEntry entry);

    /** Total entries ever recorded (>= snapshot().size()). */
    uint64_t recorded() const;

    /** Oldest-first copy of the retained ring. */
    std::vector<SlowLogEntry> snapshot() const;

    /** The `slow_log` JSON array (docs/OBSERVABILITY.md schema). */
    std::string toJson() const;

  private:
    Options opts_;
    mutable std::mutex mu_;
    std::vector<SlowLogEntry> ring_;
    size_t next_ = 0;          ///< ring write cursor once full
    uint64_t recorded_ = 0;
    uint64_t sampleTick_ = 0;  ///< requests seen by shouldLog()
};

} // namespace tarch::serve

#endif // TARCH_SERVE_SLOWLOG_H
