/**
 * @file
 * SimService: the request -> simulation plumbing behind tarch_served.
 *
 * Named cells reuse the harness sweep cache three ways: an in-memory
 * cell memo (the serving hot path), the on-disk per-cell cache shared
 * with the bench binaries (harness::loadCell/saveCell), and single-
 * flight deduplication so a burst of identical cold requests simulates
 * once while the rest wait for that result.  Inline source requests
 * are gated through the PR-3 static verifier before simulation —
 * error-severity findings come back as a typed VerifyRejected error —
 * and every result can embed a PR-4 tarch-stats-v1 JSON artifact.
 */

#ifndef TARCH_SERVE_SERVICE_H
#define TARCH_SERVE_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "harness/experiment.h"
#include "obs/spans.h"
#include "serve/protocol.h"

namespace tarch::serve {

/** Typed failure thrown by SimService entry points; the server turns
    it into an Error frame with the same code. */
struct ServiceError {
    proto::ErrorCode code;
    std::string message;
};

/** Optional tracing context threaded through a request: when recorder
    is null (the default) every span site is a pointer check and the
    request costs nothing extra. */
struct RequestTrace {
    obs::SpanRecorder *recorder = nullptr;
    uint64_t traceId = 0;
    uint32_t parentSpan = 0;
};

class SimService
{
  public:
    struct Options {
        std::string cacheDir = ".";
        bool diskCache = true;    ///< share cells with the bench binaries
        bool memoryCache = true;  ///< in-process cell memo (hot path)
        bool verifySource = true; ///< static-verify inline source images
        /** Runaway guard for inline source runs (named benchmarks use
            the simulator default). */
        uint64_t sourceMaxInstructions = 100'000'000;
        /** Bounded FIFO memo for inline source results, keyed by the
            content-addressed sourceRequestKey.  Besides the obvious hot
            path, this is what deduplicates a hedged RunSource: both the
            original and the hedge land on the same shard (same key →
            same ring position) and single-flight collapses them to one
            simulation.  0 disables the memo. */
        size_t sourceMemoCapacity = 256;
        /** Core execution engine for every simulation this service
            runs (docs/FASTPATH.md).  Bit-identical results either way;
            predecoded trades startup decode work for serving
            throughput.  Default: TARCH_EXEC_MODE env, else exact. */
        core::ExecMode execMode = core::defaultExecMode();
    };

    /** Monotonic counters, snapshotted into the health document. */
    struct Counters {
        uint64_t memHits = 0;
        uint64_t diskHits = 0;
        uint64_t sourceMemHits = 0;
        uint64_t simulated = 0;
        uint64_t singleFlightWaits = 0;
        uint64_t verifyRejected = 0;
    };

    explicit SimService(const Options &opts);

    /** Run a named (engine, benchmark, variant) cell.  Throws
        ServiceError on unknown benchmarks or failed simulations.
        When @p trace is recording, emits sim.singleflight / sim.cache /
        sim.simulate stage spans. */
    proto::CellResult runCell(const proto::CellRequest &req,
                              const RequestTrace &trace = {});

    /** Compile/assemble, statically verify, then run inline source.
        Throws ServiceError (VerifyRejected carries the rendered
        findings report as its message).  Traced stages add
        sim.verify. */
    proto::CellResult runSource(const proto::SourceRequest &req,
                                const RequestTrace &trace = {});

    Counters counters() const;

  private:
    proto::CellResult runMiniScript(const proto::SourceRequest &req,
                                    const RequestTrace &trace);
    proto::CellResult runAssembly(const proto::SourceRequest &req,
                                  const RequestTrace &trace);

    Options opts_;

    mutable std::mutex mu_;
    /** Memo key -> fully rendered result; memo key is the cell path
        suffix + cellKey hash, so a config change invalidates it. */
    std::map<std::string, proto::CellResult> memo_;
    /** Inline-source memo ("src/" + sourceRequestKey), bounded FIFO —
        source text is unbounded, so unlike the cell memo this one
        evicts. */
    std::map<std::string, proto::CellResult> sourceMemo_;
    std::deque<std::string> sourceMemoOrder_;
    /** Cells/sources currently being simulated (single-flight). */
    std::set<std::string> inProgress_;
    std::condition_variable progressCv_;

    mutable std::mutex countersMu_;
    Counters counters_;
};

} // namespace tarch::serve

#endif // TARCH_SERVE_SERVICE_H
