/**
 * @file
 * HedgedClient: a tail-latency-tolerant client over N tarch-rpc-v1
 * endpoints (daemon shards or routers).
 *
 * Requests consistent-hash onto an endpoint by the same content-
 * addressed key the router uses, so a hedge or retry that lands on the
 * router keeps its shard affinity and deduplicates in the shard's
 * single-flight memo.  If the first attempt has not answered within
 * the hedge delay — derived from the observed latency histogram's tail
 * (p99 by default) — a second attempt is sent to the NEXT endpoint on
 * the ring and the first complete answer wins; the loser's reply is
 * discarded when it eventually arrives (per-connection request ids
 * make stale replies skippable).
 *
 * Hedges and retries spend a token-bucket retry budget that refills a
 * fraction of a token per request: when the cluster is genuinely slow
 * everywhere, the budget runs dry and the client degrades to plain
 * single-attempt behavior instead of amplifying the overload into a
 * retry storm.
 *
 * Endpoints share the router's ShardHealth ejection/probe state
 * machine, so a dead endpoint costs a connect failure once per backoff
 * window, not per request.  NOT thread-safe: give each load-generator
 * worker its own instance.
 */

#ifndef TARCH_SERVE_HEDGED_CLIENT_H
#define TARCH_SERVE_HEDGED_CLIENT_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/spans.h"
#include "serve/client.h"
#include "serve/loadgen.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/socket_util.h"

namespace tarch::serve {

class HedgedClient
{
  public:
    struct Options {
        std::vector<Endpoint> endpoints;
        unsigned ringVnodes = 64;
        /** Attempt cap per request (first + hedges/retries). */
        unsigned maxAttempts = 3;
        /** Hedge fires at this percentile of observed latency... */
        double hedgePercentile = 99.0;
        /** ...clamped to [floor, cap]; before minSamples observations
            the defaultHedge applies. */
        uint32_t hedgeFloorMs = 2;
        uint32_t hedgeCapMs = 1'000;
        uint32_t defaultHedgeMs = 50;
        uint64_t minSamples = 32;
        /** Token bucket: each request earns this fraction of a token;
            each hedge/retry spends one whole token. */
        double retryBudgetRatio = 0.1;
        double retryBudgetCap = 50.0;
        double retryBudgetInitial = 10.0;
        ShardHealth::Options health;
        /** When set, every traceSampleEvery-th request records a root
            client.request span plus one client.attempt span per
            attempt, and sends a v2 trace context to v2 peers.  Must
            outlive the client. */
        obs::SpanRecorder *recorder = nullptr;
        uint64_t traceSampleEvery = 1;
        /** When set, counters and the latency histogram are mirrored
            into this registry (get-or-create by name, so per-worker
            instances share one series set).  Must outlive the
            client. */
        obs::Registry *registry = nullptr;
    };

    struct Counters {
        uint64_t requests = 0;
        uint64_t hedges = 0;
        uint64_t hedgeWins = 0;  ///< the hedge answered first
        uint64_t retries = 0;    ///< re-sends after a retryable error
        uint64_t budgetDenied = 0;
        uint64_t lostConnections = 0;
        /** Well-framed garbage: unparseable response bytes or an
            undecodable reply payload — a protocol error, unlike the
            routine connection churn above. */
        uint64_t garbled = 0;
    };

    explicit HedgedClient(const Options &opts);

    Client::Outcome runCell(const proto::CellRequest &req);
    Client::Outcome runSource(const proto::SourceRequest &req);

    const Counters &counters() const { return counters_; }
    /** Completed-request latencies (from first send to winning reply),
        microseconds. */
    const LatencyHistogram &latencies() const { return latencies_; }
    /** Current hedge delay in microseconds (tail-derived once warm). */
    uint64_t hedgeDelayUs() const;

  private:
    struct Node {
        Endpoint ep;
        Client client;
        ShardHealth health;

        Node(const Endpoint &e, const ShardHealth::Options &h)
            : ep(e), health(h)
        {
        }
    };

    uint64_t nowMs() const;
    uint64_t nowUs() const;
    bool ensureNode(Node &node);
    bool spendBudget();
    Client::Outcome run(proto::MsgKind kind, const std::string &payload,
                        uint64_t key, const std::string &detail);

    Options opts_;
    HashRing ring_;
    std::vector<std::unique_ptr<Node>> nodes_;
    LatencyHistogram latencies_;
    Counters counters_;
    double budgetTokens_ = 0.0;
    std::chrono::steady_clock::time_point epoch_;
    uint64_t traceTick_ = 0;
    /** Registry mirrors (null when opts_.registry is null). */
    obs::ShardedCounter *mRequests_ = nullptr;
    obs::ShardedCounter *mHedges_ = nullptr;
    obs::ShardedCounter *mHedgeWins_ = nullptr;
    obs::ShardedCounter *mRetries_ = nullptr;
    obs::ShardedCounter *mBudgetDenied_ = nullptr;
    obs::ShardedCounter *mLost_ = nullptr;
    obs::ShardedCounter *mGarbled_ = nullptr;
    obs::Histogram *mLatencyUs_ = nullptr;
};

} // namespace tarch::serve

#endif // TARCH_SERVE_HEDGED_CLIENT_H
