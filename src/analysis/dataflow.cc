#include "analysis/dataflow.h"

#include <algorithm>

namespace tarch::analysis {

std::vector<size_t>
reversePostOrder(const Cfg &cfg)
{
    std::vector<size_t> order;
    if (cfg.blocks.empty())
        return order;
    std::vector<char> seen(cfg.blocks.size(), 0);
    // Iterative DFS with an explicit post-order marker.
    std::vector<std::pair<size_t, size_t>> stack; // (block, next succ idx)
    stack.emplace_back(cfg.entryBlock, 0);
    seen[cfg.entryBlock] = 1;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        if (next < cfg.blocks[b].succs.size()) {
            const size_t s = cfg.blocks[b].succs[next++];
            if (!seen[s]) {
                seen[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            order.push_back(b);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

} // namespace tarch::analysis
