#include "analysis/report.h"

#include "common/strutil.h"

namespace tarch::analysis {

std::string_view
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

std::string
Finding::describe() const
{
    std::string text = strformat(
        "%s[%s] 0x%llx <%s>: %s",
        std::string(severityName(severity)).c_str(), check.c_str(),
        static_cast<unsigned long long>(pc), location.c_str(),
        message.c_str());
    if (!instr.empty())
        text += strformat("\n    instr: %s", instr.c_str());
    if (!path.empty())
        text += strformat("\n    path:  %s", path.c_str());
    return text;
}

size_t
Report::count(Severity severity) const
{
    size_t n = 0;
    for (const Finding &f : findings)
        if (f.severity == severity)
            ++n;
    return n;
}

int
Report::exitCode() const
{
    if (hasErrors())
        return 2;
    return hasWarnings() ? 1 : 0;
}

std::string
Report::render() const
{
    std::string text;
    for (const Finding &f : findings) {
        text += f.describe();
        text += '\n';
    }
    text += strformat("%zu error(s), %zu warning(s), %zu note(s)\n",
                      count(Severity::Error), count(Severity::Warning),
                      count(Severity::Note));
    return text;
}

} // namespace tarch::analysis
