#include "analysis/elide.h"

#include <optional>
#include <string>

#include "common/strutil.h"

namespace tarch::analysis::elide {

namespace {

using typeinf::AVal;
using typeinf::ModuleFacts;
using typeinf::subsetOf;

/**
 * A site is provably monomorphic only when the fact is a NONEMPTY
 * subset of @p mask.  Bottom (no value ever flows here: dead or
 * uncalled code) passes a plain subset check vacuously, but proves
 * nothing — rewriting on it would specialize dead sites, and the
 * verifier's re-inference pass, whose conservative specialized-op
 * transfers widen bottom back to a live fact, would then flag the
 * image as unsound.
 */
bool
provenIn(const AVal &v, uint8_t mask)
{
    return v.bits != 0 && subsetOf(v.bits, mask);
}

// ---------------------------------------------------------------------
// MiniLua
// ---------------------------------------------------------------------

namespace lua = vm::lua;

AVal
luaConstFact(const lua::Proto &pr, unsigned idx)
{
    if (idx >= pr.consts.size())
        return AVal::of(typeinf::kTopLua);
    switch (pr.consts[idx].kind) {
      case lua::Const::Kind::Int: return AVal::of(typeinf::kInt);
      case lua::Const::Kind::Flt: return AVal::of(typeinf::kFlt);
      case lua::Const::Kind::Str: return AVal::of(typeinf::kStr);
    }
    return AVal::of(typeinf::kTopLua);
}

AVal
luaRkFact(const lua::Proto &pr, const std::vector<AVal> &regs,
          unsigned rk)
{
    if (rk & lua::kRkConstFlag)
        return luaConstFact(pr, rk & 0xFF);
    const unsigned r = rk & 0xFF;
    return r < regs.size() ? regs[r] : AVal::of(typeinf::kTopLua);
}

/**
 * The one monomorphism predicate shared by the rewriter and the
 * verifier: does the IN state at this site prove the requirement of
 * the specialized form of @p op?  For base opcodes this asks "may
 * this site be rewritten"; for already-specialized opcodes it asks
 * "was this rewrite sound".  Returns the specialized opcode when the
 * requirement holds.
 */
std::optional<lua::Op>
luaElidedForm(const lua::Proto &pr, const std::vector<AVal> &regs,
              uint32_t w)
{
    const auto op = static_cast<lua::Op>(w & 0x3F);
    const unsigned a = (w >> 6) & 0xFF;
    const unsigned b = (w >> 14) & 0x1FF;
    const unsigned c = (w >> 23) & 0x1FF;
    const auto rk = [&](unsigned operand) {
        return luaRkFact(pr, regs, operand);
    };
    const auto regFact = [&](unsigned r) {
        return r < regs.size() ? regs[r] : AVal::of(typeinf::kTopLua);
    };
    const auto bothIn = [&](uint8_t mask) {
        return provenIn(rk(b), mask) && provenIn(rk(c), mask);
    };
    switch (op) {
      case lua::Op::ADD:
      case lua::Op::ADD_II:
      case lua::Op::ADD_FF:
        if (bothIn(typeinf::kInt))
            return lua::Op::ADD_II;
        if (bothIn(typeinf::kFlt))
            return lua::Op::ADD_FF;
        return std::nullopt;
      case lua::Op::SUB:
      case lua::Op::SUB_II:
      case lua::Op::SUB_FF:
        if (bothIn(typeinf::kInt))
            return lua::Op::SUB_II;
        if (bothIn(typeinf::kFlt))
            return lua::Op::SUB_FF;
        return std::nullopt;
      case lua::Op::MUL:
      case lua::Op::MUL_II:
      case lua::Op::MUL_FF:
        if (bothIn(typeinf::kInt))
            return lua::Op::MUL_II;
        if (bothIn(typeinf::kFlt))
            return lua::Op::MUL_FF;
        return std::nullopt;
      case lua::Op::GETTABLE:
      case lua::Op::GETTAB_E:
        if (provenIn(regFact(b & 0xFF), typeinf::kTab) &&
            provenIn(rk(c), typeinf::kInt))
            return lua::Op::GETTAB_E;
        return std::nullopt;
      case lua::Op::SETTABLE:
      case lua::Op::SETTAB_E:
        if (provenIn(regFact(a), typeinf::kTab) &&
            provenIn(rk(b), typeinf::kInt))
            return lua::Op::SETTAB_E;
        return std::nullopt;
      default:
        return std::nullopt;
    }
}

bool
luaIsArithSite(lua::Op op)
{
    switch (op) {
      case lua::Op::ADD: case lua::Op::SUB: case lua::Op::MUL:
      case lua::Op::ADD_II: case lua::Op::SUB_II: case lua::Op::MUL_II:
      case lua::Op::ADD_FF: case lua::Op::SUB_FF: case lua::Op::MUL_FF:
        return true;
      default:
        return false;
    }
}

bool
luaIsTableSite(lua::Op op)
{
    switch (op) {
      case lua::Op::GETTABLE: case lua::Op::SETTABLE:
      case lua::Op::GETTAB_E: case lua::Op::SETTAB_E:
        return true;
      default:
        return false;
    }
}

bool
luaIsElided(lua::Op op)
{
    return op >= lua::Op::ADD_II && op <= lua::Op::SETTAB_E;
}

std::string
luaDescribeInstr(const lua::Proto &pr, size_t pc)
{
    const uint32_t w = pr.code[pc];
    const auto op = static_cast<lua::Op>(w & 0x3F);
    return strformat("%s A=%u B=%u C=%u",
                     std::string(lua::opName(op)).c_str(),
                     (w >> 6) & 0xFF, (w >> 14) & 0x1FF,
                     (w >> 23) & 0x1FF);
}

// ---------------------------------------------------------------------
// MiniJS
// ---------------------------------------------------------------------

namespace js = vm::js;

/** Fact @p back slots below the operand-stack top (0 = TOS). */
AVal
jsStackFact(const std::vector<AVal> &stack, size_t back)
{
    if (back >= stack.size())
        return AVal::of(typeinf::kTopJs);
    return stack[stack.size() - 1 - back];
}

std::optional<js::Op>
jsElidedForm(const std::vector<AVal> &stack, uint32_t w)
{
    const auto op = static_cast<js::Op>(w & 0xFF);
    const auto bothTopIn = [&](uint8_t mask) {
        return provenIn(jsStackFact(stack, 0), mask) &&
               provenIn(jsStackFact(stack, 1), mask);
    };
    switch (op) {
      case js::Op::ADD:
      case js::Op::ADD_II:
      case js::Op::ADD_DD:
        if (bothTopIn(typeinf::kInt))
            return js::Op::ADD_II;
        if (bothTopIn(typeinf::kFlt))
            return js::Op::ADD_DD;
        return std::nullopt;
      case js::Op::SUB:
      case js::Op::SUB_II:
      case js::Op::SUB_DD:
        if (bothTopIn(typeinf::kInt))
            return js::Op::SUB_II;
        if (bothTopIn(typeinf::kFlt))
            return js::Op::SUB_DD;
        return std::nullopt;
      case js::Op::MUL:
      case js::Op::MUL_II:
      case js::Op::MUL_DD:
        if (bothTopIn(typeinf::kInt))
            return js::Op::MUL_II;
        if (bothTopIn(typeinf::kFlt))
            return js::Op::MUL_DD;
        return std::nullopt;
      case js::Op::GETELEM:
      case js::Op::GETELEM_E:
        if (provenIn(jsStackFact(stack, 1), typeinf::kTab) &&
            provenIn(jsStackFact(stack, 0), typeinf::kInt))
            return js::Op::GETELEM_E;
        return std::nullopt;
      case js::Op::SETELEM:
      case js::Op::SETELEM_E:
        if (provenIn(jsStackFact(stack, 2), typeinf::kTab) &&
            provenIn(jsStackFact(stack, 1), typeinf::kInt))
            return js::Op::SETELEM_E;
        return std::nullopt;
      default:
        return std::nullopt;
    }
}

bool
jsIsArithSite(js::Op op)
{
    switch (op) {
      case js::Op::ADD: case js::Op::SUB: case js::Op::MUL:
      case js::Op::ADD_II: case js::Op::SUB_II: case js::Op::MUL_II:
      case js::Op::ADD_DD: case js::Op::SUB_DD: case js::Op::MUL_DD:
        return true;
      default:
        return false;
    }
}

bool
jsIsTableSite(js::Op op)
{
    switch (op) {
      case js::Op::GETELEM: case js::Op::SETELEM:
      case js::Op::GETELEM_E: case js::Op::SETELEM_E:
        return true;
      default:
        return false;
    }
}

bool
jsIsElided(js::Op op)
{
    return op >= js::Op::ADD_II && op <= js::Op::SETELEM_E;
}

std::string
jsDescribeInstr(const js::Proto &pr, size_t pc)
{
    const uint32_t w = pr.code[pc];
    const auto op = static_cast<js::Op>(w & 0xFF);
    return strformat("%s %d", std::string(js::opName(op)).c_str(),
                     static_cast<int>(static_cast<int32_t>(w) >> 8));
}

// ---------------------------------------------------------------------

Finding
monoFinding(const std::string &protoName, size_t protoIdx, size_t pc,
            const std::string &instr, const std::string &why)
{
    Finding f;
    f.severity = Severity::Error;
    f.check = "elide-mono";
    f.pc = pc;
    f.instr = instr;
    f.location = strformat("%s(proto %zu)+%zu", protoName.c_str(),
                           protoIdx, pc);
    f.message = why;
    return f;
}

} // namespace

Stats
rewriteLua(lua::Module &m)
{
    const ModuleFacts facts = typeinf::inferLua(m);
    Stats st;
    for (size_t p = 0; p < m.protos.size(); ++p) {
        lua::Proto &pr = m.protos[p];
        const typeinf::ProtoFacts &pf = facts.protos[p];
        for (size_t pc = 0; pc < pr.code.size(); ++pc) {
            if (pc >= pf.reachable.size() || !pf.reachable[pc] ||
                pf.bailed)
                continue;
            const uint32_t w = pr.code[pc];
            const auto op = static_cast<lua::Op>(w & 0x3F);
            if (luaIsArithSite(op))
                ++st.arithSites;
            else if (luaIsTableSite(op))
                ++st.tableSites;
            else
                continue;
            const auto elided = luaElidedForm(pr, pf.regs[pc], w);
            if (!elided)
                continue;
            pr.code[pc] =
                (w & ~0x3Fu) | static_cast<uint32_t>(*elided);
            if (luaIsArithSite(op))
                ++st.arithElided;
            else
                ++st.tableElided;
        }
    }
    return st;
}

Stats
rewriteJs(js::Module &m)
{
    const ModuleFacts facts = typeinf::inferJs(m);
    Stats st;
    for (size_t p = 0; p < m.protos.size(); ++p) {
        js::Proto &pr = m.protos[p];
        const typeinf::ProtoFacts &pf = facts.protos[p];
        for (size_t pc = 0; pc < pr.code.size(); ++pc) {
            if (pc >= pf.reachable.size() || !pf.reachable[pc] ||
                pf.bailed)
                continue;
            const uint32_t w = pr.code[pc];
            const auto op = static_cast<js::Op>(w & 0xFF);
            if (jsIsArithSite(op))
                ++st.arithSites;
            else if (jsIsTableSite(op))
                ++st.tableSites;
            else
                continue;
            const auto elided = jsElidedForm(pf.stack[pc], w);
            if (!elided)
                continue;
            pr.code[pc] =
                (w & ~0xFFu) | static_cast<uint32_t>(*elided);
            if (jsIsArithSite(op))
                ++st.arithElided;
            else
                ++st.tableElided;
        }
    }
    return st;
}

void
verifyLua(const lua::Module &m, Report &report)
{
    const ModuleFacts facts = typeinf::inferLua(m);
    for (size_t p = 0; p < m.protos.size(); ++p) {
        const lua::Proto &pr = m.protos[p];
        const typeinf::ProtoFacts &pf = facts.protos[p];
        for (size_t pc = 0; pc < pr.code.size(); ++pc) {
            const uint32_t w = pr.code[pc];
            const auto op = static_cast<lua::Op>(w & 0x3F);
            if (!luaIsElided(op))
                continue;
            // An unreachable site never executes; vacuously sound.
            if (pc >= pf.reachable.size() || !pf.reachable[pc])
                continue;
            if (pf.bailed) {
                report.findings.push_back(monoFinding(
                    pr.name, p, pc, luaDescribeInstr(pr, pc),
                    "inference bailed on this proto; elided site "
                    "cannot be re-proven monomorphic"));
                continue;
            }
            const auto proven = luaElidedForm(pr, pf.regs[pc], w);
            if (proven && *proven == op)
                continue;
            const unsigned b = (w >> 14) & 0x1FF;
            const unsigned c = (w >> 23) & 0x1FF;
            report.findings.push_back(monoFinding(
                pr.name, p, pc, luaDescribeInstr(pr, pc),
                strformat("elided site not dominated by a monomorphic "
                          "fact (B fact %s, C fact %s)",
                          typeinf::describe(
                              luaRkFact(pr, pf.regs[pc], b),
                              typeinf::kTopLua)
                              .c_str(),
                          typeinf::describe(
                              luaRkFact(pr, pf.regs[pc], c),
                              typeinf::kTopLua)
                              .c_str())));
        }
    }
}

void
verifyJs(const js::Module &m, Report &report)
{
    const ModuleFacts facts = typeinf::inferJs(m);
    for (size_t p = 0; p < m.protos.size(); ++p) {
        const js::Proto &pr = m.protos[p];
        const typeinf::ProtoFacts &pf = facts.protos[p];
        for (size_t pc = 0; pc < pr.code.size(); ++pc) {
            const uint32_t w = pr.code[pc];
            const auto op = static_cast<js::Op>(w & 0xFF);
            if (!jsIsElided(op))
                continue;
            if (pc >= pf.reachable.size() || !pf.reachable[pc])
                continue;
            if (pf.bailed) {
                report.findings.push_back(monoFinding(
                    pr.name, p, pc, jsDescribeInstr(pr, pc),
                    "inference bailed on this proto; elided site "
                    "cannot be re-proven monomorphic"));
                continue;
            }
            const auto proven = jsElidedForm(pf.stack[pc], w);
            if (proven && *proven == op)
                continue;
            report.findings.push_back(monoFinding(
                pr.name, p, pc, jsDescribeInstr(pr, pc),
                strformat("elided site not dominated by a monomorphic "
                          "fact (operand facts %s, %s)",
                          typeinf::describe(jsStackFact(pf.stack[pc], 1),
                                            typeinf::kTopJs)
                              .c_str(),
                          typeinf::describe(jsStackFact(pf.stack[pc], 0),
                                            typeinf::kTopJs)
                              .c_str())));
        }
    }
}

namespace {

std::string
describeFacts(const std::vector<AVal> &facts, const char *what,
              uint8_t top)
{
    std::string out = strformat("  %s facts:", what);
    if (facts.empty())
        return out + " (none)\n";
    for (size_t i = 0; i < facts.size(); ++i)
        out += strformat(" %zu=%s", i,
                         typeinf::describe(facts[i], top).c_str());
    return out + "\n";
}

} // namespace

std::string
explainLua(const lua::Module &m, size_t protoIdx, size_t pc)
{
    if (protoIdx >= m.protos.size())
        return strformat("no proto %zu (module has %zu)\n", protoIdx,
                         m.protos.size());
    const lua::Proto &pr = m.protos[protoIdx];
    if (pc >= pr.code.size())
        return strformat("%s(proto %zu): no pc %zu (proto has %zu)\n",
                         pr.name.c_str(), protoIdx, pc, pr.code.size());
    const ModuleFacts facts = typeinf::inferLua(m);
    const typeinf::ProtoFacts &pf = facts.protos[protoIdx];
    std::string out =
        strformat("%s(proto %zu)+%zu: %s\n", pr.name.c_str(), protoIdx,
                  pc, luaDescribeInstr(pr, pc).c_str());
    if (!facts.converged)
        out += "  (interprocedural fixpoint hit its iteration cap; "
               "facts widened to any)\n";
    if (pf.bailed)
        return out + "  inference bailed on this proto; no facts\n";
    if (pc >= pf.reachable.size() || !pf.reachable[pc])
        return out + "  unreachable from the proto entry\n";
    out += describeFacts(pf.regs[pc], "register", typeinf::kTopLua);
    const uint32_t w = pr.code[pc];
    const auto op = static_cast<lua::Op>(w & 0x3F);
    if (!luaIsArithSite(op) && !luaIsTableSite(op))
        return out + "  not a type-guarded hot site; nothing to elide\n";
    const unsigned a = (w >> 6) & 0xFF;
    const unsigned b = (w >> 14) & 0x1FF;
    const unsigned c = (w >> 23) & 0x1FF;
    const auto operand = [&](const char *name, unsigned rk) {
        return strformat(
            "  operand %s (%s%u) = %s\n", name,
            (rk & lua::kRkConstFlag) ? "k" : "r", rk & 0xFF,
            typeinf::describe(luaRkFact(pr, pf.regs[pc], rk),
                              typeinf::kTopLua)
                .c_str());
    };
    if (luaIsArithSite(op)) {
        out += operand("B", b);
        out += operand("C", c);
    } else if (op == lua::Op::GETTABLE || op == lua::Op::GETTAB_E) {
        out += operand("B (table)", b & 0xFF);
        out += operand("C (key)", c);
    } else {
        out += operand("A (table)", a);
        out += operand("B (key)", b);
    }
    const auto elided = luaElidedForm(pr, pf.regs[pc], w);
    if (elided)
        out += strformat("  verdict: monomorphic -> %s\n",
                         std::string(lua::opName(*elided)).c_str());
    else
        out += "  verdict: polymorphic; guards kept\n";
    return out;
}

std::string
explainJs(const js::Module &m, size_t protoIdx, size_t pc)
{
    if (protoIdx >= m.protos.size())
        return strformat("no proto %zu (module has %zu)\n", protoIdx,
                         m.protos.size());
    const js::Proto &pr = m.protos[protoIdx];
    if (pc >= pr.code.size())
        return strformat("%s(proto %zu): no pc %zu (proto has %zu)\n",
                         pr.name.c_str(), protoIdx, pc, pr.code.size());
    const ModuleFacts facts = typeinf::inferJs(m);
    const typeinf::ProtoFacts &pf = facts.protos[protoIdx];
    std::string out =
        strformat("%s(proto %zu)+%zu: %s\n", pr.name.c_str(), protoIdx,
                  pc, jsDescribeInstr(pr, pc).c_str());
    if (!facts.converged)
        out += "  (interprocedural fixpoint hit its iteration cap; "
               "facts widened to any)\n";
    if (pf.bailed)
        return out + "  inference bailed on this proto; no facts\n";
    if (pc >= pf.reachable.size() || !pf.reachable[pc])
        return out + "  unreachable from the proto entry\n";
    out += describeFacts(pf.regs[pc], "local", typeinf::kTopJs);
    out += describeFacts(pf.stack[pc], "operand-stack", typeinf::kTopJs);
    const uint32_t w = pr.code[pc];
    const auto op = static_cast<js::Op>(w & 0xFF);
    if (!jsIsArithSite(op) && !jsIsTableSite(op))
        return out + "  not a type-guarded hot site; nothing to elide\n";
    const auto slot = [&](const char *name, size_t back) {
        return strformat("  operand %s (stack[-%zu]) = %s\n", name,
                         back + 1,
                         typeinf::describe(jsStackFact(pf.stack[pc], back),
                                           typeinf::kTopJs)
                             .c_str());
    };
    if (jsIsArithSite(op)) {
        out += slot("lhs", 1);
        out += slot("rhs", 0);
    } else if (op == js::Op::GETELEM || op == js::Op::GETELEM_E) {
        out += slot("obj", 1);
        out += slot("key", 0);
    } else {
        out += slot("obj", 2);
        out += slot("key", 1);
    }
    const auto elided = jsElidedForm(pf.stack[pc], w);
    if (elided)
        out += strformat("  verdict: monomorphic -> %s\n",
                         std::string(js::opName(*elided)).c_str());
    else
        out += "  verdict: polymorphic; guards kept\n";
    return out;
}

} // namespace tarch::analysis::elide
