#include "analysis/checks.h"

#include <array>
#include <bitset>

#include "analysis/dataflow.h"
#include "common/bitops.h"
#include "common/strutil.h"
#include "isa/opcode.h"

namespace tarch::analysis {

using isa::Instr;
using isa::Opcode;
using isa::Syntax;

namespace {

Finding
makeFinding(const Cfg &cfg, Severity sev, const char *check, size_t index,
            const std::string &message, const std::string &path = "")
{
    const uint64_t pc = cfg.prog->pcAt(index);
    return {sev,
            check,
            pc,
            cfg.describeInstr(index),
            cfg.locate(pc),
            message,
            path};
}

std::string
mnemonic(const Instr &instr)
{
    return std::string(isa::opcodeInfo(instr.op).mnemonic);
}

// ---------------------------------------------------------------------
// Typed-config reaching state.

enum TypedItem : unsigned {
    kOffset,
    kShift,
    kMask,
    kTrt,
    kHdl,
    kExpType,
    kNumTypedItems,
};

constexpr const char *kTypedItemName[kNumTypedItems] = {
    "R_offset", "R_shift", "R_mask", "the TRT", "R_hdl",
    "the expected checked-load type",
};

// Two-bit lattice per item: bit 0 = reachable unconfigured, bit 1 =
// reachable configured.  Join is bitwise OR.
constexpr uint8_t kNo = 1, kYes = 2;

struct TypedState {
    std::array<uint8_t, kNumTypedItems> v{};
    bool visited = false;

    bool
    mergeFrom(const TypedState &src)
    {
        if (!src.visited)
            return false;
        if (!visited) {
            *this = src;
            return true;
        }
        bool changed = false;
        for (unsigned i = 0; i < kNumTypedItems; ++i) {
            const uint8_t merged = v[i] | src.v[i];
            changed |= merged != v[i];
            v[i] = merged;
        }
        return changed;
    }
};

void
stepTyped(TypedState &s, const Instr &instr)
{
    switch (instr.op) {
      case Opcode::SETOFFSET: s.v[kOffset] = kYes; break;
      case Opcode::SETSHIFT: s.v[kShift] = kYes; break;
      case Opcode::SETMASK: s.v[kMask] = kYes; break;
      case Opcode::SET_TRT: s.v[kTrt] = kYes; break;
      case Opcode::FLUSH_TRT: s.v[kTrt] = kNo; break;
      case Opcode::THDL: s.v[kHdl] = kYes; break;
      case Opcode::SETTYPE: s.v[kExpType] = kYes; break;
      default: break;
    }
}

/** Items an instruction requires configured, empty when untyped. */
std::vector<unsigned>
typedRequirements(Opcode op)
{
    switch (op) {
      case Opcode::TLD:
      case Opcode::TSD:
        return {kOffset, kShift, kMask};
      case Opcode::XADD:
      case Opcode::XSUB:
      case Opcode::XMUL:
      case Opcode::TCHK:
        return {kHdl, kTrt};
      case Opcode::CHKLB:
      case Opcode::CHKLH:
      case Opcode::CHKLD:
        return {kHdl, kExpType};
      default:
        return {};
    }
}

} // namespace

void
checkTypedState(const Cfg &cfg, Report &report)
{
    const assembler::Program &prog = *cfg.prog;
    TypedState entry;
    entry.visited = true;
    entry.v.fill(kNo);

    const auto transfer = [&](size_t b, TypedState s) {
        const Block &block = cfg.blocks[b];
        for (size_t i = block.first; i < block.first + block.count; ++i)
            stepTyped(s, prog.text[i]);
        return s;
    };
    const std::vector<TypedState> in =
        solveForward<TypedState>(cfg, entry, transfer);

    // Predecessor OUT states, for blaming the path that left an item
    // unconfigured.
    std::vector<TypedState> out(cfg.blocks.size());
    for (size_t b = 0; b < cfg.blocks.size(); ++b)
        if (cfg.blocks[b].reachable)
            out[b] = transfer(b, in[b]);

    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        const Block &block = cfg.blocks[b];
        if (!block.reachable)
            continue;
        TypedState s = in[b];
        // Index of an in-block instruction that unset the item (the
        // only in-block unset is flush_trt).
        std::array<size_t, kNumTypedItems> unsetAt;
        unsetAt.fill(SIZE_MAX);
        for (size_t i = block.first; i < block.first + block.count; ++i) {
            const Instr &instr = prog.text[i];
            std::vector<unsigned> bad;
            for (const unsigned item : typedRequirements(instr.op))
                if (s.v[item] != kYes)
                    bad.push_back(item);
            if (!bad.empty()) {
                std::string what;
                for (size_t k = 0; k < bad.size(); ++k) {
                    if (k)
                        what += bad.size() == 2 ? " and "
                                                : (k + 1 == bad.size()
                                                       ? ", and "
                                                       : ", ");
                    what += kTypedItemName[bad[k]];
                }
                std::string path;
                const unsigned item = bad.front();
                if (unsetAt[item] != SIZE_MAX) {
                    path = strformat(
                        "unset earlier in this block by `%s` at %s",
                        cfg.describeInstr(unsetAt[item]).c_str(),
                        cfg.locate(prog.pcAt(unsetAt[item])).c_str());
                } else if ((in[b].v[item] & kYes) == 0) {
                    path = "never configured on any path from entry";
                } else {
                    for (const size_t p : block.preds) {
                        if (cfg.blocks[p].reachable &&
                            (out[p].v[item] & kNo)) {
                            const size_t last = cfg.blocks[p].first +
                                                cfg.blocks[p].count - 1;
                            path = strformat(
                                "unconfigured when reached from "
                                "predecessor %s",
                                cfg.locate(prog.pcAt(last)).c_str());
                            break;
                        }
                    }
                }
                report.findings.push_back(makeFinding(
                    cfg, Severity::Error, "typed-state", i,
                    strformat("`%s` is reachable with %s unconfigured",
                              mnemonic(instr).c_str(), what.c_str()),
                    path));
            }
            if (instr.op == Opcode::FLUSH_TRT)
                unsetAt[kTrt] = i;
            stepTyped(s, instr);
        }
    }
}

// ---------------------------------------------------------------------
// Def-before-use.

namespace {

constexpr unsigned kFpBase = 32;
constexpr unsigned kNumRegBits = 64;

std::string
regDisplayName(unsigned bit)
{
    if (bit < kFpBase)
        return std::string(isa::gprName(bit));
    return strformat("f%u", bit - kFpBase);
}

struct DefState {
    std::bitset<kNumRegBits> must, may;
    bool visited = false;

    bool
    mergeFrom(const DefState &src)
    {
        if (!src.visited)
            return false;
        if (!visited) {
            *this = src;
            return true;
        }
        const auto nmust = must & src.must;
        const auto nmay = may | src.may;
        const bool changed = nmust != must || nmay != may;
        must = nmust;
        may = nmay;
        return changed;
    }
};

struct RegAccess {
    // Small fixed-capacity sets: no instruction touches more than
    // three registers plus the modeled service-call ABI.
    std::array<unsigned, 4> uses{};
    std::array<unsigned, 4> defs{};
    unsigned nUses = 0, nDefs = 0;

    void use(unsigned idx, bool fp) { uses[nUses++] = idx + (fp ? kFpBase : 0); }
    void def(unsigned idx, bool fp) { defs[nDefs++] = idx + (fp ? kFpBase : 0); }
};

RegAccess
regAccess(const Instr &instr)
{
    const isa::OpcodeInfo &info = isa::opcodeInfo(instr.op);
    RegAccess a;
    switch (info.syntax) {
      case Syntax::None:
        break;
      case Syntax::R3:
        a.use(instr.rs1, info.fpRs1);
        a.use(instr.rs2, info.fpRs2);
        a.def(instr.rd, info.fpRd);
        break;
      case Syntax::R2:
        a.use(instr.rs1, info.fpRs1);
        a.def(instr.rd, info.fpRd);
        break;
      case Syntax::Rs1Rs2:
        a.use(instr.rs1, info.fpRs1);
        a.use(instr.rs2, info.fpRs2);
        break;
      case Syntax::Rs1:
        a.use(instr.rs1, info.fpRs1);
        break;
      case Syntax::RegRegImm:
      case Syntax::Load:
        a.use(instr.rs1, info.fpRs1);
        a.def(instr.rd, info.fpRd);
        break;
      case Syntax::Store:
        a.use(instr.rs1, info.fpRs1);
        a.use(instr.rs2, info.fpRs2);
        break;
      case Syntax::Branch:
        a.use(instr.rs1, false);
        a.use(instr.rs2, false);
        break;
      case Syntax::Jal:
      case Syntax::UImm:
        a.def(instr.rd, false);
        break;
      case Syntax::Label:
        break;
      case Syntax::Imm:
        // Service-call ABI.  sys reads its argument from a0 (fa0 for
        // the print-double service); hcall argument liveness depends
        // on the hostcall id, so only the result registers (a0, fa0)
        // are modeled, as defines.
        if (instr.op == Opcode::SYS) {
            if (instr.imm == 3)
                a.use(10, true);
            else
                a.use(isa::reg::a0, false);
        } else if (instr.op == Opcode::HCALL) {
            a.def(isa::reg::a0, false);
            a.def(10, true);
        }
        break;
    }
    return a;
}

} // namespace

void
checkDefUse(const Cfg &cfg, Report &report)
{
    const assembler::Program &prog = *cfg.prog;
    DefState entry;
    entry.visited = true;
    // The ABI-defined environment at _start: x0 and the stack/global/
    // thread pointers.  Everything else must be written before read.
    for (const unsigned r :
         {isa::reg::zero, isa::reg::sp, isa::reg::gp, isa::reg::tp}) {
        entry.must.set(r);
        entry.may.set(r);
    }

    const auto transfer = [&](size_t b, DefState s) {
        const Block &block = cfg.blocks[b];
        for (size_t i = block.first; i < block.first + block.count; ++i) {
            const RegAccess a = regAccess(prog.text[i]);
            for (unsigned k = 0; k < a.nDefs; ++k) {
                s.must.set(a.defs[k]);
                s.may.set(a.defs[k]);
            }
        }
        return s;
    };
    const std::vector<DefState> in =
        solveForward<DefState>(cfg, entry, transfer);

    std::vector<DefState> out(cfg.blocks.size());
    for (size_t b = 0; b < cfg.blocks.size(); ++b)
        if (cfg.blocks[b].reachable)
            out[b] = transfer(b, in[b]);

    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        const Block &block = cfg.blocks[b];
        if (!block.reachable)
            continue;
        DefState s = in[b];
        for (size_t i = block.first; i < block.first + block.count; ++i) {
            const RegAccess a = regAccess(prog.text[i]);
            for (unsigned k = 0; k < a.nUses; ++k) {
                const unsigned bit = a.uses[k];
                if (bit == isa::reg::zero)
                    continue;
                if (s.must.test(bit))
                    continue;
                if (!s.may.test(bit)) {
                    report.findings.push_back(makeFinding(
                        cfg, Severity::Error, "def-use", i,
                        strformat("read of %s, which is never written on "
                                  "any path from entry",
                                  regDisplayName(bit).c_str())));
                    // Suppress the cascade: treat as defined from here.
                    s.must.set(bit);
                    s.may.set(bit);
                    continue;
                }
                std::string path;
                for (const size_t p : block.preds) {
                    if (cfg.blocks[p].reachable &&
                        !out[p].must.test(bit)) {
                        const size_t last =
                            cfg.blocks[p].first + cfg.blocks[p].count - 1;
                        path = strformat("unwritten when reached from "
                                         "predecessor %s",
                                         cfg.locate(prog.pcAt(last)).c_str());
                        break;
                    }
                }
                report.findings.push_back(makeFinding(
                    cfg, Severity::Warning, "def-use", i,
                    strformat("%s may be read before it is written",
                              regDisplayName(bit).c_str()),
                    path));
                s.must.set(bit);
            }
            for (unsigned k = 0; k < a.nDefs; ++k) {
                s.must.set(a.defs[k]);
                s.may.set(a.defs[k]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// CFG sanity: unreachable blocks + constant-propagated stores into the
// text region.

namespace {

/** Per-GPR constant lattice (FPRs are never store bases). */
struct ConstState {
    std::array<uint64_t, isa::kNumGprs> val{};
    std::bitset<isa::kNumGprs> known;
    bool visited = false;

    bool
    mergeFrom(const ConstState &src)
    {
        if (!src.visited)
            return false;
        if (!visited) {
            *this = src;
            return true;
        }
        bool changed = false;
        for (unsigned r = 0; r < isa::kNumGprs; ++r) {
            if (known.test(r) &&
                (!src.known.test(r) || src.val[r] != val[r])) {
                known.reset(r);
                changed = true;
            }
        }
        return changed;
    }

    void
    set(unsigned rd, uint64_t v)
    {
        if (rd == isa::reg::zero)
            return;
        known.set(rd);
        val[rd] = v;
    }
    void
    clobber(unsigned rd)
    {
        if (rd != isa::reg::zero)
            known.reset(rd);
    }
};

void
stepConst(ConstState &s, const Instr &instr, uint64_t pc)
{
    const auto rs1 = [&]() { return s.val[instr.rs1]; };
    const bool k1 = s.known.test(instr.rs1) || instr.rs1 == isa::reg::zero;
    const bool k2 = s.known.test(instr.rs2) || instr.rs2 == isa::reg::zero;
    const uint64_t imm = static_cast<uint64_t>(instr.imm);
    switch (instr.op) {
      case Opcode::LUI: s.set(instr.rd, imm << 12); break;
      case Opcode::AUIPC: s.set(instr.rd, pc + (imm << 12)); break;
      case Opcode::ADDI:
        k1 ? s.set(instr.rd, rs1() + imm) : s.clobber(instr.rd);
        break;
      case Opcode::ADDIW:
        k1 ? s.set(instr.rd, static_cast<uint64_t>(static_cast<int64_t>(
                                 static_cast<int32_t>(rs1() + imm))))
           : s.clobber(instr.rd);
        break;
      case Opcode::ANDI:
        k1 ? s.set(instr.rd, rs1() & imm) : s.clobber(instr.rd);
        break;
      case Opcode::ORI:
        k1 ? s.set(instr.rd, rs1() | imm) : s.clobber(instr.rd);
        break;
      case Opcode::XORI:
        k1 ? s.set(instr.rd, rs1() ^ imm) : s.clobber(instr.rd);
        break;
      case Opcode::SLLI:
        k1 ? s.set(instr.rd, rs1() << (imm & 63)) : s.clobber(instr.rd);
        break;
      case Opcode::SRLI:
        k1 ? s.set(instr.rd, rs1() >> (imm & 63)) : s.clobber(instr.rd);
        break;
      case Opcode::ADD:
        k1 && k2 ? s.set(instr.rd, rs1() + s.val[instr.rs2])
                 : s.clobber(instr.rd);
        break;
      case Opcode::SUB:
        k1 && k2 ? s.set(instr.rd, rs1() - s.val[instr.rs2])
                 : s.clobber(instr.rd);
        break;
      case Opcode::JAL:
      case Opcode::JALR:
        // Link value: the return address is a constant.
        if (instr.rd != isa::reg::zero)
            s.set(instr.rd, pc + 4);
        break;
      default: {
        // Any other write invalidates the destination.
        const RegAccess a = regAccess(instr);
        for (unsigned k = 0; k < a.nDefs; ++k)
            if (a.defs[k] < kFpBase)
                s.clobber(a.defs[k]);
        break;
      }
    }
}

std::optional<unsigned>
storeSize(Opcode op)
{
    switch (op) {
      case Opcode::SB: return 1;
      case Opcode::SH: return 2;
      case Opcode::SW: return 4;
      case Opcode::SD:
      case Opcode::FSD:
      case Opcode::TSD:
        return 8;
      default:
        return std::nullopt;
    }
}

} // namespace

void
checkCfgSanity(const Cfg &cfg, Report &report)
{
    const assembler::Program &prog = *cfg.prog;

    // Unreachable code: report the head of each unreachable run.
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        const Block &block = cfg.blocks[b];
        if (block.reachable)
            continue;
        bool runHead = true;
        for (const size_t p : block.preds)
            if (!cfg.blocks[p].reachable)
                runHead = false;
        if (!runHead)
            continue;
        size_t total = block.count;
        for (size_t nb = b + 1;
             nb < cfg.blocks.size() && !cfg.blocks[nb].reachable; ++nb)
            total += cfg.blocks[nb].count;
        report.findings.push_back(makeFinding(
            cfg, Severity::Warning, "cfg", block.first,
            strformat("unreachable code (%zu instruction(s) with no path "
                      "from entry)",
                      total)));
    }

    // Stores into text, by light constant propagation over addresses.
    ConstState entry;
    entry.visited = true;
    const auto transfer = [&](size_t b, ConstState s) {
        const Block &block = cfg.blocks[b];
        for (size_t i = block.first; i < block.first + block.count; ++i)
            stepConst(s, prog.text[i], prog.pcAt(i));
        return s;
    };
    const std::vector<ConstState> in =
        solveForward<ConstState>(cfg, entry, transfer);

    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        const Block &block = cfg.blocks[b];
        if (!block.reachable)
            continue;
        ConstState s = in[b];
        for (size_t i = block.first; i < block.first + block.count; ++i) {
            const Instr &instr = prog.text[i];
            const auto size = storeSize(instr.op);
            if (size &&
                (s.known.test(instr.rs1) || instr.rs1 == isa::reg::zero)) {
                const uint64_t addr =
                    s.val[instr.rs1] + static_cast<uint64_t>(instr.imm);
                if (addr < cfg.textEnd() &&
                    addr + *size > prog.textBase) {
                    report.findings.push_back(makeFinding(
                        cfg, Severity::Error, "cfg", i,
                        strformat("store to 0x%llx writes into the text "
                                  "region [0x%llx, 0x%llx)",
                                  (unsigned long long)addr,
                                  (unsigned long long)prog.textBase,
                                  (unsigned long long)cfg.textEnd())));
                }
            }
            stepConst(s, instr, prog.pcAt(i));
        }
    }
}

Report
verifyImage(const assembler::Program &prog, const VerifyOptions &opts)
{
    Report report;
    const Cfg cfg = buildCfg(prog, report);
    if (opts.cfgSanity)
        checkCfgSanity(cfg, report);
    if (opts.typedState)
        checkTypedState(cfg, report);
    if (opts.defUse)
        checkDefUse(cfg, report);
    return report;
}

} // namespace tarch::analysis
