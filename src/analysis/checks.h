/**
 * @file
 * The three dataflow checks of the static verifier, plus the
 * one-call entry point verifyImage().
 *
 *   - typed-state: every tld/tsd must be reached with R_offset,
 *     R_shift and R_mask configured; every xadd/xsub/xmul/tchk with a
 *     live thdl handler and a non-flushed TRT; every chklb/chklh/chkld
 *     with a live handler and a settype in effect — on EVERY path, not
 *     just the ones a benchmark happens to execute.
 *   - def-use: GPR/FPR reads before any write (error when no path
 *     writes the register, warning when only some paths do), honoring
 *     OpcodeInfo::fpRd/fpRs1/fpRs2; the hostcall/syscall ABI is
 *     modeled as define/clobber sets (hcall defines a0 and fa0 and
 *     preserves everything else; sys reads a0, or fa0 for sys 3).
 *   - cfg sanity: unreachable blocks, and stores whose
 *     constant-propagated effective address lands inside the text
 *     region.  (Bad direct targets, decode failures and fallthrough
 *     off the end of text are reported during CFG construction.)
 */

#ifndef TARCH_ANALYSIS_CHECKS_H
#define TARCH_ANALYSIS_CHECKS_H

#include "analysis/cfg.h"
#include "analysis/report.h"
#include "assembler/assembler.h"

namespace tarch::analysis {

struct VerifyOptions {
    bool typedState = true;
    bool defUse = true;
    bool cfgSanity = true;
};

void checkTypedState(const Cfg &cfg, Report &report);
void checkDefUse(const Cfg &cfg, Report &report);
void checkCfgSanity(const Cfg &cfg, Report &report);

/** Build the CFG and run every enabled check over @p prog. */
Report verifyImage(const assembler::Program &prog,
                   const VerifyOptions &opts = {});

} // namespace tarch::analysis

#endif // TARCH_ANALYSIS_CHECKS_H
