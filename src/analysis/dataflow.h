/**
 * @file
 * Minimal forward worklist dataflow framework over the verifier CFG.
 *
 * A State needs two members:
 *   - bool mergeFrom(const State &src): join src into *this, returning
 *     whether *this changed.  The first merge into a fresh state must
 *     adopt src wholesale (states carry their own "visited" flag so the
 *     framework stays agnostic of each lattice's bottom element).
 *   - copy construction / assignment.
 *
 * The transfer function maps (block id, in-state) to the block's
 * out-state.  solveForward() returns the IN state of every block;
 * blocks unreachable from the entry keep the default-constructed
 * state and should be skipped by clients (Block::reachable).
 */

#ifndef TARCH_ANALYSIS_DATAFLOW_H
#define TARCH_ANALYSIS_DATAFLOW_H

#include <deque>
#include <vector>

#include "analysis/cfg.h"

namespace tarch::analysis {

/** Reverse post-order of the reachable blocks (stable iteration order). */
std::vector<size_t> reversePostOrder(const Cfg &cfg);

template <typename State, typename TransferFn>
std::vector<State>
solveForward(const Cfg &cfg, const State &entryState, TransferFn transfer)
{
    std::vector<State> in(cfg.blocks.size());
    if (cfg.blocks.empty())
        return in;

    // Priority = position in reverse post-order, so merges see most
    // predecessors before a block is processed.
    const std::vector<size_t> rpo = reversePostOrder(cfg);
    std::vector<size_t> rank(cfg.blocks.size(), cfg.blocks.size());
    for (size_t i = 0; i < rpo.size(); ++i)
        rank[rpo[i]] = i;

    in[cfg.entryBlock].mergeFrom(entryState);
    std::deque<size_t> work{cfg.entryBlock};
    std::vector<char> queued(cfg.blocks.size(), 0);
    queued[cfg.entryBlock] = 1;

    while (!work.empty()) {
        const size_t b = work.front();
        work.pop_front();
        queued[b] = 0;
        const State out = transfer(b, in[b]);
        for (const size_t s : cfg.blocks[b].succs) {
            if (in[s].mergeFrom(out) && !queued[s]) {
                queued[s] = 1;
                // Cheap approximation of priority ordering: put
                // lower-ranked (earlier) blocks at the front.
                if (!work.empty() && rank[s] < rank[work.front()])
                    work.push_front(s);
                else
                    work.push_back(s);
            }
        }
    }
    return in;
}

} // namespace tarch::analysis

#endif // TARCH_ANALYSIS_DATAFLOW_H
