/**
 * @file
 * Basic-block control-flow graph over an assembled Program.
 *
 * Leaders: the entry point, every direct branch / jal / thdl target,
 * every indirect-jump seed, every call-return site, and the
 * instruction after any block-ending instruction.  Edges:
 *
 *   - conditional branch      -> { target, fallthrough }
 *   - jal rd=x0 (plain jump)  -> { target }
 *   - jal rd!=x0 (call)       -> { target }; the next instruction is
 *                                recorded as a call-return site
 *   - jalr rs1=ra, rd=x0      -> every call-return site (function
 *                                return; interprocedural approximation)
 *   - other jalr              -> every indirect-jump seed (dispatch
 *                                `jr`); rd!=x0 also records a return
 *                                site
 *   - thdl                    -> { fallthrough, its own target } (the
 *                                deopt selector may redirect
 *                                immediately on execution)
 *   - xadd/xsub/xmul/tchk and chklb/chklh/chkld
 *                             -> { fallthrough } plus every thdl
 *                                target in the image (type-miss
 *                                redirect goes through R_hdl)
 *   - halt, `sys 0` (exit)    -> no successors
 *   - everything else         -> { fallthrough }
 *
 * Indirect-jump seeds come from the `.verify_indirect_targets`
 * assembler directive when the image carries one; otherwise every
 * 8-aligned data dword whose value is a word-aligned text address is
 * treated as a dispatch-table entry (the generated interpreters'
 * jumptable idiom).
 *
 * Construction also performs the structural checks that do not need
 * dataflow: encode/decode round-trip of every instruction, direct
 * targets inside [textBase, textEnd) and word-aligned, and no
 * fallthrough past the end of .text.
 */

#ifndef TARCH_ANALYSIS_CFG_H
#define TARCH_ANALYSIS_CFG_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/report.h"
#include "assembler/assembler.h"

namespace tarch::analysis {

struct Block {
    size_t first = 0; ///< index of the first instruction
    size_t count = 0;
    std::vector<size_t> succs; ///< successor block ids
    std::vector<size_t> preds;
    bool reachable = false;
};

struct Cfg {
    const assembler::Program *prog = nullptr;
    std::vector<Block> blocks;
    std::vector<size_t> blockOf;           ///< instruction index -> block id
    std::vector<uint64_t> indirectTargets; ///< indirect-jump seed PCs
    std::vector<uint64_t> thdlTargets;     ///< every thdl handler target PC
    bool indirectFromDirective = false;
    bool hasIndirectJumps = false; ///< a non-return jalr exists
    size_t entryBlock = 0;

    /** Text labels sorted by address (for nearest-label lookup). */
    std::vector<std::pair<uint64_t, std::string>> textLabels;

    uint64_t textEnd() const
    {
        return prog->textBase + 4 * prog->text.size();
    }
    bool inText(uint64_t pc) const
    {
        return pc >= prog->textBase && pc < textEnd() && pc % 4 == 0;
    }
    std::optional<size_t> indexOf(uint64_t pc) const
    {
        if (!inText(pc))
            return std::nullopt;
        return static_cast<size_t>((pc - prog->textBase) / 4);
    }

    /** "label+0x8" for the nearest preceding text label, else hex. */
    std::string locate(uint64_t pc) const;

    /** Disassembly of the instruction at @p index. */
    std::string describeInstr(size_t index) const;
};

/**
 * Build the CFG for @p prog, reporting structural findings (decode
 * round-trip failures, bad direct targets, fallthrough off the end of
 * text, indirect jumps with no seeds) into @p report.
 */
Cfg buildCfg(const assembler::Program &prog, Report &report);

} // namespace tarch::analysis

#endif // TARCH_ANALYSIS_CFG_H
