#include "analysis/cfg.h"

#include <algorithm>
#include <cstring>
#include <deque>

#include "common/strutil.h"
#include "isa/disasm.h"
#include "isa/encoding.h"

namespace tarch::analysis {

using isa::Instr;
using isa::Opcode;

namespace {

/** Control-flow class of one instruction. */
enum class FlowKind : uint8_t {
    Plain,     ///< fallthrough only
    CondBr,    ///< target + fallthrough
    Jump,      ///< jal rd=x0: target only
    Call,      ///< jal rd!=x0: target; next instruction is a return site
    Ret,       ///< jalr rd=x0, rs1=ra: every call-return site
    Jr,        ///< other jalr rd=x0: every indirect seed
    JrCall,    ///< jalr rd!=x0: seeds; next instruction is a return site
    Thdl,      ///< target + fallthrough (deopt may redirect immediately)
    TypeCheck, ///< fallthrough + every thdl target (miss goes to R_hdl)
    Stop,      ///< halt / sys 0: no successors
};

struct FlowInfo {
    FlowKind kind = FlowKind::Plain;
    uint64_t target = 0; ///< valid for CondBr/Jump/Call/Thdl
    bool targetValid = false;
};

bool
isTypeCheckOp(Opcode op)
{
    switch (op) {
      case Opcode::XADD:
      case Opcode::XSUB:
      case Opcode::XMUL:
      case Opcode::TCHK:
      case Opcode::CHKLB:
      case Opcode::CHKLH:
      case Opcode::CHKLD:
        return true;
      default:
        return false;
    }
}

bool
sameInstr(const Instr &a, const Instr &b)
{
    return a.op == b.op && a.rd == b.rd && a.rs1 == b.rs1 &&
           a.rs2 == b.rs2 && a.imm == b.imm;
}

} // namespace

std::string
Cfg::locate(uint64_t pc) const
{
    const auto it = std::upper_bound(
        textLabels.begin(), textLabels.end(), pc,
        [](uint64_t value, const auto &entry) { return value < entry.first; });
    if (it == textLabels.begin())
        return strformat("0x%llx", static_cast<unsigned long long>(pc));
    const auto &[addr, name] = *std::prev(it);
    if (addr == pc)
        return name;
    return strformat("%s+0x%llx", name.c_str(),
                     static_cast<unsigned long long>(pc - addr));
}

std::string
Cfg::describeInstr(size_t index) const
{
    return isa::disassemble(prog->text[index]);
}

Cfg
buildCfg(const assembler::Program &prog, Report &report)
{
    Cfg cfg;
    cfg.prog = &prog;

    for (const auto &[name, addr] : prog.symbols)
        if (addr >= prog.textBase && addr < cfg.textEnd())
            cfg.textLabels.emplace_back(addr, name);
    std::sort(cfg.textLabels.begin(), cfg.textLabels.end());

    const size_t n = prog.text.size();
    const auto finding = [&](Severity sev, const std::string &check, size_t i,
                             const std::string &msg) {
        const uint64_t pc = prog.pcAt(i);
        report.findings.push_back({sev, check, pc, cfg.describeInstr(i),
                                   cfg.locate(pc), msg, ""});
    };

    // ------------------------------------------------------------------
    // Pass 1: classify every instruction, validate encodings and direct
    // targets, collect thdl targets / indirect seeds / return sites.
    std::vector<FlowInfo> flow(n);
    std::vector<uint64_t> returnSites;
    bool hasRet = false;
    for (size_t i = 0; i < n; ++i) {
        const Instr &instr = prog.text[i];
        const uint64_t pc = prog.pcAt(i);

        const auto word = isa::encode(instr);
        if (!word) {
            finding(Severity::Error, "decode", i,
                    "instruction does not encode (operand or immediate "
                    "out of range for its format)");
        } else if (const auto back = isa::decode(*word);
                   !back || !sameInstr(*back, instr)) {
            finding(Severity::Error, "decode", i,
                    "instruction does not survive an encode/decode "
                    "round-trip");
        }

        FlowInfo &fi = flow[i];
        const auto directTarget = [&](const char *what) {
            fi.target = pc + static_cast<uint64_t>(instr.imm);
            fi.targetValid = cfg.inText(fi.target);
            if (!fi.targetValid)
                finding(Severity::Error, "cfg", i,
                        strformat("%s target 0x%llx is %s "
                                  "[0x%llx, 0x%llx)",
                                  what,
                                  (unsigned long long)fi.target,
                                  fi.target % 4 != 0
                                      ? "not word-aligned within"
                                      : "outside the text region",
                                  (unsigned long long)prog.textBase,
                                  (unsigned long long)cfg.textEnd()));
        };

        if (isa::isCondBranch(instr.op)) {
            fi.kind = FlowKind::CondBr;
            directTarget("branch");
        } else if (instr.op == Opcode::JAL) {
            fi.kind = instr.rd == 0 ? FlowKind::Jump : FlowKind::Call;
            directTarget("jump");
            if (fi.kind == FlowKind::Call && i + 1 < n)
                returnSites.push_back(prog.pcAt(i + 1));
        } else if (instr.op == Opcode::JALR) {
            if (instr.rd == 0 && instr.rs1 == isa::reg::ra) {
                fi.kind = FlowKind::Ret;
                hasRet = true;
            } else {
                fi.kind = instr.rd == 0 ? FlowKind::Jr : FlowKind::JrCall;
                cfg.hasIndirectJumps = true;
                if (fi.kind == FlowKind::JrCall && i + 1 < n)
                    returnSites.push_back(prog.pcAt(i + 1));
            }
        } else if (instr.op == Opcode::THDL) {
            fi.kind = FlowKind::Thdl;
            directTarget("thdl handler");
            if (fi.targetValid)
                cfg.thdlTargets.push_back(fi.target);
        } else if (isTypeCheckOp(instr.op)) {
            fi.kind = FlowKind::TypeCheck;
        } else if (instr.op == Opcode::HALT ||
                   (instr.op == Opcode::SYS && instr.imm == 0)) {
            fi.kind = FlowKind::Stop;
        }
    }
    std::sort(cfg.thdlTargets.begin(), cfg.thdlTargets.end());
    cfg.thdlTargets.erase(
        std::unique(cfg.thdlTargets.begin(), cfg.thdlTargets.end()),
        cfg.thdlTargets.end());

    // ------------------------------------------------------------------
    // Indirect-jump seeds: the explicit directive wins; otherwise scan
    // the data section for the dispatch-table idiom (8-aligned dwords
    // holding word-aligned text addresses).
    if (!prog.verifiedIndirectTargets.empty()) {
        cfg.indirectFromDirective = true;
        for (const uint64_t target : prog.verifiedIndirectTargets) {
            if (!cfg.inText(target)) {
                report.findings.push_back(
                    {Severity::Error, "cfg", target, "",
                     strformat("0x%llx", (unsigned long long)target),
                     ".verify_indirect_targets entry is not a "
                     "word-aligned text address",
                     ""});
                continue;
            }
            cfg.indirectTargets.push_back(target);
        }
    } else {
        for (size_t off = 0; off + 8 <= prog.data.size(); off += 8) {
            uint64_t value = 0;
            std::memcpy(&value, prog.data.data() + off, 8);
            if (cfg.inText(value))
                cfg.indirectTargets.push_back(value);
        }
    }
    std::sort(cfg.indirectTargets.begin(), cfg.indirectTargets.end());
    cfg.indirectTargets.erase(
        std::unique(cfg.indirectTargets.begin(), cfg.indirectTargets.end()),
        cfg.indirectTargets.end());

    if (cfg.hasIndirectJumps && cfg.indirectTargets.empty()) {
        report.findings.push_back(
            {Severity::Warning, "cfg", prog.textBase, "",
             cfg.locate(prog.textBase),
             "image contains indirect jumps but no indirect-target seeds "
             "(no .verify_indirect_targets directive and no dispatch-table "
             "data words); their successors are unknown",
             ""});
    }
    if (hasRet && returnSites.empty() && n != 0) {
        report.findings.push_back(
            {Severity::Note, "cfg", prog.textBase, "",
             cfg.locate(prog.textBase),
             "image contains a `ret` but no call sites; the return has no "
             "modeled successors",
             ""});
    }

    // ------------------------------------------------------------------
    // Leaders.
    std::vector<char> leader(n, 0);
    const auto markLeader = [&](uint64_t pc) {
        if (const auto idx = cfg.indexOf(pc))
            leader[*idx] = 1;
    };
    if (n != 0)
        leader[0] = 1;
    markLeader(prog.entry);
    for (size_t i = 0; i < n; ++i) {
        const FlowInfo &fi = flow[i];
        if (fi.targetValid)
            markLeader(fi.target);
        if (fi.kind != FlowKind::Plain && i + 1 < n)
            leader[i + 1] = 1;
    }
    for (const uint64_t pc : cfg.thdlTargets)
        markLeader(pc);
    for (const uint64_t pc : cfg.indirectTargets)
        markLeader(pc);
    for (const uint64_t pc : returnSites)
        markLeader(pc);

    // ------------------------------------------------------------------
    // Blocks and edges.
    cfg.blockOf.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (leader[i]) {
            Block b;
            b.first = i;
            cfg.blocks.push_back(b);
        }
        Block &current = cfg.blocks.back();
        cfg.blockOf[i] = cfg.blocks.size() - 1;
        ++current.count;
    }

    const auto blockAt = [&](uint64_t pc) -> std::optional<size_t> {
        const auto idx = cfg.indexOf(pc);
        if (!idx)
            return std::nullopt;
        return cfg.blockOf[*idx];
    };
    const auto addEdge = [&](size_t from, uint64_t targetPc) {
        if (const auto to = blockAt(targetPc))
            cfg.blocks[from].succs.push_back(*to);
    };

    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        Block &block = cfg.blocks[b];
        const size_t last = block.first + block.count - 1;
        const FlowInfo &fi = flow[last];
        const uint64_t fallPc = prog.pcAt(last + 1);
        bool fallthrough = false;
        switch (fi.kind) {
          case FlowKind::Plain:
            fallthrough = true;
            break;
          case FlowKind::CondBr:
          case FlowKind::Thdl:
            fallthrough = true;
            if (fi.targetValid)
                addEdge(b, fi.target);
            break;
          case FlowKind::Jump:
          case FlowKind::Call:
            if (fi.targetValid)
                addEdge(b, fi.target);
            break;
          case FlowKind::Ret:
            for (const uint64_t pc : returnSites)
                addEdge(b, pc);
            break;
          case FlowKind::Jr:
          case FlowKind::JrCall:
            for (const uint64_t pc : cfg.indirectTargets)
                addEdge(b, pc);
            break;
          case FlowKind::TypeCheck:
            fallthrough = true;
            for (const uint64_t pc : cfg.thdlTargets)
                addEdge(b, pc);
            break;
          case FlowKind::Stop:
            break;
        }
        if (fallthrough) {
            if (last + 1 >= n) {
                finding(Severity::Error, "cfg", last,
                        "execution falls through past the end of the "
                        "text region");
            } else {
                addEdge(b, fallPc);
            }
        }
        std::sort(block.succs.begin(), block.succs.end());
        block.succs.erase(
            std::unique(block.succs.begin(), block.succs.end()),
            block.succs.end());
    }
    for (size_t b = 0; b < cfg.blocks.size(); ++b)
        for (const size_t s : cfg.blocks[b].succs)
            cfg.blocks[s].preds.push_back(b);

    // ------------------------------------------------------------------
    // Reachability from the entry block.
    if (n != 0) {
        cfg.entryBlock = blockAt(prog.entry).value_or(0);
        std::deque<size_t> work{cfg.entryBlock};
        cfg.blocks[cfg.entryBlock].reachable = true;
        while (!work.empty()) {
            const size_t b = work.front();
            work.pop_front();
            for (const size_t s : cfg.blocks[b].succs) {
                if (!cfg.blocks[s].reachable) {
                    cfg.blocks[s].reachable = true;
                    work.push_back(s);
                }
            }
        }
    }
    return cfg;
}

} // namespace tarch::analysis
