/**
 * @file
 * Flow-sensitive, occurrence-style type inference over MiniScript
 * bytecode (the software-typed comparison axis; docs/ANALYSIS.md).
 *
 * The lattice is a bitset over the dynamic tags both engines share:
 *
 *   bottom (no value reaches here)
 *     < {nil/null, bool, int, flt, str, tab/obj, fun, undef}
 *     < top (any tag; `undef` exists only for MiniJS)
 *
 * Join is bitwise OR.  Facts are computed per proto with the PR-3
 * forward worklist solver (analysis/dataflow.h) over a CFG built from
 * the bytecode rather than from machine code: basic blocks of
 * bytecode instructions plus synthetic zero-length edge blocks that
 * carry the branch-condition narrowing actions (Typed Scheme style
 * occurrence typing: the truthy edge of `if x` removes nil from x's
 * type, the falsy edge keeps only {nil, bool} for MiniLua).
 *
 * Calls are resolved through an optimistic interprocedural fixpoint:
 * per-proto parameter and return summaries plus a per-global store
 * summary all start at bottom and grow monotonically until the whole
 * module converges (callees are bound through the compiler's
 * function-global table; a call through a value that is not a single
 * known function poisons every parameter summary).
 *
 * The exported facts are the IN state of every reachable bytecode
 * instruction; analysis/elide.{h,cc} consumes them to rewrite provably
 * monomorphic sites to guard-free opcodes and to machine-check that
 * every rewritten site is dominated by a monomorphic fact.
 */

#ifndef TARCH_ANALYSIS_TYPEINF_H
#define TARCH_ANALYSIS_TYPEINF_H

#include <cstdint>
#include <string>
#include <vector>

#include "vm/js/compiler.h"
#include "vm/lua/compiler.h"

namespace tarch::analysis::typeinf {

// Lattice element bits.  kNil doubles as JS null; kTab as JS object.
enum TypeBits : uint8_t {
    kNil = 1u << 0,
    kBool = 1u << 1,
    kInt = 1u << 2,
    kFlt = 1u << 3,
    kStr = 1u << 4,
    kTab = 1u << 5,
    kFun = 1u << 6,
    kUndef = 1u << 7, ///< MiniJS only
};

constexpr uint8_t kTopLua = 0x7F;
constexpr uint8_t kTopJs = 0xFF;
constexpr uint8_t kNumeric = kInt | kFlt;

/** bits ⊆ mask (bottom is a subset of everything). */
constexpr bool
subsetOf(uint8_t bits, uint8_t mask)
{
    return (bits & static_cast<uint8_t>(~mask)) == 0;
}

/**
 * One abstract value.  funProto identifies the callee when the value
 * is exactly one statically-known function (-1 otherwise); it is only
 * meaningful while bits == kFun.
 */
struct AVal {
    uint8_t bits = 0;
    int16_t funProto = -1;

    static AVal of(uint8_t bits) { return AVal{bits, -1}; }
    static AVal fun(int16_t proto) { return AVal{kFun, proto}; }

    bool isBottom() const { return bits == 0; }

    /** Lattice join; returns whether *this changed. */
    bool joinWith(const AVal &o)
    {
        const uint8_t nb = bits | o.bits;
        int16_t nf = -1;
        if (nb == kFun) {
            if (bits == 0)
                nf = o.funProto;
            else if (o.bits == 0)
                nf = funProto;
            else
                nf = funProto == o.funProto ? funProto : -1;
        }
        const bool changed = nb != bits || nf != funProto;
        bits = nb;
        funProto = nf;
        return changed;
    }

    /** Intersect with a tag mask (occurrence narrowing). */
    void narrow(uint8_t mask)
    {
        bits &= mask;
        if (bits != kFun)
            funProto = -1;
    }
};

inline bool
operator==(const AVal &a, const AVal &b)
{
    return a.bits == b.bits && a.funProto == b.funProto;
}

inline bool
operator!=(const AVal &a, const AVal &b)
{
    return !(a == b);
}

/** "int", "{int|flt}", "any", "none", "fun#2", ... against @p top. */
std::string describe(const AVal &v, uint8_t top);

/** Inferred IN facts for every instruction of one proto. */
struct ProtoFacts {
    /** Instruction is reachable from the proto entry. */
    std::vector<uint8_t> reachable;
    /** Per pc: MiniLua register / MiniJS local slot facts. */
    std::vector<std::vector<AVal>> regs;
    /** Per pc: MiniJS operand-stack facts, bottom of stack first. */
    std::vector<std::vector<AVal>> stack;
    /**
     * Inference gave up on this proto (operand-stack imbalance at a
     * join; never produced by the compilers).  No facts are usable.
     */
    bool bailed = false;
};

struct ModuleFacts {
    std::vector<ProtoFacts> protos; ///< indexed like Module::protos
    /** Context-insensitive fallback fact per global slot. */
    std::vector<AVal> globals;
    /** False if the interprocedural fixpoint hit its iteration cap. */
    bool converged = true;
};

ModuleFacts inferLua(const vm::lua::Module &m);
ModuleFacts inferJs(const vm::js::Module &m);

} // namespace tarch::analysis::typeinf

#endif // TARCH_ANALYSIS_TYPEINF_H
