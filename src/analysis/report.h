/**
 * @file
 * Findings container for the static verifier.
 *
 * Every check produces Finding records tagged with a severity, the
 * offending PC, the disassembled instruction, the nearest preceding
 * text label and (where it applies) a path condition naming the
 * predecessor that left the analyzed state bad.  Report aggregates
 * them and maps onto the tarch_verify exit-code convention:
 * 0 = clean, 1 = warnings only, 2 = at least one error.
 */

#ifndef TARCH_ANALYSIS_REPORT_H
#define TARCH_ANALYSIS_REPORT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tarch::analysis {

enum class Severity : uint8_t { Note, Warning, Error };

std::string_view severityName(Severity severity);

/** One diagnostic. */
struct Finding {
    Severity severity = Severity::Error;
    std::string check;    ///< "decode", "cfg", "typed-state", "def-use"
    uint64_t pc = 0;
    std::string instr;    ///< disassembled offending instruction
    std::string location; ///< nearest label + offset, e.g. "op_add+0x8"
    std::string message;
    std::string path;     ///< path condition (optional)

    std::string describe() const;
};

/** All findings for one image. */
struct Report {
    std::vector<Finding> findings;

    size_t count(Severity severity) const;
    bool hasErrors() const { return count(Severity::Error) != 0; }
    bool hasWarnings() const { return count(Severity::Warning) != 0; }

    /** Exit-code convention: 0 clean, 1 warnings only, 2 errors. */
    int exitCode() const;

    /** Render every finding plus a one-line summary. */
    std::string render() const;
};

} // namespace tarch::analysis

#endif // TARCH_ANALYSIS_REPORT_H
