/**
 * @file
 * Guard elision over MiniScript bytecode (the software-typed axis).
 *
 * rewrite{Lua,Js}() runs type inference (analysis/typeinf.h) and
 * rewrites every provably monomorphic hot site to its guard-free
 * opcode: ADD/SUB/MUL become *_II or *_FF/_DD when both operands are
 * proven int resp. float, and the table/element accesses become
 * GETTAB_E/SETTAB_E (GETELEM_E/SETELEM_E) when the container is
 * proven table/object and the key proven int.  Only the opcode field
 * changes; operands, instruction count and jump offsets are
 * preserved.
 *
 * verify{Lua,Js}() is the machine-checked soundness gate: it
 * re-infers from scratch over the (possibly rewritten) module --
 * using deliberately conservative transfer rules for the specialized
 * opcodes themselves, so the check does not assume what it is trying
 * to prove -- and reports an Error finding for every specialized site
 * whose incoming facts do not dominate the monomorphism requirement.
 * The rewrite and the verifier share one requirement predicate, and
 * the verifier is wired into tarch_typeinf, the differential-fuzz
 * oracle and CI (zero-findings ratchet).
 */

#ifndef TARCH_ANALYSIS_ELIDE_H
#define TARCH_ANALYSIS_ELIDE_H

#include "analysis/report.h"
#include "analysis/typeinf.h"
#include "vm/js/compiler.h"
#include "vm/lua/compiler.h"

namespace tarch::analysis::elide {

/** Rewrite statistics (static site counts, not dynamic executions). */
struct Stats {
    unsigned arithSites = 0;  ///< reachable ADD/SUB/MUL sites
    unsigned arithElided = 0; ///< ... rewritten to *_II / *_FF / *_DD
    unsigned tableSites = 0;  ///< reachable table/element accesses
    unsigned tableElided = 0; ///< ... rewritten to the *_E forms

    unsigned sites() const { return arithSites + tableSites; }
    unsigned elided() const { return arithElided + tableElided; }
};

Stats rewriteLua(vm::lua::Module &m);
Stats rewriteJs(vm::js::Module &m);

/**
 * Check that every guard-elided site in @p m is dominated by a
 * monomorphic inference fact; add an Error finding per violation
 * (check id "elide-mono").
 */
void verifyLua(const vm::lua::Module &m, Report &report);
void verifyJs(const vm::js::Module &m, Report &report);

/**
 * Human-readable account of the facts flowing into one bytecode
 * instruction and, for a hot site, the elision verdict reached through
 * the same predicate the rewriter uses (tarch_typeinf --explain).
 */
std::string explainLua(const vm::lua::Module &m, size_t protoIdx,
                       size_t pc);
std::string explainJs(const vm::js::Module &m, size_t protoIdx,
                      size_t pc);

} // namespace tarch::analysis::elide

#endif // TARCH_ANALYSIS_ELIDE_H
