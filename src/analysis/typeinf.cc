#include "analysis/typeinf.h"

#include <cstddef>
#include <deque>
#include <utility>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"

namespace tarch::analysis::typeinf {

namespace {

// ---------------------------------------------------------------------
// Dataflow state: registers (MiniLua) or locals + operand stack
// (MiniJS), plus flow-sensitive facts for every global slot.
// ---------------------------------------------------------------------

struct State {
    bool seen = false;
    /// Operand-stack depth mismatch at a join: poison the proto.
    bool stackBail = false;
    std::vector<AVal> regs;
    std::vector<AVal> stack;
    std::vector<AVal> globals;

    bool mergeFrom(const State &src)
    {
        if (!src.seen)
            return false;
        if (!seen) {
            *this = src;
            return true;
        }
        bool changed = false;
        if (src.stackBail && !stackBail) {
            stackBail = true;
            changed = true;
        }
        if (stack.size() != src.stack.size()) {
            if (!stackBail) {
                stackBail = true;
                changed = true;
            }
            if (stack.size() > src.stack.size()) {
                stack.resize(src.stack.size());
                changed = true;
            }
        }
        for (size_t i = 0; i < regs.size() && i < src.regs.size(); ++i)
            changed |= regs[i].joinWith(src.regs[i]);
        for (size_t i = 0; i < stack.size(); ++i)
            changed |= stack[i].joinWith(src.stack[i]);
        for (size_t i = 0; i < globals.size() && i < src.globals.size();
             ++i)
            changed |= globals[i].joinWith(src.globals[i]);
        return changed;
    }
};

// ---------------------------------------------------------------------
// Bytecode CFG with synthetic edge blocks.
//
// Occurrence narrowing is per-edge, but the PR-3 solver only supports
// per-block transfer functions; so every edge that narrows gets its
// own zero-instruction block whose "transfer" applies static Actions.
// ---------------------------------------------------------------------

struct Action {
    enum class Kind : uint8_t { Narrow, Copy } kind = Kind::Narrow;
    uint16_t dst = 0;
    uint16_t src = 0; ///< Copy only
    uint8_t mask = 0; ///< Narrow only
};

Action
narrowAct(unsigned reg, uint8_t mask)
{
    Action a;
    a.kind = Action::Kind::Narrow;
    a.dst = static_cast<uint16_t>(reg);
    a.mask = mask;
    return a;
}

Action
copyAct(unsigned dst, unsigned src)
{
    Action a;
    a.kind = Action::Kind::Copy;
    a.dst = static_cast<uint16_t>(dst);
    a.src = static_cast<uint16_t>(src);
    return a;
}

struct EdgeDesc {
    size_t to = 0;
    std::vector<Action> acts;
};

struct Bc {
    Cfg cfg; ///< prog stays null; only blocks/succs/entry are used
    std::vector<std::vector<Action>> acts; ///< per block id
};

void
applyAction(State &st, const Action &a)
{
    switch (a.kind) {
      case Action::Kind::Narrow:
        if (a.dst < st.regs.size())
            st.regs[a.dst].narrow(a.mask);
        break;
      case Action::Kind::Copy:
        if (a.dst < st.regs.size() && a.src < st.regs.size())
            st.regs[a.dst] = st.regs[a.src];
        break;
    }
}

/**
 * Build blocks over @p n bytecode instructions.  @p edgesOf is called
 * with a null leader set while leaders are being discovered, then with
 * the final set when edges are wired (the MiniJS condition peephole
 * needs to know whether a branch is itself a jump target).
 */
template <typename EdgesFn>
Bc
buildBc(size_t n, EdgesFn edgesOf)
{
    Bc bc;
    if (n == 0)
        return bc;

    std::vector<char> leader(n, 0);
    leader[0] = 1;
    for (size_t pc = 0; pc < n; ++pc) {
        const std::vector<EdgeDesc> es = edgesOf(pc, nullptr);
        const bool plain =
            es.size() == 1 && es[0].to == pc + 1 && es[0].acts.empty();
        if (plain)
            continue;
        if (pc + 1 < n)
            leader[pc + 1] = 1;
        for (const EdgeDesc &e : es)
            if (e.to < n)
                leader[e.to] = 1;
    }

    std::vector<size_t> blockOf(n, 0);
    for (size_t pc = 0; pc < n; ++pc) {
        if (leader[pc]) {
            Block blk;
            blk.first = pc;
            bc.cfg.blocks.push_back(blk);
        }
        blockOf[pc] = bc.cfg.blocks.size() - 1;
        ++bc.cfg.blocks.back().count;
    }
    bc.acts.resize(bc.cfg.blocks.size());

    const size_t nReal = bc.cfg.blocks.size();
    for (size_t b = 0; b < nReal; ++b) {
        const size_t last =
            bc.cfg.blocks[b].first + bc.cfg.blocks[b].count - 1;
        std::vector<EdgeDesc> es = edgesOf(last, &leader);
        for (EdgeDesc &e : es) {
            if (e.to >= n)
                continue;
            if (e.acts.empty()) {
                bc.cfg.blocks[b].succs.push_back(blockOf[e.to]);
                continue;
            }
            Block syn; // zero-length edge block carrying the actions
            syn.succs.push_back(blockOf[e.to]);
            bc.cfg.blocks.push_back(syn);
            bc.acts.push_back(std::move(e.acts));
            bc.cfg.blocks[b].succs.push_back(bc.cfg.blocks.size() - 1);
        }
    }

    bc.cfg.blockOf = std::move(blockOf);
    bc.cfg.entryBlock = 0;
    std::deque<size_t> work{bc.cfg.entryBlock};
    bc.cfg.blocks[bc.cfg.entryBlock].reachable = true;
    while (!work.empty()) {
        const size_t b = work.front();
        work.pop_front();
        for (const size_t s : bc.cfg.blocks[b].succs) {
            bc.cfg.blocks[s].preds.push_back(b);
            if (!bc.cfg.blocks[s].reachable) {
                bc.cfg.blocks[s].reachable = true;
                work.push_back(s);
            }
        }
    }
    return bc;
}

// ---------------------------------------------------------------------
// Interprocedural summaries (optimistic; everything starts at bottom
// and only grows, so iterating to a fixpoint is sound on convergence).
// ---------------------------------------------------------------------

struct Summaries {
    uint8_t top = kTopLua;
    std::vector<std::vector<AVal>> params; ///< per proto
    std::vector<AVal> ret;                 ///< per proto
    std::vector<AVal> store;   ///< per global: join of all stored values
    std::vector<char> stored;  ///< any SETGLOBAL targets this slot
    std::vector<int16_t> funGlobal; ///< global slot -> proto index or -1
    /// A call through a value that is not one known function was seen.
    bool calleesUnknown = false;

    void joinParam(size_t p, size_t j, const AVal &v)
    {
        if (p < params.size() && j < params[p].size())
            params[p][j].joinWith(v);
    }

    void joinRet(size_t p, const AVal &v)
    {
        if (p < ret.size())
            ret[p].joinWith(v);
    }

    void recordStore(size_t g, const AVal &v)
    {
        if (g >= store.size())
            return;
        store[g].joinWith(v);
        stored[g] = 1;
    }

    /** Fact for a global read at an arbitrary program point. */
    AVal fallback(size_t g) const
    {
        if (g >= store.size())
            return AVal::of(top);
        const int16_t fp = funGlobal[g];
        if (fp >= 0 && !stored[g])
            return AVal::fun(fp);
        AVal v = store[g];
        // Function globals are initialized before the main chunk runs;
        // everything else reads as nil until its first write.
        v.joinWith(fp >= 0 ? AVal::fun(fp) : AVal::of(kNil));
        return v;
    }

    /** Exact fact at the top of the main chunk (runs once, first). */
    AVal mainEntry(size_t g) const
    {
        if (g >= store.size())
            return AVal::of(top);
        const int16_t fp = funGlobal[g];
        return fp >= 0 ? AVal::fun(fp) : AVal::of(kNil);
    }
};

bool
operator==(const Summaries &a, const Summaries &b)
{
    return a.params == b.params && a.ret == b.ret && a.store == b.store &&
           a.stored == b.stored && a.calleesUnknown == b.calleesUnknown;
}

Summaries
initSummaries(size_t nprotos, const std::vector<unsigned> &nparams,
              size_t nglobals,
              const std::vector<std::pair<unsigned, unsigned>> &funGlobals,
              uint8_t top)
{
    Summaries s;
    s.top = top;
    s.params.resize(nprotos);
    for (size_t p = 0; p < nprotos; ++p)
        s.params[p].resize(nparams[p]);
    s.ret.resize(nprotos);
    s.store.resize(nglobals);
    s.stored.assign(nglobals, 0);
    s.funGlobal.assign(nglobals, -1);
    for (const auto &[slot, proto] : funGlobals)
        if (slot < nglobals)
            s.funGlobal[slot] = static_cast<int16_t>(proto);
    return s;
}

void
poisonParams(Summaries &s)
{
    for (auto &ps : s.params)
        for (AVal &v : ps)
            v.joinWith(AVal::of(s.top));
}

void
widenAll(Summaries &s)
{
    poisonParams(s);
    for (AVal &v : s.ret)
        v.joinWith(AVal::of(s.top));
    for (AVal &v : s.store)
        v.joinWith(AVal::of(s.top));
}

AVal
builtinResult(unsigned id, uint8_t top)
{
    // Both engines use the same builtin numbering (Print=0, Sqrt,
    // Floor, Substr, StrChar, Abs).
    switch (id) {
      case 1: return AVal::of(kFlt);            // sqrt
      case 2:
        // floor: MiniLua always re-tags the result as a 64-bit int,
        // but MiniJS only boxes an Int when the result fits int32 and
        // keeps the double otherwise (JsVm::hcFloor) — so its static
        // kind never narrows past "numeric".
        return AVal::of(top == kTopLua ? kInt : kNumeric);
      case 3: case 4: return AVal::of(kStr);    // substr, strchar
      case 5: return AVal::of(kNumeric);        // abs
      default: return AVal::of(top);            // print, unknown
    }
}

// ---------------------------------------------------------------------
// MiniLua (register machine)
// ---------------------------------------------------------------------

class LuaInfer {
  public:
    LuaInfer(const vm::lua::Module &m, Summaries &s) : m_(m), s_(s) {}

    void analyze(size_t protoIdx, ProtoFacts *facts);

  private:
    using Op = vm::lua::Op;

    const vm::lua::Proto &proto() const { return m_.protos[p_]; }

    AVal get(const State &st, unsigned r) const
    {
        return r < st.regs.size() ? st.regs[r] : AVal::of(s_.top);
    }
    void set(State &st, unsigned r, const AVal &v) const
    {
        if (r < st.regs.size())
            st.regs[r] = v;
    }
    void narrowReg(State &st, unsigned r, uint8_t mask) const
    {
        if (r < st.regs.size())
            st.regs[r].narrow(mask);
    }
    void narrowRk(State &st, unsigned rk, uint8_t mask) const
    {
        if (!(rk & vm::lua::kRkConstFlag))
            narrowReg(st, rk & 0xFF, mask);
    }

    AVal constFact(unsigned idx) const
    {
        if (idx >= proto().consts.size())
            return AVal::of(s_.top);
        switch (proto().consts[idx].kind) {
          case vm::lua::Const::Kind::Int: return AVal::of(kInt);
          case vm::lua::Const::Kind::Flt: return AVal::of(kFlt);
          case vm::lua::Const::Kind::Str: return AVal::of(kStr);
        }
        return AVal::of(s_.top);
    }

    AVal rkFact(const State &st, unsigned rk) const
    {
        if (rk & vm::lua::kRkConstFlag)
            return constFact(rk & 0xFF);
        return get(st, rk & 0xFF);
    }

    void applyCall(State &st, unsigned a, unsigned argc);
    void applyForPrep(State &st, unsigned a);
    void applyInstr(State &st, size_t pc);
    std::vector<EdgeDesc> edgesOf(size_t pc) const;

    const vm::lua::Module &m_;
    Summaries &s_;
    size_t p_ = 0;
};

void
LuaInfer::applyCall(State &st, unsigned a, unsigned argc)
{
    const AVal f = get(st, a);
    AVal res; // bottom: an impossible call never completes
    if (f.bits == kFun && f.funProto >= 0 &&
        static_cast<size_t>(f.funProto) < m_.protos.size()) {
        const auto &callee = m_.protos[static_cast<size_t>(f.funProto)];
        for (unsigned j = 0; j < callee.nparams; ++j)
            s_.joinParam(static_cast<size_t>(f.funProto), j,
                         j < argc ? get(st, a + 1 + j)
                                  : AVal::of(s_.top));
        res = s_.ret[static_cast<size_t>(f.funProto)];
    } else if (!f.isBottom()) {
        s_.calleesUnknown = true;
        res = AVal::of(s_.top);
    }
    // The callee may write any global.
    for (size_t g = 0; g < st.globals.size(); ++g)
        st.globals[g] = s_.fallback(g);
    set(st, a, res);
}

void
LuaInfer::applyForPrep(State &st, unsigned a)
{
    const AVal v0 = get(st, a);
    const AVal v1 = get(st, a + 1);
    const AVal v2 = get(st, a + 2);
    const auto pureInt = [](const AVal &v) {
        return !v.isBottom() && subsetOf(v.bits, kInt);
    };
    if (pureInt(v0) && pureInt(v1) && pureInt(v2))
        return; // provably all-int loop: tags unchanged
    // Otherwise the runtime either keeps all three as ints or converts
    // all three to floats (non-numbers abort the program).
    const bool allCouldInt =
        (v0.bits & kInt) && (v1.bits & kInt) && (v2.bits & kInt);
    for (unsigned r = a; r < a + 3; ++r) {
        const uint8_t keep = allCouldInt ? (get(st, r).bits & kInt) : 0;
        set(st, r, AVal::of(static_cast<uint8_t>(keep | kFlt)));
    }
}

void
LuaInfer::applyInstr(State &st, size_t pc)
{
    const uint32_t w = proto().code[pc];
    const auto op = static_cast<Op>(w & 0x3F);
    const unsigned a = (w >> 6) & 0xFF;
    const unsigned b = (w >> 14) & 0x1FF;
    const unsigned c = (w >> 23) & 0x1FF;
    switch (op) {
      case Op::MOVE:
        set(st, a, get(st, b & 0xFF));
        break;
      case Op::LOADK:
        set(st, a, constFact(b));
        break;
      case Op::LOADNIL:
        set(st, a, AVal::of(kNil));
        break;
      case Op::LOADBOOL:
        set(st, a, AVal::of(kBool));
        break;
      case Op::GETGLOBAL:
        set(st, a, b < st.globals.size() ? st.globals[b]
                                         : AVal::of(s_.top));
        break;
      case Op::SETGLOBAL: {
        const AVal v = get(st, a);
        if (b < st.globals.size())
            st.globals[b] = v;
        s_.recordStore(b, v);
        break;
      }
      case Op::GETTABLE:
        narrowReg(st, b & 0xFF, kTab); // survived the table-tag guard
        set(st, a, AVal::of(s_.top));
        break;
      case Op::SETTABLE:
        narrowReg(st, a, kTab);
        break;
      case Op::NEWTABLE:
        set(st, a, AVal::of(kTab));
        break;
      case Op::ADD:
      case Op::SUB:
      case Op::MUL:
      case Op::IDIV:
      case Op::MOD: {
        const AVal vb = rkFact(st, b);
        const AVal vc = rkFact(st, c);
        uint8_t res = 0;
        if ((vb.bits & kInt) && (vc.bits & kInt))
            res |= kInt; // int op int stays int (64-bit wrap)
        if ((vb.bits & kFlt) || (vc.bits & kFlt))
            res |= kFlt; // any float operand makes a float
        narrowRk(st, b, kNumeric);
        narrowRk(st, c, kNumeric);
        set(st, a, AVal::of(res));
        break;
      }
      case Op::DIV:
        narrowRk(st, b, kNumeric);
        narrowRk(st, c, kNumeric);
        set(st, a, AVal::of(kFlt));
        break;
      case Op::UNM: {
        const uint8_t res = get(st, b & 0xFF).bits & kNumeric;
        narrowReg(st, b & 0xFF, kNumeric);
        set(st, a, AVal::of(res));
        break;
      }
      case Op::NOT:
        set(st, a, AVal::of(kBool));
        break;
      case Op::LEN:
        narrowReg(st, b & 0xFF, kStr | kTab);
        set(st, a, AVal::of(kInt));
        break;
      case Op::CONCAT:
        set(st, a, AVal::of(kStr));
        break;
      case Op::EQ:
      case Op::NE:
        set(st, a, AVal::of(kBool));
        break;
      case Op::LT:
      case Op::LE:
        narrowRk(st, b, kNumeric | kStr);
        narrowRk(st, c, kNumeric | kStr);
        set(st, a, AVal::of(kBool));
        break;
      case Op::CALL:
        applyCall(st, a, b);
        break;
      case Op::RETURN:
        s_.joinRet(p_, b != 0 ? get(st, a) : AVal::of(kNil));
        break;
      case Op::FORPREP:
        applyForPrep(st, a);
        break;
      case Op::FORLOOP:
        set(st, a, AVal::of(get(st, a).bits & kNumeric));
        break;
      case Op::BUILTIN:
        set(st, a, builtinResult(b, s_.top));
        break;
      // Guard-elided forms: conservative transfer used when the
      // elision verifier re-infers over already-rewritten bytecode.
      case Op::ADD_II:
      case Op::SUB_II:
      case Op::MUL_II:
        set(st, a, AVal::of(kInt));
        break;
      case Op::ADD_FF:
      case Op::SUB_FF:
      case Op::MUL_FF:
        set(st, a, AVal::of(kFlt));
        break;
      case Op::GETTAB_E:
        set(st, a, AVal::of(s_.top));
        break;
      case Op::SETTAB_E:
      case Op::JMP:
      case Op::JMPF:
      case Op::JMPT:
      case Op::NOP:
      default:
        break;
    }
}

std::vector<EdgeDesc>
LuaInfer::edgesOf(size_t pc) const
{
    const uint32_t w = proto().code[pc];
    const auto op = static_cast<Op>(w & 0x3F);
    const unsigned a = (w >> 6) & 0xFF;
    const int32_t sbx = static_cast<int32_t>(w) >> 14;
    const size_t fall = pc + 1;
    const auto target = static_cast<size_t>(
        static_cast<int64_t>(pc) + 1 + sbx);
    constexpr uint8_t kFalsyMask = kNil | kBool;
    constexpr uint8_t kTruthyMask =
        kTopLua & static_cast<uint8_t>(~kNil); // true is still a bool

    std::vector<EdgeDesc> es;
    switch (op) {
      case Op::JMP:
      case Op::FORPREP:
        es.push_back({target, {}});
        break;
      case Op::JMPF:
        es.push_back({target, {narrowAct(a, kFalsyMask)}});
        es.push_back({fall, {narrowAct(a, kTruthyMask)}});
        break;
      case Op::JMPT:
        es.push_back({target, {narrowAct(a, kTruthyMask)}});
        es.push_back({fall, {narrowAct(a, kFalsyMask)}});
        break;
      case Op::FORLOOP:
        // The user loop variable is only written when the loop
        // continues (the back edge).
        es.push_back({target, {copyAct(a + 3, a)}});
        es.push_back({fall, {}});
        break;
      case Op::RETURN:
        break;
      default:
        es.push_back({fall, {}});
        break;
    }
    return es;
}

void
LuaInfer::analyze(size_t protoIdx, ProtoFacts *facts)
{
    p_ = protoIdx;
    const auto &pr = proto();
    const size_t n = pr.code.size();
    if (facts) {
        facts->reachable.assign(n, 0);
        facts->regs.assign(n, {});
        facts->stack.assign(n, {});
        facts->bailed = false;
    }
    if (n == 0)
        return;

    Bc bc = buildBc(n, [this](size_t pc, const std::vector<char> *) {
        return edgesOf(pc);
    });

    State entry;
    entry.seen = true;
    entry.regs.assign(pr.nregs, AVal::of(s_.top));
    for (unsigned i = 0; i < pr.nparams && i < pr.nregs; ++i)
        entry.regs[i] = s_.params[p_][i];
    entry.globals.resize(m_.globalNames.size());
    for (size_t g = 0; g < entry.globals.size(); ++g)
        entry.globals[g] = p_ == 0 ? s_.mainEntry(g) : s_.fallback(g);

    const auto transfer = [this, &bc](size_t b, const State &in) {
        State st = in;
        if (!st.seen)
            return st;
        const Block &blk = bc.cfg.blocks[b];
        if (blk.count == 0) {
            for (const Action &act : bc.acts[b])
                applyAction(st, act);
            return st;
        }
        for (size_t pc = blk.first; pc < blk.first + blk.count; ++pc)
            applyInstr(st, pc);
        return st;
    };
    const std::vector<State> in =
        analysis::solveForward(bc.cfg, entry, transfer);

    if (!facts)
        return;
    for (size_t b = 0; b < bc.cfg.blocks.size(); ++b) {
        const Block &blk = bc.cfg.blocks[b];
        if (blk.count == 0 || !in[b].seen)
            continue;
        State st = in[b];
        for (size_t pc = blk.first; pc < blk.first + blk.count; ++pc) {
            facts->reachable[pc] = 1;
            facts->regs[pc] = st.regs;
            applyInstr(st, pc);
        }
    }
}

// ---------------------------------------------------------------------
// MiniJS (stack machine)
// ---------------------------------------------------------------------

class JsInfer {
  public:
    JsInfer(const vm::js::Module &m, Summaries &s) : m_(m), s_(s) {}

    void analyze(size_t protoIdx, ProtoFacts *facts);

  private:
    using Op = vm::js::Op;

    const vm::js::Proto &proto() const { return m_.protos[p_]; }

    AVal get(const State &st, unsigned r) const
    {
        return r < st.regs.size() ? st.regs[r] : AVal::of(kTopJs);
    }
    void set(State &st, unsigned r, const AVal &v) const
    {
        if (r < st.regs.size())
            st.regs[r] = v;
    }
    void push(State &st, const AVal &v) const { st.stack.push_back(v); }
    AVal pop(State &st)
    {
        if (st.stack.empty()) {
            bail_ = true;
            return AVal::of(kTopJs);
        }
        const AVal v = st.stack.back();
        st.stack.pop_back();
        return v;
    }

    AVal constFact(unsigned idx) const
    {
        namespace js = vm::js;
        if (idx >= proto().consts.size())
            return AVal::of(kTopJs);
        const js::Const &k = proto().consts[idx];
        if (k.kind == js::Const::Kind::Str)
            return AVal::of(kStr);
        if ((k.bits & js::kNanPrefix) != js::kNanPrefix)
            return AVal::of(kFlt); // plain IEEE-754 double
        switch (static_cast<uint8_t>((k.bits >> 47) & 0xF)) {
          case js::kTagInt: return AVal::of(kInt);
          case js::kTagBool: return AVal::of(kBool);
          case js::kTagNull: return AVal::of(kNil);
          case js::kTagUndef: return AVal::of(kUndef);
          case js::kTagStr: return AVal::of(kStr);
          case js::kTagObj: return AVal::of(kTab);
          case js::kTagFun: return AVal::of(kFun);
          default: return AVal::of(kTopJs);
        }
    }

    void applyCall(State &st, unsigned argc);
    void applyInstr(State &st, size_t pc);
    std::vector<EdgeDesc> edgesOf(size_t pc,
                                  const std::vector<char> *leaders) const;

    const vm::js::Module &m_;
    Summaries &s_;
    size_t p_ = 0;
    bool bail_ = false;
};

void
JsInfer::applyCall(State &st, unsigned argc)
{
    std::vector<AVal> args(argc);
    for (size_t j = argc; j-- > 0;)
        args[j] = pop(st);
    const AVal f = pop(st);
    AVal res; // bottom: an impossible call never completes
    if (f.bits == kFun && f.funProto >= 0 &&
        static_cast<size_t>(f.funProto) < m_.protos.size()) {
        const auto &callee = m_.protos[static_cast<size_t>(f.funProto)];
        for (unsigned j = 0; j < callee.nparams; ++j)
            s_.joinParam(static_cast<size_t>(f.funProto), j,
                         j < args.size() ? args[j] : AVal::of(kTopJs));
        res = s_.ret[static_cast<size_t>(f.funProto)];
    } else if (!f.isBottom()) {
        s_.calleesUnknown = true;
        res = AVal::of(kTopJs);
    }
    for (size_t g = 0; g < st.globals.size(); ++g)
        st.globals[g] = s_.fallback(g);
    push(st, res);
}

void
JsInfer::applyInstr(State &st, size_t pc)
{
    const uint32_t w = proto().code[pc];
    const auto op = static_cast<Op>(w & 0xFF);
    const uint32_t uimm = w >> 8;
    switch (op) {
      case Op::PUSHK:
        push(st, constFact(uimm));
        break;
      case Op::PUSHINT:
        push(st, AVal::of(kInt));
        break;
      case Op::PUSHUNDEF:
        push(st, AVal::of(kUndef));
        break;
      case Op::DUP: {
        const AVal v = pop(st);
        push(st, v);
        push(st, v);
        break;
      }
      case Op::POP:
        pop(st);
        break;
      case Op::GETLOCAL:
        push(st, get(st, uimm));
        break;
      case Op::SETLOCAL:
        set(st, uimm, pop(st));
        break;
      case Op::GETGLOBAL:
        push(st, uimm < st.globals.size() ? st.globals[uimm]
                                          : AVal::of(kTopJs));
        break;
      case Op::SETGLOBAL: {
        const AVal v = pop(st);
        if (uimm < st.globals.size())
            st.globals[uimm] = v;
        s_.recordStore(uimm, v);
        break;
      }
      case Op::GETELEM:
        pop(st);
        pop(st);
        push(st, AVal::of(kTopJs));
        break;
      case Op::SETELEM:
        pop(st);
        pop(st);
        pop(st);
        break;
      case Op::NEWARRAY:
        push(st, AVal::of(kTab));
        break;
      case Op::ADD:
      case Op::SUB:
      case Op::MUL:
      case Op::IDIV:
      case Op::MOD: {
        const AVal y = pop(st);
        const AVal x = pop(st);
        uint8_t res = 0;
        if ((x.bits & kInt) && (y.bits & kInt))
            res |= kInt | kFlt; // int32 overflow promotes to double
        if ((x.bits & kFlt) || (y.bits & kFlt))
            res |= kFlt;
        push(st, AVal::of(res));
        break;
      }
      case Op::DIV:
        pop(st);
        pop(st);
        push(st, AVal::of(kFlt));
        break;
      case Op::NEG: {
        const AVal v = pop(st);
        uint8_t res = 0;
        if (v.bits & kInt)
            res |= kInt | kFlt; // -INT32_MIN promotes
        if (v.bits & kFlt)
            res |= kFlt;
        push(st, AVal::of(res));
        break;
      }
      case Op::NOT:
        pop(st);
        push(st, AVal::of(kBool));
        break;
      case Op::LEN:
        pop(st);
        push(st, AVal::of(kInt));
        break;
      case Op::CONCAT:
        pop(st);
        pop(st);
        push(st, AVal::of(kStr));
        break;
      case Op::EQ:
      case Op::NE:
      case Op::LT:
      case Op::LE:
        pop(st);
        pop(st);
        push(st, AVal::of(kBool));
        break;
      case Op::JUMPF:
      case Op::JUMPT:
        pop(st); // narrowing happens on the out-edges
        break;
      case Op::CALL:
        applyCall(st, uimm);
        break;
      case Op::RETURN:
        s_.joinRet(p_, pop(st));
        break;
      case Op::BUILTIN: {
        const unsigned argc = (uimm >> 8) & 0xFF;
        for (unsigned j = 0; j < argc; ++j)
            pop(st);
        push(st, builtinResult(uimm & 0xFF, kTopJs));
        break;
      }
      // Guard-elided forms (conservative re-inference transfer).
      case Op::ADD_II:
      case Op::SUB_II:
      case Op::MUL_II:
        pop(st);
        pop(st);
        push(st, AVal::of(kNumeric)); // the overflow check remains
        break;
      case Op::ADD_DD:
      case Op::SUB_DD:
      case Op::MUL_DD:
        pop(st);
        pop(st);
        push(st, AVal::of(kFlt));
        break;
      case Op::GETELEM_E:
        pop(st);
        pop(st);
        push(st, AVal::of(kTopJs));
        break;
      case Op::SETELEM_E:
        pop(st);
        pop(st);
        pop(st);
        break;
      case Op::JUMP:
      case Op::NOP:
      default:
        break;
    }
}

std::vector<EdgeDesc>
JsInfer::edgesOf(size_t pc, const std::vector<char> *leaders) const
{
    const auto &code = proto().code;
    const uint32_t w = code[pc];
    const auto op = static_cast<Op>(w & 0xFF);
    const int32_t imm = static_cast<int32_t>(w) >> 8;
    const size_t fall = pc + 1;
    const auto target = static_cast<size_t>(
        static_cast<int64_t>(pc) + 1 + imm);

    // Occurrence peephole: `GETLOCAL k; JUMPF/T` narrows local k on
    // the out-edges -- but only when nothing can jump between the
    // load and the branch (the branch is not itself a leader).
    int cond = -1;
    if ((op == Op::JUMPF || op == Op::JUMPT) && pc > 0 && leaders &&
        !(*leaders)[pc] &&
        static_cast<Op>(code[pc - 1] & 0xFF) == Op::GETLOCAL)
        cond = static_cast<int>(code[pc - 1] >> 8);

    // JS falsiness spans types: null/undef always falsy, obj/fun
    // always truthy; bool/int/flt/str falsiness is value-dependent.
    constexpr uint8_t kFalsyMask =
        kTopJs & static_cast<uint8_t>(~(kTab | kFun));
    constexpr uint8_t kTruthyMask =
        kTopJs & static_cast<uint8_t>(~(kNil | kUndef));

    std::vector<EdgeDesc> es;
    switch (op) {
      case Op::JUMP:
        es.push_back({target, {}});
        break;
      case Op::JUMPF:
        es.push_back({target, {}});
        es.push_back({fall, {}});
        if (cond >= 0) {
            es[0].acts.push_back(narrowAct(cond, kFalsyMask));
            es[1].acts.push_back(narrowAct(cond, kTruthyMask));
        }
        break;
      case Op::JUMPT:
        es.push_back({target, {}});
        es.push_back({fall, {}});
        if (cond >= 0) {
            es[0].acts.push_back(narrowAct(cond, kTruthyMask));
            es[1].acts.push_back(narrowAct(cond, kFalsyMask));
        }
        break;
      case Op::RETURN:
        break;
      default:
        es.push_back({fall, {}});
        break;
    }
    return es;
}

void
JsInfer::analyze(size_t protoIdx, ProtoFacts *facts)
{
    p_ = protoIdx;
    bail_ = false;
    const auto &pr = proto();
    const size_t n = pr.code.size();
    if (facts) {
        facts->reachable.assign(n, 0);
        facts->regs.assign(n, {});
        facts->stack.assign(n, {});
        facts->bailed = false;
    }
    if (n == 0)
        return;

    Bc bc = buildBc(n,
                    [this](size_t pc, const std::vector<char> *leaders) {
                        return edgesOf(pc, leaders);
                    });

    State entry;
    entry.seen = true;
    entry.regs.assign(pr.nlocals, AVal::of(kTopJs));
    for (unsigned i = 0; i < pr.nparams && i < pr.nlocals; ++i)
        entry.regs[i] = s_.params[p_][i];
    entry.globals.resize(m_.globalNames.size());
    for (size_t g = 0; g < entry.globals.size(); ++g)
        entry.globals[g] = p_ == 0 ? s_.mainEntry(g) : s_.fallback(g);

    const auto transfer = [this, &bc](size_t b, const State &in) {
        State st = in;
        if (!st.seen)
            return st;
        const Block &blk = bc.cfg.blocks[b];
        if (blk.count == 0) {
            for (const Action &act : bc.acts[b])
                applyAction(st, act);
            return st;
        }
        for (size_t pc = blk.first; pc < blk.first + blk.count; ++pc)
            applyInstr(st, pc);
        return st;
    };
    const std::vector<State> in =
        analysis::solveForward(bc.cfg, entry, transfer);

    if (!facts)
        return;
    bool bailed = bail_;
    for (const State &st : in)
        bailed |= st.stackBail;
    facts->bailed = bailed;
    if (bailed)
        return; // no usable facts for this proto
    for (size_t b = 0; b < bc.cfg.blocks.size(); ++b) {
        const Block &blk = bc.cfg.blocks[b];
        if (blk.count == 0 || !in[b].seen)
            continue;
        State st = in[b];
        for (size_t pc = blk.first; pc < blk.first + blk.count; ++pc) {
            facts->reachable[pc] = 1;
            facts->regs[pc] = st.regs;
            facts->stack[pc] = st.stack;
            applyInstr(st, pc);
        }
    }
}

// ---------------------------------------------------------------------
// Interprocedural driver
// ---------------------------------------------------------------------

constexpr int kMaxIterations = 100;

template <typename InferT, typename ModuleT>
ModuleFacts
runFixpoint(const ModuleT &m, uint8_t top)
{
    std::vector<unsigned> nparams;
    nparams.reserve(m.protos.size());
    for (const auto &p : m.protos)
        nparams.push_back(p.nparams);
    Summaries s = initSummaries(m.protos.size(), nparams,
                                m.globalNames.size(), m.functionGlobals,
                                top);

    ModuleFacts out;
    out.protos.resize(m.protos.size());
    for (int iter = 0;; ++iter) {
        const Summaries before = s;
        for (size_t p = 0; p < m.protos.size(); ++p)
            InferT(m, s).analyze(p, nullptr);
        if (s.calleesUnknown)
            poisonParams(s);
        if (s == before)
            break;
        if (iter >= kMaxIterations) {
            widenAll(s);
            out.converged = false;
            break;
        }
    }
    for (size_t p = 0; p < m.protos.size(); ++p)
        InferT(m, s).analyze(p, &out.protos[p]);
    out.globals.resize(m.globalNames.size());
    for (size_t g = 0; g < out.globals.size(); ++g)
        out.globals[g] = s.fallback(g);
    return out;
}

} // namespace

std::string
describe(const AVal &v, uint8_t top)
{
    if (v.bits == 0)
        return "none";
    if (v.bits == top)
        return "any";
    if (v.bits == kFun && v.funProto >= 0)
        return "fun#" + std::to_string(v.funProto);
    static constexpr std::pair<uint8_t, const char *> kNames[] = {
        {kNil, "nil"},  {kBool, "bool"}, {kInt, "int"},
        {kFlt, "flt"},  {kStr, "str"},   {kTab, "tab"},
        {kFun, "fun"},  {kUndef, "undef"},
    };
    std::string out;
    unsigned count = 0;
    for (const auto &[bit, name] : kNames) {
        if (!(v.bits & bit))
            continue;
        if (count++)
            out += '|';
        out += name;
    }
    return count > 1 ? "{" + out + "}" : out;
}

ModuleFacts
inferLua(const vm::lua::Module &m)
{
    return runFixpoint<LuaInfer>(m, kTopLua);
}

ModuleFacts
inferJs(const vm::js::Module &m)
{
    return runFixpoint<JsInfer>(m, kTopJs);
}

} // namespace tarch::analysis::typeinf
