/**
 * @file
 * AST for MiniScript, the Lua-flavoured source language shared by both
 * guest VMs (the register-based MiniLua VM and the stack-based MiniJS
 * VM).  The eleven paper benchmarks (Table 7) are written once in
 * MiniScript and compiled by each VM's bytecode compiler.
 *
 * Language summary:
 *   - top-level function definitions and top-level statements (the chunk)
 *   - local/global variables, assignment, indexed assignment
 *   - if/elseif/else, while, numeric for, break, return
 *   - int and float numbers (Lua 5.3 semantics: '/' is float division,
 *     '//' integer, '%' modulo), strings, booleans, nil
 *   - tables: {} constructor, t[k] indexing with int or string keys
 *   - operators: or and | == ~= < <= > >= | + - | * / // % | not - # | ..
 *   - built-in calls: print, sqrt, floor, abs, substr, strchar, type
 */

#ifndef TARCH_SCRIPT_AST_H
#define TARCH_SCRIPT_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tarch::script {

enum class BinOp : uint8_t {
    Add, Sub, Mul, Div, IDiv, Mod,
    Eq, Ne, Lt, Le, Gt, Ge,
    And, Or,
    Concat,
};

enum class UnOp : uint8_t { Neg, Not, Len };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
    enum class Kind : uint8_t {
        Nil, True, False, Int, Float, Str,
        Var,        ///< name
        Index,      ///< lhs[index]
        Call,       ///< name(args) — user function or builtin
        Binary,
        Unary,
        TableCtor,  ///< { items... } (positional only)
    };

    Kind kind;
    int line = 0;

    int64_t ival = 0;
    double fval = 0.0;
    std::string name;        ///< Var / Call / Str body
    BinOp binop = BinOp::Add;
    UnOp unop = UnOp::Neg;
    ExprPtr lhs, rhs;        ///< Binary, Index (lhs=table, rhs=key), Unary(lhs)
    std::vector<ExprPtr> args;  ///< Call arguments / TableCtor items
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

struct Stmt {
    enum class Kind : uint8_t {
        Local,       ///< local name = expr
        Assign,      ///< name = expr
        IndexAssign, ///< target[key] = expr
        If,
        While,
        NumFor,      ///< for name = init, limit[, step] do ... end
        Return,
        Break,
        ExprStmt,    ///< call expression as a statement
    };

    Kind kind;
    int line = 0;

    std::string name;             ///< Local/Assign/NumFor variable
    ExprPtr expr;                 ///< value / condition / return value
    ExprPtr key, value;           ///< IndexAssign (expr=table)
    ExprPtr limit, step;          ///< NumFor
    Block body;                   ///< If-then / While / NumFor
    std::vector<std::pair<ExprPtr, Block>> elifs;  ///< If: elseif arms
    Block elseBody;               ///< If: else arm
};

struct FunctionDecl {
    std::string name;
    std::vector<std::string> params;
    Block body;
    int line = 0;
};

/** A parsed script: functions plus the top-level chunk. */
struct Chunk {
    std::vector<FunctionDecl> functions;
    Block main;
};

} // namespace tarch::script

#endif // TARCH_SCRIPT_AST_H
