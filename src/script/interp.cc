#include "script/interp.h"

#include <cmath>

#include "common/log.h"
#include "common/strutil.h"

namespace tarch::script {

namespace {

using Kind = RefValue::Kind;

RefValue
nil()
{
    return {};
}

RefValue
boolean(bool b)
{
    RefValue v;
    v.kind = Kind::Bool;
    v.i = b ? 1 : 0;
    return v;
}

RefValue
integer(int64_t i)
{
    RefValue v;
    v.kind = Kind::Int;
    v.i = i;
    return v;
}

RefValue
flt(double f)
{
    RefValue v;
    v.kind = Kind::Flt;
    v.f = f;
    return v;
}

RefValue
str(std::string s)
{
    RefValue v;
    v.kind = Kind::Str;
    v.s = std::move(s);
    return v;
}

/** Thrown by return statements; caught at call boundaries. */
struct ReturnSignal {
    RefValue value;
};

/** Thrown by break statements; caught at loop boundaries. */
struct BreakSignal {
};

class Interp
{
  public:
    Interp(const Chunk &chunk, NumberStyle style, uint64_t step_limit)
        : chunk_(chunk), style_(style), stepLimit_(step_limit)
    {
        for (size_t i = 0; i < chunk.functions.size(); ++i)
            functions_[chunk.functions[i].name] =
                static_cast<int>(i);
    }

    std::string
    run()
    {
        Scope scope;
        try {
            execBlock(chunk_.main, scope);
        } catch (const ReturnSignal &) {
        }
        return out_;
    }

  private:
    /** Lexically scoped locals: a stack of (name, value) frames. */
    struct Scope {
        std::vector<std::pair<std::string, RefValue>> vars;

        RefValue *
        find(const std::string &name)
        {
            for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
                if (it->first == name)
                    return &it->second;
            }
            return nullptr;
        }
    };

    [[noreturn]] void
    error(int line, const char *what) const
    {
        tarch_fatal("reference interp: line %d: %s", line, what);
    }

    void
    tick()
    {
        if (++steps_ > stepLimit_)
            tarch_fatal("reference interp: step limit exceeded");
    }

    bool
    truthy(const RefValue &v) const
    {
        switch (v.kind) {
          case Kind::Nil: return false;
          case Kind::Bool: return v.i != 0;
          case Kind::Int:
            return style_ == NumberStyle::Lua || v.i != 0;
          case Kind::Flt:
            return style_ == NumberStyle::Lua || v.f != 0.0;
          case Kind::Str:
            return style_ == NumberStyle::Lua || !v.s.empty();
          default:
            return true;
        }
    }

    double
    toDouble(const RefValue &v, int line) const
    {
        if (v.kind == Kind::Int)
            return static_cast<double>(v.i);
        if (v.kind == Kind::Flt)
            return v.f;
        error(line, "number expected");
    }

    std::string
    numberText(const RefValue &v) const
    {
        if (v.kind == Kind::Int)
            return strformat("%lld", static_cast<long long>(v.i));
        std::string text = strformat("%.14g", v.f);
        if (style_ == NumberStyle::Lua &&
            text.find_first_of(".eEni") == std::string::npos)
            text += ".0";
        return text;
    }

    std::string
    valueText(const RefValue &v) const
    {
        switch (v.kind) {
          case Kind::Nil:
            return style_ == NumberStyle::Lua ? "nil" : "undefined";
          case Kind::Bool: return v.i ? "true" : "false";
          case Kind::Int:
          case Kind::Flt: return numberText(v);
          case Kind::Str: return v.s;
          case Kind::Table: return "<table>";
          case Kind::Fun: return "<function>";
        }
        return "?";
    }

    // ---- table access -------------------------------------------------

    static bool
    intKey(const RefValue &key, int64_t &out)
    {
        if (key.kind == Kind::Int) {
            out = key.i;
            return true;
        }
        if (key.kind == Kind::Flt && key.f == std::floor(key.f) &&
            std::abs(key.f) < 9.2e18) {
            out = static_cast<int64_t>(key.f);
            return true;
        }
        return false;
    }

    RefValue
    tableGet(const RefValue &table, const RefValue &key, int line) const
    {
        if (table.kind != Kind::Table)
            error(line, "indexing a non-table");
        int64_t ik;
        if (intKey(key, ik)) {
            const auto it = table.array->find(ik);
            return it == table.array->end() ? nil() : it->second;
        }
        if (key.kind == Kind::Str) {
            const auto it = table.hash->find(key.s);
            return it == table.hash->end() ? nil() : it->second;
        }
        error(line, "invalid table key");
    }

    void
    tableSet(RefValue &table, const RefValue &key, RefValue value,
             int line)
    {
        if (table.kind != Kind::Table)
            error(line, "indexing a non-table");
        int64_t ik;
        if (intKey(key, ik)) {
            (*table.array)[ik] = std::move(value);
            return;
        }
        if (key.kind == Kind::Str) {
            (*table.hash)[key.s] = std::move(value);
            return;
        }
        error(line, "invalid table key");
    }

    // ---- operators -----------------------------------------------------

    RefValue
    arith(BinOp op, const RefValue &a, const RefValue &b, int line) const
    {
        const bool both_int = a.kind == Kind::Int && b.kind == Kind::Int;
        switch (op) {
          case BinOp::Add:
            if (both_int)
                return integer(a.i + b.i);
            return flt(toDouble(a, line) + toDouble(b, line));
          case BinOp::Sub:
            if (both_int)
                return integer(a.i - b.i);
            return flt(toDouble(a, line) - toDouble(b, line));
          case BinOp::Mul:
            if (both_int)
                return integer(a.i * b.i);
            return flt(toDouble(a, line) * toDouble(b, line));
          case BinOp::Div:
            return flt(toDouble(a, line) / toDouble(b, line));
          case BinOp::IDiv: {
            if (both_int) {
                if (b.i == 0)
                    error(line, "integer division by zero");
                int64_t q = a.i / b.i;
                if ((a.i % b.i != 0) && ((a.i < 0) != (b.i < 0)))
                    --q;
                return integer(q);
            }
            return flt(
                std::floor(toDouble(a, line) / toDouble(b, line)));
          }
          case BinOp::Mod: {
            if (both_int) {
                if (b.i == 0)
                    error(line, "integer modulo by zero");
                int64_t r = a.i % b.i;
                if (r != 0 && ((r < 0) != (b.i < 0)))
                    r += b.i;
                return integer(r);
            }
            const double x = toDouble(a, line);
            const double y = toDouble(b, line);
            double r = std::fmod(x, y);
            if (r != 0.0 && ((r < 0.0) != (y < 0.0)))
                r += y;
            return flt(r);
          }
          default:
            error(line, "bad arithmetic operator");
        }
    }

    RefValue
    comparison(BinOp op, const RefValue &a, const RefValue &b,
               int line) const
    {
        const bool numeric =
            (a.kind == Kind::Int || a.kind == Kind::Flt) &&
            (b.kind == Kind::Int || b.kind == Kind::Flt);
        if (op == BinOp::Eq || op == BinOp::Ne) {
            bool eq;
            if (numeric) {
                if (a.kind == Kind::Int && b.kind == Kind::Int)
                    eq = a.i == b.i;
                else
                    eq = toDouble(a, line) == toDouble(b, line);
            } else if (a.kind != b.kind) {
                eq = false;
            } else {
                switch (a.kind) {
                  case Kind::Nil: eq = true; break;
                  case Kind::Bool: eq = a.i == b.i; break;
                  case Kind::Str: eq = a.s == b.s; break;
                  case Kind::Table: eq = a.array == b.array; break;
                  case Kind::Fun: eq = a.fun == b.fun; break;
                  default: eq = false;
                }
            }
            return boolean(op == BinOp::Eq ? eq : !eq);
        }
        if (!numeric)
            error(line, "comparing non-numbers");
        bool result;
        if (a.kind == Kind::Int && b.kind == Kind::Int) {
            result = op == BinOp::Lt   ? a.i < b.i
                     : op == BinOp::Le ? a.i <= b.i
                     : op == BinOp::Gt ? a.i > b.i
                                       : a.i >= b.i;
        } else {
            const double x = toDouble(a, line);
            const double y = toDouble(b, line);
            result = op == BinOp::Lt   ? x < y
                     : op == BinOp::Le ? x <= y
                     : op == BinOp::Gt ? x > y
                                       : x >= y;
        }
        return boolean(result);
    }

    // ---- evaluation ----------------------------------------------------

    RefValue
    eval(const Expr &e, Scope &scope)
    {
        tick();
        switch (e.kind) {
          case Expr::Kind::Nil: return nil();
          case Expr::Kind::True: return boolean(true);
          case Expr::Kind::False: return boolean(false);
          case Expr::Kind::Int: return integer(e.ival);
          case Expr::Kind::Float: return flt(e.fval);
          case Expr::Kind::Str: return str(e.name);
          case Expr::Kind::Var: {
            if (RefValue *local = scope.find(e.name))
                return *local;
            const auto fn = functions_.find(e.name);
            if (fn != functions_.end()) {
                RefValue v;
                v.kind = Kind::Fun;
                v.fun = fn->second;
                return v;
            }
            const auto global = globals_.find(e.name);
            return global == globals_.end() ? nil() : global->second;
          }
          case Expr::Kind::Index: {
            const RefValue table = eval(*e.lhs, scope);
            const RefValue key = eval(*e.rhs, scope);
            return tableGet(table, key, e.line);
          }
          case Expr::Kind::Call: return call(e, scope);
          case Expr::Kind::TableCtor: {
            RefValue v;
            v.kind = Kind::Table;
            v.array = std::make_shared<std::map<int64_t, RefValue>>();
            v.hash =
                std::make_shared<std::map<std::string, RefValue>>();
            for (size_t i = 0; i < e.args.size(); ++i)
                (*v.array)[static_cast<int64_t>(i + 1)] =
                    eval(*e.args[i], scope);
            return v;
          }
          case Expr::Kind::Unary: {
            const RefValue v = eval(*e.lhs, scope);
            switch (e.unop) {
              case UnOp::Neg:
                if (v.kind == Kind::Int)
                    return integer(-v.i);
                return flt(-toDouble(v, e.line));
              case UnOp::Not:
                return boolean(!truthy(v));
              case UnOp::Len:
                if (v.kind == Kind::Str)
                    return integer(
                        static_cast<int64_t>(v.s.size()));
                if (v.kind == Kind::Table) {
                    int64_t max_key = 0;
                    for (const auto &[k, val] : *v.array) {
                        if (k > max_key && val.kind != Kind::Nil)
                            max_key = k;
                    }
                    return integer(max_key);
                }
                error(e.line, "# on a non-sequence");
            }
            error(e.line, "bad unary operator");
          }
          case Expr::Kind::Binary: {
            if (e.binop == BinOp::And || e.binop == BinOp::Or) {
                RefValue lhs = eval(*e.lhs, scope);
                const bool take_rhs =
                    e.binop == BinOp::And ? truthy(lhs) : !truthy(lhs);
                return take_rhs ? eval(*e.rhs, scope) : lhs;
            }
            const RefValue a = eval(*e.lhs, scope);
            const RefValue b = eval(*e.rhs, scope);
            switch (e.binop) {
              case BinOp::Add:
              case BinOp::Sub:
              case BinOp::Mul:
              case BinOp::Div:
              case BinOp::IDiv:
              case BinOp::Mod:
                return arith(e.binop, a, b, e.line);
              case BinOp::Concat: {
                const auto text = [this, &e](const RefValue &v) {
                    if (v.kind == Kind::Str)
                        return v.s;
                    if (v.kind == Kind::Int || v.kind == Kind::Flt)
                        return numberText(v);
                    error(e.line, "concatenating a non-string");
                };
                return str(text(a) + text(b));
              }
              default:
                return comparison(e.binop, a, b, e.line);
            }
          }
        }
        error(e.line, "unsupported expression");
    }

    RefValue
    call(const Expr &e, Scope &scope)
    {
        std::vector<RefValue> args;
        for (const auto &arg : e.args)
            args.push_back(eval(*arg, scope));

        // Builtins.
        if (e.name == "print") {
            out_ += valueText(args.at(0));
            out_ += '\n';
            return nil();
        }
        if (e.name == "sqrt")
            return flt(std::sqrt(toDouble(args.at(0), e.line)));
        if (e.name == "floor") {
            if (args.at(0).kind == Kind::Int)
                return args[0];
            return integer(static_cast<int64_t>(
                std::floor(toDouble(args.at(0), e.line))));
        }
        if (e.name == "abs") {
            if (args.at(0).kind == Kind::Int)
                return integer(args[0].i < 0 ? -args[0].i : args[0].i);
            return flt(std::fabs(toDouble(args.at(0), e.line)));
        }
        if (e.name == "substr") {
            if (args.at(0).kind != Kind::Str)
                error(e.line, "substr on a non-string");
            const std::string &text = args[0].s;
            int64_t i = args.at(1).i;
            int64_t j = args.at(2).i;
            const int64_t len = static_cast<int64_t>(text.size());
            if (i < 0)
                i = len + i + 1;
            if (j < 0)
                j = len + j + 1;
            if (i < 1)
                i = 1;
            if (j > len)
                j = len;
            return str(i <= j ? text.substr(i - 1, j - i + 1) : "");
        }
        if (e.name == "strchar")
            return str(std::string(
                1, static_cast<char>(args.at(0).i)));

        const auto fn = functions_.find(e.name);
        if (fn == functions_.end())
            error(e.line, "call to unknown function");
        const FunctionDecl &decl = chunk_.functions[fn->second];
        if (decl.params.size() != args.size())
            error(e.line, "arity mismatch");
        Scope callee;
        for (size_t i = 0; i < args.size(); ++i)
            callee.vars.emplace_back(decl.params[i], std::move(args[i]));
        try {
            execBlock(decl.body, callee);
        } catch (ReturnSignal &ret) {
            return std::move(ret.value);
        }
        return nil();
    }

    void
    execBlock(const Block &body, Scope &scope)
    {
        const size_t mark = scope.vars.size();
        for (const auto &stmt : body)
            exec(*stmt, scope);
        scope.vars.resize(mark);
    }

    void
    exec(const Stmt &s, Scope &scope)
    {
        tick();
        switch (s.kind) {
          case Stmt::Kind::Local:
            scope.vars.emplace_back(s.name, eval(*s.expr, scope));
            return;
          case Stmt::Kind::Assign: {
            RefValue value = eval(*s.expr, scope);
            if (RefValue *local = scope.find(s.name)) {
                *local = std::move(value);
            } else {
                globals_[s.name] = std::move(value);
            }
            return;
          }
          case Stmt::Kind::IndexAssign: {
            RefValue table = eval(*s.expr, scope);
            const RefValue key = eval(*s.key, scope);
            RefValue value = eval(*s.value, scope);
            tableSet(table, key, std::move(value), s.line);
            return;
          }
          case Stmt::Kind::If: {
            if (truthy(eval(*s.expr, scope))) {
                execBlock(s.body, scope);
                return;
            }
            for (const auto &[cond, arm] : s.elifs) {
                if (truthy(eval(*cond, scope))) {
                    execBlock(arm, scope);
                    return;
                }
            }
            execBlock(s.elseBody, scope);
            return;
          }
          case Stmt::Kind::While:
            try {
                while (truthy(eval(*s.expr, scope)))
                    execBlock(s.body, scope);
            } catch (const BreakSignal &) {
            }
            return;
          case Stmt::Kind::NumFor:
            numFor(s, scope);
            return;
          case Stmt::Kind::Return: {
            ReturnSignal ret;
            if (s.expr)
                ret.value = eval(*s.expr, scope);
            throw ret;
          }
          case Stmt::Kind::Break:
            throw BreakSignal{};
          case Stmt::Kind::ExprStmt:
            eval(*s.expr, scope);
            return;
        }
    }

    void
    numFor(const Stmt &s, Scope &scope)
    {
        RefValue init = eval(*s.expr, scope);
        RefValue limit = eval(*s.limit, scope);
        RefValue step = s.step ? eval(*s.step, scope) : integer(1);
        const bool int_loop = init.kind == Kind::Int &&
                              limit.kind == Kind::Int &&
                              step.kind == Kind::Int;
        try {
            if (int_loop) {
                for (int64_t i = init.i;
                     step.i >= 0 ? i <= limit.i : i >= limit.i;
                     i += step.i) {
                    tick();
                    const size_t mark = scope.vars.size();
                    scope.vars.emplace_back(s.name, integer(i));
                    execBlock(s.body, scope);
                    scope.vars.resize(mark);
                }
            } else {
                const double lim = toDouble(limit, s.line);
                const double stp = toDouble(step, s.line);
                for (double i = toDouble(init, s.line);
                     stp >= 0 ? i <= lim : i >= lim; i += stp) {
                    tick();
                    const size_t mark = scope.vars.size();
                    scope.vars.emplace_back(s.name, flt(i));
                    execBlock(s.body, scope);
                    scope.vars.resize(mark);
                }
            }
        } catch (const BreakSignal &) {
        }
    }

    const Chunk &chunk_;
    NumberStyle style_;
    uint64_t stepLimit_;
    uint64_t steps_ = 0;
    std::string out_;
    std::map<std::string, RefValue> globals_;
    std::map<std::string, int> functions_;
};

} // namespace

std::string
interpret(const Chunk &chunk, NumberStyle style, uint64_t step_limit)
{
    return Interp(chunk, style, step_limit).run();
}

} // namespace tarch::script
