#include "script/parser.h"

#include "common/log.h"
#include "script/lexer.h"

namespace tarch::script {

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &source)
        : toks_(tokenize(source))
    {
    }

    Chunk
    run()
    {
        Chunk chunk;
        while (!at(Tok::Eof)) {
            if (at(Tok::Function)) {
                chunk.functions.push_back(functionDecl());
            } else {
                chunk.main.push_back(statement());
            }
        }
        return chunk;
    }

  private:
    const Token &cur() const { return toks_[pos_]; }
    bool at(Tok kind) const { return cur().kind == kind; }

    Token
    advance()
    {
        return toks_[pos_++];
    }

    bool
    accept(Tok kind)
    {
        if (!at(kind))
            return false;
        ++pos_;
        return true;
    }

    Token
    expect(Tok kind, const char *what)
    {
        if (!at(kind))
            tarch_fatal("line %d: expected %s", cur().line, what);
        return advance();
    }

    ExprPtr
    makeExpr(Expr::Kind kind)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = cur().line;
        return e;
    }

    FunctionDecl
    functionDecl()
    {
        FunctionDecl fn;
        fn.line = cur().line;
        expect(Tok::Function, "'function'");
        fn.name = expect(Tok::Name, "function name").text;
        expect(Tok::LParen, "'('");
        if (!at(Tok::RParen)) {
            do {
                fn.params.push_back(expect(Tok::Name, "parameter").text);
            } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "')'");
        fn.body = block();
        expect(Tok::End, "'end'");
        return fn;
    }

    /** Statements until a block-terminating keyword. */
    Block
    block()
    {
        Block body;
        while (!at(Tok::End) && !at(Tok::Else) && !at(Tok::Elseif) &&
               !at(Tok::Eof))
            body.push_back(statement());
        return body;
    }

    StmtPtr
    makeStmt(Stmt::Kind kind)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        s->line = cur().line;
        return s;
    }

    StmtPtr
    statement()
    {
        while (accept(Tok::Semi)) {
        }
        if (at(Tok::Local)) {
            auto s = makeStmt(Stmt::Kind::Local);
            advance();
            s->name = expect(Tok::Name, "local name").text;
            if (accept(Tok::Assign)) {
                s->expr = expression();
            } else {
                s->expr = makeExpr(Expr::Kind::Nil);
            }
            return s;
        }
        if (at(Tok::If)) {
            auto s = makeStmt(Stmt::Kind::If);
            advance();
            s->expr = expression();
            expect(Tok::Then, "'then'");
            s->body = block();
            while (at(Tok::Elseif)) {
                advance();
                ExprPtr cond = expression();
                expect(Tok::Then, "'then'");
                Block arm = block();
                s->elifs.emplace_back(std::move(cond), std::move(arm));
            }
            if (accept(Tok::Else))
                s->elseBody = block();
            expect(Tok::End, "'end'");
            return s;
        }
        if (at(Tok::While)) {
            auto s = makeStmt(Stmt::Kind::While);
            advance();
            s->expr = expression();
            expect(Tok::Do, "'do'");
            ++loopDepth_;
            s->body = block();
            --loopDepth_;
            expect(Tok::End, "'end'");
            return s;
        }
        if (at(Tok::For)) {
            auto s = makeStmt(Stmt::Kind::NumFor);
            advance();
            s->name = expect(Tok::Name, "loop variable").text;
            expect(Tok::Assign, "'='");
            s->expr = expression();
            expect(Tok::Comma, "','");
            s->limit = expression();
            if (accept(Tok::Comma))
                s->step = expression();
            expect(Tok::Do, "'do'");
            ++loopDepth_;
            s->body = block();
            --loopDepth_;
            expect(Tok::End, "'end'");
            return s;
        }
        if (at(Tok::Return)) {
            auto s = makeStmt(Stmt::Kind::Return);
            advance();
            if (!at(Tok::End) && !at(Tok::Else) && !at(Tok::Elseif) &&
                !at(Tok::Eof) && !at(Tok::Semi))
                s->expr = expression();
            return s;
        }
        if (at(Tok::Break)) {
            // Both guest compilers reject this; the reference front end
            // must agree or differential runs report phantom crashes.
            if (loopDepth_ == 0)
                tarch_fatal("line %d: 'break' outside a loop", cur().line);
            auto s = makeStmt(Stmt::Kind::Break);
            advance();
            return s;
        }
        // Assignment, indexed assignment, or a call statement.
        if (at(Tok::Name)) {
            const Token name = advance();
            if (at(Tok::Assign)) {
                auto s = makeStmt(Stmt::Kind::Assign);
                s->line = name.line;
                advance();
                s->name = name.text;
                s->expr = expression();
                return s;
            }
            if (at(Tok::LParen)) {
                auto s = makeStmt(Stmt::Kind::ExprStmt);
                s->line = name.line;
                s->expr = callExpr(name);
                return s;
            }
            if (at(Tok::LBracket)) {
                // One or more index steps; last one is the assign target.
                ExprPtr target = makeExpr(Expr::Kind::Var);
                target->name = name.text;
                target->line = name.line;
                ExprPtr key;
                for (;;) {
                    expect(Tok::LBracket, "'['");
                    key = expression();
                    expect(Tok::RBracket, "']'");
                    if (at(Tok::LBracket)) {
                        auto idx = makeExpr(Expr::Kind::Index);
                        idx->lhs = std::move(target);
                        idx->rhs = std::move(key);
                        target = std::move(idx);
                        continue;
                    }
                    break;
                }
                expect(Tok::Assign, "'='");
                auto s = makeStmt(Stmt::Kind::IndexAssign);
                s->line = name.line;
                s->expr = std::move(target);
                s->key = std::move(key);
                s->value = expression();
                return s;
            }
            tarch_fatal("line %d: unexpected statement starting with '%s'",
                        name.line, name.text.c_str());
        }
        tarch_fatal("line %d: unexpected token", cur().line);
    }

    // Precedence climbing: or < and < cmp < concat < addsub < muldiv <
    // unary < primary.
    ExprPtr
    expression()
    {
        return orExpr();
    }

    ExprPtr
    binchain(ExprPtr (Parser::*next)(),
             std::initializer_list<std::pair<Tok, BinOp>> ops)
    {
        ExprPtr lhs = (this->*next)();
        for (;;) {
            bool matched = false;
            for (const auto &[tok, op] : ops) {
                if (at(tok)) {
                    const int line = cur().line;
                    advance();
                    auto e = std::make_unique<Expr>();
                    e->kind = Expr::Kind::Binary;
                    e->line = line;
                    e->binop = op;
                    e->lhs = std::move(lhs);
                    e->rhs = (this->*next)();
                    lhs = std::move(e);
                    matched = true;
                    break;
                }
            }
            if (!matched)
                return lhs;
        }
    }

    ExprPtr
    orExpr()
    {
        return binchain(&Parser::andExpr, {{Tok::Or, BinOp::Or}});
    }

    ExprPtr
    andExpr()
    {
        return binchain(&Parser::cmpExpr, {{Tok::And, BinOp::And}});
    }

    ExprPtr
    cmpExpr()
    {
        return binchain(&Parser::concatExpr,
                        {{Tok::Eq, BinOp::Eq}, {Tok::Ne, BinOp::Ne},
                         {Tok::Lt, BinOp::Lt}, {Tok::Le, BinOp::Le},
                         {Tok::Gt, BinOp::Gt}, {Tok::Ge, BinOp::Ge}});
    }

    ExprPtr
    concatExpr()
    {
        // Left-associative is fine for our use (Lua's is right-assoc but
        // the result is identical for string building).
        return binchain(&Parser::addExpr, {{Tok::Concat, BinOp::Concat}});
    }

    ExprPtr
    addExpr()
    {
        return binchain(&Parser::mulExpr,
                        {{Tok::Plus, BinOp::Add}, {Tok::Minus, BinOp::Sub}});
    }

    ExprPtr
    mulExpr()
    {
        return binchain(&Parser::unaryExpr,
                        {{Tok::Star, BinOp::Mul},
                         {Tok::Slash, BinOp::Div},
                         {Tok::DSlash, BinOp::IDiv},
                         {Tok::Percent, BinOp::Mod}});
    }

    ExprPtr
    unaryExpr()
    {
        if (at(Tok::Minus) || at(Tok::Not) || at(Tok::Hash)) {
            auto e = makeExpr(Expr::Kind::Unary);
            e->unop = at(Tok::Minus) ? UnOp::Neg
                      : at(Tok::Not) ? UnOp::Not
                                     : UnOp::Len;
            advance();
            e->lhs = unaryExpr();
            return e;
        }
        return postfixExpr();
    }

    ExprPtr
    callExpr(const Token &name)
    {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::Call;
        e->line = name.line;
        e->name = name.text;
        expect(Tok::LParen, "'('");
        if (!at(Tok::RParen)) {
            do {
                e->args.push_back(expression());
            } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "')'");
        return e;
    }

    ExprPtr
    postfixExpr()
    {
        ExprPtr e = primaryExpr();
        while (at(Tok::LBracket)) {
            advance();
            auto idx = std::make_unique<Expr>();
            idx->kind = Expr::Kind::Index;
            idx->line = cur().line;
            idx->lhs = std::move(e);
            idx->rhs = expression();
            expect(Tok::RBracket, "']'");
            e = std::move(idx);
        }
        return e;
    }

    ExprPtr
    primaryExpr()
    {
        if (at(Tok::Int)) {
            auto e = makeExpr(Expr::Kind::Int);
            e->ival = advance().ival;
            return e;
        }
        if (at(Tok::Float)) {
            auto e = makeExpr(Expr::Kind::Float);
            e->fval = advance().fval;
            return e;
        }
        if (at(Tok::String)) {
            auto e = makeExpr(Expr::Kind::Str);
            e->name = advance().text;
            return e;
        }
        if (at(Tok::Nil)) { advance(); return makeExprAt(Expr::Kind::Nil); }
        if (at(Tok::True)) { advance(); return makeExprAt(Expr::Kind::True); }
        if (at(Tok::False)) {
            advance();
            return makeExprAt(Expr::Kind::False);
        }
        if (at(Tok::LBrace)) {
            auto e = makeExpr(Expr::Kind::TableCtor);
            advance();
            if (!at(Tok::RBrace)) {
                do {
                    e->args.push_back(expression());
                } while (accept(Tok::Comma));
            }
            expect(Tok::RBrace, "'}'");
            return e;
        }
        if (at(Tok::LParen)) {
            advance();
            ExprPtr e = expression();
            expect(Tok::RParen, "')'");
            return e;
        }
        if (at(Tok::Name)) {
            const Token name = advance();
            if (at(Tok::LParen))
                return callExpr(name);
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Var;
            e->line = name.line;
            e->name = name.text;
            return e;
        }
        tarch_fatal("line %d: unexpected token in expression", cur().line);
    }

    ExprPtr
    makeExprAt(Expr::Kind kind)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = cur().line;
        return e;
    }

    std::vector<Token> toks_;
    size_t pos_ = 0;
    int loopDepth_ = 0;
};

} // namespace

Chunk
parse(const std::string &source)
{
    return Parser(source).run();
}

} // namespace tarch::script
