/**
 * @file
 * MiniScript tokenizer.
 */

#ifndef TARCH_SCRIPT_LEXER_H
#define TARCH_SCRIPT_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace tarch::script {

enum class Tok : uint8_t {
    Eof, Name, Int, Float, String,
    // keywords
    And, Break, Do, Else, Elseif, End, False, For, Function, If, Local,
    Nil, Not, Or, Return, Then, True, While,
    // symbols
    Plus, Minus, Star, Slash, DSlash, Percent, Hash,
    Eq, Ne, Lt, Le, Gt, Ge, Assign,
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semi, Concat,
};

struct Token {
    Tok kind;
    int line;
    std::string text;   ///< Name / String body
    int64_t ival = 0;
    double fval = 0.0;
};

/**
 * Tokenize MiniScript source.  '--' starts a comment to end of line.
 * Throws FatalError with a line number on bad input.
 */
std::vector<Token> tokenize(const std::string &source);

} // namespace tarch::script

#endif // TARCH_SCRIPT_LEXER_H
