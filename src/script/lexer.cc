#include "script/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "common/log.h"

namespace tarch::script {

namespace {

const std::unordered_map<std::string, Tok> kKeywords = {
    {"and", Tok::And},     {"break", Tok::Break},   {"do", Tok::Do},
    {"else", Tok::Else},   {"elseif", Tok::Elseif}, {"end", Tok::End},
    {"false", Tok::False}, {"for", Tok::For},       {"function", Tok::Function},
    {"if", Tok::If},       {"local", Tok::Local},   {"nil", Tok::Nil},
    {"not", Tok::Not},     {"or", Tok::Or},         {"return", Tok::Return},
    {"then", Tok::Then},   {"true", Tok::True},     {"while", Tok::While},
};

} // namespace

std::vector<Token>
tokenize(const std::string &src)
{
    std::vector<Token> toks;
    size_t i = 0;
    int line = 1;
    const size_t n = src.size();
    auto push = [&](Tok kind) { toks.push_back({kind, line, "", 0, 0.0}); };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '-') {
            while (i < n && src[i] != '\n')
                ++i;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t j = i;
            while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                             src[j] == '_'))
                ++j;
            const std::string word = src.substr(i, j - i);
            const auto kw = kKeywords.find(word);
            if (kw != kKeywords.end()) {
                push(kw->second);
            } else {
                toks.push_back({Tok::Name, line, word, 0, 0.0});
            }
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t j = i;
            bool is_float = false;
            if (c == '0' && j + 1 < n && (src[j + 1] == 'x' || src[j + 1] == 'X')) {
                j += 2;
                while (j < n &&
                       std::isxdigit(static_cast<unsigned char>(src[j])))
                    ++j;
            } else {
                while (j < n &&
                       (std::isdigit(static_cast<unsigned char>(src[j])) ||
                        src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
                        ((src[j] == '+' || src[j] == '-') && j > i &&
                         (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
                    if (src[j] == '.' || src[j] == 'e' || src[j] == 'E')
                        is_float = true;
                    ++j;
                }
            }
            const std::string text = src.substr(i, j - i);
            Token tok{is_float ? Tok::Float : Tok::Int, line, text, 0, 0.0};
            if (is_float)
                tok.fval = std::strtod(text.c_str(), nullptr);
            else
                tok.ival = static_cast<int64_t>(
                    std::strtoull(text.c_str(), nullptr, 0));
            toks.push_back(tok);
            i = j;
            continue;
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::string body;
            size_t j = i + 1;
            while (j < n && src[j] != quote) {
                if (src[j] == '\\' && j + 1 < n) {
                    const char e = src[j + 1];
                    body.push_back(e == 'n' ? '\n'
                                   : e == 't' ? '\t'
                                   : e == '0' ? '\0'
                                              : e);
                    j += 2;
                } else {
                    if (src[j] == '\n')
                        ++line;
                    body.push_back(src[j]);
                    ++j;
                }
            }
            if (j >= n)
                tarch_fatal("line %d: unterminated string", line);
            toks.push_back({Tok::String, line, body, 0, 0.0});
            i = j + 1;
            continue;
        }

        auto two = [&](char second) {
            return i + 1 < n && src[i + 1] == second;
        };
        switch (c) {
          case '+': push(Tok::Plus); ++i; continue;
          case '-': push(Tok::Minus); ++i; continue;
          case '*': push(Tok::Star); ++i; continue;
          case '/':
            if (two('/')) { push(Tok::DSlash); i += 2; }
            else { push(Tok::Slash); ++i; }
            continue;
          case '%': push(Tok::Percent); ++i; continue;
          case '#': push(Tok::Hash); ++i; continue;
          case '=':
            if (two('=')) { push(Tok::Eq); i += 2; }
            else { push(Tok::Assign); ++i; }
            continue;
          case '~':
            if (two('=')) { push(Tok::Ne); i += 2; continue; }
            tarch_fatal("line %d: unexpected '~'", line);
          case '<':
            if (two('=')) { push(Tok::Le); i += 2; }
            else { push(Tok::Lt); ++i; }
            continue;
          case '>':
            if (two('=')) { push(Tok::Ge); i += 2; }
            else { push(Tok::Gt); ++i; }
            continue;
          case '(': push(Tok::LParen); ++i; continue;
          case ')': push(Tok::RParen); ++i; continue;
          case '{': push(Tok::LBrace); ++i; continue;
          case '}': push(Tok::RBrace); ++i; continue;
          case '[': push(Tok::LBracket); ++i; continue;
          case ']': push(Tok::RBracket); ++i; continue;
          case ',': push(Tok::Comma); ++i; continue;
          case ';': push(Tok::Semi); ++i; continue;
          case '.':
            if (two('.')) { push(Tok::Concat); i += 2; continue; }
            tarch_fatal("line %d: unexpected '.'", line);
          default:
            tarch_fatal("line %d: unexpected character '%c'", line, c);
        }
    }
    toks.push_back({Tok::Eof, line, "", 0, 0.0});
    return toks;
}

} // namespace tarch::script
