#include "script/ast.h"

// The AST is a plain data structure; this translation unit exists to give
// the module a home for future out-of-line helpers and to anchor vtables
// if the node types ever grow virtual members.  (Intentionally empty.)
