/**
 * @file
 * Recursive-descent parser for MiniScript.
 */

#ifndef TARCH_SCRIPT_PARSER_H
#define TARCH_SCRIPT_PARSER_H

#include <string>

#include "script/ast.h"

namespace tarch::script {

/** Parse a MiniScript source file into a Chunk.  Throws FatalError. */
Chunk parse(const std::string &source);

} // namespace tarch::script

#endif // TARCH_SCRIPT_PARSER_H
