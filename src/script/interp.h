/**
 * @file
 * Reference tree-walking interpreter for MiniScript, executed on the
 * host.  It defines the language's semantics independently of either
 * guest VM and is used by the differential test suite: for any program,
 * MiniLua and MiniJS (on every ISA variant) must print what this
 * interpreter prints (modulo each engine's number formatting).
 */

#ifndef TARCH_SCRIPT_INTERP_H
#define TARCH_SCRIPT_INTERP_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "script/ast.h"

namespace tarch::script {

/** A reference value: the dynamic types of MiniScript. */
struct RefValue {
    enum class Kind : uint8_t { Nil, Bool, Int, Flt, Str, Table, Fun };

    Kind kind = Kind::Nil;
    int64_t i = 0;
    double f = 0.0;
    std::string s;
    std::shared_ptr<std::map<std::string, RefValue>> hash;  ///< string keys
    std::shared_ptr<std::map<int64_t, RefValue>> array;     ///< int keys
    int fun = -1;

    bool truthy() const { return !(kind == Kind::Nil ||
                                   (kind == Kind::Bool && i == 0)); }
};

/** Number formatting dialect for print/concat. */
enum class NumberStyle {
    Lua,  ///< floats print with a trailing ".0" when integral
    Js,   ///< integral doubles print without a decimal point
};

/**
 * Execute a chunk and return everything print() produced.
 * @param style        number formatting dialect
 * @param step_limit   fatal after this many statements (runaway guard)
 */
std::string interpret(const Chunk &chunk, NumberStyle style,
                      uint64_t step_limit = 50'000'000);

} // namespace tarch::script

#endif // TARCH_SCRIPT_INTERP_H
