#include "fuzz/shrink.h"

#include <vector>

namespace tarch::fuzz {

namespace {

std::vector<std::string>
toLines(const std::string &source)
{
    std::vector<std::string> lines;
    std::string current;
    for (const char ch : source) {
        if (ch == '\n') {
            lines.push_back(current);
            current.clear();
        } else {
            current += ch;
        }
    }
    if (!current.empty())
        lines.push_back(current);
    return lines;
}

std::string
joinWithout(const std::vector<std::string> &lines, size_t from, size_t count)
{
    std::string out;
    for (size_t i = 0; i < lines.size(); ++i) {
        if (i >= from && i < from + count)
            continue;
        out += lines[i];
        out += '\n';
    }
    return out;
}

} // namespace

std::string
shrinkLines(const std::string &source, const ShrinkPredicate &still_failing,
            ShrinkStats *stats)
{
    std::vector<std::string> lines = toLines(source);
    ShrinkStats local;
    local.linesBefore = static_cast<int>(lines.size());

    size_t chunk = lines.size() / 2;
    if (chunk == 0)
        chunk = 1;
    while (chunk >= 1) {
        bool removed_any = false;
        size_t i = 0;
        while (i < lines.size() && lines.size() > 1) {
            const size_t count = std::min(chunk, lines.size() - i);
            const std::string candidate = joinWithout(lines, i, count);
            ++local.attempts;
            if (still_failing(candidate)) {
                ++local.accepted;
                lines.erase(lines.begin() + static_cast<long>(i),
                            lines.begin() + static_cast<long>(i + count));
                removed_any = true;
                // Do not advance: the next chunk slid into position i.
            } else {
                i += count;
            }
        }
        if (chunk == 1) {
            // At single-line granularity, iterate to a fixpoint: one
            // removal can unlock another (e.g. the last use of a local
            // going away lets its declaration go too).
            if (!removed_any)
                break;
        } else {
            chunk /= 2;
        }
    }

    local.linesAfter = static_cast<int>(lines.size());
    if (stats)
        *stats = local;
    std::string out;
    for (const std::string &line : lines) {
        out += line;
        out += '\n';
    }
    return out;
}

} // namespace tarch::fuzz
