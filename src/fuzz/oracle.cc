#include "fuzz/oracle.h"

#include "analysis/checks.h"
#include "analysis/elide.h"
#include "common/log.h"
#include "common/strutil.h"
#include "script/interp.h"
#include "script/parser.h"
#include "snapshot/snapshot.h"
#include "vm/js/js_vm.h"
#include "vm/lua/lua_vm.h"

namespace tarch::fuzz {

std::string
RunConfig::name() const
{
    std::string name = strformat(
        "%s/%s/deopt=%s", engine == Engine::Lua ? "MiniLua" : "MiniJS",
        std::string(vm::variantName(variant)).c_str(),
        deopt ? "on" : "off");
    // Exact elide-off runs keep the historical 3-part name; only the
    // extra axes are annotated.
    if (elide)
        name += "/elide=on";
    if (execMode == core::ExecMode::Predecoded)
        name += "/mode=predecoded";
    return name;
}

std::vector<RunConfig>
allRunConfigs(bool exec_mode_axis)
{
    std::vector<RunConfig> configs;
    for (const RunConfig::Engine engine :
         {RunConfig::Engine::Lua, RunConfig::Engine::Js}) {
        // elide is the outer axis so each block keeps its own
        // baseline/deopt-off run adjacent for the cross-run checks.
        for (const bool elide : {false, true}) {
            for (const vm::Variant variant :
                 {vm::Variant::Baseline, vm::Variant::Typed,
                  vm::Variant::CheckedLoad}) {
                for (const bool deopt : {false, true}) {
                    configs.push_back({engine, variant, deopt,
                                       core::ExecMode::Exact, elide});
                    // The predecoded twin runs right after its exact
                    // sibling; runOracle relies on the adjacency.
                    if (exec_mode_axis)
                        configs.push_back({engine, variant, deopt,
                                           core::ExecMode::Predecoded,
                                           elide});
                }
            }
        }
    }
    return configs;
}

std::string
Divergence::describe() const
{
    switch (kind) {
      case Kind::Output:
        return strformat("%s: output mismatch\n  expected: %s\n  actual:   %s",
                         config.c_str(),
                         expected.empty() ? "<empty>" : expected.c_str(),
                         actual.empty() ? "<empty>" : actual.c_str());
      case Kind::StatsInvariant:
        return strformat("%s: stats invariant violated: %s", config.c_str(),
                         detail.c_str());
      case Kind::Crash:
        return strformat("%s: crashed: %s", config.c_str(), detail.c_str());
      case Kind::StaticVerify:
        return strformat("%s: static verifier rejected the image:\n%s",
                         config.c_str(), detail.c_str());
      case Kind::ExecMode:
        return strformat("%s: predecoded run differs from exact twin: %s",
                         config.c_str(), detail.c_str());
      case Kind::Snapshot:
        return strformat("%s: snapshot round-trip broke bit-identity: %s",
                         config.c_str(), detail.c_str());
    }
    return "?";
}

std::vector<std::string>
statsViolations(const core::CoreStats &s, const RunConfig &c,
                const core::CoreStats *baseline, uint8_t probe_interval)
{
    std::vector<std::string> v;
    const auto fail = [&v](const std::string &msg) { v.push_back(msg); };

    // TRT bookkeeping: misses() is defined as lookups - hits, so the
    // paper's "hits + misses == lookups" identity reduces to this.
    if (s.trt.hits > s.trt.lookups)
        fail(strformat("TRT hits (%llu) exceed lookups (%llu)",
                       (unsigned long long)s.trt.hits,
                       (unsigned long long)s.trt.lookups));

    // An in-order core cannot retire more than one instruction/cycle.
    if (s.cycles < s.instructions)
        fail(strformat("cycles (%llu) < instructions (%llu) on an "
                       "in-order core",
                       (unsigned long long)s.cycles,
                       (unsigned long long)s.instructions));
    if (s.instructions == 0)
        fail("zero instructions retired");

    if (s.chklbMisses > s.chklbChecks)
        fail(strformat("chklb misses (%llu) exceed checks (%llu)",
                       (unsigned long long)s.chklbMisses,
                       (unsigned long long)s.chklbChecks));

    // Per-variant counter ownership.
    switch (c.variant) {
      case vm::Variant::Baseline:
        if (s.trt.lookups || s.chklbChecks || s.typeOverflowMisses ||
            s.deoptRedirects || s.deoptProbes)
            fail("baseline touched typed/checked-load/deopt counters");
        break;
      case vm::Variant::Typed:
        if (s.chklbChecks)
            fail("typed variant touched chklb counters");
        break;
      case vm::Variant::CheckedLoad:
        if (s.trt.lookups)
            fail("checked-load variant touched the TRT");
        if (s.deoptRedirects || s.deoptProbes)
            fail("checked-load variant touched deopt counters");
        break;
    }

    // The deopt selector only acts when enabled, and probes exactly
    // every probe_interval-th redirect.
    if (!c.deopt && (s.deoptRedirects || s.deoptProbes))
        fail(strformat("deopt disabled but redirects=%llu probes=%llu",
                       (unsigned long long)s.deoptRedirects,
                       (unsigned long long)s.deoptProbes));
    if (c.deopt && probe_interval &&
        s.deoptProbes != s.deoptRedirects / probe_interval)
        fail(strformat("deopt probes (%llu) != redirects (%llu) / "
                       "interval (%u)",
                       (unsigned long long)s.deoptProbes,
                       (unsigned long long)s.deoptRedirects,
                       (unsigned)probe_interval));

    // MiniLua runs with OverflowMode::Off: tags live outside the value
    // dword and the polymorphic ALU never aborts on overflow.
    if (c.engine == RunConfig::Engine::Lua && s.typeOverflowMisses)
        fail(strformat("MiniLua recorded %llu overflow misses",
                       (unsigned long long)s.typeOverflowMisses));

    if (baseline) {
        // The native runtime is invoked identically on every pipeline --
        // except typed/deopt=on, where thdl redirects fast-path-capable
        // bytecodes into slow-path handlers that reach helpers (fmod,
        // table slow paths) the fast path computes inline.  Redirection
        // can only ADD hostcalls, never remove any.
        const bool deopt_redirecting =
            c.variant == vm::Variant::Typed && c.deopt;
        if (!deopt_redirecting && s.hostcalls != baseline->hostcalls)
            fail(strformat("hostcalls (%llu) differ from baseline (%llu)",
                           (unsigned long long)s.hostcalls,
                           (unsigned long long)baseline->hostcalls));
        if (deopt_redirecting && s.hostcalls < baseline->hostcalls)
            fail(strformat("typed/deopt hostcalls (%llu) below baseline "
                           "(%llu)",
                           (unsigned long long)s.hostcalls,
                           (unsigned long long)baseline->hostcalls));
        // The whole point of the typed ISA: on type-stable code the
        // fast path strictly removes guard instructions.  The typed
        // _start block pays a one-time TRT configuration cost
        // (setoffset/setshift/setmask plus eight set_trt rules) that a
        // program with little fast-path arithmetic never wins back, so
        // the comparison carries a fixed startup allowance.  Any real
        // fast-path regression scales with retired bytecodes and blows
        // far past it.
        constexpr uint64_t kTypedStartupAllowance = 40;
        if (c.variant == vm::Variant::Typed && s.trt.misses() == 0 &&
            s.typeOverflowMisses == 0 && s.deoptRedirects == 0 &&
            s.instructions > baseline->instructions + kTypedStartupAllowance)
            fail(strformat("type-stable typed run retired %llu "
                           "instructions > baseline %llu",
                           (unsigned long long)s.instructions,
                           (unsigned long long)baseline->instructions));
    }
    return v;
}

namespace {

/** Soundness-check the elided bytecode of an already-built VM. */
template <typename Vm>
analysis::Report
lintElision(const Vm &vm)
{
    analysis::Report report;
    if constexpr (std::is_same_v<Vm, vm::lua::LuaVm>)
        analysis::elide::verifyLua(vm.module(), report);
    else
        analysis::elide::verifyJs(vm.module(), report);
    return report;
}

template <typename Vm>
RunRecord
runVm(const std::string &source, const RunConfig &config,
      const OracleOptions &opts)
{
    RunRecord rec;
    rec.config = config;
    try {
        typename Vm::Options vm_opts;
        vm_opts.variant = config.variant;
        vm_opts.elide = config.elide;
        vm_opts.coreConfig.deopt.enabled = config.deopt;
        vm_opts.coreConfig.deopt.probeInterval = opts.probeInterval;
        vm_opts.coreConfig.maxInstructions = opts.maxInstructions;
        vm_opts.coreConfig.execMode = config.execMode;
        Vm vm(source, vm_opts);
        // Lint the assembled image before simulating it: a protocol
        // violation on a cold path is a bug even if this input never
        // executes it.  Elided runs also re-prove every rewritten
        // bytecode site monomorphic.
        if (opts.verifyImages) {
            const analysis::Report lint =
                analysis::verifyImage(vm.program());
            if (lint.hasErrors())
                rec.lintReport = lint.render();
            if (config.elide) {
                const analysis::Report mono = lintElision(vm);
                if (mono.hasErrors())
                    rec.lintReport += mono.render();
            }
        }
        vm.run();
        rec.output = vm.core().output();
        rec.stats = vm.core().collectStats();
    } catch (const FatalError &err) {
        rec.crashed = true;
        rec.error = err.what();
    }
    return rec;
}

/**
 * runVm with an observability session attached.  The run-crash catch
 * sits INSIDE the session scope so a FatalError mid-run still renders
 * the artifacts accumulated up to the fatal instruction.
 */
template <typename Vm>
RunRecord
runVmInstrumented(const std::string &source, const RunConfig &config,
                  const OracleOptions &opts,
                  const obs::SessionConfig &obs_cfg,
                  obs::Artifacts &artifacts)
{
    RunRecord rec;
    rec.config = config;
    try {
        typename Vm::Options vm_opts;
        vm_opts.variant = config.variant;
        vm_opts.elide = config.elide;
        vm_opts.coreConfig.deopt.enabled = config.deopt;
        vm_opts.coreConfig.deopt.probeInterval = opts.probeInterval;
        vm_opts.coreConfig.maxInstructions = opts.maxInstructions;
        vm_opts.coreConfig.execMode = config.execMode;
        Vm vm(source, vm_opts);
        if (opts.verifyImages) {
            const analysis::Report lint =
                analysis::verifyImage(vm.program());
            if (lint.hasErrors())
                rec.lintReport = lint.render();
            if (config.elide) {
                const analysis::Report mono = lintElision(vm);
                if (mono.hasErrors())
                    rec.lintReport += mono.render();
            }
        }
        obs::Session session(vm.core(), obs_cfg);
        try {
            vm.run();
        } catch (const FatalError &err) {
            rec.crashed = true;
            rec.error = err.what();
        }
        rec.output = vm.core().output();
        rec.stats = vm.core().collectStats();
        artifacts = session.finish();
    } catch (const FatalError &err) {
        rec.crashed = true;
        rec.error = err.what();
    }
    return rec;
}

/** The per-run options block shared by every oracle run helper. */
template <typename Vm>
typename Vm::Options
vmOptions(const RunConfig &config, const OracleOptions &opts)
{
    typename Vm::Options vm_opts;
    vm_opts.variant = config.variant;
    vm_opts.elide = config.elide;
    vm_opts.coreConfig.deopt.enabled = config.deopt;
    vm_opts.coreConfig.deopt.probeInterval = opts.probeInterval;
    vm_opts.coreConfig.maxInstructions = opts.maxInstructions;
    vm_opts.coreConfig.execMode = config.execMode;
    return vm_opts;
}

/** Bitwise comparison of two run finals, runVm field semantics. */
std::string
describeRunDiff(const RunRecord &run, const RunRecord &uninterrupted,
                const char *what)
{
    if (run.crashed != uninterrupted.crashed ||
        run.error != uninterrupted.error)
        return strformat(
            "%s: crash state differs (uninterrupted: %s, got: %s)", what,
            uninterrupted.crashed ? uninterrupted.error.c_str() : "<ran>",
            run.crashed ? run.error.c_str() : "<ran>");
    if (run.output != uninterrupted.output)
        return strformat("%s: guest output differs", what);
    const std::string stats_diff =
        core::describeStatsDiff(uninterrupted.stats, run.stats);
    if (!stats_diff.empty())
        return strformat("%s: %s", what, stats_diff.c_str());
    return {};
}

/**
 * The snapshot axis (OracleOptions::checkpoint): run @p config again,
 * capture a tarch-snap-v1 blob at ~checkpoint retired instructions,
 * rebuild a fresh VM from the same inputs, restore the decoded blob
 * into it, and continue BOTH machines.  The interrupted original
 * (proves capture purity) and the restored copy (proves restore
 * fidelity) must both finish bit-identical to @p uninterrupted.
 * Returns a human-readable diff; empty when clean.
 */
template <typename Vm>
std::string
checkpointDiff(const std::string &source, const RunConfig &config,
               const OracleOptions &opts, const RunRecord &uninterrupted)
{
    const typename Vm::Options vm_opts = vmOptions<Vm>(config, opts);

    RunRecord primary;
    primary.config = config;
    std::string blob;
    try {
        Vm vm(source, vm_opts);
        vm.core().runUntilInstructions(opts.checkpoint);
        snapshot::Snapshot snap;
        snap.engine = config.engine == RunConfig::Engine::Lua ? 0 : 1;
        snap.variant = static_cast<uint8_t>(config.variant);
        snap.execMode = static_cast<uint8_t>(config.execMode);
        snap.deopt = config.deopt ? 1 : 0;
        snap.elide = config.elide ? 1 : 0;
        snap.chunks = {source};
        vm.saveState(snap.state);
        blob = snapshot::encode(snap);
        vm.run();
        primary.output = vm.core().output();
        primary.stats = vm.core().collectStats();
    } catch (const FatalError &err) {
        primary.crashed = true;
        primary.error = err.what();
    }

    const std::string primary_diff =
        describeRunDiff(primary, uninterrupted, "snapshotted original");
    if (!primary_diff.empty())
        return primary_diff;
    if (blob.empty())
        return {};  // crashed before the checkpoint; nothing captured

    snapshot::Snapshot decoded;
    std::string decode_error;
    if (!snapshot::decode(blob, decoded, decode_error))
        return "snapshot blob failed to decode: " + decode_error;

    RunRecord resumed;
    resumed.config = config;
    try {
        Vm vm(source, vm_opts);
        if (!vm.restoreState(decoded.state))
            return "rebuilt VM rejected the decoded state";
        vm.run();
        resumed.output = vm.core().output();
        resumed.stats = vm.core().collectStats();
    } catch (const FatalError &err) {
        resumed.crashed = true;
        resumed.error = err.what();
    }
    return describeRunDiff(resumed, uninterrupted, "restored continuation");
}

} // namespace

RunRecord
replayInstrumented(const std::string &source, const RunConfig &config,
                   const obs::SessionConfig &obs_cfg,
                   obs::Artifacts &artifacts, const OracleOptions &opts)
{
    return config.engine == RunConfig::Engine::Lua
               ? runVmInstrumented<vm::lua::LuaVm>(source, config, opts,
                                                   obs_cfg, artifacts)
               : runVmInstrumented<vm::js::JsVm>(source, config, opts,
                                                 obs_cfg, artifacts);
}

OracleResult
runOracle(const std::string &source, const OracleOptions &opts)
{
    OracleResult result;

    script::Chunk chunk;
    try {
        chunk = script::parse(source);
        result.expectedLua = script::interpret(
            chunk, script::NumberStyle::Lua, opts.refStepLimit);
        result.expectedJs = script::interpret(
            chunk, script::NumberStyle::Js, opts.refStepLimit);
        result.referenceOk = true;
    } catch (const FatalError &err) {
        result.referenceError = err.what();
        return result;
    }

    // Baseline/deopt-off stats per engine x elide setting, for the
    // cross-run checks (kept by value: runs.push_back may reallocate).
    // Elided bytecode legitimately retires fewer instructions and may
    // shift hostcall mixes, so each elide block compares within itself.
    core::CoreStats baselineStats[4];
    bool haveBaseline[4] = {false, false, false, false};
    result.runs.reserve(opts.execModeAxis ? 48 : 24);
    size_t exactTwinIdx = 0; ///< index of the preceding exact run

    for (RunConfig config : allRunConfigs(opts.execModeAxis)) {
        if (!opts.execModeAxis)
            config.execMode = opts.execMode;
        const RunRecord rec =
            config.engine == RunConfig::Engine::Lua
                ? runVm<vm::lua::LuaVm>(source, config, opts)
                : runVm<vm::js::JsVm>(source, config, opts);
        result.runs.push_back(rec);
        const RunRecord &r = result.runs.back();

        // The snapshot axis applies to every combination — both
        // engines, every variant, and both exec modes.
        if (opts.checkpoint) {
            const std::string diff =
                config.engine == RunConfig::Engine::Lua
                    ? checkpointDiff<vm::lua::LuaVm>(source, config, opts,
                                                     r)
                    : checkpointDiff<vm::js::JsVm>(source, config, opts,
                                                   r);
            if (!diff.empty())
                result.divergences.push_back({Divergence::Kind::Snapshot,
                                              config.name(), diff, "",
                                              ""});
        }

        // Bit-identity between the execution engines: the predecoded
        // run must match the exact twin that immediately precedes it in
        // allRunConfigs order — crash state, output, and all 26
        // counters.
        if (config.execMode == core::ExecMode::Exact) {
            exactTwinIdx = result.runs.size() - 1;
        } else {
            const RunRecord &twin = result.runs[exactTwinIdx];
            std::string diff;
            if (r.crashed != twin.crashed || r.error != twin.error)
                diff = strformat(
                    "crash state differs (exact: %s, predecoded: %s)",
                    twin.crashed ? twin.error.c_str() : "<ran>",
                    r.crashed ? r.error.c_str() : "<ran>");
            else if (r.output != twin.output)
                diff = "guest output differs";
            else
                diff = core::describeStatsDiff(twin.stats, r.stats);
            if (!diff.empty())
                result.divergences.push_back({Divergence::Kind::ExecMode,
                                              config.name(), diff, "",
                                              ""});
            // Either way the per-run checks are redundant: a
            // bit-identical twin re-reports nothing new, a divergent
            // one is already captured as ExecMode.
            continue;
        }

        if (!r.lintReport.empty()) {
            result.divergences.push_back({Divergence::Kind::StaticVerify,
                                          config.name(), r.lintReport, "",
                                          ""});
        }
        if (r.crashed) {
            result.divergences.push_back({Divergence::Kind::Crash,
                                          config.name(), r.error, "", ""});
            continue;
        }

        const std::string &expected =
            config.engine == RunConfig::Engine::Lua ? result.expectedLua
                                                    : result.expectedJs;
        if (r.output != expected) {
            result.divergences.push_back({Divergence::Kind::Output,
                                          config.name(), "", expected,
                                          r.output});
        }

        const size_t group_idx =
            (config.engine == RunConfig::Engine::Lua ? 0 : 2) +
            (config.elide ? 1 : 0);
        if (config.variant == vm::Variant::Baseline && !config.deopt) {
            baselineStats[group_idx] = r.stats;
            haveBaseline[group_idx] = true;
        }

        if (opts.checkStats) {
            for (const std::string &violation :
                 statsViolations(r.stats, config,
                                 haveBaseline[group_idx]
                                     ? &baselineStats[group_idx]
                                     : nullptr,
                                 opts.probeInterval)) {
                result.divergences.push_back(
                    {Divergence::Kind::StatsInvariant, config.name(),
                     violation, "", ""});
            }
        }
    }
    return result;
}

} // namespace tarch::fuzz
