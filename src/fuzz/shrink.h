/**
 * @file
 * Greedy line-removal shrinker (delta debugging over source lines).
 *
 * Given a program that exhibits some failure and a predicate that
 * re-checks the failure, repeatedly remove contiguous line ranges --
 * halving the chunk size ddmin-style down to single lines -- keeping
 * any candidate for which the predicate still holds.  Candidates that
 * no longer parse simply fail the predicate (the differential oracle
 * rejects them via the reference interpreter), so the shrinker needs no
 * grammar knowledge: removing an unmatched `end` just produces a
 * candidate the predicate discards.
 *
 * The predicate must return true for the input program, and the result
 * is guaranteed to still satisfy it.
 */

#ifndef TARCH_FUZZ_SHRINK_H
#define TARCH_FUZZ_SHRINK_H

#include <functional>
#include <string>

namespace tarch::fuzz {

/** Re-check: does @p source still exhibit the failure being chased? */
using ShrinkPredicate = std::function<bool(const std::string &source)>;

struct ShrinkStats {
    int attempts = 0; ///< candidate evaluations
    int accepted = 0; ///< candidates that kept the failure
    int linesBefore = 0;
    int linesAfter = 0;
};

/**
 * Minimize @p source while @p still_failing holds.
 * @return the shrunken program (== source when nothing can be removed)
 */
std::string shrinkLines(const std::string &source,
                        const ShrinkPredicate &still_failing,
                        ShrinkStats *stats = nullptr);

} // namespace tarch::fuzz

#endif // TARCH_FUZZ_SHRINK_H
