/**
 * @file
 * Grammar-driven MiniScript program generator for differential fuzzing.
 *
 * Unlike the narrow fixed-skeleton generator the original differential
 * test used, this one covers the full common semantic core: multiple
 * top-level functions (calls, early returns, params of shifting type),
 * nested for/while loops, tables with dense integer parts and string
 * keys, string concat/compare/length/substr, mixed int/float
 * arithmetic, and *deliberate* type-unstable sites that force TRT
 * misses, thdl deopt redirects, and MiniJS int32-overflow slow paths.
 *
 * Every generated program is guaranteed to
 *   - parse,
 *   - terminate within a bounded number of reference-interpreter steps,
 *   - raise no runtime errors in either number dialect, and
 *   - keep every numeric value's magnitude below 8e12, so MiniLua's
 *     int64 arithmetic and MiniJS's int32-overflow-to-double fallback
 *     produce bit-identical printed text (13 significant digits is
 *     exact under the engines' shared "%.14g" formatting and under
 *     IEEE double arithmetic).
 *
 * Generation is deterministic per seed (an internal SplitMix64 stream;
 * no libc / libstdc++ distribution functions), so a seed number is a
 * complete reproducer across machines.
 */

#ifndef TARCH_FUZZ_PROGEN_H
#define TARCH_FUZZ_PROGEN_H

#include <cstdint>
#include <memory>
#include <string>

namespace tarch::fuzz {

/** Deterministic 64-bit RNG (SplitMix64), identical on every platform. */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, n); 0 when n <= 1. */
    int
    below(int n)
    {
        return n <= 1 ? 0 : static_cast<int>(next() % static_cast<uint64_t>(n));
    }

    /** Uniform integer in [lo, hi] (inclusive). */
    int range(int lo, int hi) { return lo + below(hi - lo + 1); }

    /** True with probability pct/100. */
    bool chance(int pct) { return below(100) < pct; }

  private:
    uint64_t state_;
};

/** Feature toggles for the generator (all on by default). */
struct ProgenOptions {
    int mainStmts = 16;        ///< top-level statement budget
    bool functions = true;     ///< top-level helper functions + calls
    bool tables = true;        ///< table ctors, int/string keys, #t
    bool strings = true;       ///< concat, compare, substr, strchar, #s
    bool typeUnstable = true;  ///< int/float-flipping sites (TRT misses)
    bool int32Overflow = true; ///< >2^31 literals (MiniJS slow path)
    /** Rebind the same local from a number to a string mid-block: the
        register-kind change the type-inference lattice must model as a
        strong update (and refuse to elide across). */
    bool polyReuse = true;
};

class ProgramGen
{
  public:
    explicit ProgramGen(uint64_t seed, const ProgenOptions &opts = {});
    ~ProgramGen();

    ProgramGen(const ProgramGen &) = delete;
    ProgramGen &operator=(const ProgramGen &) = delete;

    /** Generate one program; each call advances the seed's stream. */
    std::string generate();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** One-shot convenience wrapper. */
std::string generateProgram(uint64_t seed, const ProgenOptions &opts = {});

} // namespace tarch::fuzz

#endif // TARCH_FUZZ_PROGEN_H
