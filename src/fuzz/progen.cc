#include "fuzz/progen.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/strutil.h"

namespace tarch::fuzz {

namespace {

/**
 * Magnitude ceiling for every numeric value a generated program can
 * compute.  8e12 keeps values (a) exact in IEEE doubles (< 2^53), (b)
 * far from int64 overflow even through one add/sub before a clamp, and
 * (c) within 13 significant decimal digits, so "%.14g" prints an
 * integer-valued double with exactly the same text as the int64 print
 * path.  That is what makes MiniLua's int64 arithmetic and MiniJS's
 * int32-overflow-to-double fallback observably identical.
 */
constexpr double kCap = 8e12;

/** Work budget: sum over statements of their loop-trip multiplier. */
constexpr double kWorkCap = 50'000;

/** Clamp modulus for runaway accumulators (floored mod, so [0, m)). */
constexpr const char *kClampMod = "999983";
constexpr double kClampBound = 999'983;

/**
 * Int-valued results above this are int64 in the reference but double
 * in MiniJS (int32 overflow fallback): their Int/Flt kind diverges.
 */
constexpr double kInt32Max = 2'147'483'647.0;

} // namespace

struct ProgramGen::Impl {
    Rng rng;
    ProgenOptions opts;

    struct NumExpr {
        std::string text;
        double bound = 0; ///< max |value| this expression can take
        /**
         * True when the value's Int/Flt kind may differ between the
         * reference interpreter (int64 throughout) and MiniJS (int32
         * promoted to double on overflow, literals > INT32_MAX held as
         * doubles).  Equal values print identically under the cap --
         * except a double -0, which an int64 can never produce.  -0 only
         * comes out of a multiply with a zero factor and a negative one,
         * so a mixed-kind multiply operand must be provably positive.
         */
        bool mixed = false;
        bool pos = false; ///< provably > 0
    };

    struct StrExpr {
        std::string text;
        int len = 0; ///< max length in bytes
    };

    struct NumVar {
        std::string name;
        double bound = 0;
        bool assignable = true; ///< loop variables are read-only
        double declWeight = 1;  ///< tripWeight_ where the var (re)inits
        bool mixed = false;     ///< see NumExpr::mixed
    };

    struct StrVar {
        std::string name;
        int len = 0;
    };

    struct TabVar {
        std::string name;
        int dense = 0;    ///< keys 1..dense are set and numeric
        double bound = 0; ///< max |numeric value| stored anywhere in it
        bool mixed = false; ///< some stored value may be kind-divergent
        /**
         * Integer keys outside the contiguous 1..n prefix may exist
         * (loop-variable keys can be negative, sparse or descending).
         * The length of such a table is implementation-defined -- the
         * reference and the guest VMs legitimately disagree -- so the
         * generator must never print #t for a holey table.
         */
        bool holey = false;
        std::vector<std::string> strKeys;
    };

    struct FunInfo {
        std::string name;
        int arity = 0;
        double retBound = 0;
        double cost = 0;       ///< approx. statement-executions per call
        bool retMixed = false; ///< see NumExpr::mixed
    };

    std::string out;
    int indent = 0;
    std::vector<NumVar> numVars;
    std::vector<StrVar> strVars;
    std::vector<TabVar> tabVars;
    std::vector<FunInfo> funs;
    int nameCounter = 0;
    int loopDepth = 0;
    int condDepth = 0; ///< nesting inside if/elseif/else branches
    double tripWeight = 1;
    double work = 0;
    bool inFunction = false;

    Impl(uint64_t seed, const ProgenOptions &o)
        : rng(seed * 0x2545F4914F6CDD1DULL + 0x1234567899ABCDEFULL), opts(o)
    {
    }

    // ---- emission helpers ---------------------------------------------

    void
    line(const std::string &text)
    {
        out.append(static_cast<size_t>(indent) * 2, ' ');
        out += text;
        out += '\n';
        work += tripWeight;
    }

    std::string fresh(const char *prefix)
    {
        return strformat("%s%d", prefix, nameCounter++);
    }

    /** Scope frame: locals declared after a mark die with the block. */
    struct Frame {
        size_t num, str, tab;
    };

    Frame
    open() const
    {
        return {numVars.size(), strVars.size(), tabVars.size()};
    }

    void
    close(const Frame &f)
    {
        numVars.resize(f.num);
        strVars.resize(f.str);
        tabVars.resize(f.tab);
    }

    // ---- numeric expressions ------------------------------------------

    std::string
    floatLit()
    {
        static const char *quarters[] = {"0", "25", "5", "75"};
        return strformat("%d.%s", rng.below(40), quarters[rng.below(4)]);
    }

    NumExpr
    numLeaf()
    {
        switch (rng.below(8)) {
          case 0:
            return {floatLit(), 40.0, false, false};
          case 1: {
            const int v = 1 + rng.below(12);
            return {strformat("(-%d)", v), static_cast<double>(v), false,
                    false};
          }
          case 2:
            if (opts.int32Overflow) {
                // Deliberately near/above INT32_MAX: forces the MiniJS
                // xadd/xmul overflow abort and double fallback.
                const long long v =
                    1'500'000'000LL + rng.below(800'000'000);
                return {strformat("%lld", v), static_cast<double>(v) + 1,
                        true, true};
            }
            [[fallthrough]];
          case 3:
            if (!funs.empty() && rng.chance(35))
                return callExpr();
            [[fallthrough]];
          default:
            if (!numVars.empty() && rng.chance(70)) {
                const NumVar &v = numVars[static_cast<size_t>(
                    rng.below(static_cast<int>(numVars.size())))];
                return {v.name, v.bound, v.mixed, false};
            }
            const int n = rng.below(100);
            return {strformat("%d", n), 99.0, false, n > 0};
        }
    }

    NumExpr
    callExpr()
    {
        const FunInfo &f = funs[static_cast<size_t>(
            rng.below(static_cast<int>(funs.size())))];
        std::string text = f.name + "(";
        for (int i = 0; i < f.arity; ++i) {
            if (i)
                text += ", ";
            text += numExpr(1).text;
        }
        text += ")";
        // Calls are the one construct whose runtime cost is invisible in
        // the emitted line count: charge the callee's body here, scaled
        // by how often the enclosing statement runs.
        work += f.cost * tripWeight;
        return {text, f.retBound, f.retMixed, false};
    }

    /** Wrap so the value provably stays under the magnitude cap. */
    NumExpr
    clampExpr(NumExpr e)
    {
        if (e.bound > kCap) {
            e.text = "(" + e.text + " % 99991)";
            e.bound = 99'991;
            e.pos = false; // mod can hit 0; mixedness persists through %
        }
        return e;
    }

    /**
     * Modulus for rewrites inside loop bodies.  Expressions generated
     * earlier in the body were bounded against the variable's bound at
     * generation time, but they re-execute every iteration -- after any
     * later in-body write has already happened.  So in-loop writes must
     * never raise a value above that generation-time bound: mod by an
     * integer no larger than it (floor >= 2; the <= 2 slack on tiny
     * bounds keeps worst-case products under 2*kCap, still print-exact).
     */
    long long
    stableMod(double bound) const
    {
        return static_cast<long long>(
            std::min(kClampBound, std::max(2.0, std::floor(bound))));
    }

    NumExpr
    numExpr(int depth)
    {
        if (depth <= 0 || rng.chance(30))
            return numLeaf();
        const NumExpr a = numExpr(depth - 1);
        switch (rng.below(10)) {
          case 0: { // floored division by a provably nonzero amount
            if (rng.chance(50)) {
                return {strformat("(%s // %d)", a.text.c_str(),
                                  1 + rng.below(9)),
                        a.bound + 1, a.mixed, false};
            }
            const NumExpr b = numExpr(0);
            // b % 7 + 1 is in [1, 8) for ints and floats alike.
            return {strformat("(%s // (%s %% 7 + 1))", a.text.c_str(),
                              b.text.c_str()),
                    a.bound + 1, a.mixed || b.mixed, false};
          }
          case 1: { // floored modulo: result in [0, m)
            const int m = 2 + rng.below(9);
            return {strformat("(%s %% %d)", a.text.c_str(), m),
                    static_cast<double>(m), a.mixed, false};
          }
          case 2: // float division: result is Flt on every pipeline,
                  // which launders any kind divergence in the dividend
            return {strformat("(%s / %d)", a.text.c_str(),
                              1 + rng.below(7)),
                    a.bound, false, a.pos};
          case 3:
          case 4: { // multiply, only when the product provably fits and
                    // no mixed-kind factor can be the zero beside a
                    // negative (double -0 vs int64 0, see NumExpr::mixed)
            const NumExpr b = numExpr(depth - 1);
            if (a.bound * b.bound <= kCap && (!a.mixed || a.pos) &&
                (!b.mixed || b.pos)) {
                const double p = a.bound * b.bound;
                return {"(" + a.text + " * " + b.text + ")", p,
                        a.mixed || b.mixed || p > kInt32Max,
                        a.pos && b.pos};
            }
            return clampExpr(addExpr(a, b));
          }
          case 5: { // subtract
            const NumExpr b = numExpr(depth - 1);
            return clampExpr({"(" + a.text + " - " + b.text + ")",
                              a.bound + b.bound,
                              a.mixed || b.mixed ||
                                  a.bound + b.bound > kInt32Max,
                              false});
          }
          case 6: { // builtins stay numeric and bounded
            switch (rng.below(3)) {
              case 0:
                return {"abs(" + a.text + ")", a.bound, a.mixed, a.pos};
              case 1:
                // Both guest VMs box an int-valued floor result back to
                // their native int when it fits, and the reference yields
                // Int: floor() launders mixedness below INT32_MAX.
                return {"floor(" + a.text + ")", a.bound + 1,
                        a.bound + 1 > kInt32Max, false};
              default: // Flt on every pipeline
                return {"sqrt(abs(" + a.text + "))",
                        std::sqrt(a.bound) + 1, false, a.pos};
            }
          }
          case 7: // dense table read (provably numeric slot)
            if (opts.tables) {
                for (const TabVar &t : tabVars) {
                    if (t.dense > 0) {
                        return {strformat("%s[%d]", t.name.c_str(),
                                          1 + rng.below(t.dense)),
                                t.bound, t.mixed, false};
                    }
                }
            }
            [[fallthrough]];
          default: { // add
            const NumExpr b = numExpr(depth - 1);
            return clampExpr(addExpr(a, b));
          }
        }
    }

    /** a + b with kind-divergence tracking (int32 overflow promotes). */
    static NumExpr
    addExpr(const NumExpr &a, const NumExpr &b)
    {
        const double s = a.bound + b.bound;
        return {"(" + a.text + " + " + b.text + ")", s,
                a.mixed || b.mixed || s > kInt32Max, a.pos && b.pos};
    }

    // ---- boolean / condition expressions ------------------------------

    std::string
    boolExpr(int depth)
    {
        if (depth <= 0 || rng.chance(40)) {
            static const char *cmps[] = {"<", "<=", ">", ">=", "==", "~="};
            return "(" + numExpr(1).text + " " + cmps[rng.below(6)] + " " +
                   numExpr(1).text + ")";
        }
        switch (rng.below(6)) {
          case 0:
            return "(not " + boolExpr(depth - 1) + ")";
          case 1:
            return "(" + boolExpr(depth - 1) + " and " +
                   boolExpr(depth - 1) + ")";
          case 2:
            return "(" + boolExpr(depth - 1) + " or " +
                   boolExpr(depth - 1) + ")";
          case 3:
            if (opts.strings && !strVars.empty()) {
                const StrVar &s = strVars[static_cast<size_t>(
                    rng.below(static_cast<int>(strVars.size())))];
                return "(" + s.name + " == " + strExpr(0).text + ")";
            }
            [[fallthrough]];
          case 4:
            // Bare numeric condition: truthiness of 0/0.0 deliberately
            // differs between the Lua and JS dialects; the reference
            // interpreter models both, so this is safe to generate.
            return numExpr(1).text;
          default:
            return rng.chance(50) ? "true" : "false";
        }
    }

    // ---- string expressions -------------------------------------------

    StrExpr
    strLit()
    {
        const int n = 1 + rng.below(4);
        std::string text = "\"";
        for (int i = 0; i < n; ++i)
            text += static_cast<char>('a' + rng.below(26));
        text += "\"";
        return {text, n};
    }

    StrExpr
    strExpr(int depth)
    {
        if (depth <= 0 || strVars.empty() || rng.chance(40)) {
            if (!strVars.empty() && rng.chance(50)) {
                const StrVar &s = strVars[static_cast<size_t>(
                    rng.below(static_cast<int>(strVars.size())))];
                return {s.name, s.len};
            }
            if (rng.chance(20))
                return {strformat("strchar(%d)", 65 + rng.below(26)), 1};
            return strLit();
        }
        const StrExpr a = strExpr(depth - 1);
        switch (rng.below(3)) {
          case 0: { // concat with a number (numeric text <= 24 chars)
            StrExpr r{"(" + a.text + " .. " + numExpr(1).text + ")",
                      a.len + 24};
            return substrClamp(r);
          }
          case 1: { // concat two strings
            const StrExpr b = strExpr(depth - 1);
            return substrClamp(
                {"(" + a.text + " .. " + b.text + ")", a.len + b.len});
          }
          default: { // substring with in-range-ish literals
            const int i = rng.chance(30) ? -(1 + rng.below(5))
                                         : 1 + rng.below(4);
            const int j = rng.chance(30) ? -(1 + rng.below(3))
                                         : i + rng.below(8);
            return {strformat("substr(%s, %d, %d)", a.text.c_str(), i, j),
                    a.len};
          }
        }
    }

    /** Keep string growth in loops bounded. */
    StrExpr
    substrClamp(StrExpr e)
    {
        if (e.len > 160)
            return {"substr(" + e.text + ", 1, 24)", 24};
        return e;
    }

    // ---- statements ----------------------------------------------------

    void
    stmtLocalNum()
    {
        const NumExpr e = numExpr(2);
        const std::string name = fresh("v");
        line("local " + name + " = " + e.text);
        numVars.push_back({name, e.bound, true, tripWeight, e.mixed});
    }

    void
    stmtLocalStr()
    {
        const StrExpr e = strExpr(1);
        const std::string name = fresh("s");
        line("local " + name + " = " + e.text);
        strVars.push_back({name, e.len});
    }

    void
    stmtLocalTab()
    {
        const std::string name = fresh("t");
        TabVar t;
        t.name = name;
        if (rng.chance(50)) { // positional constructor: dense 1..n
            const int n = 1 + rng.below(5);
            std::string ctor = "{";
            for (int i = 0; i < n; ++i) {
                const NumExpr e = numExpr(1);
                if (i)
                    ctor += ", ";
                ctor += e.text;
                t.bound = std::max(t.bound, e.bound);
                t.mixed = t.mixed || e.mixed;
            }
            ctor += "}";
            line("local " + name + " = " + ctor);
            t.dense = n;
        } else {
            line("local " + name + " = {}");
            const int fills = rng.below(4);
            for (int i = 0; i < fills; ++i) {
                const NumExpr e = numExpr(1);
                line(strformat("%s[%d] = ", name.c_str(), i + 1) + e.text);
                t.bound = std::max(t.bound, e.bound);
                t.mixed = t.mixed || e.mixed;
            }
            t.dense = fills;
        }
        tabVars.push_back(t);
    }

    NumVar *
    pickAssignable()
    {
        std::vector<NumVar *> cands;
        for (NumVar &v : numVars) {
            if (v.assignable)
                cands.push_back(&v);
        }
        if (cands.empty())
            return nullptr;
        return cands[static_cast<size_t>(
            rng.below(static_cast<int>(cands.size())))];
    }

    /** v = v + e, with a forced clamp once the bound would blow up. */
    void
    stmtAccumulate()
    {
        NumVar *v = pickAssignable();
        if (!v) {
            stmtLocalNum();
            return;
        }
        const NumExpr e = numExpr(1 + rng.below(2));
        const char *op = rng.chance(70) ? "+" : "-";
        if (loopDepth > 0) {
            // In-loop growth would invalidate bounds (and kinds) that
            // expressions generated earlier in this body already
            // assumed; fold the result back under the current bound and
            // launder any kind divergence: floor of a sub-INT32_MAX
            // value is a native int on every pipeline.
            const long long m = stableMod(v->bound);
            line(strformat("%s = floor((%s %s %s) %% %lld)",
                           v->name.c_str(), v->name.c_str(), op,
                           e.text.c_str(), m));
            v->bound = std::max(v->bound, static_cast<double>(m));
            return;
        }
        line(strformat("%s = %s %s ", v->name.c_str(), v->name.c_str(),
                       op) +
             e.text);
        const double grown = v->bound + e.bound;
        v->mixed = v->mixed || e.mixed || grown > kInt32Max;
        if (grown > kCap) {
            line(strformat("%s = %s %% %s", v->name.c_str(),
                           v->name.c_str(), kClampMod));
            // This may sit inside an if branch: the old bound stays
            // admissible on the untaken path.
            v->bound = std::max(v->bound, kClampBound);
        } else {
            v->bound = grown;
        }
    }

    void
    stmtAssignNum()
    {
        NumVar *v = pickAssignable();
        if (!v) {
            stmtLocalNum();
            return;
        }
        const NumExpr e = numExpr(2);
        if (loopDepth > 0 &&
            (e.bound > v->bound || (e.mixed && !v->mixed))) {
            // See stmtAccumulate: in-loop writes may neither raise a
            // bound nor introduce a kind divergence.
            const long long m = stableMod(v->bound);
            line(strformat("%s = floor((%s %% %lld))", v->name.c_str(),
                           e.text.c_str(), m));
            v->bound = std::max(v->bound, static_cast<double>(m));
            return;
        }
        line(v->name + " = " + e.text);
        // The assignment may sit inside a conditional block, so the old
        // bound (and kind) must stay admissible.
        v->bound = std::max(v->bound, e.bound);
        v->mixed = v->mixed || e.mixed;
    }

    /**
     * A deliberately type-unstable site: the same bytecode-level ADD
     * (or MUL / call argument) alternates Int and Flt operands, which
     * is exactly what defeats the TRT fast path and trains the thdl
     * deopt selector.
     */
    void
    stmtUnstable()
    {
        NumVar *v = pickAssignable();
        if (!v || !opts.typeUnstable) {
            stmtAccumulate();
            return;
        }
        const std::string cond = boolExpr(1);
        line("if " + cond + " then");
        ++indent;
        line(strformat("%s = %s + %d", v->name.c_str(), v->name.c_str(),
                       1 + rng.below(3)));
        --indent;
        line("else");
        ++indent;
        line(strformat("%s = %s + %s", v->name.c_str(), v->name.c_str(),
                       floatLit().c_str()));
        --indent;
        line("end");
        if (loopDepth > 0) {
            // Fold the per-iteration +1/+float growth back under the
            // generation-time bound.  The branch adds above still see
            // alternating Int/Flt operands each iteration, which is the
            // whole point of this site.
            const long long m = stableMod(v->bound);
            line(strformat("%s = floor(%s %% %lld)", v->name.c_str(),
                           v->name.c_str(), m));
            v->bound = std::max(v->bound, static_cast<double>(m));
            return;
        }
        const double grown = v->bound + 43.0;
        v->mixed = v->mixed || grown > kInt32Max;
        if (grown > kCap) {
            line(strformat("%s = %s %% %s", v->name.c_str(),
                           v->name.c_str(), kClampMod));
            v->bound = std::max(v->bound, kClampBound);
        } else {
            v->bound = grown;
        }
    }

    /**
     * Type-polymorphic variable reuse: the SAME local holds a number,
     * is read numerically, and is then rebound to a string and read as
     * one.  At the bytecode level the later reads flow through a
     * register a numeric write trained, so the type-inference pass
     * (analysis/typeinf.h) must strong-update the register's kind at
     * the rebind — and the elision verifier must refuse to specialize
     * any site the stale numeric fact would have covered.
     */
    void
    stmtPolyReuse()
    {
        if (!opts.polyReuse || !opts.strings) {
            stmtLocalNum();
            return;
        }
        const NumExpr e = numExpr(1);
        // "q" is reserved for this statement (functions name their
        // params "p<i>"; a collision would shadow a numeric param with
        // a string and invalidate the generator's type model).
        const std::string name = fresh("q");
        line("local " + name + " = " + e.text);
        const std::string use =
            strformat("%s + %d", name.c_str(), rng.below(50));
        if (inFunction) // function bodies are print-free (see stmtPrint)
            line("local " + fresh("q") + " = " + use);
        else
            line("print(" + use + ")");
        const StrExpr s = strExpr(1);
        line(name + " = " + s.text);
        if (inFunction)
            line("local " + fresh("q") + " = #" + name);
        else
            line("print(#" + name + ")");
        // From here on the local is a string; only string expressions
        // may read it.
        strVars.push_back({name, s.len});
    }

    void
    stmtTableSet(const std::string *loopVar)
    {
        if (tabVars.empty()) {
            stmtLocalTab();
            return;
        }
        TabVar &t = tabVars[static_cast<size_t>(
            rng.below(static_cast<int>(tabVars.size())))];
        NumExpr e = numExpr(2);
        if (loopDepth > 0 &&
            (e.bound > t.bound || (e.mixed && !t.mixed))) {
            // In-loop table writes may neither raise the table's bound
            // nor introduce a kind divergence: a dense read generated
            // earlier in the body already assumed both (see stableMod).
            const long long m = stableMod(t.bound);
            e.text = strformat("floor((%s %% %lld))", e.text.c_str(), m);
            e.bound = static_cast<double>(m);
            e.mixed = false;
        }
        switch (rng.below(4)) {
          case 0:
            if (loopVar) { // t[i] = e inside a loop body
                line(strformat("%s[%s] = ", t.name.c_str(),
                               loopVar->c_str()) +
                     e.text);
                t.bound = std::max(t.bound, e.bound);
                t.mixed = t.mixed || e.mixed;
                // Loop-variable keys can be sparse, negative or
                // descending: assume the worst and stop printing #t.
                t.holey = true;
                return;
            }
            [[fallthrough]];
          case 1: { // string key (hash part / shadow hash slow path)
            const std::string key =
                strformat("k%d", rng.below(4));
            if (opts.strings && rng.chance(35)) {
                const StrExpr s = strExpr(1);
                line(strformat("%s[\"%s\"] = ", t.name.c_str(),
                               key.c_str()) +
                     s.text);
            } else {
                line(strformat("%s[\"%s\"] = ", t.name.c_str(),
                               key.c_str()) +
                     e.text);
                t.bound = std::max(t.bound, e.bound);
                t.mixed = t.mixed || e.mixed;
            }
            t.strKeys.push_back(key);
            return;
          }
          default: { // integer key; extend the dense prefix if adjacent.
            // Never past dense+1: a two-past-the-end write would create
            // a hole (implementation-defined #t, see TabVar::holey).
            const int idx = 1 + rng.below(t.dense + 1);
            line(strformat("%s[%d] = ", t.name.c_str(), idx) + e.text);
            t.bound = std::max(t.bound, e.bound);
            t.mixed = t.mixed || e.mixed;
            // Only an unconditional write proves the slot is set: a
            // dense prefix extended under an if would make later dense
            // reads hit nil on the untaken path.
            if (idx == t.dense + 1 && loopDepth == 0 && condDepth == 0)
                ++t.dense;
            return;
          }
        }
    }

    void
    stmtStrAssign()
    {
        if (strVars.empty()) {
            stmtLocalStr();
            return;
        }
        StrVar &s = strVars[static_cast<size_t>(
            rng.below(static_cast<int>(strVars.size())))];
        const StrExpr e = strExpr(2);
        if (loopDepth > 0) {
            // A self-referencing concat (s = s .. s) doubles the string
            // every iteration: exponential runtime the work budget
            // cannot see.  Cap the stored length at a fixed bound so
            // re-execution can never compound.
            const int cap = std::min(160, std::max(s.len, 24));
            line(strformat("%s = substr(%s, 1, %d)", s.name.c_str(),
                           e.text.c_str(), cap));
            s.len = std::max(s.len, cap);
            return;
        }
        line(s.name + " = " + e.text);
        s.len = std::max(s.len, e.len);
    }

    void
    stmtGlobalNum()
    {
        const NumExpr e = numExpr(2);
        const std::string name = fresh("g");
        line(name + " = " + e.text);
        // Globals never go out of scope; register at the current frame
        // anyway (the generator only reads them while they are listed).
        numVars.push_back({name, e.bound, true, tripWeight, e.mixed});
    }

    void
    stmtPrint()
    {
        if (inFunction) {
            // Function bodies must be print-free so that calls are
            // observationally pure: binary operators may evaluate their
            // operands in either order (MiniJS swaps `a > b` into
            // `b < a`), which is only legal to vary when neither operand
            // can print.
            stmtLocalNum();
            return;
        }
        switch (rng.below(12)) {
          case 0:
            line("print(" + numExpr(2 + rng.below(2)).text + ")");
            return;
          case 1: {
            static const char *cmps[] = {"<", "<=", ">", ">=", "==", "~="};
            line("print(" + numExpr(2).text + " " + cmps[rng.below(6)] +
                 " " + numExpr(2).text + ")");
            return;
          }
          case 2:
            if (opts.strings) {
                line("print(" + strExpr(2).text + ")");
                return;
            }
            [[fallthrough]];
          case 3:
            if (opts.strings && !strVars.empty()) {
                const StrVar &s = strVars[static_cast<size_t>(
                    rng.below(static_cast<int>(strVars.size())))];
                line(rng.chance(50)
                         ? "print(#" + s.name + ")"
                         : "print(" + s.name +
                               " == " + strExpr(1).text + ")");
                return;
            }
            [[fallthrough]];
          case 4:
            if (opts.tables && !tabVars.empty()) {
                const TabVar &t = tabVars[static_cast<size_t>(
                    rng.below(static_cast<int>(tabVars.size())))];
                switch (rng.below(4)) {
                  case 0:
                    if (!t.holey) {
                        line("print(#" + t.name + ")");
                        return;
                    }
                    [[fallthrough]];
                  case 1: // possibly-missing integer key: prints nil
                    line(strformat("print(%s[%d])", t.name.c_str(),
                                   1 + rng.below(t.dense + 3)));
                    return;
                  case 2:
                    if (!t.strKeys.empty()) {
                        line(strformat(
                            "print(%s[\"%s\"])", t.name.c_str(),
                            t.strKeys[static_cast<size_t>(rng.below(
                                          static_cast<int>(
                                              t.strKeys.size())))]
                                .c_str()));
                        return;
                    }
                    [[fallthrough]];
                  default:
                    line(strformat("print(%s[%d] == nil)",
                                   t.name.c_str(),
                                   1 + rng.below(t.dense + 3)));
                    return;
                }
            }
            [[fallthrough]];
          case 5:
            if (!funs.empty()) {
                line("print(" + callExpr().text + ")");
                return;
            }
            [[fallthrough]];
          case 6:
            // and/or are value-producing; 0/0.0/"" truthiness differs
            // per dialect and the reference models both styles.
            line("print(" + boolExpr(1) + " and " + numExpr(1).text +
                 " or " + numExpr(1).text + ")");
            return;
          case 7:
            line("print(not " + boolExpr(1) + ")");
            return;
          case 8:
            if (opts.strings) {
                line("print(\"x=\" .. " + numExpr(2).text + ")");
                return;
            }
            [[fallthrough]];
          default:
            line("print(" + boolExpr(2) + ")");
            return;
        }
    }

    void
    stmtIf(int depth, const std::string *loopVar)
    {
        line("if " + boolExpr(2) + " then");
        ++indent;
        ++condDepth;
        Frame f = open();
        block(1 + rng.below(2), depth + 1, loopVar);
        close(f);
        --indent;
        if (rng.chance(35)) {
            line("elseif " + boolExpr(1) + " then");
            ++indent;
            f = open();
            block(1, depth + 1, loopVar);
            close(f);
            --indent;
        }
        if (rng.chance(50)) {
            line("else");
            ++indent;
            f = open();
            block(1 + rng.below(2), depth + 1, loopVar);
            close(f);
            --indent;
        }
        --condDepth;
        line("end");
    }

    void
    stmtWhile(int depth)
    {
        const std::string ctr = fresh("w");
        const int limit = 2 + rng.below(loopDepth > 0 ? 8 : 20);
        const int step = 1 + rng.below(2);
        line("local " + ctr + " = 0");
        const double savedWeight = tripWeight;
        std::string cond = strformat("%s < %d", ctr.c_str(), limit);
        if (rng.chance(20)) {
            // The condition re-evaluates every iteration: charge any
            // embedded calls at loop weight.
            tripWeight *= std::max(1, limit / step);
            cond += " and " + boolExpr(1);
            tripWeight = savedWeight;
        }
        line("while " + cond + " do");
        ++indent;
        const Frame f = open();
        numVars.push_back(
            {ctr, static_cast<double>(limit + 2), false, tripWeight});
        ++loopDepth;
        tripWeight *= std::max(1, limit / step);
        block(1 + rng.below(3), depth + 1, nullptr);
        if (rng.chance(25))
            line("if " + boolExpr(1) + " then break end");
        tripWeight = savedWeight;
        --loopDepth;
        close(f);
        // The counter update must dominate the loop exit: emit it last
        // and never let body statements assign the counter (read-only).
        line(strformat("%s = %s + %d", ctr.c_str(), ctr.c_str(), step));
        --indent;
        line("end");
        numVars.push_back(
            {ctr, static_cast<double>(limit + step), false, tripWeight});
    }

    void
    stmtFor(int depth)
    {
        const std::string var = fresh("i");
        const int trips = 2 + rng.below(loopDepth > 0 ? 10 : 30);
        std::string head;
        double varBound;
        const int kind = rng.below(4);
        if (kind == 0) { // descending with an explicit negative step
            const int step = 1 + rng.below(3);
            const int from = rng.range(5, 40);
            const int to = from - (trips - 1) * step;
            head = strformat("for %s = %d, %d, -%d do", var.c_str(), from,
                             to, step);
            varBound = std::abs(from) + std::abs(to) + step;
        } else if (kind == 1) { // float loop (fractional step)
            const int from = rng.below(4);
            head = strformat("for %s = %d.5, %d.0, 0.5 do", var.c_str(),
                             from, from + trips / 2);
            varBound = from + trips / 2 + 1;
        } else { // canonical ascending int loop
            const int from = rng.chance(80) ? 1 : rng.range(-4, 3);
            const int to = from + trips - 1;
            head = strformat("for %s = %d, %d do", var.c_str(), from, to);
            varBound = std::abs(from) + std::abs(to) + 1;
        }
        line(head);
        ++indent;
        const Frame f = open();
        numVars.push_back({var, varBound, false, tripWeight});
        const double savedWeight = tripWeight;
        ++loopDepth;
        tripWeight *= trips;
        // Only integer-valued loop variables may become table keys
        // (t[0.5] is an invalid-key error in the reference semantics).
        block(1 + rng.below(3), depth + 1, kind == 1 ? nullptr : &var);
        if (rng.chance(20))
            line("if " + boolExpr(1) + " then break end");
        tripWeight = savedWeight;
        --loopDepth;
        close(f);
        --indent;
        line("end");
    }

    void
    stmtCall()
    {
        if (funs.empty()) {
            stmtPrint();
            return;
        }
        line(callExpr().text);
    }

    /** O(1) statement with no embedded calls, for over-budget blocks. */
    void
    stmtCheapPrint()
    {
        if (inFunction) { // see stmtPrint: function bodies are print-free
            line(strformat("local %s = %d", fresh("d").c_str(),
                           rng.below(100)));
            return;
        }
        if (!numVars.empty() && rng.chance(70)) {
            const NumVar &v = numVars[static_cast<size_t>(
                rng.below(static_cast<int>(numVars.size())))];
            line("print(" + v.name + ")");
            return;
        }
        line(strformat("print(%d)", rng.below(100)));
    }

    /** Emit @p n statements appropriate for the current context. */
    void
    block(int n, int depth, const std::string *loopVar)
    {
        for (int k = 0; k < n; ++k) {
            if (work > kWorkCap) {
                // Out of runtime budget: only cheap statements.
                stmtCheapPrint();
                continue;
            }
            const int roll = rng.below(100);
            if (roll < 10) {
                stmtLocalNum();
            } else if (roll < 14 && opts.strings) {
                stmtLocalStr();
            } else if (roll < 18 && opts.tables && depth < 2) {
                stmtLocalTab();
            } else if (roll < 30) {
                stmtAccumulate();
            } else if (roll < 38) {
                stmtUnstable();
            } else if (roll < 41 && opts.strings) {
                stmtPolyReuse();
            } else if (roll < 44) {
                stmtAssignNum();
            } else if (roll < 52 && opts.tables) {
                stmtTableSet(loopVar);
            } else if (roll < 57 && opts.strings) {
                stmtStrAssign();
            } else if (roll < 62 && depth == 0 && !inFunction) {
                stmtGlobalNum();
            } else if (roll < 70 && depth < 3) {
                stmtIf(depth, loopVar);
            } else if (roll < 77 && loopDepth < 2 && depth < 2) {
                stmtFor(depth);
            } else if (roll < 82 && loopDepth < 2 && depth < 2) {
                stmtWhile(depth);
            } else if (roll < 86 && opts.functions) {
                stmtCall();
            } else {
                stmtPrint();
            }
        }
    }

    // ---- top-level functions ------------------------------------------

    void
    genFunction()
    {
        FunInfo f;
        f.name = fresh("f");
        f.arity = 1 + rng.below(3);
        std::string head = "function " + f.name + "(";
        std::vector<std::string> params;
        for (int i = 0; i < f.arity; ++i) {
            params.push_back(strformat("p%d", i));
            if (i)
                head += ", ";
            head += params.back();
        }
        head += ")";
        line(head);
        ++indent;

        // Function bodies see only their params (plus earlier
        // functions); swap the variable context wholesale.
        std::vector<NumVar> savedNum;
        std::vector<StrVar> savedStr;
        std::vector<TabVar> savedTab;
        savedNum.swap(numVars);
        savedStr.swap(strVars);
        savedTab.swap(tabVars);
        const bool savedInFunction = inFunction;
        inFunction = true;
        // The definition costs nothing until called: measure the body's
        // work, stash it as the per-call cost, and roll the budget back.
        const double savedWork = work;

        // Clamp every param first: callers may pass values near the
        // magnitude cap, and the clamp itself is a type-polymorphic mod
        // (int64, int32 or double depending on the call site).  floor
        // boxes the result back to a native int on every pipeline, so
        // params are kind-stable no matter what the call site passed.
        for (const std::string &p : params) {
            line(strformat("%s = floor(%s %% 9973)", p.c_str(),
                           p.c_str()));
            numVars.push_back({p, 9973, true, tripWeight});
        }
        double retBound = 0;
        bool retMixed = false;
        if (rng.chance(60)) {
            const NumExpr e = numExpr(2);
            line("if " + boolExpr(1) + " then");
            ++indent;
            line("return " + e.text);
            --indent;
            line("end");
            retBound = std::max(retBound, e.bound);
            retMixed = retMixed || e.mixed;
        }
        // Depth 2 keeps loops out of function bodies: a call site may sit
        // inside a hot nested loop, so per-call cost must stay O(1).
        block(1 + rng.below(3), 2, nullptr);
        const NumExpr e = numExpr(2);
        line("return " + e.text);
        retBound = std::max(retBound, e.bound);
        retMixed = retMixed || e.mixed;

        f.cost = work - savedWork;
        work = savedWork;
        inFunction = savedInFunction;
        numVars.swap(savedNum);
        strVars.swap(savedStr);
        tabVars.swap(savedTab);
        --indent;
        line("end");
        f.retBound = retBound;
        f.retMixed = retMixed;
        funs.push_back(f);
    }

    // ---- whole program -------------------------------------------------

    std::string
    generate()
    {
        out.clear();
        indent = 0;
        numVars.clear();
        strVars.clear();
        tabVars.clear();
        funs.clear();
        nameCounter = 0;
        loopDepth = 0;
        tripWeight = 1;
        work = 0;
        inFunction = false;

        if (opts.functions) {
            const int nfuns = 1 + rng.below(3);
            for (int i = 0; i < nfuns; ++i)
                genFunction();
        }

        // Guarantee some initial material for expressions to chew on.
        stmtLocalNum();
        stmtLocalNum();
        if (opts.strings)
            stmtLocalStr();
        if (opts.tables)
            stmtLocalTab();

        block(opts.mainStmts, 0, nullptr);

        // Epilogue: print every live top-level value so no computation
        // is dead and every accumulated divergence becomes observable.
        for (const NumVar &v : numVars)
            line("print(" + v.name + ")");
        for (const StrVar &s : strVars) {
            line("print(" + s.name + ")");
            line("print(#" + s.name + ")");
        }
        for (const TabVar &t : tabVars) {
            if (!t.holey)
                line("print(#" + t.name + ")");
            if (t.dense > 0)
                line("print(" + t.name + "[1])");
        }
        return out;
    }
};

ProgramGen::ProgramGen(uint64_t seed, const ProgenOptions &opts)
    : impl_(std::make_unique<Impl>(seed, opts))
{
}

ProgramGen::~ProgramGen() = default;

std::string
ProgramGen::generate()
{
    return impl_->generate();
}

std::string
generateProgram(uint64_t seed, const ProgenOptions &opts)
{
    return ProgramGen(seed, opts).generate();
}

} // namespace tarch::fuzz
