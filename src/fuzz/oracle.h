/**
 * @file
 * Differential oracle: runs one MiniScript program through the host
 * reference interpreter and through both guest VMs on all three ISA
 * variants x deopt on/off x guard-elision on/off (24 simulated runs),
 * comparing every output
 * against the reference semantics and checking machine-level stats
 * invariants that must hold for any program:
 *
 *   - TRT bookkeeping: hits + misses == lookups (hits <= lookups)
 *   - in-order core: cycles >= instructions, both nonzero
 *   - baseline never touches TRT / chklb / overflow / deopt counters
 *   - typed never touches chklb counters; checked-load never touches
 *     TRT or deopt counters
 *   - deopt counters stay zero when the selector is disabled, and
 *     probes == redirects / probeInterval when it is enabled
 *   - MiniLua (OverflowMode::Off) never records overflow misses
 *   - on a type-stable run (zero TRT misses, zero overflow misses) the
 *     typed variant retires no more instructions than baseline, beyond
 *     a fixed allowance for its one-time TRT-configuration prologue
 *   - hostcall counts are variant-invariant (the runtime is charged
 *     identically on every pipeline)
 *
 * Each assembled interpreter image is additionally run through the
 * static verifier (analysis/checks.h) before simulation; an
 * error-severity finding is a StaticVerify divergence.
 *
 * Guard-elided combinations additionally run the elision soundness
 * verifier (analysis/elide.h) over the rewritten bytecode; an
 * error-severity finding is a StaticVerify divergence.  The stats
 * cross-checks (hostcall invariance, the typed-vs-baseline retire
 * bound) compare runs within the same elide setting.
 *
 * With the exec-mode axis enabled (the default) every combination runs
 * twice — once on the exact per-cycle core and once on the predecoded
 * basic-block fast path (docs/FASTPATH.md), 48 simulated runs total —
 * and each predecoded run must match its exact twin bit-for-bit: same
 * output, same crash/error, and all 26 CoreStats counters identical.
 * Any difference is an ExecMode divergence.
 *
 * A divergence in either the printed output or an invariant is the
 * fuzzer's bug signal; the shrinker minimizes the program against
 * OracleResult::diverges().
 */

#ifndef TARCH_FUZZ_ORACLE_H
#define TARCH_FUZZ_ORACLE_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/exec_mode.h"
#include "core/stats.h"
#include "obs/session.h"
#include "vm/variant.h"

namespace tarch::fuzz {

/** One engine/elide/variant/deopt/exec-mode combination. */
struct RunConfig {
    enum class Engine : uint8_t { Lua, Js };

    Engine engine = Engine::Lua;
    vm::Variant variant = vm::Variant::Baseline;
    bool deopt = false;
    core::ExecMode execMode = core::ExecMode::Exact;
    /** Guard elision (analysis/elide.h) applied to the bytecode. */
    bool elide = false;

    std::string name() const;
};

/**
 * The combination matrix, in a fixed deterministic order: per engine,
 * the elide-off block then the elide-on block, each covering variant x
 * deopt.  Without the exec-mode axis: the 24 exact-core combinations.
 * With it: 48 — each combination on the exact core immediately
 * followed by its predecoded twin (the adjacency is what runOracle's
 * bit-identity check uses).
 */
std::vector<RunConfig> allRunConfigs(bool exec_mode_axis = false);

/** Outcome of one simulated run. */
struct RunRecord {
    RunConfig config;
    bool crashed = false;
    std::string error;   ///< FatalError text when crashed
    std::string output;
    std::string lintReport; ///< static-verifier errors (empty when clean)
    core::CoreStats stats;
};

struct Divergence {
    enum class Kind : uint8_t {
        Output,
        StatsInvariant,
        Crash,
        StaticVerify,
        ExecMode, ///< predecoded run differs from its exact twin
        Snapshot, ///< snapshot/restore round-trip broke bit-identity
    };

    Kind kind = Kind::Output;
    std::string config; ///< RunConfig::name() of the offending run
    std::string detail;
    std::string expected; ///< reference output (Output kind only)
    std::string actual;

    std::string describe() const;
};

struct OracleOptions {
    uint64_t maxInstructions = 100'000'000; ///< per-run runaway guard
    uint64_t refStepLimit = 8'000'000;
    bool checkStats = true;
    /**
     * Run the static verifier (analysis::verifyImage) over every
     * assembled interpreter image before simulating it; any
     * error-severity finding is a StaticVerify divergence.
     */
    bool verifyImages = true;
    uint8_t probeInterval = 32; ///< must mirror DeoptConfig default
    /**
     * Also run every combination on the predecoded fast-path core and
     * require bit-identical results (output, crash state, and all 26
     * CoreStats counters) against the exact twin — 48 runs instead of
     * 24.  Divergences surface as Kind::ExecMode.
     */
    bool execModeAxis = true;
    /** Core engine for the matrix when the axis is OFF (single-mode
        campaigns, e.g. fuzz_differential --exec-mode predecoded). */
    core::ExecMode execMode = core::ExecMode::Exact;
    /**
     * The snapshot axis (docs/SNAPSHOT.md): when nonzero, every
     * combination runs a second time, is captured to a tarch-snap-v1
     * blob at ~this many retired instructions, decoded and restored
     * into a freshly rebuilt VM, and BOTH machines continue to
     * completion.  The interrupted original, the restored copy, and
     * the uninterrupted run must agree bit-for-bit (crash state,
     * output, all 26 CoreStats counters); any difference is a
     * Kind::Snapshot divergence.  Doubles the campaign cost.
     */
    uint64_t checkpoint = 0;
};

struct OracleResult {
    bool referenceOk = false; ///< reference accepted and ran the program
    std::string referenceError;
    std::string expectedLua;
    std::string expectedJs;
    std::vector<RunRecord> runs;
    std::vector<Divergence> divergences;

    /** Reference accepted the program and every run agreed. */
    bool clean() const { return referenceOk && divergences.empty(); }

    /**
     * Reference accepted the program and at least one run disagreed.
     * This (not !clean()) is the shrinker predicate: a candidate that
     * the reference rejects proves nothing.
     */
    bool diverges() const { return referenceOk && !divergences.empty(); }
};

/** Run the full differential matrix over @p source (48 runs with the
    default exec-mode axis, 24 without). */
OracleResult runOracle(const std::string &source,
                       const OracleOptions &opts = {});

/**
 * Re-run ONE configuration of the matrix with observability sinks
 * attached (docs/OBSERVABILITY.md) and render their artifacts into
 * @p artifacts — the instrumented companion to runOracle for divergence
 * replay.  Artifacts are rendered even when the run crashes (the trace
 * up to the fatal instruction is exactly what a divergence post-mortem
 * wants); a program the assembler/compiler rejects outright yields a
 * crashed record with empty artifacts.
 */
RunRecord replayInstrumented(const std::string &source,
                             const RunConfig &config,
                             const obs::SessionConfig &obs_cfg,
                             obs::Artifacts &artifacts,
                             const OracleOptions &opts = {});

/**
 * Pure stats-invariant check for one run (exposed for unit tests).
 * @param baseline  stats of the same engine's baseline/deopt-off run,
 *                  or nullptr when unavailable
 * @return human-readable violation messages (empty when clean)
 */
std::vector<std::string> statsViolations(const core::CoreStats &stats,
                                         const RunConfig &config,
                                         const core::CoreStats *baseline,
                                         uint8_t probe_interval = 32);

} // namespace tarch::fuzz

#endif // TARCH_FUZZ_ORACLE_H
