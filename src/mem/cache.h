/**
 * @file
 * Set-associative write-back, write-allocate cache with true LRU
 * replacement (Table 6: 16 KiB, 4-way, 64 B blocks, 1-cycle hit).
 *
 * The cache models tags and timing only; data always lives in MainMemory
 * (the functional datapath reads/writes memory directly, which is exact
 * for a single-core system).
 */

#ifndef TARCH_MEM_CACHE_H
#define TARCH_MEM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "mem/dram.h"

namespace tarch::mem {

struct CacheConfig {
    std::string name = "cache";
    uint64_t sizeBytes = 16 * 1024;
    unsigned ways = 4;
    unsigned blockBytes = 64;
    unsigned hitLatency = 1;
};

struct CacheStats {
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;

    double missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

class Cache
{
  public:
    Cache(const CacheConfig &config, Dram &dram);

    /**
     * Access the block containing @p addr.
     * @param is_write marks the block dirty on hit/fill
     * @return total latency in core cycles (hitLatency on a hit)
     */
    unsigned access(uint64_t addr, bool is_write);

    /** True if the block containing @p addr is currently resident. */
    bool probe(uint64_t addr) const;

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }
    unsigned blockBytes() const { return config_.blockBytes; }

  private:
    struct Line {
        bool valid = false;
        bool dirty = false;
        uint64_t tag = 0;
        uint64_t lastUse = 0;
    };

    CacheConfig config_;
    Dram &dram_;
    CacheStats stats_;
    unsigned numSets_;
    std::vector<Line> lines_;  ///< numSets_ x ways, row-major
    uint64_t useClock_ = 0;
};

} // namespace tarch::mem

#endif // TARCH_MEM_CACHE_H
