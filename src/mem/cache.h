/**
 * @file
 * Set-associative write-back, write-allocate cache with true LRU
 * replacement (Table 6: 16 KiB, 4-way, 64 B blocks, 1-cycle hit).
 *
 * The cache models tags and timing only; data always lives in MainMemory
 * (the functional datapath reads/writes memory directly, which is exact
 * for a single-core system).
 */

#ifndef TARCH_MEM_CACHE_H
#define TARCH_MEM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "mem/dram.h"

namespace tarch::mem {

struct CacheConfig {
    std::string name = "cache";
    uint64_t sizeBytes = 16 * 1024;
    unsigned ways = 4;
    unsigned blockBytes = 64;
    unsigned hitLatency = 1;
};

struct CacheStats {
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;

    double missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

class Cache
{
  public:
    Cache(const CacheConfig &config, Dram &dram);

    /**
     * Access the block containing @p addr.
     * @param is_write marks the block dirty on hit/fill
     * @return total latency in core cycles (hitLatency on a hit)
     */
    unsigned access(uint64_t addr, bool is_write);

    /**
     * access() with a repeat-access memo: when @p addr falls in the
     * same block as the immediately preceding access, the way scan is
     * skipped and only the hit bookkeeping runs.  Bit-identical to
     * access() — the previous access left that line resident and MRU,
     * and nothing else touches the array in between — so stats, LRU
     * ordering and latency all match.  The fast-path core uses this;
     * the exact core keeps calling access().
     */
    unsigned
    accessRepeat(uint64_t addr, bool is_write)
    {
        if ((addr >> blockShift_) != memoBlock_)
            return access(addr, is_write);
        ++stats_.accesses;
        ++useClock_;
        memoLine_->lastUse = useClock_;
        memoLine_->dirty = memoLine_->dirty || is_write;
        return config_.hitLatency;
    }

    /**
     * The repeat-hit bookkeeping of accessRepeat alone, batched for
     * @p n consecutive READs the caller has already proven fall in the
     * memoized block (the fast-path block builder proves it at decode
     * time: consecutive fetches whose PCs share a cache block).
     * Bit-identical to n access() calls as long as no other access to
     * THIS cache happens in between — then every intermediate call
     * would have been a hit on the memo line, and only the final
     * lastUse/useClock values survive.
     */
    void
    repeatBump(unsigned n)
    {
        stats_.accesses += n;
        useClock_ += n;
        memoLine_->lastUse = useClock_;
    }

    /** True if the block containing @p addr is currently resident. */
    bool probe(uint64_t addr) const;

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }
    unsigned blockBytes() const { return config_.blockBytes; }

    struct Line {
        bool valid = false;
        bool dirty = false;
        uint64_t tag = 0;
        uint64_t lastUse = 0;
    };

    /** Complete replacement-relevant state for machine snapshots. */
    struct Snapshot {
        CacheStats stats;
        uint64_t useClock = 0;
        std::vector<Line> lines;  ///< numSets x ways, row-major
    };

    void
    saveState(Snapshot &out) const
    {
        out.stats = stats_;
        out.useClock = useClock_;
        out.lines = lines_;
    }

    /** False (cache unchanged) on a geometry mismatch.  Resets the
        repeat-access memo; the first access falls back to the full
        access() path, which is bit-identical. */
    bool
    restoreState(const Snapshot &in)
    {
        if (in.lines.size() != lines_.size())
            return false;
        stats_ = in.stats;
        useClock_ = in.useClock;
        lines_ = in.lines;
        memoBlock_ = ~0ULL;
        memoLine_ = nullptr;
        return true;
    }

  private:
    CacheConfig config_;
    Dram &dram_;
    CacheStats stats_;
    unsigned numSets_;
    unsigned blockShift_;      ///< log2(blockBytes); geometry is pow2
    std::vector<Line> lines_;  ///< numSets_ x ways, row-major
    uint64_t useClock_ = 0;

    // Repeat-access memo: the block number and line of the most recent
    // access (that line is by construction resident and MRU).
    uint64_t memoBlock_ = ~0ULL;
    Line *memoLine_ = nullptr;
};

} // namespace tarch::mem

#endif // TARCH_MEM_CACHE_H
