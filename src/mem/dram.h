/**
 * @file
 * Simple DDR3-style DRAM timing model (Table 6: DDR3-1066, 1 rank,
 * tCL/tRCD/tRP = 7/7/7) expressed in core clock cycles of the 50 MHz
 * synthesized Rocket core.
 *
 * Each bank keeps one open row.  A request costs a fixed controller/uncore
 * round trip plus the DRAM command latency (row hit: tCL; row conflict:
 * tRP + tRCD + tCL) plus the burst transfer of one 64-byte cache block.
 * DRAM-clock quantities are converted to core cycles with the clock ratio.
 */

#ifndef TARCH_MEM_DRAM_H
#define TARCH_MEM_DRAM_H

#include <cstdint>
#include <vector>

namespace tarch::mem {

struct DramConfig {
    unsigned numBanks = 8;
    unsigned rowBytes = 8192;        ///< row (page) size per bank
    unsigned tCl = 7;                ///< CAS latency, DRAM cycles
    unsigned tRcd = 7;               ///< RAS-to-CAS, DRAM cycles
    unsigned tRp = 7;                ///< precharge, DRAM cycles
    unsigned burstBeats = 8;         ///< 64B block over a 64-bit bus
    double coreClockMhz = 50.0;      ///< Table 6 synthesized core clock
    double dramClockMhz = 533.0;     ///< DDR3-1066 I/O clock
    unsigned controllerCoreCycles = 14; ///< fixed uncore/controller latency
};

/** Per-access latency statistics. */
struct DramStats {
    uint64_t accesses = 0;
    uint64_t rowHits = 0;
    uint64_t rowConflicts = 0;
    uint64_t totalLatency = 0;
};

/**
 * Open-page DRAM latency model.  access() returns the latency in core
 * cycles for a 64-byte block transfer.
 */
class Dram
{
  public:
    explicit Dram(const DramConfig &config = {});

    /** Access the block containing @p addr; returns core-cycle latency. */
    unsigned access(uint64_t addr);

    const DramStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

    /** Open-row state + stats for machine snapshots. */
    struct Snapshot {
        DramStats stats;
        std::vector<int64_t> openRow;
    };

    void
    saveState(Snapshot &out) const
    {
        out.stats = stats_;
        out.openRow = openRow_;
    }

    /** False (DRAM unchanged) on a bank-count mismatch. */
    bool
    restoreState(const Snapshot &in)
    {
        if (in.openRow.size() != openRow_.size())
            return false;
        stats_ = in.stats;
        openRow_ = in.openRow;
        return true;
    }

  private:
    unsigned toCoreCycles(unsigned dram_cycles) const;

    DramConfig config_;
    DramStats stats_;
    std::vector<int64_t> openRow_;  ///< -1 = bank closed
};

} // namespace tarch::mem

#endif // TARCH_MEM_DRAM_H
