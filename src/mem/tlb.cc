#include "mem/tlb.h"

#include "common/bitops.h"

namespace tarch::mem {

Tlb::Tlb(const TlbConfig &config)
    : config_(config), entries_(config.entries)
{
    if (isPow2(config.pageBytes))
        pageShift_ = log2Floor(config.pageBytes);
}

unsigned
Tlb::access(uint64_t addr)
{
    ++stats_.accesses;
    ++useClock_;
    const uint64_t vpn = addr / config_.pageBytes;
    Entry *victim = nullptr;
    for (Entry &entry : entries_) {
        if (entry.valid && entry.vpn == vpn) {
            entry.lastUse = useClock_;
            memoVpn_ = vpn;
            memoEntry_ = &entry;
            return 0;
        }
        if (!victim || !entry.valid ||
            (victim->valid && entry.lastUse < victim->lastUse))
            victim = &entry;
    }
    ++stats_.misses;
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUse = useClock_;
    memoVpn_ = vpn;
    memoEntry_ = victim;
    return config_.missLatency;
}

} // namespace tarch::mem
