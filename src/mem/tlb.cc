#include "mem/tlb.h"

namespace tarch::mem {

Tlb::Tlb(const TlbConfig &config)
    : config_(config), entries_(config.entries)
{
}

unsigned
Tlb::access(uint64_t addr)
{
    ++stats_.accesses;
    ++useClock_;
    const uint64_t vpn = addr / config_.pageBytes;
    Entry *victim = nullptr;
    for (Entry &entry : entries_) {
        if (entry.valid && entry.vpn == vpn) {
            entry.lastUse = useClock_;
            return 0;
        }
        if (!victim || !entry.valid ||
            (victim->valid && entry.lastUse < victim->lastUse))
            victim = &entry;
    }
    ++stats_.misses;
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUse = useClock_;
    return config_.missLatency;
}

} // namespace tarch::mem
