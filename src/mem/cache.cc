#include "mem/cache.h"

#include "common/bitops.h"
#include "common/log.h"

namespace tarch::mem {

Cache::Cache(const CacheConfig &config, Dram &dram)
    : config_(config), dram_(dram)
{
    if (!isPow2(config.blockBytes) || !isPow2(config.ways) ||
        !isPow2(config.sizeBytes))
        tarch_fatal("cache '%s': geometry must be powers of two",
                    config.name.c_str());
    numSets_ = static_cast<unsigned>(
        config.sizeBytes / (config.blockBytes * config.ways));
    blockShift_ = log2Floor(config.blockBytes);
    if (numSets_ == 0)
        tarch_fatal("cache '%s': too small for %u ways",
                    config.name.c_str(), config.ways);
    lines_.resize(static_cast<size_t>(numSets_) * config.ways);
}

bool
Cache::probe(uint64_t addr) const
{
    const uint64_t block = addr / config_.blockBytes;
    const unsigned set = static_cast<unsigned>(block % numSets_);
    const uint64_t tag = block / numSets_;
    for (unsigned w = 0; w < config_.ways; ++w) {
        const Line &line = lines_[static_cast<size_t>(set) * config_.ways + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

unsigned
Cache::access(uint64_t addr, bool is_write)
{
    ++stats_.accesses;
    ++useClock_;
    const uint64_t block = addr / config_.blockBytes;
    const unsigned set = static_cast<unsigned>(block % numSets_);
    const uint64_t tag = block / numSets_;
    Line *victim = nullptr;
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = lines_[static_cast<size_t>(set) * config_.ways + w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock_;
            line.dirty = line.dirty || is_write;
            memoBlock_ = block;
            memoLine_ = &line;
            return config_.hitLatency;
        }
        if (!victim || !line.valid ||
            (victim->valid && line.lastUse < victim->lastUse))
            victim = &line;
    }

    // Miss: fill after evicting the LRU way.
    ++stats_.misses;
    unsigned latency = config_.hitLatency;
    if (victim->valid && victim->dirty) {
        ++stats_.writebacks;
        // Write-back is buffered; charge the DRAM bank model but not the
        // full round trip (the fill overlaps the eviction drain).
        dram_.access(victim->tag * numSets_ * config_.blockBytes +
                     static_cast<uint64_t>(set) * config_.blockBytes);
    }
    latency += dram_.access(addr);
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lastUse = useClock_;
    memoBlock_ = block;
    memoLine_ = victim;
    return latency;
}

} // namespace tarch::mem
