/**
 * @file
 * Sparse byte-addressable guest memory with little-endian scalar access.
 */

#ifndef TARCH_MEM_MAIN_MEMORY_H
#define TARCH_MEM_MAIN_MEMORY_H

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace tarch::mem {

/**
 * Guest physical memory, allocated lazily in 4 KiB pages.  Reads of
 * untouched memory return zero.
 */
class MainMemory
{
  public:
    static constexpr uint64_t kPageBytes = 4096;

    // Scalar accessors are inline with a last-page memo: they are the
    // datapath of every guest load and store, in both execution
    // engines.  A page, once allocated, is never moved or freed
    // (unordered_map rehashes move the unique_ptr, not the Page), so a
    // memoized Page* stays valid for the lifetime of the memory; only
    // non-null pages are memoized, so a later first-write allocation
    // cannot be shadowed by a stale null.

    uint8_t read8(uint64_t addr) const { return readScalar<uint8_t>(addr); }
    uint16_t read16(uint64_t addr) const { return readScalar<uint16_t>(addr); }
    uint32_t read32(uint64_t addr) const { return readScalar<uint32_t>(addr); }
    uint64_t read64(uint64_t addr) const { return readScalar<uint64_t>(addr); }

    void write8(uint64_t addr, uint8_t value) { writeScalar(addr, value); }
    void write16(uint64_t addr, uint16_t value) { writeScalar(addr, value); }
    void write32(uint64_t addr, uint32_t value) { writeScalar(addr, value); }
    void write64(uint64_t addr, uint64_t value) { writeScalar(addr, value); }

    /** Bulk copy into guest memory. */
    void writeBlock(uint64_t addr, const void *src, size_t len);
    /** Bulk copy out of guest memory. */
    void readBlock(uint64_t addr, void *dst, size_t len) const;

    /** Number of pages currently allocated (footprint accounting). */
    size_t allocatedPages() const { return pages_.size(); }

    /** One allocated page, exported for machine snapshots. */
    struct PageImage {
        uint64_t index = 0;              ///< address / kPageBytes
        std::vector<uint8_t> bytes;      ///< exactly kPageBytes
    };

    /** Export every allocated page, sorted by page index (so two
        snapshots of identical memory are byte-identical). */
    void savePages(std::vector<PageImage> &out) const;

    /**
     * Replace the entire memory image with @p pages and reset the
     * last-page memo.  False (memory unchanged) when any page has the
     * wrong size or a duplicate index.
     */
    bool restorePages(const std::vector<PageImage> &pages);

  private:
    using Page = std::array<uint8_t, kPageBytes>;

    Page *pageFor(uint64_t addr);
    const Page *pageForConst(uint64_t addr) const;

    template <typename T>
    T
    readScalar(uint64_t addr) const
    {
        const uint64_t offset = addr & (kPageBytes - 1);
        if (offset + sizeof(T) <= kPageBytes) {
            const Page *page;
            if (addr / kPageBytes == memoKey_) {
                page = memoPage_;
            } else {
                page = pageForConst(addr);
                if (!page)
                    return T{};  // untouched memory reads as zero
                memoKey_ = addr / kPageBytes;
                memoPage_ = const_cast<Page *>(page);
            }
            T value;
            std::memcpy(&value, page->data() + offset, sizeof(T));
            return value;
        }
        T value{};
        readBlock(addr, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    writeScalar(uint64_t addr, T value)
    {
        const uint64_t offset = addr & (kPageBytes - 1);
        if (offset + sizeof(T) <= kPageBytes) {
            Page *page;
            if (addr / kPageBytes == memoKey_) {
                page = memoPage_;
            } else {
                page = pageFor(addr);
                memoKey_ = addr / kPageBytes;
                memoPage_ = page;
            }
            std::memcpy(page->data() + offset, &value, sizeof(T));
            return;
        }
        writeBlock(addr, &value, sizeof(T));
    }

    mutable std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;

    // Last-page memo (never stale: pages are never freed or moved, and
    // null lookups are not memoized).
    mutable uint64_t memoKey_ = ~0ULL;
    mutable Page *memoPage_ = nullptr;
};

} // namespace tarch::mem

#endif // TARCH_MEM_MAIN_MEMORY_H
