/**
 * @file
 * Sparse byte-addressable guest memory with little-endian scalar access.
 */

#ifndef TARCH_MEM_MAIN_MEMORY_H
#define TARCH_MEM_MAIN_MEMORY_H

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace tarch::mem {

/**
 * Guest physical memory, allocated lazily in 4 KiB pages.  Reads of
 * untouched memory return zero.
 */
class MainMemory
{
  public:
    static constexpr uint64_t kPageBytes = 4096;

    uint8_t read8(uint64_t addr) const;
    uint16_t read16(uint64_t addr) const;
    uint32_t read32(uint64_t addr) const;
    uint64_t read64(uint64_t addr) const;
    void write8(uint64_t addr, uint8_t value);
    void write16(uint64_t addr, uint16_t value);
    void write32(uint64_t addr, uint32_t value);
    void write64(uint64_t addr, uint64_t value);

    /** Bulk copy into guest memory. */
    void writeBlock(uint64_t addr, const void *src, size_t len);
    /** Bulk copy out of guest memory. */
    void readBlock(uint64_t addr, void *dst, size_t len) const;

    /** Number of pages currently allocated (footprint accounting). */
    size_t allocatedPages() const { return pages_.size(); }

  private:
    using Page = std::array<uint8_t, kPageBytes>;

    Page *pageFor(uint64_t addr);
    const Page *pageForConst(uint64_t addr) const;

    mutable std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
};

} // namespace tarch::mem

#endif // TARCH_MEM_MAIN_MEMORY_H
