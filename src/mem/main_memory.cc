#include "mem/main_memory.h"

#include <algorithm>
#include <cstring>

namespace tarch::mem {

MainMemory::Page *
MainMemory::pageFor(uint64_t addr)
{
    const uint64_t key = addr / kPageBytes;
    auto &slot = pages_[key];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return slot.get();
}

const MainMemory::Page *
MainMemory::pageForConst(uint64_t addr) const
{
    const uint64_t key = addr / kPageBytes;
    const auto it = pages_.find(key);
    return it == pages_.end() ? nullptr : it->second.get();
}

void
MainMemory::writeBlock(uint64_t addr, const void *src, size_t len)
{
    const auto *bytes = static_cast<const uint8_t *>(src);
    while (len > 0) {
        const uint64_t offset = addr % kPageBytes;
        const size_t chunk =
            std::min<uint64_t>(len, kPageBytes - offset);
        std::memcpy(pageFor(addr)->data() + offset, bytes, chunk);
        addr += chunk;
        bytes += chunk;
        len -= chunk;
    }
}

void
MainMemory::readBlock(uint64_t addr, void *dst, size_t len) const
{
    auto *bytes = static_cast<uint8_t *>(dst);
    while (len > 0) {
        const uint64_t offset = addr % kPageBytes;
        const size_t chunk =
            std::min<uint64_t>(len, kPageBytes - offset);
        const Page *page = pageForConst(addr);
        if (page)
            std::memcpy(bytes, page->data() + offset, chunk);
        else
            std::memset(bytes, 0, chunk);
        addr += chunk;
        bytes += chunk;
        len -= chunk;
    }
}

void
MainMemory::savePages(std::vector<PageImage> &out) const
{
    out.clear();
    out.reserve(pages_.size());
    for (const auto &[index, page] : pages_) {
        PageImage image;
        image.index = index;
        image.bytes.assign(page->begin(), page->end());
        out.push_back(std::move(image));
    }
    std::sort(out.begin(), out.end(),
              [](const PageImage &a, const PageImage &b) {
                  return a.index < b.index;
              });
}

bool
MainMemory::restorePages(const std::vector<PageImage> &pages)
{
    for (size_t i = 0; i < pages.size(); ++i) {
        if (pages[i].bytes.size() != kPageBytes)
            return false;
        if (i > 0 && pages[i].index <= pages[i - 1].index)
            return false;  // unsorted or duplicate page
    }
    pages_.clear();
    memoKey_ = ~0ULL;
    memoPage_ = nullptr;
    for (const PageImage &image : pages) {
        auto page = std::make_unique<Page>();
        std::memcpy(page->data(), image.bytes.data(), kPageBytes);
        pages_.emplace(image.index, std::move(page));
    }
    return true;
}

} // namespace tarch::mem
