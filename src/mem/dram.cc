#include "mem/dram.h"

#include <cmath>

namespace tarch::mem {

Dram::Dram(const DramConfig &config)
    : config_(config), openRow_(config.numBanks, -1)
{
}

unsigned
Dram::toCoreCycles(unsigned dram_cycles) const
{
    const double ns = dram_cycles * 1000.0 / config_.dramClockMhz;
    const double core_ns = 1000.0 / config_.coreClockMhz;
    return static_cast<unsigned>(std::ceil(ns / core_ns));
}

unsigned
Dram::access(uint64_t addr)
{
    ++stats_.accesses;
    // Address mapping: row-bank-column (block interleaved across banks).
    const uint64_t block = addr / 64;
    const unsigned bank = static_cast<unsigned>(block % config_.numBanks);
    const int64_t row = static_cast<int64_t>(
        addr / (static_cast<uint64_t>(config_.rowBytes) * config_.numBanks));

    unsigned dram_cycles;
    if (openRow_[bank] == row) {
        ++stats_.rowHits;
        dram_cycles = config_.tCl;
    } else {
        if (openRow_[bank] >= 0)
            ++stats_.rowConflicts;
        dram_cycles = config_.tRp + config_.tRcd + config_.tCl;
        openRow_[bank] = row;
    }
    dram_cycles += config_.burstBeats;

    const unsigned latency =
        config_.controllerCoreCycles + toCoreCycles(dram_cycles);
    stats_.totalLatency += latency;
    return latency;
}

} // namespace tarch::mem
