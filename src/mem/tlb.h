/**
 * @file
 * Tiny fully-associative TLB (Table 6: 8-entry I-TLB and D-TLB).
 *
 * The guest uses an identity virtual-to-physical mapping, so the TLB only
 * contributes timing: a miss costs a fixed page-table-walk latency.
 */

#ifndef TARCH_MEM_TLB_H
#define TARCH_MEM_TLB_H

#include <cstdint>
#include <vector>

namespace tarch::mem {

struct TlbConfig {
    unsigned entries = 8;
    unsigned pageBytes = 4096;
    unsigned missLatency = 18;  ///< hardware PTW round trip, core cycles
};

struct TlbStats {
    uint64_t accesses = 0;
    uint64_t misses = 0;
};

class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config = {});

    /** Translate; returns extra latency in cycles (0 on hit). */
    unsigned access(uint64_t addr);

    const TlbStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

  private:
    struct Entry {
        bool valid = false;
        uint64_t vpn = 0;
        uint64_t lastUse = 0;
    };

    TlbConfig config_;
    TlbStats stats_;
    std::vector<Entry> entries_;
    uint64_t useClock_ = 0;
};

} // namespace tarch::mem

#endif // TARCH_MEM_TLB_H
