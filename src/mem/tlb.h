/**
 * @file
 * Tiny fully-associative TLB (Table 6: 8-entry I-TLB and D-TLB).
 *
 * The guest uses an identity virtual-to-physical mapping, so the TLB only
 * contributes timing: a miss costs a fixed page-table-walk latency.
 */

#ifndef TARCH_MEM_TLB_H
#define TARCH_MEM_TLB_H

#include <cstdint>
#include <vector>

namespace tarch::mem {

struct TlbConfig {
    unsigned entries = 8;
    unsigned pageBytes = 4096;
    unsigned missLatency = 18;  ///< hardware PTW round trip, core cycles
};

struct TlbStats {
    uint64_t accesses = 0;
    uint64_t misses = 0;
};

class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config = {});

    /** Translate; returns extra latency in cycles (0 on hit). */
    unsigned access(uint64_t addr);

    /**
     * access() with a repeat-access memo (same contract as
     * mem::Cache::accessRepeat): a translation on the same page as the
     * immediately preceding one skips the entry scan and performs only
     * the hit bookkeeping, bit-identically.  Falls back to access()
     * when the configured page size is not a power of two.
     */
    unsigned
    accessRepeat(uint64_t addr)
    {
        if (pageShift_ == 0 || (addr >> pageShift_) != memoVpn_)
            return access(addr);
        ++stats_.accesses;
        ++useClock_;
        memoEntry_->lastUse = useClock_;
        return 0;
    }

    /**
     * The repeat-hit bookkeeping of accessRepeat alone, batched for
     * @p n consecutive translations the caller has already proven fall
     * on the memoized page (the fast-path block builder proves it at
     * decode time).  Bit-identical to n access() calls as long as no
     * other translation through THIS TLB happens in between.  Needs no
     * power-of-two page size: no address comparison happens here.
     */
    void
    repeatBump(unsigned n)
    {
        stats_.accesses += n;
        useClock_ += n;
        memoEntry_->lastUse = useClock_;
    }

    /** Whether the repeat memo is active (power-of-two page size). */
    bool repeatMemoActive() const { return pageShift_ != 0; }

    const TlbStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

    struct Entry {
        bool valid = false;
        uint64_t vpn = 0;
        uint64_t lastUse = 0;
    };

    /** Complete replacement-relevant state for machine snapshots. */
    struct Snapshot {
        TlbStats stats;
        uint64_t useClock = 0;
        std::vector<Entry> entries;
    };

    void
    saveState(Snapshot &out) const
    {
        out.stats = stats_;
        out.useClock = useClock_;
        out.entries = entries_;
    }

    /** False (TLB unchanged) on a shape mismatch.  Resets the repeat
        memo; the next translation takes the full access() path. */
    bool
    restoreState(const Snapshot &in)
    {
        if (in.entries.size() != entries_.size())
            return false;
        stats_ = in.stats;
        useClock_ = in.useClock;
        entries_ = in.entries;
        memoVpn_ = ~0ULL;
        memoEntry_ = nullptr;
        return true;
    }

  private:
    TlbConfig config_;
    TlbStats stats_;
    std::vector<Entry> entries_;
    uint64_t useClock_ = 0;

    // Repeat-access memo (0 pageShift_ = non-pow2 pages, memo disabled).
    unsigned pageShift_ = 0;
    uint64_t memoVpn_ = ~0ULL;
    Entry *memoEntry_ = nullptr;
};

} // namespace tarch::mem

#endif // TARCH_MEM_TLB_H
