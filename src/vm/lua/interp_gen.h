/**
 * @file
 * MiniLua interpreter generator: emits the complete bytecode interpreter
 * as TRV64 assembly for one of the three ISA variants.  The five hot,
 * type-guarded bytecodes (ADD, SUB, MUL, GETTABLE, SETTABLE — paper
 * Table 3) are generated per variant; everything else is identical
 * across variants, as in the paper's code transformation.
 *
 * Guest register conventions inside the interpreter:
 *   s0 call-info stack base     s1 dispatch table base
 *   s2 bytecode pc              s3 frame base (R[0] slot address)
 *   s4 constant pool base       s5 globals base
 *   s6 call-info stack top      s7 proto table base
 *   s8/s9 (Checked Load) cached Int/Table tag values
 *   t0 current bytecode word    t2/t3/t5 decoded operand slot pointers
 */

#ifndef TARCH_VM_LUA_INTERP_GEN_H
#define TARCH_VM_LUA_INTERP_GEN_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "vm/image.h"
#include "vm/variant.h"

namespace tarch::vm::lua {

/** hcall intrinsic ids used by the MiniLua interpreter. */
enum Hcall : unsigned {
    kHcPrint = 1,    ///< print R[A+1] and a newline
    kHcNewTable,     ///< R[A] = fresh empty table
    kHcTabGetSlow,   ///< a0=table hdr, a1=key slot, a2=dst slot
    kHcTabSetSlow,   ///< a0=table hdr, a1=key slot, a2=val slot
    kHcConcat,       ///< a0=dst slot, a1=lhs slot, a2=rhs slot
    kHcFloor,        ///< base-slot convention: arg R[A+1] -> R[A]
    kHcSubstr,       ///< substr(s, i, j) base-slot convention
    kHcStrChar,      ///< strchar(i) base-slot convention
    kHcAbs,          ///< abs(x) base-slot convention
    kHcFmod,         ///< a0=dst slot, a1=lhs slot, a2=rhs slot (float %)
    kHcError,        ///< a0 = error code; never returns
};

// Error codes passed to kHcError.
enum ErrCode : unsigned {
    kErrArith = 1,
    kErrIndex,
    kErrCall,
    kErrCompare,
    kErrDivZero,
    kErrLen,
    kErrConcat,
};

struct InterpResult {
    std::string asmText;
    /** (label symbol, marker name) pairs to register with the core. */
    std::vector<std::pair<std::string, std::string>> markers;
    /**
     * Labels of the dynamic type-guard instructions in the five hot
     * handlers (the tag compare-and-branch in the baseline, the x-op /
     * tchk in the typed variant, the chklb in checked-load).  Resolved
     * to PCs by the VM so retire-event sinks can count executed
     * guards; guards on the shared slow paths are deliberately not
     * labeled (the software-typed axis measures fast-path guard work).
     */
    std::vector<std::string> guardLabels;
};

/**
 * Generate the interpreter.
 * @param main_code   guest address of proto 0's bytecode
 * @param main_consts guest address of proto 0's constant pool
 */
InterpResult generateInterp(Variant variant, const GuestLayout &layout,
                            uint64_t main_code, uint64_t main_consts);

} // namespace tarch::vm::lua

#endif // TARCH_VM_LUA_INTERP_GEN_H
