#include "vm/lua/compiler.h"

#include <optional>

#include "common/log.h"

namespace tarch::vm::lua {

using script::BinOp;
using script::Block;
using script::Expr;
using script::Stmt;
using script::UnOp;

namespace {

const std::unordered_map<std::string, Builtin> kBuiltins = {
    {"print", Builtin::Print},     {"sqrt", Builtin::Sqrt},
    {"floor", Builtin::Floor},     {"substr", Builtin::Substr},
    {"strchar", Builtin::StrChar}, {"abs", Builtin::Abs},
};

class ModuleCompiler;

/**
 * Compiles one function body into a Proto.
 *
 * Register discipline: named locals occupy registers [0, nlocals_);
 * temporaries are allocated from freereg_ and reset to nlocals_ after
 * every statement.  Blocks are lexical scopes: leaving a block releases
 * the registers of locals declared inside it (Lua semantics).
 */
class FnCompiler
{
  public:
    FnCompiler(ModuleCompiler &mod, Proto &proto) : mod_(mod), proto_(proto)
    {
    }

    void
    declareParam(const std::string &name)
    {
        bindLocal(name);
    }

    void
    compileBody(const Block &body)
    {
        compileBlock(body);
        emitAbc(Op::RETURN, 0, 0, 0);
        proto_.nregs = high_;
    }

  private:
    // ---- scopes and registers ----------------------------------------

    struct Scope {
        unsigned nlocals;
        std::vector<std::pair<std::string, std::optional<unsigned>>> undo;
    };

    unsigned
    bindLocal(const std::string &name)
    {
        const unsigned reg = nlocals_++;
        bump(nlocals_);
        std::optional<unsigned> old;
        const auto it = locals_.find(name);
        if (it != locals_.end())
            old = it->second;
        if (!scopes_.empty())
            scopes_.back().undo.emplace_back(name, old);
        locals_[name] = reg;
        freereg_ = nlocals_;
        return reg;
    }

    void
    compileBlock(const Block &body)
    {
        scopes_.push_back({nlocals_, {}});
        for (const auto &stmt : body) {
            statement(*stmt);
            freereg_ = nlocals_;
        }
        const Scope &scope = scopes_.back();
        for (auto it = scope.undo.rbegin(); it != scope.undo.rend(); ++it) {
            if (it->second)
                locals_[it->first] = *it->second;
            else
                locals_.erase(it->first);
        }
        nlocals_ = scope.nlocals;
        freereg_ = nlocals_;
        scopes_.pop_back();
    }

    void
    bump(unsigned reg)
    {
        if (reg > high_)
            high_ = reg;
        if (reg >= kMaxRegs)
            tarch_fatal("function '%s': out of registers",
                        proto_.name.c_str());
    }

    unsigned
    tempReg()
    {
        const unsigned r = freereg_++;
        bump(freereg_);
        return r;
    }

    // ---- emission helpers ---------------------------------------------

    size_t
    emitAbc(Op op, unsigned a, unsigned b, unsigned c)
    {
        proto_.code.push_back(encodeAbc(op, a, b, c));
        return proto_.code.size() - 1;
    }

    size_t
    emitJump(Op op, unsigned a)
    {
        proto_.code.push_back(encodeAsbx(op, a, 0));
        return proto_.code.size() - 1;
    }

    void
    patchJump(size_t at, size_t target)
    {
        const int32_t sbx = static_cast<int32_t>(target) -
                            static_cast<int32_t>(at) - 1;
        proto_.code[at] = (proto_.code[at] & 0x3FFF) |
                          (static_cast<uint32_t>(sbx & 0x3FFFF) << 14);
    }

    size_t here() const { return proto_.code.size(); }

    // ---- constants ------------------------------------------------------

    unsigned
    addConst(const Const &k)
    {
        for (unsigned i = 0; i < proto_.consts.size(); ++i) {
            const Const &c = proto_.consts[i];
            if (c.kind != k.kind)
                continue;
            if ((k.kind == Const::Kind::Int && c.ival == k.ival) ||
                (k.kind == Const::Kind::Flt && c.fval == k.fval) ||
                (k.kind == Const::Kind::Str && c.sval == k.sval))
                return i;
        }
        proto_.consts.push_back(k);
        // LOADK addresses 512 constants; RK operands only the first 256
        // (exprToRk materializes the rest through a register).
        if (proto_.consts.size() > 512)
            tarch_fatal("function '%s': too many constants",
                        proto_.name.c_str());
        return static_cast<unsigned>(proto_.consts.size() - 1);
    }

    std::optional<Const>
    literal(const Expr &e) const
    {
        switch (e.kind) {
          case Expr::Kind::Int:
            return Const{Const::Kind::Int, e.ival, 0.0, {}};
          case Expr::Kind::Float:
            return Const{Const::Kind::Flt, 0, e.fval, {}};
          case Expr::Kind::Str:
            return Const{Const::Kind::Str, 0, 0.0, e.name};
          case Expr::Kind::Unary:
            if (e.unop == UnOp::Neg) {
                if (auto inner = literal(*e.lhs)) {
                    if (inner->kind == Const::Kind::Int)
                        inner->ival = -inner->ival;
                    else if (inner->kind == Const::Kind::Flt)
                        inner->fval = -inner->fval;
                    else
                        return std::nullopt;
                    return inner;
                }
            }
            return std::nullopt;
          default:
            return std::nullopt;
        }
    }

    // ---- expressions ------------------------------------------------------

    unsigned
    exprToRk(const Expr &e)
    {
        if (auto k = literal(e)) {
            const unsigned idx = addConst(*k);
            if (idx < kMaxConsts)
                return idx | kRkConstFlag;
            // Beyond the RK-addressable range: go through a register.
            const unsigned r = tempReg();
            emitAbc(Op::LOADK, r, idx, 0);
            return r;
        }
        if (e.kind == Expr::Kind::Var) {
            const auto it = locals_.find(e.name);
            if (it != locals_.end())
                return it->second;
        }
        const unsigned r = tempReg();
        exprTo(e, r);
        return r;
    }

    unsigned
    exprToAnyReg(const Expr &e)
    {
        if (e.kind == Expr::Kind::Var) {
            const auto it = locals_.find(e.name);
            if (it != locals_.end())
                return it->second;
        }
        const unsigned r = tempReg();
        exprTo(e, r);
        return r;
    }

    void
    exprTo(const Expr &e, unsigned dst)
    {
        switch (e.kind) {
          case Expr::Kind::Nil:
            emitAbc(Op::LOADNIL, dst, 0, 0);
            return;
          case Expr::Kind::True:
            emitAbc(Op::LOADBOOL, dst, 1, 0);
            return;
          case Expr::Kind::False:
            emitAbc(Op::LOADBOOL, dst, 0, 0);
            return;
          case Expr::Kind::Int:
          case Expr::Kind::Float:
          case Expr::Kind::Str:
            emitAbc(Op::LOADK, dst, addConst(*literal(e)), 0);
            return;
          case Expr::Kind::Var: {
            const auto it = locals_.find(e.name);
            if (it != locals_.end()) {
                if (it->second != dst)
                    emitAbc(Op::MOVE, dst, it->second, 0);
                return;
            }
            emitAbc(Op::GETGLOBAL, dst, globalSlot(e.name), 0);
            return;
          }
          case Expr::Kind::Index: {
            const unsigned save = freereg_;
            const unsigned tab = exprToAnyReg(*e.lhs);
            const unsigned key = exprToRk(*e.rhs);
            freereg_ = save;
            emitAbc(Op::GETTABLE, dst, tab, key);
            return;
          }
          case Expr::Kind::Call:
            callTo(e, dst);
            return;
          case Expr::Kind::TableCtor: {
            emitAbc(Op::NEWTABLE, dst, 0, 0);
            for (size_t i = 0; i < e.args.size(); ++i) {
                const unsigned save = freereg_;
                const unsigned val = exprToRk(*e.args[i]);
                const unsigned key =
                    addConst({Const::Kind::Int,
                              static_cast<int64_t>(i + 1), 0.0, {}}) |
                    kRkConstFlag;
                emitAbc(Op::SETTABLE, dst, key, val);
                freereg_ = save;
            }
            return;
          }
          case Expr::Kind::Unary: {
            if (auto k = literal(e)) {  // folded -<literal>
                emitAbc(Op::LOADK, dst, addConst(*k), 0);
                return;
            }
            const unsigned save = freereg_;
            const unsigned src = exprToAnyReg(*e.lhs);
            freereg_ = save;
            const Op op = e.unop == UnOp::Neg ? Op::UNM
                          : e.unop == UnOp::Not ? Op::NOT
                                                : Op::LEN;
            emitAbc(op, dst, src, 0);
            return;
          }
          case Expr::Kind::Binary:
            binaryTo(e, dst);
            return;
        }
        tarch_fatal("line %d: unsupported expression", e.line);
    }

    void
    binaryTo(const Expr &e, unsigned dst)
    {
        if (e.binop == BinOp::And || e.binop == BinOp::Or) {
            exprTo(*e.lhs, dst);
            const size_t skip = emitJump(
                e.binop == BinOp::And ? Op::JMPF : Op::JMPT, dst);
            exprTo(*e.rhs, dst);
            patchJump(skip, here());
            return;
        }
        Op op;
        bool swap = false;
        switch (e.binop) {
          case BinOp::Add: op = Op::ADD; break;
          case BinOp::Sub: op = Op::SUB; break;
          case BinOp::Mul: op = Op::MUL; break;
          case BinOp::Div: op = Op::DIV; break;
          case BinOp::IDiv: op = Op::IDIV; break;
          case BinOp::Mod: op = Op::MOD; break;
          case BinOp::Eq: op = Op::EQ; break;
          case BinOp::Ne: op = Op::NE; break;
          case BinOp::Lt: op = Op::LT; break;
          case BinOp::Le: op = Op::LE; break;
          case BinOp::Gt: op = Op::LT; swap = true; break;
          case BinOp::Ge: op = Op::LE; swap = true; break;
          case BinOp::Concat: op = Op::CONCAT; break;
          default:
            tarch_fatal("line %d: bad binary operator", e.line);
        }
        const unsigned save = freereg_;
        unsigned b = exprToRk(*e.lhs);
        unsigned c = exprToRk(*e.rhs);
        if (swap)
            std::swap(b, c);
        freereg_ = save;
        emitAbc(op, dst, b, c);
    }

    void callTo(const Expr &e, unsigned dst);

    // ---- statements --------------------------------------------------------

    void
    statement(const Stmt &s)
    {
        const unsigned save = freereg_;
        switch (s.kind) {
          case Stmt::Kind::Local: {
            const unsigned reg = bindLocal(s.name);
            exprTo(*s.expr, reg);
            return;
          }
          case Stmt::Kind::Assign: {
            const auto it = locals_.find(s.name);
            if (it != locals_.end()) {
                exprTo(*s.expr, it->second);
            } else {
                const unsigned r = exprToAnyReg(*s.expr);
                emitAbc(Op::SETGLOBAL, r, globalSlot(s.name), 0);
            }
            return;
          }
          case Stmt::Kind::IndexAssign: {
            const unsigned tab = exprToAnyReg(*s.expr);
            const unsigned key = exprToRk(*s.key);
            const unsigned val = exprToRk(*s.value);
            emitAbc(Op::SETTABLE, tab, key, val);
            return;
          }
          case Stmt::Kind::If: {
            std::vector<size_t> ends;
            const unsigned cond = exprToAnyReg(*s.expr);
            freereg_ = save;
            size_t next = emitJump(Op::JMPF, cond);
            compileBlock(s.body);
            const bool has_more = !s.elifs.empty() || !s.elseBody.empty();
            if (has_more)
                ends.push_back(emitJump(Op::JMP, 0));
            patchJump(next, here());
            for (size_t i = 0; i < s.elifs.size(); ++i) {
                const unsigned c2 = exprToAnyReg(*s.elifs[i].first);
                freereg_ = save;
                next = emitJump(Op::JMPF, c2);
                compileBlock(s.elifs[i].second);
                if (i + 1 < s.elifs.size() || !s.elseBody.empty())
                    ends.push_back(emitJump(Op::JMP, 0));
                patchJump(next, here());
            }
            compileBlock(s.elseBody);
            for (const size_t j : ends)
                patchJump(j, here());
            return;
          }
          case Stmt::Kind::While: {
            const size_t top = here();
            const unsigned cond = exprToAnyReg(*s.expr);
            freereg_ = save;
            const size_t exit = emitJump(Op::JMPF, cond);
            breaks_.emplace_back();
            compileBlock(s.body);
            const size_t back = emitJump(Op::JMP, 0);
            patchJump(back, top);
            patchJump(exit, here());
            for (const size_t j : breaks_.back())
                patchJump(j, here());
            breaks_.pop_back();
            return;
          }
          case Stmt::Kind::NumFor: {
            // Four consecutive *local* registers: idx, limit, step, var.
            // They are allocated as scoped locals so body-declared locals
            // land above them.
            scopes_.push_back({nlocals_, {}});
            const unsigned base = bindLocal("(for-idx)");
            bindLocal("(for-limit)");
            bindLocal("(for-step)");
            exprTo(*s.expr, base);
            exprTo(*s.limit, base + 1);
            if (s.step) {
                exprTo(*s.step, base + 2);
            } else {
                emitAbc(Op::LOADK, base + 2,
                        addConst({Const::Kind::Int, 1, 0.0, {}}), 0);
            }
            const unsigned var = bindLocal(s.name);
            (void)var;  // == base + 3 by construction
            const size_t prep = emitJump(Op::FORPREP, base);
            const size_t body_top = here();
            breaks_.emplace_back();
            compileBlock(s.body);
            const size_t loop = emitJump(Op::FORLOOP, base);
            patchJump(loop, body_top);
            patchJump(prep, loop);  // FORPREP lands on the FORLOOP
            for (const size_t j : breaks_.back())
                patchJump(j, here());
            breaks_.pop_back();
            // Leave the for-control scope.
            const Scope &scope = scopes_.back();
            for (auto it = scope.undo.rbegin(); it != scope.undo.rend();
                 ++it) {
                if (it->second)
                    locals_[it->first] = *it->second;
                else
                    locals_.erase(it->first);
            }
            nlocals_ = scope.nlocals;
            freereg_ = nlocals_;
            scopes_.pop_back();
            return;
          }
          case Stmt::Kind::Return: {
            if (s.expr) {
                const unsigned r = exprToAnyReg(*s.expr);
                emitAbc(Op::RETURN, r, 1, 0);
            } else {
                emitAbc(Op::RETURN, 0, 0, 0);
            }
            return;
          }
          case Stmt::Kind::Break: {
            if (breaks_.empty())
                tarch_fatal("line %d: 'break' outside a loop", s.line);
            breaks_.back().push_back(emitJump(Op::JMP, 0));
            return;
          }
          case Stmt::Kind::ExprStmt: {
            const unsigned r = tempReg();
            exprTo(*s.expr, r);
            return;
          }
        }
    }

    unsigned globalSlot(const std::string &name);

    ModuleCompiler &mod_;
    Proto &proto_;
    std::unordered_map<std::string, unsigned> locals_;
    std::vector<Scope> scopes_;
    unsigned nlocals_ = 0;
    unsigned freereg_ = 0;
    unsigned high_ = 1;
    std::vector<std::vector<size_t>> breaks_;
};

class ModuleCompiler
{
  public:
    ModuleCompiler() = default;

    /** Session-chunk mode: carry over global slots and arities. */
    explicit ModuleCompiler(const ChunkSeed &seed)
    {
        mod_.globalNames = seed.globalNames;
        for (unsigned i = 0; i < mod_.globalNames.size(); ++i)
            globals_[mod_.globalNames[i]] = i;
        for (const auto &[name, arity] : seed.functionArity)
            seedArity_[name] = arity;
    }

    Module
    run(const script::Chunk &chunk)
    {
        // Pass 1: register function names so calls and references resolve.
        mod_.protos.resize(1);  // slot 0 = main
        mod_.protos[0].name = "main";
        for (const auto &fn : chunk.functions) {
            if (protoByName_.count(fn.name))
                tarch_fatal("line %d: duplicate function '%s'", fn.line,
                            fn.name.c_str());
            const unsigned proto_idx =
                static_cast<unsigned>(mod_.protos.size());
            mod_.protos.emplace_back();
            mod_.protos.back().name = fn.name;
            mod_.protos.back().nparams =
                static_cast<unsigned>(fn.params.size());
            protoByName_[fn.name] = proto_idx;
            const unsigned g = globalSlot(fn.name);
            mod_.functionGlobals.emplace_back(g, proto_idx);
        }
        // Pass 2: compile bodies.
        for (const auto &fn : chunk.functions) {
            Proto &proto = mod_.protos[protoByName_[fn.name]];
            FnCompiler fc(*this, proto);
            for (const auto &p : fn.params)
                fc.declareParam(p);
            fc.compileBody(fn.body);
        }
        FnCompiler main_fc(*this, mod_.protos[0]);
        main_fc.compileBody(chunk.main);
        return std::move(mod_);
    }

    unsigned
    globalSlot(const std::string &name)
    {
        const auto it = globals_.find(name);
        if (it != globals_.end())
            return it->second;
        const unsigned idx = static_cast<unsigned>(mod_.globalNames.size());
        if (idx >= 512)
            tarch_fatal("too many globals");
        mod_.globalNames.push_back(name);
        globals_[name] = idx;
        return idx;
    }

    std::optional<unsigned>
    protoOf(const std::string &name) const
    {
        const auto it = protoByName_.find(name);
        if (it == protoByName_.end())
            return std::nullopt;
        return it->second;
    }

    /** Arity of a callable @p name: this chunk's functions first, then
        functions seeded from earlier session chunks. */
    std::optional<unsigned>
    arityOf(const std::string &name) const
    {
        const auto proto = protoOf(name);
        if (proto)
            return mod_.protos[*proto].nparams;
        const auto it = seedArity_.find(name);
        if (it == seedArity_.end())
            return std::nullopt;
        return it->second;
    }

    const Module &module() const { return mod_; }

  private:
    Module mod_;
    std::unordered_map<std::string, unsigned> globals_;
    std::unordered_map<std::string, unsigned> protoByName_;
    std::unordered_map<std::string, unsigned> seedArity_;
};

void
FnCompiler::callTo(const Expr &e, unsigned dst)
{
    const auto builtin = kBuiltins.find(e.name);
    const unsigned save = freereg_;
    // Callee (or builtin result) slot, then arguments, consecutively.
    const unsigned base = tempReg();
    for (const auto &arg : e.args) {
        const unsigned r = tempReg();
        exprTo(*arg, r);
    }
    if (builtin != kBuiltins.end()) {
        emitAbc(Op::BUILTIN, base, static_cast<unsigned>(builtin->second),
                static_cast<unsigned>(e.args.size()));
    } else {
        const auto arity = mod_.arityOf(e.name);
        if (!arity)
            tarch_fatal("line %d: call to unknown function '%s'", e.line,
                        e.name.c_str());
        if (*arity != e.args.size())
            tarch_fatal("line %d: '%s' expects %u arguments, got %zu",
                        e.line, e.name.c_str(), *arity, e.args.size());
        emitAbc(Op::GETGLOBAL, base, globalSlot(e.name), 0);
        emitAbc(Op::CALL, base, static_cast<unsigned>(e.args.size()), 0);
    }
    if (dst != base)
        emitAbc(Op::MOVE, dst, base, 0);
    freereg_ = save;
}

unsigned
FnCompiler::globalSlot(const std::string &name)
{
    return mod_.globalSlot(name);
}

} // namespace

Module
compile(const script::Chunk &chunk)
{
    return ModuleCompiler().run(chunk);
}

Module
compile(const script::Chunk &chunk, const ChunkSeed &seed)
{
    return ModuleCompiler(seed).run(chunk);
}

} // namespace tarch::vm::lua
