#include "vm/lua/bytecode.h"

#include "common/strutil.h"

namespace tarch::vm::lua {

namespace {

constexpr std::string_view kNames[kNumOps] = {
    "MOVE",     "LOADK",    "LOADNIL", "LOADBOOL", "GETGLOBAL",
    "SETGLOBAL","GETTABLE", "SETTABLE","NEWTABLE", "ADD",
    "SUB",      "MUL",      "DIV",     "IDIV",     "MOD",
    "UNM",      "NOT",      "LEN",     "CONCAT",   "EQ",
    "NE",       "LT",       "LE",      "JMP",      "JMPF",
    "JMPT",     "CALL",     "RETURN",  "FORPREP",  "FORLOOP",
    "BUILTIN",  "NOP",      "ADD_II",  "SUB_II",   "MUL_II",
    "ADD_FF",   "SUB_FF",   "MUL_FF",  "GETTAB_E", "SETTAB_E",
};

} // namespace

std::string_view
opName(Op op)
{
    return kNames[static_cast<unsigned>(op)];
}

std::string
disassemble(const std::vector<uint32_t> &code)
{
    std::string out;
    for (size_t i = 0; i < code.size(); ++i) {
        const uint32_t w = code[i];
        const Op op = static_cast<Op>(w & 0x3F);
        const unsigned a = (w >> 6) & 0xFF;
        const unsigned b = (w >> 14) & 0x1FF;
        const unsigned c = (w >> 23) & 0x1FF;
        const int32_t sbx = static_cast<int32_t>(w) >> 14;
        switch (op) {
          case Op::JMP:
          case Op::JMPF:
          case Op::JMPT:
          case Op::FORPREP:
          case Op::FORLOOP:
            out += strformat("%4zu  %-10s A=%u sBx=%d -> %zu\n", i,
                             std::string(opName(op)).c_str(), a,
                             static_cast<int>(sbx),
                             i + 1 + static_cast<int64_t>(sbx));
            break;
          default:
            out += strformat("%4zu  %-10s A=%u B=%u C=%u\n", i,
                             std::string(opName(op)).c_str(), a, b, c);
        }
    }
    return out;
}

} // namespace tarch::vm::lua
