#include "vm/lua/lua_vm.h"

#include <cmath>
#include <cstring>

#include "analysis/elide.h"
#include "assembler/assembler.h"
#include "common/bitops.h"
#include "common/log.h"
#include "common/strutil.h"
#include "script/parser.h"
#include "vm/lua/interp_gen.h"

namespace tarch::vm::lua {

namespace {

struct Slot {
    uint64_t v;
    uint8_t t;
};

Slot
readSlot(mem::MainMemory &memory, uint64_t addr)
{
    return {memory.read64(addr), memory.read8(addr + 8)};
}

void
writeSlot(mem::MainMemory &memory, uint64_t addr, uint64_t v, uint8_t t)
{
    memory.write64(addr, v);
    memory.write8(addr + 8, t);
}

double
slotToDouble(const Slot &slot, const char *what)
{
    if (slot.t == kTagInt)
        return static_cast<double>(static_cast<int64_t>(slot.v));
    if (slot.t == kTagFlt) {
        double d;
        std::memcpy(&d, &slot.v, 8);
        return d;
    }
    tarch_fatal("lua runtime: %s expects a number (tag 0x%02x)", what,
                slot.t);
}

/** Integer view of a key slot (float keys with integral value coerce). */
bool
keyAsInt(const Slot &slot, int64_t &out)
{
    if (slot.t == kTagInt) {
        out = static_cast<int64_t>(slot.v);
        return true;
    }
    if (slot.t == kTagFlt) {
        double d;
        std::memcpy(&d, &slot.v, 8);
        if (d == std::floor(d) && d >= -9.2e18 && d <= 9.2e18) {
            out = static_cast<int64_t>(d);
            return true;
        }
    }
    return false;
}

/** Lua's tostring for floats: %.14g plus ".0" for integral values. */
std::string
luaFloatToString(double d)
{
    std::string s = strformat("%.14g", d);
    if (s.find_first_of(".eEni") == std::string::npos)  // inf/nan have n/i
        s += ".0";
    return s;
}

} // namespace

LuaVm::LuaVm(const std::string &source) : LuaVm(source, Options()) {}

LuaVm::LuaVm(const std::string &source, const Options &opts)
    : opts_(opts)
{
    module_ = compile(script::parse(source));
    if (opts_.elide)
        analysis::elide::rewriteLua(module_);
    registerHostcalls();

    core::CoreConfig cfg = opts_.coreConfig;
    cfg.overflowMode = core::OverflowMode::Off;  // tags are out-of-band
    cfg.heapBase = opts_.layout.heap;
    core_ = std::make_unique<core::Core>(cfg, &hostcalls_);

    buildImage();
}

void
LuaVm::buildImage()
{
    const GuestLayout &lay = opts_.layout;

    // Lay out bytecode and constant pools.
    std::vector<uint64_t> code_addr(module_.protos.size());
    std::vector<uint64_t> const_addr(module_.protos.size());
    uint64_t code_cursor = lay.code;
    uint64_t const_cursor = lay.consts;
    for (size_t i = 0; i < module_.protos.size(); ++i) {
        code_addr[i] = code_cursor;
        code_cursor =
            alignUp(code_cursor + module_.protos[i].code.size() * 4, 8);
        const_addr[i] = const_cursor;
        const_cursor += module_.protos[i].consts.size() * kSlotBytes;
    }

    // Generate and assemble the interpreter.
    const InterpResult interp = generateInterp(
        opts_.variant, lay, code_addr[0], const_addr[0]);
    assembler::AsmOptions asm_opts;
    asm_opts.textBase = lay.interpText;
    asm_opts.dataBase = lay.interpData;
    program_ = assembler::assemble(interp.asmText, asm_opts);
    const assembler::Program &program = program_;

    for (const auto &[symbol, marker] : interp.markers)
        core_->markers().add(program.symbol(symbol), marker);
    for (const std::string &symbol : interp.guardLabels)
        guardPcs_.push_back(program.symbol(symbol));
    core_->loadProgram(program);

    // Poke the VM structures into guest memory.
    mem::MainMemory &memory = core_->memory();
    for (size_t i = 0; i < module_.protos.size(); ++i) {
        const Proto &proto = module_.protos[i];
        const uint64_t desc = lay.protos + i * kProtoBytes;
        memory.write64(desc + kProtoCodePtr, code_addr[i]);
        memory.write64(desc + kProtoConstPtr, const_addr[i]);
        memory.write64(desc + kProtoNParams, proto.nparams);
        memory.write64(desc + kProtoNRegs, proto.nregs);
        for (size_t j = 0; j < proto.code.size(); ++j)
            memory.write32(code_addr[i] + 4 * j, proto.code[j]);
        for (size_t j = 0; j < proto.consts.size(); ++j) {
            const Const &k = proto.consts[j];
            const uint64_t slot = const_addr[i] + j * kSlotBytes;
            switch (k.kind) {
              case Const::Kind::Int:
                writeSlot(memory, slot, static_cast<uint64_t>(k.ival),
                          kTagInt);
                break;
              case Const::Kind::Flt: {
                uint64_t bits;
                std::memcpy(&bits, &k.fval, 8);
                writeSlot(memory, slot, bits, kTagFlt);
                break;
              }
              case Const::Kind::Str:
                writeSlot(memory, slot, interner_.intern(*core_, k.sval),
                          kTagStr);
                break;
            }
        }
    }
    for (const auto &[global, proto_idx] : module_.functionGlobals)
        writeSlot(memory, lay.globals + global * kSlotBytes, proto_idx,
                  kTagFun);

    codeCursor_ = code_cursor;
    constCursor_ = const_cursor;
}

// ---------------------------------------------------------------------
// Stateful sessions.

LuaVm::StagedChunk
LuaVm::prepareChunk(const std::string &source) const
{
    const GuestLayout &lay = opts_.layout;

    ChunkSeed seed;
    seed.globalNames = module_.globalNames;
    for (const auto &[global, proto_idx] : module_.functionGlobals)
        seed.functionArity.emplace_back(module_.globalNames[global],
                                        module_.protos[proto_idx].nparams);

    StagedChunk staged;
    staged.module = compile(script::parse(source), seed);
    staged.baseCode = codeCursor_;
    staged.baseConst = constCursor_;
    staged.baseProtos = module_.protos.size();

    uint64_t code_cursor = codeCursor_;
    uint64_t const_cursor = constCursor_;
    staged.codeAddr.resize(staged.module.protos.size());
    staged.constAddr.resize(staged.module.protos.size());
    for (size_t i = 0; i < staged.module.protos.size(); ++i) {
        staged.codeAddr[i] = code_cursor;
        code_cursor = alignUp(
            code_cursor + staged.module.protos[i].code.size() * 4, 8);
        staged.constAddr[i] = const_cursor;
        const_cursor += staged.module.protos[i].consts.size() * kSlotBytes;
    }
    staged.codeEnd = code_cursor;
    staged.constEnd = const_cursor;

    const InterpResult interp = generateInterp(
        opts_.variant, lay, staged.codeAddr[0], staged.constAddr[0]);
    assembler::AsmOptions asm_opts;
    asm_opts.textBase = lay.interpText;
    asm_opts.dataBase = lay.interpData;
    staged.program = assembler::assemble(interp.asmText, asm_opts);
    staged.markers = interp.markers;
    staged.guardLabels = interp.guardLabels;
    return staged;
}

bool
LuaVm::commitChunk(const StagedChunk &staged, std::string &error)
{
    const GuestLayout &lay = opts_.layout;
    if (staged.baseCode != codeCursor_ || staged.baseConst != constCursor_ ||
        staged.baseProtos != module_.protos.size()) {
        error = "stale staged chunk (prepared against other session state)";
        return false;
    }
    if (staged.codeEnd > lay.consts || staged.constEnd > lay.valueStack ||
        lay.protos +
                (staged.baseProtos + staged.module.protos.size()) *
                    kProtoBytes >
            lay.code) {
        error = "session image full";
        return false;
    }

    // Merge the chunk into the cumulative module.  Chunk global slots
    // extend the session's (same seed), proto indices are relocated.
    const unsigned proto_base = static_cast<unsigned>(staged.baseProtos);
    module_.globalNames = staged.module.globalNames;
    for (const Proto &proto : staged.module.protos)
        module_.protos.push_back(proto);
    for (const auto &[global, proto_idx] : staged.module.functionGlobals)
        module_.functionGlobals.emplace_back(global,
                                             proto_base + proto_idx);

    // Swap in the regenerated interpreter (its _start jumps to this
    // chunk's main proto) and re-register its markers.
    program_ = staged.program;
    guardPcs_.clear();
    core_->markers().clear();
    for (const auto &[symbol, marker] : staged.markers)
        core_->markers().add(program_.symbol(symbol), marker);
    for (const std::string &symbol : staged.guardLabels)
        guardPcs_.push_back(program_.symbol(symbol));
    core_->loadProgram(program_);

    // Poke the chunk's image: descriptors at absolute proto indices,
    // bytecode and constants at the session cursors.
    mem::MainMemory &memory = core_->memory();
    for (size_t i = 0; i < staged.module.protos.size(); ++i) {
        const Proto &proto = staged.module.protos[i];
        const uint64_t desc =
            lay.protos + (proto_base + i) * kProtoBytes;
        memory.write64(desc + kProtoCodePtr, staged.codeAddr[i]);
        memory.write64(desc + kProtoConstPtr, staged.constAddr[i]);
        memory.write64(desc + kProtoNParams, proto.nparams);
        memory.write64(desc + kProtoNRegs, proto.nregs);
        for (size_t j = 0; j < proto.code.size(); ++j)
            memory.write32(staged.codeAddr[i] + 4 * j, proto.code[j]);
        for (size_t j = 0; j < proto.consts.size(); ++j) {
            const Const &k = proto.consts[j];
            const uint64_t slot = staged.constAddr[i] + j * kSlotBytes;
            switch (k.kind) {
              case Const::Kind::Int:
                writeSlot(memory, slot, static_cast<uint64_t>(k.ival),
                          kTagInt);
                break;
              case Const::Kind::Flt: {
                uint64_t bits;
                std::memcpy(&bits, &k.fval, 8);
                writeSlot(memory, slot, bits, kTagFlt);
                break;
              }
              case Const::Kind::Str:
                writeSlot(memory, slot, interner_.intern(*core_, k.sval),
                          kTagStr);
                break;
            }
        }
    }
    for (const auto &[global, proto_idx] : staged.module.functionGlobals)
        writeSlot(memory, lay.globals + global * kSlotBytes,
                  proto_base + proto_idx, kTagFun);

    // Fresh chunk entry: the stack pointer is re-armed (the previous
    // chunk halted wherever it halted) and the TRT is flushed so the
    // new _start's set_trt programming starts from an empty table, as
    // an OS would restore a fresh typed context at engine launch.
    core_->regs().writeGpr(isa::reg::sp, core_->config().stackTop);
    core_->trt().flush();

    codeCursor_ = staged.codeEnd;
    constCursor_ = staged.constEnd;
    ++chunkCount_;
    return true;
}

// ---------------------------------------------------------------------
// Snapshots.

void
LuaVm::saveState(VmState &out) const
{
    core_->saveMachine(out.machine);
    interner_.exportTable(out.interns);
    shadow_.exportEntries(out.shadow);
    out.codeCursor = codeCursor_;
    out.constCursor = constCursor_;
    out.protoCount = module_.protos.size();
    out.chunkCount = chunkCount_;
}

bool
LuaVm::restoreState(const VmState &in)
{
    if (in.protoCount != module_.protos.size() ||
        in.chunkCount != chunkCount_)
        return false;
    if (!core_->restoreMachine(in.machine))
        return false;
    interner_.importTable(in.interns);
    shadow_.importEntries(in.shadow);
    codeCursor_ = in.codeCursor;
    constCursor_ = in.constCursor;
    return true;
}

int
LuaVm::run()
{
    return core_->run();
}

std::map<std::string, uint64_t>
LuaVm::bytecodeProfile() const
{
    std::map<std::string, uint64_t> profile;
    const core::Markers &markers = core_->markers();
    for (size_t i = 0; i < markers.count(); ++i) {
        const std::string &name = markers.name(i);
        if (startsWith(name, "op:") && name.find(":flt") == std::string::npos)
            profile[name.substr(3)] += markers.hits(i);
    }
    return profile;
}

uint64_t
LuaVm::dynamicBytecodes() const
{
    return core_->markers().hitsByName("dispatch");
}

// ---------------------------------------------------------------------
// Host runtime.

void
LuaVm::registerHostcalls()
{
    const auto bind = [this](unsigned id, const char *name,
                             core::HcallCost cost,
                             void (LuaVm::*fn)(core::HostEnv &)) {
        hostcalls_.add(id, name, cost,
                       [this, fn](core::HostEnv &env) { (this->*fn)(env); });
    };
    bind(kHcPrint, "lua.print", {100, 150}, &LuaVm::hcPrint);
    bind(kHcNewTable, "lua.newtable", {80, 120}, &LuaVm::hcNewTable);
    bind(kHcTabGetSlow, "lua.tabget", {50, 80}, &LuaVm::hcTabGetSlow);
    bind(kHcTabSetSlow, "lua.tabset", {60, 100}, &LuaVm::hcTabSetSlow);
    bind(kHcConcat, "lua.concat", {80, 120}, &LuaVm::hcConcat);
    bind(kHcFloor, "lua.floor", {20, 30}, &LuaVm::hcFloor);
    bind(kHcSubstr, "lua.substr", {60, 90}, &LuaVm::hcSubstr);
    bind(kHcStrChar, "lua.strchar", {40, 60}, &LuaVm::hcStrChar);
    bind(kHcAbs, "lua.abs", {20, 30}, &LuaVm::hcAbs);
    bind(kHcFmod, "lua.fmod", {30, 45}, &LuaVm::hcFmod);
    hostcalls_.add(kHcError, "lua.error", {1, 1}, [](core::HostEnv &env) {
        tarch_fatal("lua runtime error %llu",
                    static_cast<unsigned long long>(
                        env.regs.gpr(isa::reg::a0).v));
    });
}

void
LuaVm::hcPrint(core::HostEnv &env)
{
    const uint64_t base = env.regs.gpr(isa::reg::a0).v;
    const Slot slot = readSlot(env.memory, base + kSlotBytes);
    std::string text;
    switch (slot.t) {
      case kTagNil: text = "nil"; break;
      case kTagBool: text = slot.v ? "true" : "false"; break;
      case kTagInt:
        text = strformat("%lld", static_cast<long long>(slot.v));
        break;
      case kTagFlt: {
        double d;
        std::memcpy(&d, &slot.v, 8);
        text = luaFloatToString(d);
        break;
      }
      case kTagStr: text = Interner::read(*core_, slot.v); break;
      case kTagTab:
        text = strformat("table: 0x%llx",
                         static_cast<unsigned long long>(slot.v));
        break;
      case kTagFun:
        text = strformat("function: %llu",
                         static_cast<unsigned long long>(slot.v));
        break;
      default:
        text = strformat("<tag 0x%02x>", slot.t);
    }
    env.output += text;
    env.output += '\n';
}

void
LuaVm::hcNewTable(core::HostEnv &env)
{
    const uint64_t dst = env.regs.gpr(isa::reg::a0).v;
    const uint64_t hdr = core_->allocHeap(kTabHeaderBytes);
    // Fields (array ptr, capacity, length) are zero-initialized memory.
    writeSlot(env.memory, dst, hdr, kTagTab);
}

namespace {

/**
 * Grow a table's array part to hold index @p want, migrating any shadow
 * integer keys that now fall inside the array.
 */
void
growArray(core::Core &core, ShadowHash &shadow, uint64_t hdr, int64_t want)
{
    mem::MainMemory &memory = core.memory();
    const uint64_t old_cap = memory.read64(hdr + kTabArrayCap);
    uint64_t new_cap = old_cap ? old_cap : 8;
    while (new_cap < static_cast<uint64_t>(want))
        new_cap *= 2;
    const uint64_t new_arr = core.allocHeap(new_cap * kSlotBytes);
    const uint64_t old_arr = memory.read64(hdr + kTabArrayPtr);
    if (old_cap) {
        std::vector<uint8_t> buf(old_cap * kSlotBytes);
        memory.readBlock(old_arr, buf.data(), buf.size());
        memory.writeBlock(new_arr, buf.data(), buf.size());
    }
    memory.write64(hdr + kTabArrayPtr, new_arr);
    memory.write64(hdr + kTabArrayCap, new_cap);
    // Migrate shadow integer keys now covered by the array.
    for (int64_t k = static_cast<int64_t>(old_cap) + 1;
         k <= static_cast<int64_t>(new_cap); ++k) {
        const ShadowHash::Slot s =
            shadow.get(hdr, false, static_cast<uint64_t>(k));
        if (s.tag != kTagNil) {
            writeSlot(memory, new_arr + (k - 1) * kSlotBytes, s.value,
                      s.tag);
            shadow.set(hdr, false, static_cast<uint64_t>(k), {});
            const uint64_t len = memory.read64(hdr + kTabLen);
            if (static_cast<uint64_t>(k) > len)
                memory.write64(hdr + kTabLen, k);
        }
    }
}

} // namespace

void
LuaVm::hcTabGetSlow(core::HostEnv &env)
{
    const uint64_t hdr = env.regs.gpr(isa::reg::a0).v;
    const uint64_t key_addr = env.regs.gpr(isa::reg::a1).v;
    const uint64_t dst = env.regs.gpr(isa::reg::a2).v;
    const Slot key = readSlot(env.memory, key_addr);
    int64_t ikey;
    if (keyAsInt(key, ikey)) {
        const uint64_t cap = env.memory.read64(hdr + kTabArrayCap);
        if (ikey >= 1 && static_cast<uint64_t>(ikey) <= cap) {
            const uint64_t arr = env.memory.read64(hdr + kTabArrayPtr);
            const Slot v =
                readSlot(env.memory, arr + (ikey - 1) * kSlotBytes);
            writeSlot(env.memory, dst, v.v, v.t);
            return;
        }
        const ShadowHash::Slot s =
            shadow_.get(hdr, false, static_cast<uint64_t>(ikey));
        writeSlot(env.memory, dst, s.value, s.tag);
        return;
    }
    if (key.t == kTagStr) {
        const ShadowHash::Slot s = shadow_.get(hdr, true, key.v);
        writeSlot(env.memory, dst, s.value, s.tag);
        return;
    }
    tarch_fatal("lua runtime: invalid table key (tag 0x%02x)", key.t);
}

void
LuaVm::hcTabSetSlow(core::HostEnv &env)
{
    const uint64_t hdr = env.regs.gpr(isa::reg::a0).v;
    const uint64_t key_addr = env.regs.gpr(isa::reg::a1).v;
    const uint64_t val_addr = env.regs.gpr(isa::reg::a2).v;
    const Slot key = readSlot(env.memory, key_addr);
    const Slot val = readSlot(env.memory, val_addr);
    int64_t ikey;
    if (keyAsInt(key, ikey)) {
        const uint64_t cap = env.memory.read64(hdr + kTabArrayCap);
        // Keep dense prefixes in the array part (Lua-style policy):
        // grow when the key extends the array by a bounded amount.
        if (ikey >= 1 &&
            (static_cast<uint64_t>(ikey) <= 2 * cap + 8)) {
            if (static_cast<uint64_t>(ikey) > cap)
                growArray(*core_, shadow_, hdr, ikey);
            const uint64_t arr = env.memory.read64(hdr + kTabArrayPtr);
            writeSlot(env.memory, arr + (ikey - 1) * kSlotBytes, val.v,
                      val.t);
            const uint64_t len = env.memory.read64(hdr + kTabLen);
            if (static_cast<uint64_t>(ikey) > len)
                env.memory.write64(hdr + kTabLen, ikey);
            return;
        }
        shadow_.set(hdr, false, static_cast<uint64_t>(ikey),
                    {val.v, val.t});
        return;
    }
    if (key.t == kTagStr) {
        shadow_.set(hdr, true, key.v, {val.v, val.t});
        return;
    }
    tarch_fatal("lua runtime: invalid table key (tag 0x%02x)", key.t);
}

void
LuaVm::hcConcat(core::HostEnv &env)
{
    const uint64_t dst = env.regs.gpr(isa::reg::a0).v;
    const auto stringify = [&](uint64_t addr) -> std::string {
        const Slot s = readSlot(env.memory, addr);
        switch (s.t) {
          case kTagStr: return Interner::read(*core_, s.v);
          case kTagInt:
            return strformat("%lld", static_cast<long long>(s.v));
          case kTagFlt: {
            double d;
            std::memcpy(&d, &s.v, 8);
            return luaFloatToString(d);
          }
          default:
            tarch_fatal("lua runtime: cannot concatenate tag 0x%02x", s.t);
        }
    };
    const std::string text = stringify(env.regs.gpr(isa::reg::a1).v) +
                             stringify(env.regs.gpr(isa::reg::a2).v);
    writeSlot(env.memory, dst, interner_.intern(*core_, text), kTagStr);
}

void
LuaVm::hcFloor(core::HostEnv &env)
{
    const uint64_t base = env.regs.gpr(isa::reg::a0).v;
    const Slot arg = readSlot(env.memory, base + kSlotBytes);
    int64_t result;
    if (arg.t == kTagInt)
        result = static_cast<int64_t>(arg.v);
    else
        result = static_cast<int64_t>(
            std::floor(slotToDouble(arg, "floor")));
    writeSlot(env.memory, base, static_cast<uint64_t>(result), kTagInt);
}

void
LuaVm::hcSubstr(core::HostEnv &env)
{
    const uint64_t base = env.regs.gpr(isa::reg::a0).v;
    const Slot s = readSlot(env.memory, base + kSlotBytes);
    const Slot is = readSlot(env.memory, base + 2 * kSlotBytes);
    const Slot js = readSlot(env.memory, base + 3 * kSlotBytes);
    if (s.t != kTagStr)
        tarch_fatal("lua runtime: substr expects a string");
    int64_t i, j;
    if (!keyAsInt(is, i) || !keyAsInt(js, j))
        tarch_fatal("lua runtime: substr expects integer indexes");
    const std::string text = Interner::read(*core_, s.v);
    const int64_t len = static_cast<int64_t>(text.size());
    if (i < 0)
        i = len + i + 1;
    if (j < 0)
        j = len + j + 1;
    if (i < 1)
        i = 1;
    if (j > len)
        j = len;
    std::string sub;
    if (i <= j)
        sub = text.substr(i - 1, j - i + 1);
    writeSlot(env.memory, base, interner_.intern(*core_, sub), kTagStr);
}

void
LuaVm::hcStrChar(core::HostEnv &env)
{
    const uint64_t base = env.regs.gpr(isa::reg::a0).v;
    const Slot arg = readSlot(env.memory, base + kSlotBytes);
    int64_t c;
    if (!keyAsInt(arg, c))
        tarch_fatal("lua runtime: strchar expects an integer");
    const std::string text(1, static_cast<char>(c));
    writeSlot(env.memory, base, interner_.intern(*core_, text), kTagStr);
}

void
LuaVm::hcAbs(core::HostEnv &env)
{
    const uint64_t base = env.regs.gpr(isa::reg::a0).v;
    const Slot arg = readSlot(env.memory, base + kSlotBytes);
    if (arg.t == kTagInt) {
        const int64_t v = static_cast<int64_t>(arg.v);
        writeSlot(env.memory, base, static_cast<uint64_t>(v < 0 ? -v : v),
                  kTagInt);
        return;
    }
    const double d = std::fabs(slotToDouble(arg, "abs"));
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    writeSlot(env.memory, base, bits, kTagFlt);
}

void
LuaVm::hcFmod(core::HostEnv &env)
{
    const uint64_t dst = env.regs.gpr(isa::reg::a0).v;
    const Slot lhs = readSlot(env.memory, env.regs.gpr(isa::reg::a1).v);
    const Slot rhs = readSlot(env.memory, env.regs.gpr(isa::reg::a2).v);
    const double a = slotToDouble(lhs, "%");
    const double b = slotToDouble(rhs, "%");
    double r = std::fmod(a, b);
    if (r != 0.0 && ((r < 0.0) != (b < 0.0)))
        r += b;  // Lua: result sign follows the divisor
    uint64_t bits;
    std::memcpy(&bits, &r, 8);
    writeSlot(env.memory, dst, bits, kTagFlt);
}

} // namespace tarch::vm::lua
