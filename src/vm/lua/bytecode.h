/**
 * @file
 * MiniLua bytecode: a register-based instruction set modelled on Lua 5.3
 * (paper Section 4.1).  One 32-bit word per instruction:
 *
 *   op[5:0] | A[13:6] | B[22:14] | C[31:23]
 *
 * B and C are 9-bit RK operands: bit 8 selects the constant pool, bits
 * 7:0 index registers or constants (as in Lua).  Jump-type instructions
 * replace B/C with an 18-bit signed word offset sBx in bits [31:14],
 * relative to the already-incremented pc.
 *
 * Value layout (paper Section 4.1): one variable is a 16-byte slot, an
 * 8-byte value followed by a 1-byte tag (7 pad bytes).  Tag encoding
 * follows Lua 5.3 with the paper's one-bit F/I extension in the MSB:
 * NIL=0x00 BOOL=0x01 FLT=0x83 INT=0x13 STR=0x04 TAB=0x05 FUN=0x06.
 */

#ifndef TARCH_VM_LUA_BYTECODE_H
#define TARCH_VM_LUA_BYTECODE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tarch::vm::lua {

enum class Op : uint8_t {
    MOVE = 0,   ///< R[A] = R[B]
    LOADK,      ///< R[A] = K[B]
    LOADNIL,    ///< R[A] = nil
    LOADBOOL,   ///< R[A] = (bool)B
    GETGLOBAL,  ///< R[A] = G[B]
    SETGLOBAL,  ///< G[B] = R[A]
    GETTABLE,   ///< R[A] = R[B][RK(C)]         (hot, type-guarded)
    SETTABLE,   ///< R[A][RK(B)] = RK(C)        (hot, type-guarded)
    NEWTABLE,   ///< R[A] = {}
    ADD,        ///< R[A] = RK(B) + RK(C)       (hot, polymorphic)
    SUB,        ///< R[A] = RK(B) - RK(C)       (hot, polymorphic)
    MUL,        ///< R[A] = RK(B) * RK(C)       (hot, polymorphic)
    DIV,        ///< R[A] = RK(B) / RK(C)       (float result)
    IDIV,       ///< R[A] = RK(B) // RK(C)
    MOD,        ///< R[A] = RK(B) % RK(C)
    UNM,        ///< R[A] = -R[B]
    NOT,        ///< R[A] = not R[B]
    LEN,        ///< R[A] = #R[B]
    CONCAT,     ///< R[A] = RK(B) .. RK(C)
    EQ,         ///< R[A] = RK(B) == RK(C)
    NE,         ///< R[A] = RK(B) ~= RK(C)
    LT,         ///< R[A] = RK(B) <  RK(C)
    LE,         ///< R[A] = RK(B) <= RK(C)
    JMP,        ///< pc += sBx
    JMPF,       ///< if falsy(R[A]) pc += sBx
    JMPT,       ///< if truthy(R[A]) pc += sBx
    CALL,       ///< call R[A] with B args at R[A+1..]; result -> R[A]
    RETURN,     ///< return R[A] if B else nil
    FORPREP,    ///< numeric for setup; pc += sBx
    FORLOOP,    ///< numeric for step; loop back by sBx
    BUILTIN,    ///< R[A] = builtin B (args at R[A+1..A+C])
    NOP,

    // Guard-elided forms, rewritten in by analysis/elide.{h,cc} at
    // bytecode sites whose operand tags the type-inference pass proved
    // monomorphic (docs/ANALYSIS.md).  Handler bodies carry no tag
    // extract/compare/branch in any ISA variant; the *_E table forms
    // keep the array-bounds check (a range property, not a type guard).
    ADD_II,     ///< R[A] = RK(B) + RK(C), both proven Int
    SUB_II,
    MUL_II,
    ADD_FF,     ///< R[A] = RK(B) + RK(C), both proven Flt
    SUB_FF,
    MUL_FF,
    GETTAB_E,   ///< GETTABLE with R[B]:Tab and RK(C):Int proven
    SETTAB_E,   ///< SETTABLE with R[A]:Tab and RK(B):Int proven

    NumOps,
};

constexpr unsigned kNumOps = static_cast<unsigned>(Op::NumOps);

/** Builtin function ids for Op::BUILTIN. */
enum class Builtin : uint8_t {
    Print = 0,
    Sqrt,
    Floor,
    Substr,   ///< substr(s, i, j), 1-based inclusive like string.sub
    StrChar,  ///< strchar(i): one-character string
    Abs,
    NumBuiltins,
};

// Value tags (Lua 5.3 with the F/I MSB extension).
constexpr uint8_t kTagNil = 0x00;
constexpr uint8_t kTagBool = 0x01;
constexpr uint8_t kTagFlt = 0x83;
constexpr uint8_t kTagInt = 0x13;
constexpr uint8_t kTagStr = 0x04;
constexpr uint8_t kTagTab = 0x05;
constexpr uint8_t kTagFun = 0x06;

constexpr unsigned kSlotBytes = 16;   ///< 8-byte value + tag + padding
constexpr unsigned kRkConstFlag = 0x100;
constexpr unsigned kMaxRegs = 250;
constexpr unsigned kMaxConsts = 256;  ///< RK-addressable constants

// Table object header layout (guest memory).
constexpr unsigned kTabArrayPtr = 0;
constexpr unsigned kTabArrayCap = 8;
constexpr unsigned kTabLen = 16;
constexpr unsigned kTabHeaderBytes = 24;

// String object layout (guest memory): {len, bytes..., NUL}.
constexpr unsigned kStrLen = 0;
constexpr unsigned kStrBytes = 8;

/** Encode an ABC-format instruction. */
constexpr uint32_t
encodeAbc(Op op, unsigned a, unsigned b, unsigned c)
{
    return static_cast<uint32_t>(op) | (a << 6) | (b << 14) | (c << 23);
}

/** Encode a jump-format instruction (sbx in words, pre-incremented pc). */
constexpr uint32_t
encodeAsbx(Op op, unsigned a, int32_t sbx)
{
    return static_cast<uint32_t>(op) | (a << 6) |
           (static_cast<uint32_t>(sbx & 0x3FFFF) << 14);
}

/** Mnemonic for disassembly and marker names. */
std::string_view opName(Op op);

/** Human-readable bytecode listing (debugging). */
std::string disassemble(const std::vector<uint32_t> &code);

} // namespace tarch::vm::lua

#endif // TARCH_VM_LUA_BYTECODE_H
