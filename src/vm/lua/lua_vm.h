/**
 * @file
 * MiniLua VM: compiles a MiniScript source, generates the interpreter
 * for the chosen ISA variant, assembles it, builds the guest image
 * (bytecode, constant pools, proto table, globals), binds the host
 * runtime intrinsics, and runs it on the simulated core.
 */

#ifndef TARCH_VM_LUA_LUA_VM_H
#define TARCH_VM_LUA_LUA_VM_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "assembler/assembler.h"
#include "core/core.h"
#include "vm/image.h"
#include "vm/lua/compiler.h"
#include "vm/runtime.h"
#include "vm/variant.h"

namespace tarch::vm::lua {

class LuaVm
{
  public:
    struct Options {
        Variant variant = Variant::Baseline;
        core::CoreConfig coreConfig;  ///< overflow/heap fields overridden
        GuestLayout layout;
        /** Run type inference and rewrite provably monomorphic sites
         *  to the guard-free opcodes (analysis/elide.h). */
        bool elide = false;
    };

    explicit LuaVm(const std::string &source);
    LuaVm(const std::string &source, const Options &opts);

    /** Run to completion; returns the guest exit code. */
    int run();

    core::Core &core() { return *core_; }
    const std::string &output() const { return core_->output(); }
    const Module &module() const { return module_; }
    Variant variant() const { return opts_.variant; }
    /** The assembled interpreter image (for the static verifier). */
    const assembler::Program &program() const { return program_; }

    /** Dynamic bytecode counts by mnemonic (from handler-entry markers). */
    std::map<std::string, uint64_t> bytecodeProfile() const;

    /** Total dynamic bytecodes executed (dispatch marker hits). */
    uint64_t dynamicBytecodes() const;

    /**
     * PCs of the fast-path type-guard instructions in the interpreter
     * image (empty when the variant's hot handlers have none).  Count
     * Retire events at these addresses to measure dynamic guard work.
     */
    const std::vector<uint64_t> &guardPcs() const { return guardPcs_; }

  private:
    void buildImage();
    void registerHostcalls();

    // hcall implementations (see interp_gen.h for the contract).
    void hcPrint(core::HostEnv &env);
    void hcNewTable(core::HostEnv &env);
    void hcTabGetSlow(core::HostEnv &env);
    void hcTabSetSlow(core::HostEnv &env);
    void hcConcat(core::HostEnv &env);
    void hcFloor(core::HostEnv &env);
    void hcSubstr(core::HostEnv &env);
    void hcStrChar(core::HostEnv &env);
    void hcAbs(core::HostEnv &env);
    void hcFmod(core::HostEnv &env);

    Options opts_;
    Module module_;
    assembler::Program program_;
    std::vector<uint64_t> guardPcs_;
    core::HostcallRegistry hostcalls_;
    std::unique_ptr<core::Core> core_;
    Interner interner_;
    ShadowHash shadow_;
};

} // namespace tarch::vm::lua

#endif // TARCH_VM_LUA_LUA_VM_H
