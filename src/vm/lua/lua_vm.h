/**
 * @file
 * MiniLua VM: compiles a MiniScript source, generates the interpreter
 * for the chosen ISA variant, assembles it, builds the guest image
 * (bytecode, constant pools, proto table, globals), binds the host
 * runtime intrinsics, and runs it on the simulated core.
 */

#ifndef TARCH_VM_LUA_LUA_VM_H
#define TARCH_VM_LUA_LUA_VM_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "assembler/assembler.h"
#include "core/core.h"
#include "vm/image.h"
#include "vm/lua/compiler.h"
#include "vm/runtime.h"
#include "vm/variant.h"
#include "vm/vm_state.h"

namespace tarch::vm::lua {

class LuaVm
{
  public:
    struct Options {
        Variant variant = Variant::Baseline;
        core::CoreConfig coreConfig;  ///< overflow/heap fields overridden
        GuestLayout layout;
        /** Run type inference and rewrite provably monomorphic sites
         *  to the guard-free opcodes (analysis/elide.h). */
        bool elide = false;
    };

    explicit LuaVm(const std::string &source);
    LuaVm(const std::string &source, const Options &opts);

    /** Run to completion; returns the guest exit code. */
    int run();

    core::Core &core() { return *core_; }
    const std::string &output() const { return core_->output(); }
    const Module &module() const { return module_; }
    Variant variant() const { return opts_.variant; }
    /** The assembled interpreter image (for the static verifier). */
    const assembler::Program &program() const { return program_; }

    /** Dynamic bytecode counts by mnemonic (from handler-entry markers). */
    std::map<std::string, uint64_t> bytecodeProfile() const;

    /** Total dynamic bytecodes executed (dispatch marker hits). */
    uint64_t dynamicBytecodes() const;

    /**
     * PCs of the fast-path type-guard instructions in the interpreter
     * image (empty when the variant's hot handlers have none).  Count
     * Retire events at these addresses to measure dynamic guard work.
     */
    const std::vector<uint64_t> &guardPcs() const { return guardPcs_; }

    // --- Stateful sessions (docs/SERVING.md) -------------------------
    //
    // A session VM accepts follow-on MiniScript chunks after the
    // constructor source has run: globals (and functions bound to them)
    // persist, each chunk's main body runs to completion on the same
    // machine.  Sessions must be built with elide=false: cross-chunk
    // global mutation invalidates whole-module type inference.

    /**
     * A compiled-but-not-installed chunk.  prepareChunk() mutates no VM
     * state, so the caller can verify @c program (the regenerated
     * interpreter) and, on rejection, leave the session untouched.
     */
    struct StagedChunk {
        Module module;  ///< chunk-local protos (0 = chunk main)
        assembler::Program program;
        std::vector<std::pair<std::string, std::string>> markers;
        std::vector<std::string> guardLabels;
        std::vector<uint64_t> codeAddr;
        std::vector<uint64_t> constAddr;
        uint64_t codeEnd = 0;     ///< cursor after this chunk
        uint64_t constEnd = 0;
        uint64_t baseCode = 0;    ///< cursors the layout assumed
        uint64_t baseConst = 0;
        uint64_t baseProtos = 0;
    };

    /** Compile @p source against the session's accumulated globals and
        regenerate the interpreter.  Throws FatalError on compile
        errors; never mutates the VM. */
    StagedChunk prepareChunk(const std::string &source) const;

    /** Install a staged chunk (append protos, lay out its image, reload
        the interpreter, reset the machine for a fresh entry).  False
        with @p error set — and the VM unusable for further chunks but
        otherwise intact — only when the image regions are full or the
        stage is out of date. */
    bool commitChunk(const StagedChunk &chunk, std::string &error);

    // --- Snapshots (docs/SNAPSHOT.md) --------------------------------

    /** Capture the complete VM state.  Pure: continuing afterwards is
        bit-identical to never having called this. */
    void saveState(VmState &out) const;

    /** Overwrite this VM — rebuilt from the same compile inputs and
        chunk sequence — with a captured state.  False on any shape
        mismatch; the VM must then be discarded. */
    bool restoreState(const VmState &in);

  private:
    void buildImage();
    void registerHostcalls();

    // hcall implementations (see interp_gen.h for the contract).
    void hcPrint(core::HostEnv &env);
    void hcNewTable(core::HostEnv &env);
    void hcTabGetSlow(core::HostEnv &env);
    void hcTabSetSlow(core::HostEnv &env);
    void hcConcat(core::HostEnv &env);
    void hcFloor(core::HostEnv &env);
    void hcSubstr(core::HostEnv &env);
    void hcStrChar(core::HostEnv &env);
    void hcAbs(core::HostEnv &env);
    void hcFmod(core::HostEnv &env);

    Options opts_;
    Module module_;
    assembler::Program program_;
    std::vector<uint64_t> guardPcs_;
    core::HostcallRegistry hostcalls_;
    std::unique_ptr<core::Core> core_;
    Interner interner_;
    ShadowHash shadow_;

    // Session image cursors (next free byte in each region) and the
    // installed-chunk count; see vm/vm_state.h.
    uint64_t codeCursor_ = 0;
    uint64_t constCursor_ = 0;
    uint64_t chunkCount_ = 1;
};

} // namespace tarch::vm::lua

#endif // TARCH_VM_LUA_LUA_VM_H
