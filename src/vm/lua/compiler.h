/**
 * @file
 * MiniScript -> MiniLua bytecode compiler (register allocation in the
 * style of Lua's one-pass code generator).
 */

#ifndef TARCH_VM_LUA_COMPILER_H
#define TARCH_VM_LUA_COMPILER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "script/ast.h"
#include "vm/lua/bytecode.h"

namespace tarch::vm::lua {

/** A compile-time constant; string pointers are patched at image build. */
struct Const {
    enum class Kind : uint8_t { Int, Flt, Str } kind;
    int64_t ival = 0;
    double fval = 0.0;
    std::string sval;
};

/** One compiled function. */
struct Proto {
    std::string name;
    unsigned nparams = 0;
    unsigned nregs = 0;  ///< frame size in registers
    std::vector<uint32_t> code;
    std::vector<Const> consts;
};

/** A compiled script: protos (index 0 = main chunk) plus global layout. */
struct Module {
    std::vector<Proto> protos;
    std::vector<std::string> globalNames;
    /** (global slot, proto index) pairs to initialize with FUN values. */
    std::vector<std::pair<unsigned, unsigned>> functionGlobals;
};

/** Compile a parsed chunk.  Throws FatalError on semantic errors. */
Module compile(const script::Chunk &chunk);

} // namespace tarch::vm::lua

#endif // TARCH_VM_LUA_COMPILER_H
