/**
 * @file
 * MiniScript -> MiniLua bytecode compiler (register allocation in the
 * style of Lua's one-pass code generator).
 */

#ifndef TARCH_VM_LUA_COMPILER_H
#define TARCH_VM_LUA_COMPILER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "script/ast.h"
#include "vm/lua/bytecode.h"

namespace tarch::vm::lua {

/** A compile-time constant; string pointers are patched at image build. */
struct Const {
    enum class Kind : uint8_t { Int, Flt, Str } kind;
    int64_t ival = 0;
    double fval = 0.0;
    std::string sval;
};

/** One compiled function. */
struct Proto {
    std::string name;
    unsigned nparams = 0;
    unsigned nregs = 0;  ///< frame size in registers
    std::vector<uint32_t> code;
    std::vector<Const> consts;
};

/** A compiled script: protos (index 0 = main chunk) plus global layout. */
struct Module {
    std::vector<Proto> protos;
    std::vector<std::string> globalNames;
    /** (global slot, proto index) pairs to initialize with FUN values. */
    std::vector<std::pair<unsigned, unsigned>> functionGlobals;
};

/** Compile a parsed chunk.  Throws FatalError on semantic errors. */
Module compile(const script::Chunk &chunk);

/**
 * Cross-chunk compile context for stateful sessions (docs/SERVING.md):
 * the global slot assignments and function arities accumulated from
 * previously installed chunks, so a later chunk resolves the same names
 * to the same slots and can call earlier functions.
 */
struct ChunkSeed {
    /** Slot-ordered global names of the session so far. */
    std::vector<std::string> globalNames;
    /** (name, nparams) of callable session functions, in definition
        order; a later entry for the same name wins (redefinition). */
    std::vector<std::pair<std::string, unsigned>> functionArity;
};

/** Compile a follow-on session chunk against @p seed.  The returned
    module's globalNames extends the seed's (same slots, new names
    appended); its protos are chunk-local (index 0 = chunk main). */
Module compile(const script::Chunk &chunk, const ChunkSeed &seed);

} // namespace tarch::vm::lua

#endif // TARCH_VM_LUA_COMPILER_H
