#include "vm/lua/interp_gen.h"

#include <cstdarg>

#include "common/strutil.h"
#include "vm/asm_emitter.h"
#include "vm/lua/bytecode.h"

namespace tarch::vm::lua {

namespace {

class Gen
{
  public:
    Gen(Variant variant, const GuestLayout &layout, uint64_t main_code,
        uint64_t main_consts)
        : v_(variant), lay_(layout), mainCode_(main_code),
          mainConsts_(main_consts)
    {
    }

    InterpResult
    run()
    {
        entry();
        dispatch();
        simpleHandlers();
        arithHandlers();
        divModHandlers();
        unaryHandlers();
        compareHandlers();
        jumpHandlers();
        tableHandlers();
        elidedHandlers();
        callReturnHandlers();
        forHandlers();
        builtinHandler();
        errorsAndExit();
        dataSection();
        InterpResult result;
        result.asmText = e_.take();
        result.markers = std::move(markers_);
        result.guardLabels = std::move(guards_);
        return result;
    }

  private:
    // ------------------------------------------------------------------
    // Common emission idioms.

    void
    handler(Op op)
    {
        const std::string sym =
            "op_" + toLower(std::string(opName(op)));
        e_.l(sym);
        markers_.emplace_back(sym, "op:" + std::string(opName(op)));
    }

    void
    subMarker(const std::string &sym, const std::string &name)
    {
        e_.l(sym);
        markers_.emplace_back(sym, name);
    }

    /** Label the next emitted instruction as a dynamic type guard. */
    void
    guard()
    {
        const std::string sym = e_.fresh("grd");
        e_.l(sym);
        guards_.push_back(sym);
    }

    /** t2 = &R[A] */
    void
    decodeA()
    {
        e_.o("srli t2, t0, 6");
        e_.o("andi t2, t2, 255");
        e_.o("slli t2, t2, 4");
        e_.o("add  t2, t2, s3");
    }

    /** dst = &R[B] (B is a plain register field) */
    void
    decodeBReg(const char *dst = "t3")
    {
        e_.o("srli %s, t0, 14", dst);
        e_.o("andi %s, %s, 255", dst, dst);
        e_.o("slli %s, %s, 4", dst, dst);
        e_.o("add  %s, %s, s3", dst, dst);
    }

    /** dst = RK(B): register or constant slot pointer. */
    void
    decodeBRk(const char *dst = "t3")
    {
        const std::string lk = e_.fresh("rkb_k");
        const std::string ld = e_.fresh("rkb_d");
        e_.o("srli %s, t0, 14", dst);
        e_.o("andi t4, %s, 256", dst);
        e_.o("andi %s, %s, 255", dst, dst);
        e_.o("slli %s, %s, 4", dst, dst);
        e_.o("bnez t4, %s", lk.c_str());
        e_.o("add  %s, %s, s3", dst, dst);
        e_.o("j %s", ld.c_str());
        e_.l(lk);
        e_.o("add  %s, %s, s4", dst, dst);
        e_.l(ld);
    }

    /** dst = RK(C). */
    void
    decodeCRk(const char *dst = "t5")
    {
        const std::string lk = e_.fresh("rkc_k");
        const std::string ld = e_.fresh("rkc_d");
        e_.o("srliw %s, t0, 23", dst);
        e_.o("andi t4, %s, 256", dst);
        e_.o("andi %s, %s, 255", dst, dst);
        e_.o("slli %s, %s, 4", dst, dst);
        e_.o("bnez t4, %s", lk.c_str());
        e_.o("add  %s, %s, s3", dst, dst);
        e_.o("j %s", ld.c_str());
        e_.l(lk);
        e_.o("add  %s, %s, s4", dst, dst);
        e_.l(ld);
    }

    /** 9-bit raw B field (global index, const index, builtin id). */
    void
    decodeBRaw(const char *dst = "t3")
    {
        e_.o("srli %s, t0, 14", dst);
        e_.o("andi %s, %s, 511", dst, dst);
    }

    /** 16-byte slot copy via untyped loads/stores (4 instructions).
     *  Reads both fields before writing so @p src may alias a scratch. */
    void
    copySlot(const char *src, const char *dst)
    {
        e_.o("ld t1, 0(%s)", src);
        e_.o("lbu t4, 8(%s)", src);
        e_.o("sd t1, 0(%s)", dst);
        e_.o("sb t4, 8(%s)", dst);
    }

    /** pc += sBx (t0 still holds the bytecode). */
    void
    applySbx()
    {
        e_.o("srai t4, t0, 14");
        e_.o("slli t4, t4, 2");
        e_.o("add  s2, s2, t4");
    }

    void jDispatch() { e_.o("j dispatch"); }

    /**
     * Convert the number in the slot at @p slot to a double in @p fdst;
     * jumps to err_arith for non-numbers.
     */
    void
    toFloat(const char *slot, const char *fdst)
    {
        const std::string lf = e_.fresh("tof_f");
        const std::string ldone = e_.fresh("tof_d");
        e_.o("lbu a2, 8(%s)", slot);
        e_.o("li  a4, 0x13");
        e_.o("bne a2, a4, %s", lf.c_str());
        e_.o("ld  a5, 0(%s)", slot);
        e_.o("fcvt.d.l %s, a5", fdst);
        e_.o("j %s", ldone.c_str());
        e_.l(lf);
        e_.o("li  a4, 0x83");
        e_.o("bne a2, a4, err_arith");
        e_.o("fld %s, 0(%s)", fdst, slot);
        e_.l(ldone);
    }

    // ------------------------------------------------------------------
    // Program skeleton.

    void
    entry()
    {
        e_.raw(".text\n");
        e_.l("_start");
        e_.o("la s1, jumptable");
        e_.o("li s5, 0x%llx", (unsigned long long)lay_.globals);
        e_.o("li s7, 0x%llx", (unsigned long long)lay_.protos);
        e_.o("li s0, 0x%llx", (unsigned long long)lay_.callStack);
        e_.o("mv s6, s0");
        e_.o("li s3, 0x%llx", (unsigned long long)(lay_.valueStack + 16));
        e_.o("li s2, 0x%llx", (unsigned long long)mainCode_);
        e_.o("li s4, 0x%llx", (unsigned long long)mainConsts_);
        if (v_ == Variant::Typed) {
            // Table 4 configuration and Table 5 rules.
            e_.o("li t0, 1");
            e_.o("setoffset t0");
            e_.o("li t0, 0");
            e_.o("setshift t0");
            e_.o("li t0, 255");
            e_.o("setmask t0");
            for (const char *rule :
                 {"0x00131313", "0x01131313", "0x02131313", "0x00838383",
                  "0x01838383", "0x02838383", "0x03051305", "0x03130505"}) {
                e_.o("li t0, %s", rule);
                e_.o("set_trt t0");
            }
        } else if (v_ == Variant::CheckedLoad) {
            e_.o("li s8, 0x13");  // Int tag
            e_.o("li s9, 0x05");  // Table tag
            // Invariant: R_exptype holds Int except transiently inside
            // the table handlers (the paper's chklb carries the type as
            // an immediate; our settype register is hoisted instead).
            e_.o("settype s8");
        }
        jDispatch();
    }

    void
    dispatch()
    {
        subMarker("dispatch", "dispatch");
        e_.o("lw   t0, 0(s2)");
        e_.o("addi s2, s2, 4");
        e_.o("andi t1, t0, 63");
        e_.o("slli t1, t1, 3");
        e_.o("add  t1, t1, s1");
        e_.o("ld   t1, 0(t1)");
        e_.o("jr   t1");
    }

    void
    simpleHandlers()
    {
        handler(Op::MOVE);
        decodeA();
        decodeBReg();
        copySlot("t3", "t2");
        jDispatch();

        handler(Op::LOADK);
        decodeA();
        decodeBRaw();
        e_.o("slli t3, t3, 4");
        e_.o("add  t3, t3, s4");
        copySlot("t3", "t2");
        jDispatch();

        handler(Op::LOADNIL);
        decodeA();
        e_.o("sd zero, 0(t2)");
        e_.o("sb zero, 8(t2)");
        jDispatch();

        handler(Op::LOADBOOL);
        decodeA();
        e_.o("srli t3, t0, 14");
        e_.o("andi t3, t3, 1");
        e_.o("sd t3, 0(t2)");
        e_.o("li a4, 1");
        e_.o("sb a4, 8(t2)");
        jDispatch();

        handler(Op::GETGLOBAL);
        decodeA();
        decodeBRaw();
        e_.o("slli t3, t3, 4");
        e_.o("add  t3, t3, s5");
        copySlot("t3", "t2");
        jDispatch();

        handler(Op::SETGLOBAL);
        decodeA();
        decodeBRaw();
        e_.o("slli t3, t3, 4");
        e_.o("add  t3, t3, s5");
        copySlot("t2", "t3");
        jDispatch();

        handler(Op::NEWTABLE);
        decodeA();
        e_.o("mv a0, t2");
        e_.o("hcall %u", kHcNewTable);
        jDispatch();

        handler(Op::CONCAT);
        decodeA();
        decodeBRk();
        decodeCRk();
        e_.o("mv a0, t2");
        e_.o("mv a1, t3");
        e_.o("mv a2, t5");
        e_.o("hcall %u", kHcConcat);
        jDispatch();

        handler(Op::NOP);
        jDispatch();
    }

    // ------------------------------------------------------------------
    // Hot polymorphic arithmetic (variant-specific).

    void
    arithHandlers()
    {
        arith(Op::ADD, "add", "fadd.d");
        arith(Op::SUB, "sub", "fsub.d");
        arith(Op::MUL, "mul", "fmul.d");
    }

    void
    arith(Op op, const char *iop, const char *fop)
    {
        const std::string lower = toLower(std::string(opName(op)));
        const std::string slow = "slow_" + lower;

        handler(op);
        decodeA();
        decodeBRk();
        decodeCRk();

        switch (v_) {
          case Variant::Baseline: {
            // Figure 1(c): int/int fast path, flt/flt second, slow third.
            const std::string flt = "op_" + lower + "_flt";
            e_.o("lbu a2, 8(t3)");
            e_.o("li  a4, 0x13");
            guard();
            e_.o("bne a2, a4, %s", flt.c_str());
            e_.o("lbu a5, 8(t5)");
            guard();
            e_.o("bne a5, a4, %s", slow.c_str());
            e_.o("ld a2, 0(t3)");
            e_.o("ld a5, 0(t5)");
            e_.o("%s a5, a2, a5", iop);
            e_.o("sd a5, 0(t2)");
            e_.o("sb a4, 8(t2)");
            jDispatch();
            subMarker(flt, "op:" + std::string(opName(op)) + ":flt");
            e_.o("li  a4, 0x83");
            guard();
            e_.o("bne a2, a4, %s", slow.c_str());
            e_.o("lbu a5, 8(t5)");
            guard();
            e_.o("bne a5, a4, %s", slow.c_str());
            e_.o("fld f2, 0(t3)");
            e_.o("fld f5, 0(t5)");
            e_.o("%s f5, f2, f5", fop);
            e_.o("fsd f5, 0(t2)");
            e_.o("sb a4, 8(t2)");
            jDispatch();
            break;
          }
          case Variant::Typed: {
            // Figure 3: tld/tld/thdl/x-op/tsd.
            e_.o("thdl %s", slow.c_str());
            e_.o("tld a2, 0(t3)");
            e_.o("tld a5, 0(t5)");
            guard(); // the x-op checks both operand tags via the TRT
            e_.o("x%s a5, a2, a5", iop);
            e_.o("tsd a5, 0(t2)");
            jDispatch();
            break;
          }
          case Variant::CheckedLoad: {
            // Fast path fixed to Int at "compile time"; R_exptype
            // already holds Int (set once at launch).
            e_.o("thdl %s", slow.c_str());
            guard();
            e_.o("chklb a2, 8(t3)");
            guard();
            e_.o("chklb a5, 8(t5)");
            e_.o("ld a2, 0(t3)");
            e_.o("ld a5, 0(t5)");
            e_.o("%s a5, a2, a5", iop);
            e_.o("sd a5, 0(t2)");
            e_.o("sb s8, 8(t2)");
            jDispatch();
            break;
          }
        }

        // Shared software slow path.  It must implement the full
        // semantics (the Section 5 path selector can route well-typed
        // executions here): int/int stays integer, everything else
        // converts to float.
        subMarker(slow, "slow:" + std::string(opName(op)));
        {
            const std::string conv = e_.fresh("slow_conv");
            e_.o("lbu a2, 8(t3)");
            e_.o("li  a4, 0x13");
            e_.o("bne a2, a4, %s", conv.c_str());
            e_.o("lbu a5, 8(t5)");
            e_.o("bne a5, a4, %s", conv.c_str());
            e_.o("ld a2, 0(t3)");
            e_.o("ld a5, 0(t5)");
            e_.o("%s a5, a2, a5", iop);
            e_.o("sd a5, 0(t2)");
            e_.o("sb a4, 8(t2)");
            jDispatch();
            e_.l(conv);
        }
        toFloat("t3", "f2");
        toFloat("t5", "f5");
        e_.o("%s f5, f2, f5", fop);
        e_.o("fsd f5, 0(t2)");
        e_.o("li a4, 0x83");
        e_.o("sb a4, 8(t2)");
        jDispatch();
    }

    // ------------------------------------------------------------------
    // DIV / IDIV / MOD: software in every variant (not among the five
    // transformed bytecodes).

    void
    divModHandlers()
    {
        handler(Op::DIV);
        decodeA();
        decodeBRk();
        decodeCRk();
        toFloat("t3", "f2");
        toFloat("t5", "f5");
        e_.o("fdiv.d f5, f2, f5");
        e_.o("fsd f5, 0(t2)");
        e_.o("li a4, 0x83");
        e_.o("sb a4, 8(t2)");
        jDispatch();

        handler(Op::IDIV);
        decodeA();
        decodeBRk();
        decodeCRk();
        {
            const std::string flt = e_.fresh("idiv_f");
            const std::string st = e_.fresh("idiv_st");
            const std::string keep = e_.fresh("idiv_k");
            e_.o("lbu a2, 8(t3)");
            e_.o("li  a4, 0x13");
            e_.o("bne a2, a4, %s", flt.c_str());
            e_.o("lbu a5, 8(t5)");
            e_.o("bne a5, a4, %s", flt.c_str());
            e_.o("ld a5, 0(t3)");
            e_.o("ld a6, 0(t5)");
            e_.o("beqz a6, err_divzero");
            e_.o("div a7, a5, a6");
            // Floor adjustment: trunc != floor when signs differ and the
            // division was inexact.
            e_.o("mul t6, a7, a6");
            e_.o("beq t6, a5, %s", st.c_str());
            e_.o("xor t6, a5, a6");
            e_.o("bgez t6, %s", st.c_str());
            e_.o("addi a7, a7, -1");
            e_.l(st);
            e_.o("sd a7, 0(t2)");
            e_.o("sb a4, 8(t2)");
            jDispatch();
            e_.l(flt);
            toFloat("t3", "f2");
            toFloat("t5", "f5");
            e_.o("fdiv.d f2, f2, f5");
            e_.o("fcvt.l.d a5, f2");
            e_.o("fcvt.d.l f4, a5");
            e_.o("fle.d a6, f4, f2");
            e_.o("bnez a6, %s", keep.c_str());
            e_.o("addi a5, a5, -1");
            e_.l(keep);
            e_.o("fcvt.d.l f4, a5");
            e_.o("fsd f4, 0(t2)");
            e_.o("li a4, 0x83");
            e_.o("sb a4, 8(t2)");
            jDispatch();
        }

        handler(Op::MOD);
        decodeA();
        decodeBRk();
        decodeCRk();
        {
            const std::string flt = e_.fresh("mod_f");
            const std::string st = e_.fresh("mod_st");
            e_.o("lbu a2, 8(t3)");
            e_.o("li  a4, 0x13");
            e_.o("bne a2, a4, %s", flt.c_str());
            e_.o("lbu a5, 8(t5)");
            e_.o("bne a5, a4, %s", flt.c_str());
            e_.o("ld a5, 0(t3)");
            e_.o("ld a6, 0(t5)");
            e_.o("beqz a6, err_divzero");
            e_.o("rem a7, a5, a6");
            // Lua: result sign follows the divisor.
            e_.o("beqz a7, %s", st.c_str());
            e_.o("xor t6, a7, a6");
            e_.o("bgez t6, %s", st.c_str());
            e_.o("add a7, a7, a6");
            e_.l(st);
            e_.o("sd a7, 0(t2)");
            e_.o("sb a4, 8(t2)");
            jDispatch();
            e_.l(flt);
            e_.o("mv a0, t2");
            e_.o("mv a1, t3");
            e_.o("mv a2, t5");
            e_.o("hcall %u", kHcFmod);
            jDispatch();
        }
    }

    // ------------------------------------------------------------------

    void
    unaryHandlers()
    {
        handler(Op::UNM);
        decodeA();
        decodeBReg();
        {
            const std::string flt = e_.fresh("unm_f");
            e_.o("lbu a2, 8(t3)");
            e_.o("li  a4, 0x13");
            e_.o("bne a2, a4, %s", flt.c_str());
            e_.o("ld a5, 0(t3)");
            e_.o("neg a5, a5");
            e_.o("sd a5, 0(t2)");
            e_.o("sb a4, 8(t2)");
            jDispatch();
            e_.l(flt);
            e_.o("li  a4, 0x83");
            e_.o("bne a2, a4, err_arith");
            e_.o("fld f2, 0(t3)");
            e_.o("fneg.d f2, f2");
            e_.o("fsd f2, 0(t2)");
            e_.o("sb a4, 8(t2)");
            jDispatch();
        }

        handler(Op::NOT);
        decodeA();
        decodeBReg();
        {
            const std::string ltrue = e_.fresh("not_t");
            const std::string lfalse = e_.fresh("not_f");
            const std::string lw = e_.fresh("not_w");
            e_.o("lbu a2, 8(t3)");
            e_.o("beqz a2, %s", ltrue.c_str());
            e_.o("addi a3, a2, -1");
            e_.o("bnez a3, %s", lfalse.c_str());
            e_.o("ld a3, 0(t3)");
            e_.o("beqz a3, %s", ltrue.c_str());
            e_.l(lfalse);
            e_.o("li a5, 0");
            e_.o("j %s", lw.c_str());
            e_.l(ltrue);
            e_.o("li a5, 1");
            e_.l(lw);
            e_.o("sd a5, 0(t2)");
            e_.o("li a4, 1");
            e_.o("sb a4, 8(t2)");
            jDispatch();
        }

        handler(Op::LEN);
        decodeA();
        decodeBReg();
        {
            const std::string tab = e_.fresh("len_t");
            const std::string lw = e_.fresh("len_w");
            e_.o("lbu a2, 8(t3)");
            e_.o("li  a4, 0x05");
            e_.o("beq a2, a4, %s", tab.c_str());
            e_.o("li  a4, 0x04");
            e_.o("bne a2, a4, err_len");
            e_.o("ld a6, 0(t3)");
            e_.o("ld a5, 0(a6)");  // string length field
            e_.o("j %s", lw.c_str());
            e_.l(tab);
            e_.o("ld a6, 0(t3)");
            e_.o("ld a5, 16(a6)");  // table length field
            e_.l(lw);
            e_.o("sd a5, 0(t2)");
            e_.o("li a4, 0x13");
            e_.o("sb a4, 8(t2)");
            jDispatch();
        }
    }

    // ------------------------------------------------------------------

    void
    compareHandlers()
    {
        compare(Op::EQ);
        compare(Op::NE);
        compare(Op::LT);
        compare(Op::LE);
    }

    void
    compare(Op op)
    {
        const bool is_eq = op == Op::EQ;
        const bool is_ne = op == Op::NE;
        const bool eqlike = is_eq || is_ne;

        handler(op);
        decodeA();
        decodeBRk();
        decodeCRk();

        const std::string lint = e_.fresh("cmp_ii");
        const std::string lb_ni = e_.fresh("cmp_bni");
        const std::string lmix1 = e_.fresh("cmp_if");
        const std::string lmix2 = e_.fresh("cmp_fi");
        const std::string lfcmp = e_.fresh("cmp_ff");
        const std::string lnn = e_.fresh("cmp_nn");
        const std::string lstore = e_.fresh("cmp_st");

        e_.o("lbu a2, 8(t3)");
        e_.o("lbu a3, 8(t5)");
        e_.o("li  a4, 0x13");
        e_.o("bne a2, a4, %s", lb_ni.c_str());
        e_.o("beq a3, a4, %s", lint.c_str());
        e_.o("li  a4, 0x83");
        e_.o("beq a3, a4, %s", lmix1.c_str());
        e_.o("j %s", lnn.c_str());

        e_.l(lint);
        e_.o("ld a5, 0(t3)");
        e_.o("ld a6, 0(t5)");
        if (is_eq) {
            e_.o("xor a5, a5, a6");
            e_.o("seqz a5, a5");
        } else if (is_ne) {
            e_.o("xor a5, a5, a6");
            e_.o("snez a5, a5");
        } else if (op == Op::LT) {
            e_.o("slt a5, a5, a6");
        } else {
            e_.o("slt a5, a6, a5");
            e_.o("xori a5, a5, 1");
        }
        e_.o("j %s", lstore.c_str());

        e_.l(lmix1);  // b int, c float
        e_.o("ld a5, 0(t3)");
        e_.o("fcvt.d.l f2, a5");
        e_.o("fld f5, 0(t5)");
        e_.o("j %s", lfcmp.c_str());

        e_.l(lb_ni);  // b is not Int
        e_.o("li  a4, 0x83");
        e_.o("bne a2, a4, %s", lnn.c_str());
        e_.o("li  a4, 0x13");
        e_.o("beq a3, a4, %s", lmix2.c_str());
        e_.o("li  a4, 0x83");
        e_.o("bne a3, a4, %s", lnn.c_str());
        e_.o("fld f2, 0(t3)");
        e_.o("fld f5, 0(t5)");
        e_.o("j %s", lfcmp.c_str());

        e_.l(lmix2);  // b float, c int
        e_.o("fld f2, 0(t3)");
        e_.o("ld a5, 0(t5)");
        e_.o("fcvt.d.l f5, a5");

        e_.l(lfcmp);
        if (is_eq) {
            e_.o("feq.d a5, f2, f5");
        } else if (is_ne) {
            e_.o("feq.d a5, f2, f5");
            e_.o("xori a5, a5, 1");
        } else if (op == Op::LT) {
            e_.o("flt.d a5, f2, f5");
        } else {
            e_.o("fle.d a5, f2, f5");
        }
        e_.o("j %s", lstore.c_str());

        e_.l(lnn);  // at least one non-number operand
        if (eqlike) {
            const std::string ldiff = e_.fresh("cmp_diff");
            e_.o("bne a2, a3, %s", ldiff.c_str());
            e_.o("ld a5, 0(t3)");
            e_.o("ld a6, 0(t5)");
            e_.o("xor a5, a5, a6");
            e_.o(is_eq ? "seqz a5, a5" : "snez a5, a5");
            e_.o("j %s", lstore.c_str());
            e_.l(ldiff);
            e_.o("li a5, %d", is_eq ? 0 : 1);
        } else {
            e_.o("j err_compare");
        }

        e_.l(lstore);
        e_.o("sd a5, 0(t2)");
        e_.o("li a4, 1");
        e_.o("sb a4, 8(t2)");
        jDispatch();
    }

    // ------------------------------------------------------------------

    void
    jumpHandlers()
    {
        handler(Op::JMP);
        applySbx();
        jDispatch();

        handler(Op::JMPF);
        decodeA();
        {
            const std::string jump = e_.fresh("jf_y");
            const std::string nojump = e_.fresh("jf_n");
            e_.o("lbu a2, 8(t2)");
            e_.o("beqz a2, %s", jump.c_str());
            e_.o("addi a3, a2, -1");
            e_.o("bnez a3, %s", nojump.c_str());
            e_.o("ld a3, 0(t2)");
            e_.o("bnez a3, %s", nojump.c_str());
            e_.l(jump);
            applySbx();
            e_.l(nojump);
            jDispatch();
        }

        handler(Op::JMPT);
        decodeA();
        {
            const std::string jump = e_.fresh("jt_y");
            const std::string nojump = e_.fresh("jt_n");
            e_.o("lbu a2, 8(t2)");
            e_.o("beqz a2, %s", nojump.c_str());
            e_.o("addi a3, a2, -1");
            e_.o("bnez a3, %s", jump.c_str());
            e_.o("ld a3, 0(t2)");
            e_.o("beqz a3, %s", nojump.c_str());
            e_.l(jump);
            applySbx();
            e_.l(nojump);
            jDispatch();
        }
    }

    // ------------------------------------------------------------------
    // Hot table access (variant-specific).

    void
    tableHandlers()
    {
        gettable();
        settable();
    }

    void
    gettable()
    {
        handler(Op::GETTABLE);
        decodeA();
        decodeBReg();  // table is always a register
        decodeCRk();   // key may be a constant

        switch (v_) {
          case Variant::Baseline:
            e_.o("lbu a2, 8(t3)");
            e_.o("li  a4, 0x05");
            guard();
            e_.o("bne a2, a4, err_index");
            e_.o("lbu a5, 8(t5)");
            e_.o("li  a4, 0x13");
            guard();
            e_.o("bne a5, a4, slow_gettable");
            e_.o("ld a5, 0(t5)");
            e_.o("ld a6, 0(t3)");
            e_.o("ld a7, 8(a6)");
            e_.o("addi a3, a5, -1");
            e_.o("bgeu a3, a7, slow_gettable");
            e_.o("slli a3, a3, 4");
            e_.o("ld a6, 0(a6)");
            e_.o("add a6, a6, a3");
            copySlot("a6", "t2");
            jDispatch();
            break;
          case Variant::Typed:
            e_.o("thdl slow_gettable");
            e_.o("tld a2, 0(t3)");
            e_.o("tld a5, 0(t5)");
            guard();
            e_.o("tchk a2, a5");
            e_.o("ld a7, 8(a2)");
            e_.o("addi a3, a5, -1");
            e_.o("bgeu a3, a7, slow_gettable");
            e_.o("slli a3, a3, 4");
            e_.o("ld a6, 0(a2)");
            e_.o("add a6, a6, a3");
            e_.o("tld a7, 0(a6)");
            e_.o("tsd a7, 0(t2)");
            jDispatch();
            break;
          case Variant::CheckedLoad:
            e_.o("thdl slow_gettable");
            e_.o("settype s9");
            guard();
            e_.o("chklb a2, 8(t3)");
            e_.o("settype s8");
            guard();
            e_.o("chklb a5, 8(t5)");
            e_.o("ld a5, 0(t5)");
            e_.o("ld a6, 0(t3)");
            e_.o("ld a7, 8(a6)");
            e_.o("addi a3, a5, -1");
            e_.o("bgeu a3, a7, slow_gettable");
            e_.o("slli a3, a3, 4");
            e_.o("ld a6, 0(a6)");
            e_.o("add a6, a6, a3");
            copySlot("a6", "t2");
            jDispatch();
            break;
        }

        subMarker("slow_gettable", "slow:GETTABLE");
        e_.o("lbu a2, 8(t3)");
        e_.o("li  a4, 0x05");
        e_.o("bne a2, a4, err_index");
        e_.o("ld a0, 0(t3)");
        e_.o("mv a1, t5");
        e_.o("mv a2, t2");
        e_.o("hcall %u", kHcTabGetSlow);
        jDispatch();
    }

    void
    settable()
    {
        handler(Op::SETTABLE);
        decodeA();     // t2 = table slot
        decodeBRk();   // t3 = key
        decodeCRk();   // t5 = value

        const std::string lsk = e_.fresh("st_len");
        switch (v_) {
          case Variant::Baseline:
            e_.o("lbu a2, 8(t2)");
            e_.o("li  a4, 0x05");
            guard();
            e_.o("bne a2, a4, err_index");
            e_.o("lbu a5, 8(t3)");
            e_.o("li  a4, 0x13");
            guard();
            e_.o("bne a5, a4, slow_settable");
            e_.o("ld a5, 0(t3)");
            e_.o("ld a6, 0(t2)");
            e_.o("ld a7, 8(a6)");
            e_.o("addi a3, a5, -1");
            e_.o("bgeu a3, a7, slow_settable");
            e_.o("slli a3, a3, 4");
            e_.o("ld t6, 0(a6)");
            e_.o("add t6, t6, a3");
            copySlot("t5", "t6");
            e_.o("ld a7, 16(a6)");
            e_.o("bge a7, a5, %s", lsk.c_str());
            e_.o("sd a5, 16(a6)");
            e_.l(lsk);
            jDispatch();
            break;
          case Variant::Typed:
            e_.o("thdl slow_settable");
            e_.o("tld a2, 0(t2)");
            e_.o("tld a5, 0(t3)");
            guard();
            e_.o("tchk a2, a5");
            e_.o("ld a7, 8(a2)");
            e_.o("addi a3, a5, -1");
            e_.o("bgeu a3, a7, slow_settable");
            e_.o("slli a3, a3, 4");
            e_.o("ld t6, 0(a2)");
            e_.o("add t6, t6, a3");
            e_.o("tld a7, 0(t5)");
            e_.o("tsd a7, 0(t6)");
            e_.o("ld a7, 16(a2)");
            e_.o("bge a7, a5, %s", lsk.c_str());
            e_.o("sd a5, 16(a2)");
            e_.l(lsk);
            jDispatch();
            break;
          case Variant::CheckedLoad:
            e_.o("thdl slow_settable");
            e_.o("settype s9");
            guard();
            e_.o("chklb a2, 8(t2)");
            e_.o("settype s8");
            guard();
            e_.o("chklb a5, 8(t3)");
            e_.o("ld a5, 0(t3)");
            e_.o("ld a6, 0(t2)");
            e_.o("ld a7, 8(a6)");
            e_.o("addi a3, a5, -1");
            e_.o("bgeu a3, a7, slow_settable");
            e_.o("slli a3, a3, 4");
            e_.o("ld t6, 0(a6)");
            e_.o("add t6, t6, a3");
            copySlot("t5", "t6");
            e_.o("ld a7, 16(a6)");
            e_.o("bge a7, a5, %s", lsk.c_str());
            e_.o("sd a5, 16(a6)");
            e_.l(lsk);
            jDispatch();
            break;
        }

        subMarker("slow_settable", "slow:SETTABLE");
        e_.o("lbu a2, 8(t2)");
        e_.o("li  a4, 0x05");
        e_.o("bne a2, a4, err_index");
        e_.o("ld a0, 0(t2)");
        e_.o("mv a1, t3");
        e_.o("mv a2, t5");
        e_.o("hcall %u", kHcTabSetSlow);
        jDispatch();
    }

    // ------------------------------------------------------------------
    // Guard-elided handlers.  These back the *_II/*_FF/*_E opcodes that
    // analysis/elide.cc rewrites in at provably monomorphic sites, and
    // are deliberately identical across all three ISA variants: no tag
    // extract/compare/branch, no tchk, no chklb.  The *_E table forms
    // keep the array-bounds check (a range property, not a type guard)
    // and their own slow path skips the table-tag recheck -- the type
    // is statically proven.

    void
    elidedHandlers()
    {
        elidedArith(Op::ADD_II, "add", /*isFloat=*/false);
        elidedArith(Op::SUB_II, "sub", /*isFloat=*/false);
        elidedArith(Op::MUL_II, "mul", /*isFloat=*/false);
        elidedArith(Op::ADD_FF, "fadd.d", /*isFloat=*/true);
        elidedArith(Op::SUB_FF, "fsub.d", /*isFloat=*/true);
        elidedArith(Op::MUL_FF, "fmul.d", /*isFloat=*/true);
        elidedGettable();
        elidedSettable();
    }

    void
    elidedArith(Op op, const char *insn, bool isFloat)
    {
        handler(op);
        decodeA();
        decodeBRk();
        decodeCRk();
        if (isFloat) {
            e_.o("fld f2, 0(t3)");
            e_.o("fld f5, 0(t5)");
            e_.o("%s f5, f2, f5", insn);
            e_.o("fsd f5, 0(t2)");
            e_.o("li a4, 0x83");
        } else {
            e_.o("ld a2, 0(t3)");
            e_.o("ld a5, 0(t5)");
            e_.o("%s a5, a2, a5", insn);
            e_.o("sd a5, 0(t2)");
            e_.o("li a4, 0x13");
        }
        e_.o("sb a4, 8(t2)");
        jDispatch();
    }

    void
    elidedGettable()
    {
        handler(Op::GETTAB_E);
        decodeA();
        decodeBReg();
        decodeCRk();
        e_.o("ld a5, 0(t5)"); // key (proven Int)
        e_.o("ld a6, 0(t3)"); // table header (tag proven Tab)
        e_.o("ld a7, 8(a6)");
        e_.o("addi a3, a5, -1");
        e_.o("bgeu a3, a7, slow_gettab_e");
        e_.o("slli a3, a3, 4");
        e_.o("ld a6, 0(a6)");
        e_.o("add a6, a6, a3");
        copySlot("a6", "t2");
        jDispatch();

        subMarker("slow_gettab_e", "slow:GETTAB_E");
        e_.o("ld a0, 0(t3)");
        e_.o("mv a1, t5");
        e_.o("mv a2, t2");
        e_.o("hcall %u", kHcTabGetSlow);
        jDispatch();
    }

    void
    elidedSettable()
    {
        handler(Op::SETTAB_E);
        decodeA();   // t2 = table slot
        decodeBRk(); // t3 = key (proven Int)
        decodeCRk(); // t5 = value
        const std::string lsk = e_.fresh("ste_len");
        e_.o("ld a5, 0(t3)");
        e_.o("ld a6, 0(t2)");
        e_.o("ld a7, 8(a6)");
        e_.o("addi a3, a5, -1");
        e_.o("bgeu a3, a7, slow_settab_e");
        e_.o("slli a3, a3, 4");
        e_.o("ld t6, 0(a6)");
        e_.o("add t6, t6, a3");
        copySlot("t5", "t6");
        e_.o("ld a7, 16(a6)");
        e_.o("bge a7, a5, %s", lsk.c_str());
        e_.o("sd a5, 16(a6)");
        e_.l(lsk);
        jDispatch();

        subMarker("slow_settab_e", "slow:SETTAB_E");
        e_.o("ld a0, 0(t2)");
        e_.o("mv a1, t3");
        e_.o("mv a2, t5");
        e_.o("hcall %u", kHcTabSetSlow);
        jDispatch();
    }

    // ------------------------------------------------------------------

    void
    callReturnHandlers()
    {
        handler(Op::CALL);
        decodeA();
        e_.o("lbu a2, 8(t2)");
        e_.o("li  a3, 0x06");
        e_.o("bne a2, a3, err_call");
        e_.o("ld a2, 0(t2)");
        e_.o("slli a2, a2, 5");
        e_.o("add a2, a2, s7");
        e_.o("sd s2, 0(s6)");
        e_.o("sd s3, 8(s6)");
        e_.o("sd s4, 16(s6)");
        e_.o("addi s6, s6, 32");
        e_.o("addi s3, t2, 16");
        e_.o("ld s2, 0(a2)");
        e_.o("ld s4, 8(a2)");
        jDispatch();

        handler(Op::RETURN);
        decodeA();
        {
            const std::string lnil = e_.fresh("ret_nil");
            const std::string lw = e_.fresh("ret_w");
            e_.o("srli t3, t0, 14");
            e_.o("andi t3, t3, 1");
            e_.o("beqz t3, %s", lnil.c_str());
            e_.o("ld a2, 0(t2)");
            e_.o("lbu a3, 8(t2)");
            e_.o("j %s", lw.c_str());
            e_.l(lnil);
            e_.o("li a2, 0");
            e_.o("li a3, 0");
            e_.l(lw);
            e_.o("sd a2, -16(s3)");
            e_.o("sb a3, -8(s3)");
            e_.o("beq s6, s0, vm_exit");
            e_.o("addi s6, s6, -32");
            e_.o("ld s2, 0(s6)");
            e_.o("ld s3, 8(s6)");
            e_.o("ld s4, 16(s6)");
            jDispatch();
        }
    }

    // ------------------------------------------------------------------

    void
    forHandlers()
    {
        handler(Op::FORPREP);
        decodeA();
        {
            const std::string flt = e_.fresh("fp_f");
            const std::string jmp = e_.fresh("fp_j");
            e_.o("lbu a2, 8(t2)");
            e_.o("lbu a3, 24(t2)");
            e_.o("lbu a4, 40(t2)");
            e_.o("li  a5, 0x13");
            e_.o("bne a2, a5, %s", flt.c_str());
            e_.o("bne a3, a5, %s", flt.c_str());
            e_.o("bne a4, a5, %s", flt.c_str());
            e_.o("ld a6, 0(t2)");
            e_.o("ld a7, 32(t2)");
            e_.o("sub a6, a6, a7");
            e_.o("sd a6, 0(t2)");
            e_.o("j %s", jmp.c_str());
            e_.l(flt);
            // Convert any Int control value to Float; reject non-numbers.
            for (const unsigned off : {0u, 16u, 32u}) {
                const std::string lf = e_.fresh("fp_cf");
                const std::string ld = e_.fresh("fp_cd");
                e_.o("lbu a2, %u(t2)", off + 8);
                e_.o("li  a5, 0x13");
                e_.o("bne a2, a5, %s", lf.c_str());
                e_.o("ld a6, %u(t2)", off);
                e_.o("fcvt.d.l f2, a6");
                e_.o("fsd f2, %u(t2)", off);
                e_.o("li a5, 0x83");
                e_.o("sb a5, %u(t2)", off + 8);
                e_.o("j %s", ld.c_str());
                e_.l(lf);
                e_.o("li  a5, 0x83");
                e_.o("bne a2, a5, err_arith");
                e_.l(ld);
            }
            e_.o("fld f2, 0(t2)");
            e_.o("fld f4, 32(t2)");
            e_.o("fsub.d f2, f2, f4");
            e_.o("fsd f2, 0(t2)");
            e_.l(jmp);
            applySbx();
            jDispatch();
        }

        handler(Op::FORLOOP);
        decodeA();
        {
            const std::string flt = e_.fresh("fl_f");
            const std::string neg = e_.fresh("fl_n");
            const std::string cont = e_.fresh("fl_c");
            const std::string exit = e_.fresh("fl_x");
            const std::string fneg = e_.fresh("fl_fn");
            const std::string fcont = e_.fresh("fl_fc");
            e_.o("lbu a2, 8(t2)");
            e_.o("li  a5, 0x13");
            e_.o("bne a2, a5, %s", flt.c_str());
            e_.o("ld a6, 0(t2)");
            e_.o("ld a7, 32(t2)");
            e_.o("add a6, a6, a7");
            e_.o("ld a3, 16(t2)");
            e_.o("bltz a7, %s", neg.c_str());
            e_.o("blt a3, a6, %s", exit.c_str());
            e_.o("j %s", cont.c_str());
            e_.l(neg);
            e_.o("blt a6, a3, %s", exit.c_str());
            e_.l(cont);
            e_.o("sd a6, 0(t2)");
            e_.o("sd a6, 48(t2)");
            e_.o("sb a5, 56(t2)");
            applySbx();
            e_.o("j dispatch");
            e_.l(flt);
            e_.o("fld f2, 0(t2)");
            e_.o("fld f4, 32(t2)");
            e_.o("fadd.d f2, f2, f4");
            e_.o("fld f6, 16(t2)");
            e_.o("fmv.x.d a7, f4");
            e_.o("bltz a7, %s", fneg.c_str());
            e_.o("flt.d a6, f6, f2");
            e_.o("bnez a6, %s", exit.c_str());
            e_.o("j %s", fcont.c_str());
            e_.l(fneg);
            e_.o("flt.d a6, f2, f6");
            e_.o("bnez a6, %s", exit.c_str());
            e_.l(fcont);
            e_.o("fsd f2, 0(t2)");
            e_.o("fsd f2, 48(t2)");
            e_.o("li a5, 0x83");
            e_.o("sb a5, 56(t2)");
            applySbx();
            e_.l(exit);
            jDispatch();
        }
    }

    // ------------------------------------------------------------------

    void
    builtinHandler()
    {
        handler(Op::BUILTIN);
        decodeA();
        decodeBRaw();
        const char *labels[] = {"bi_print", "bi_sqrt", "bi_floor",
                                "bi_substr", "bi_strchar", "bi_abs"};
        for (unsigned i = 0; i < 6; ++i) {
            if (i == 0) {
                e_.o("beqz t3, %s", labels[i]);
            } else {
                e_.o("addi t4, t3, -%u", i);
                e_.o("beqz t4, %s", labels[i]);
            }
        }
        e_.o("li a0, %u", kErrCall);
        e_.o("j rt_error");

        e_.l("bi_print");
        e_.o("mv a0, t2");
        e_.o("hcall %u", kHcPrint);
        jDispatch();

        e_.l("bi_sqrt");
        {
            const std::string flt = e_.fresh("sq_f");
            const std::string go = e_.fresh("sq_g");
            e_.o("lbu a2, 24(t2)");
            e_.o("li  a4, 0x83");
            e_.o("beq a2, a4, %s", flt.c_str());
            e_.o("li  a4, 0x13");
            e_.o("bne a2, a4, err_arith");
            e_.o("ld a5, 16(t2)");
            e_.o("fcvt.d.l f2, a5");
            e_.o("j %s", go.c_str());
            e_.l(flt);
            e_.o("fld f2, 16(t2)");
            e_.l(go);
            e_.o("fsqrt.d f2, f2");
            e_.o("fsd f2, 0(t2)");
            e_.o("li a4, 0x83");
            e_.o("sb a4, 8(t2)");
            jDispatch();
        }

        for (const auto &[label, id] :
             {std::pair<const char *, unsigned>{"bi_floor", kHcFloor},
              {"bi_substr", kHcSubstr},
              {"bi_strchar", kHcStrChar},
              {"bi_abs", kHcAbs}}) {
            e_.l(label);
            e_.o("mv a0, t2");
            e_.o("hcall %u", id);
            jDispatch();
        }
    }

    // ------------------------------------------------------------------

    void
    errorsAndExit()
    {
        const std::pair<const char *, unsigned> errs[] = {
            {"err_arith", kErrArith},     {"err_index", kErrIndex},
            {"err_call", kErrCall},       {"err_compare", kErrCompare},
            {"err_divzero", kErrDivZero}, {"err_len", kErrLen},
        };
        for (const auto &[label, code] : errs) {
            e_.l(label);
            e_.o("li a0, %u", code);
            e_.o("j rt_error");
        }
        e_.l("rt_error");
        e_.o("hcall %u", kHcError);
        e_.o("halt");
        e_.l("vm_exit");
        e_.o("li a0, 0");
        e_.o("sys 0");
    }

    void
    dataSection()
    {
        e_.raw(".data\n.align 3\njumptable:\n");
        // Declare the dispatch table to the static verifier: the `jr`
        // in the dispatch loop can only reach these handlers.
        std::string verify = ".verify_indirect_targets";
        for (unsigned i = 0; i < kNumOps; ++i) {
            const std::string name =
                toLower(std::string(opName(static_cast<Op>(i))));
            e_.raw("    .dword op_" + name + "\n");
            verify += (i == 0 ? " op_" : ", op_") + name;
        }
        e_.raw(verify + "\n");
    }

    Variant v_;
    GuestLayout lay_;
    uint64_t mainCode_;
    uint64_t mainConsts_;
    AsmEmitter e_;
    std::vector<std::pair<std::string, std::string>> markers_;
    std::vector<std::string> guards_;
};

} // namespace

InterpResult
generateInterp(Variant variant, const GuestLayout &layout,
               uint64_t main_code, uint64_t main_consts)
{
    return Gen(variant, layout, main_code, main_consts).run();
}

} // namespace tarch::vm::lua
