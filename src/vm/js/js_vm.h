/**
 * @file
 * MiniJS VM: SpiderMonkey-style stack interpreter with NaN boxing,
 * compiled for one of the three ISA variants and run on the simulated
 * core (int32 overflow detection enabled, paper Section 4.2).
 */

#ifndef TARCH_VM_JS_JS_VM_H
#define TARCH_VM_JS_JS_VM_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "assembler/assembler.h"
#include "core/core.h"
#include "vm/image.h"
#include "vm/js/compiler.h"
#include "vm/runtime.h"
#include "vm/variant.h"
#include "vm/vm_state.h"

namespace tarch::vm::js {

class JsVm
{
  public:
    struct Options {
        Variant variant = Variant::Baseline;
        core::CoreConfig coreConfig;  ///< overflow/heap fields overridden
        GuestLayout layout;
        /** Run type inference and rewrite provably monomorphic sites
         *  to the guard-free opcodes (analysis/elide.h). */
        bool elide = false;
    };

    explicit JsVm(const std::string &source);
    JsVm(const std::string &source, const Options &opts);

    int run();

    core::Core &core() { return *core_; }
    const std::string &output() const { return core_->output(); }
    const Module &module() const { return module_; }
    Variant variant() const { return opts_.variant; }
    /** The assembled interpreter image (for the static verifier). */
    const assembler::Program &program() const { return program_; }

    /** Dynamic bytecode counts by mnemonic (handler-entry markers). */
    std::map<std::string, uint64_t> bytecodeProfile() const;
    uint64_t dynamicBytecodes() const;

    /** PCs of the fast-path type guards; see vm/lua/lua_vm.h. */
    const std::vector<uint64_t> &guardPcs() const { return guardPcs_; }

    // --- Stateful sessions and snapshots: the MiniJS mirror of the
    // LuaVm API; see vm/lua/lua_vm.h for the contracts.

    struct StagedChunk {
        Module module;
        assembler::Program program;
        std::vector<std::pair<std::string, std::string>> markers;
        std::vector<std::string> guardLabels;
        std::vector<uint64_t> codeAddr;
        std::vector<uint64_t> constAddr;
        uint64_t codeEnd = 0;
        uint64_t constEnd = 0;
        uint64_t baseCode = 0;
        uint64_t baseConst = 0;
        uint64_t baseProtos = 0;
    };

    StagedChunk prepareChunk(const std::string &source) const;
    bool commitChunk(const StagedChunk &chunk, std::string &error);

    void saveState(VmState &out) const;
    bool restoreState(const VmState &in);

  private:
    void buildImage();
    void registerHostcalls();

    void hcPrint(core::HostEnv &env);
    void hcNewArray(core::HostEnv &env);
    void hcElemGetSlow(core::HostEnv &env);
    void hcElemSetSlow(core::HostEnv &env);
    void hcConcat(core::HostEnv &env);
    void hcFloor(core::HostEnv &env);
    void hcSubstr(core::HostEnv &env);
    void hcStrChar(core::HostEnv &env);
    void hcAbs(core::HostEnv &env);
    void hcFmod(core::HostEnv &env);

    Options opts_;
    Module module_;
    assembler::Program program_;
    std::vector<uint64_t> guardPcs_;
    core::HostcallRegistry hostcalls_;
    std::unique_ptr<core::Core> core_;
    Interner interner_;
    ShadowHash shadow_;

    // Session image cursors and installed-chunk count (vm/vm_state.h).
    uint64_t codeCursor_ = 0;
    uint64_t constCursor_ = 0;
    uint64_t chunkCount_ = 1;
};

} // namespace tarch::vm::js

#endif // TARCH_VM_JS_JS_VM_H
