#include "vm/js/compiler.h"

#include <cstring>
#include <optional>
#include <unordered_map>

#include "common/log.h"

namespace tarch::vm::js {

using script::BinOp;
using script::Block;
using script::Expr;
using script::Stmt;
using script::UnOp;

namespace {

const std::unordered_map<std::string, Builtin> kBuiltins = {
    {"print", Builtin::Print},     {"sqrt", Builtin::Sqrt},
    {"floor", Builtin::Floor},     {"substr", Builtin::Substr},
    {"strchar", Builtin::StrChar}, {"abs", Builtin::Abs},
};

uint64_t
doubleBits(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    return bits;
}

class ModuleCompiler;

class FnCompiler
{
  public:
    FnCompiler(ModuleCompiler &mod, Proto &proto) : mod_(mod), proto_(proto)
    {
    }

    void
    declareParam(const std::string &name)
    {
        bindLocal(name);
    }

    void
    compileBody(const Block &body)
    {
        compileBlock(body);
        emit(Op::PUSHUNDEF);
        emit(Op::RETURN);
        proto_.nlocals = high_;
    }

  private:
    struct Scope {
        unsigned nslots;
        std::vector<std::pair<std::string, std::optional<unsigned>>> undo;
    };

    unsigned
    bindLocal(const std::string &name)
    {
        const unsigned slot = nslots_++;
        if (slot > 250)
            tarch_fatal("function '%s': too many locals",
                        proto_.name.c_str());
        if (nslots_ > high_)
            high_ = nslots_;
        std::optional<unsigned> old;
        const auto it = locals_.find(name);
        if (it != locals_.end())
            old = it->second;
        if (!scopes_.empty())
            scopes_.back().undo.emplace_back(name, old);
        locals_[name] = slot;
        return slot;
    }

    void
    compileBlock(const Block &body)
    {
        scopes_.push_back({nslots_, {}});
        for (const auto &stmt : body)
            statement(*stmt);
        const Scope &scope = scopes_.back();
        for (auto it = scope.undo.rbegin(); it != scope.undo.rend(); ++it) {
            if (it->second)
                locals_[it->first] = *it->second;
            else
                locals_.erase(it->first);
        }
        nslots_ = scope.nslots;
        scopes_.pop_back();
    }

    size_t
    emit(Op op, int32_t imm = 0)
    {
        proto_.code.push_back(encode(op, imm));
        return proto_.code.size() - 1;
    }

    size_t
    emitJump(Op op)
    {
        return emit(op, 0);
    }

    void
    patchJump(size_t at, size_t target)
    {
        const int32_t off = static_cast<int32_t>(target) -
                            static_cast<int32_t>(at) - 1;
        proto_.code[at] = encode(static_cast<Op>(proto_.code[at] & 0xFF),
                                 off);
    }

    size_t here() const { return proto_.code.size(); }

    unsigned
    addConst(const Const &k)
    {
        for (unsigned i = 0; i < proto_.consts.size(); ++i) {
            const Const &c = proto_.consts[i];
            if (c.kind == k.kind &&
                ((k.kind == Const::Kind::Raw && c.bits == k.bits) ||
                 (k.kind == Const::Kind::Str && c.sval == k.sval)))
                return i;
        }
        proto_.consts.push_back(k);
        if (proto_.consts.size() > 4096)
            tarch_fatal("function '%s': too many constants",
                        proto_.name.c_str());
        return static_cast<unsigned>(proto_.consts.size() - 1);
    }

    /** Literal folding (handles -<literal>). */
    std::optional<Const>
    literal(const Expr &e) const
    {
        switch (e.kind) {
          case Expr::Kind::Int:
            if (e.ival >= INT32_MIN && e.ival <= INT32_MAX)
                return Const{Const::Kind::Raw,
                             boxInt(static_cast<int32_t>(e.ival)), {}};
            return Const{Const::Kind::Raw,
                         doubleBits(static_cast<double>(e.ival)), {}};
          case Expr::Kind::Float:
            return Const{Const::Kind::Raw, doubleBits(e.fval), {}};
          case Expr::Kind::Str:
            return Const{Const::Kind::Str, 0, e.name};
          case Expr::Kind::True:
            return Const{Const::Kind::Raw, box(kTagBool, 1), {}};
          case Expr::Kind::False:
            return Const{Const::Kind::Raw, box(kTagBool, 0), {}};
          case Expr::Kind::Nil:
            return Const{Const::Kind::Raw, box(kTagUndef, 0), {}};
          case Expr::Kind::Unary:
            if (e.unop == UnOp::Neg) {
                if (e.lhs->kind == Expr::Kind::Int)
                    return literalNegInt(e.lhs->ival);
                if (e.lhs->kind == Expr::Kind::Float)
                    return Const{Const::Kind::Raw, doubleBits(-e.lhs->fval),
                                 {}};
            }
            return std::nullopt;
          default:
            return std::nullopt;
        }
    }

    static std::optional<Const>
    literalNegInt(int64_t v)
    {
        const int64_t n = -v;
        if (n >= INT32_MIN && n <= INT32_MAX)
            return Const{Const::Kind::Raw, boxInt(static_cast<int32_t>(n)),
                         {}};
        return Const{Const::Kind::Raw,
                     doubleBits(static_cast<double>(n)), {}};
    }

    void
    exprPush(const Expr &e)
    {
        // Small integers use the immediate form.
        if (e.kind == Expr::Kind::Int && e.ival >= -(1 << 23) &&
            e.ival < (1 << 23)) {
            emit(Op::PUSHINT, static_cast<int32_t>(e.ival));
            return;
        }
        if (e.kind == Expr::Kind::Nil) {
            emit(Op::PUSHUNDEF);
            return;
        }
        if (auto k = literal(e)) {
            emit(Op::PUSHK, static_cast<int32_t>(addConst(*k)));
            return;
        }
        switch (e.kind) {
          case Expr::Kind::Var: {
            const auto it = locals_.find(e.name);
            if (it != locals_.end())
                emit(Op::GETLOCAL, static_cast<int32_t>(it->second));
            else
                emit(Op::GETGLOBAL,
                     static_cast<int32_t>(globalSlot(e.name)));
            return;
          }
          case Expr::Kind::Index:
            exprPush(*e.lhs);
            exprPush(*e.rhs);
            emit(Op::GETELEM);
            return;
          case Expr::Kind::Call:
            callPush(e);
            return;
          case Expr::Kind::TableCtor: {
            emit(Op::NEWARRAY);
            for (size_t i = 0; i < e.args.size(); ++i) {
                emit(Op::DUP);
                emit(Op::PUSHINT, static_cast<int32_t>(i + 1));
                exprPush(*e.args[i]);
                emit(Op::SETELEM);
            }
            return;
          }
          case Expr::Kind::Unary: {
            exprPush(*e.lhs);
            emit(e.unop == UnOp::Neg ? Op::NEG
                 : e.unop == UnOp::Not ? Op::NOT
                                       : Op::LEN);
            return;
          }
          case Expr::Kind::Binary:
            binaryPush(e);
            return;
          default:
            tarch_fatal("line %d: unsupported expression", e.line);
        }
    }

    void
    binaryPush(const Expr &e)
    {
        if (e.binop == BinOp::And || e.binop == BinOp::Or) {
            exprPush(*e.lhs);
            emit(Op::DUP);
            const size_t skip =
                emitJump(e.binop == BinOp::And ? Op::JUMPF : Op::JUMPT);
            emit(Op::POP);
            exprPush(*e.rhs);
            patchJump(skip, here());
            return;
        }
        Op op;
        bool swap = false;
        switch (e.binop) {
          case BinOp::Add: op = Op::ADD; break;
          case BinOp::Sub: op = Op::SUB; break;
          case BinOp::Mul: op = Op::MUL; break;
          case BinOp::Div: op = Op::DIV; break;
          case BinOp::IDiv: op = Op::IDIV; break;
          case BinOp::Mod: op = Op::MOD; break;
          case BinOp::Eq: op = Op::EQ; break;
          case BinOp::Ne: op = Op::NE; break;
          case BinOp::Lt: op = Op::LT; break;
          case BinOp::Le: op = Op::LE; break;
          case BinOp::Gt: op = Op::LT; swap = true; break;
          case BinOp::Ge: op = Op::LE; swap = true; break;
          case BinOp::Concat: op = Op::CONCAT; break;
          default:
            tarch_fatal("line %d: bad binary operator", e.line);
        }
        if (swap) {
            exprPush(*e.rhs);
            exprPush(*e.lhs);
        } else {
            exprPush(*e.lhs);
            exprPush(*e.rhs);
        }
        emit(op);
    }

    void callPush(const Expr &e);

    void
    statement(const Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::Local: {
            const unsigned slot = bindLocal(s.name);
            exprPush(*s.expr);
            emit(Op::SETLOCAL, static_cast<int32_t>(slot));
            return;
          }
          case Stmt::Kind::Assign: {
            exprPush(*s.expr);
            const auto it = locals_.find(s.name);
            if (it != locals_.end())
                emit(Op::SETLOCAL, static_cast<int32_t>(it->second));
            else
                emit(Op::SETGLOBAL,
                     static_cast<int32_t>(globalSlot(s.name)));
            return;
          }
          case Stmt::Kind::IndexAssign:
            exprPush(*s.expr);
            exprPush(*s.key);
            exprPush(*s.value);
            emit(Op::SETELEM);
            return;
          case Stmt::Kind::If: {
            std::vector<size_t> ends;
            exprPush(*s.expr);
            size_t next = emitJump(Op::JUMPF);
            compileBlock(s.body);
            const bool more = !s.elifs.empty() || !s.elseBody.empty();
            if (more)
                ends.push_back(emitJump(Op::JUMP));
            patchJump(next, here());
            for (size_t i = 0; i < s.elifs.size(); ++i) {
                exprPush(*s.elifs[i].first);
                next = emitJump(Op::JUMPF);
                compileBlock(s.elifs[i].second);
                if (i + 1 < s.elifs.size() || !s.elseBody.empty())
                    ends.push_back(emitJump(Op::JUMP));
                patchJump(next, here());
            }
            compileBlock(s.elseBody);
            for (const size_t j : ends)
                patchJump(j, here());
            return;
          }
          case Stmt::Kind::While: {
            const size_t top = here();
            exprPush(*s.expr);
            const size_t exit = emitJump(Op::JUMPF);
            breaks_.emplace_back();
            compileBlock(s.body);
            patchJump(emitJump(Op::JUMP), top);
            patchJump(exit, here());
            for (const size_t j : breaks_.back())
                patchJump(j, here());
            breaks_.pop_back();
            return;
          }
          case Stmt::Kind::NumFor:
            numFor(s);
            return;
          case Stmt::Kind::Return:
            if (s.expr)
                exprPush(*s.expr);
            else
                emit(Op::PUSHUNDEF);
            emit(Op::RETURN);
            return;
          case Stmt::Kind::Break:
            if (breaks_.empty())
                tarch_fatal("line %d: 'break' outside a loop", s.line);
            breaks_.back().push_back(emitJump(Op::JUMP));
            return;
          case Stmt::Kind::ExprStmt:
            exprPush(*s.expr);
            emit(Op::POP);
            return;
        }
    }

    void
    numFor(const Stmt &s)
    {
        // Control expressions are evaluated in the enclosing scope
        // before the loop variable is bound (so `for i = i, n` works).
        exprPush(*s.expr);
        exprPush(*s.limit);
        int step_sign = 0;
        if (!s.step) {
            step_sign = 1;
            emit(Op::PUSHINT, 1);
        } else {
            if (auto k = literal(*s.step)) {
                if (k->kind == Const::Kind::Raw) {
                    if ((k->bits >> 48) == typeHalfword(kTagInt)) {
                        step_sign =
                            static_cast<int32_t>(k->bits) < 0 ? -1 : 1;
                    } else {
                        double d;
                        std::memcpy(&d, &k->bits, 8);
                        step_sign = d < 0 ? -1 : 1;
                    }
                }
            }
            exprPush(*s.step);
        }
        scopes_.push_back({nslots_, {}});
        const unsigned var = bindLocal(s.name);
        const unsigned lim = bindLocal("(for-limit)");
        const unsigned stp = bindLocal("(for-step)");
        emit(Op::SETLOCAL, static_cast<int32_t>(stp));
        emit(Op::SETLOCAL, static_cast<int32_t>(lim));
        emit(Op::SETLOCAL, static_cast<int32_t>(var));

        const size_t cond = here();
        std::vector<size_t> exits;
        if (step_sign > 0) {
            emit(Op::GETLOCAL, static_cast<int32_t>(var));
            emit(Op::GETLOCAL, static_cast<int32_t>(lim));
            emit(Op::LE);
            exits.push_back(emitJump(Op::JUMPF));
        } else if (step_sign < 0) {
            emit(Op::GETLOCAL, static_cast<int32_t>(lim));
            emit(Op::GETLOCAL, static_cast<int32_t>(var));
            emit(Op::LE);
            exits.push_back(emitJump(Op::JUMPF));
        } else {
            // Runtime step sign: stp >= 0 <=> 0 <= stp.
            emit(Op::PUSHINT, 0);
            emit(Op::GETLOCAL, static_cast<int32_t>(stp));
            emit(Op::LE);
            const size_t neg = emitJump(Op::JUMPF);
            emit(Op::GETLOCAL, static_cast<int32_t>(var));
            emit(Op::GETLOCAL, static_cast<int32_t>(lim));
            emit(Op::LE);
            exits.push_back(emitJump(Op::JUMPF));
            const size_t into = emitJump(Op::JUMP);
            patchJump(neg, here());
            emit(Op::GETLOCAL, static_cast<int32_t>(lim));
            emit(Op::GETLOCAL, static_cast<int32_t>(var));
            emit(Op::LE);
            exits.push_back(emitJump(Op::JUMPF));
            patchJump(into, here());
        }

        breaks_.emplace_back();
        compileBlock(s.body);
        emit(Op::GETLOCAL, static_cast<int32_t>(var));
        emit(Op::GETLOCAL, static_cast<int32_t>(stp));
        emit(Op::ADD);
        emit(Op::SETLOCAL, static_cast<int32_t>(var));
        patchJump(emitJump(Op::JUMP), cond);
        for (const size_t j : exits)
            patchJump(j, here());
        for (const size_t j : breaks_.back())
            patchJump(j, here());
        breaks_.pop_back();

        const Scope &scope = scopes_.back();
        for (auto it = scope.undo.rbegin(); it != scope.undo.rend(); ++it) {
            if (it->second)
                locals_[it->first] = *it->second;
            else
                locals_.erase(it->first);
        }
        nslots_ = scope.nslots;
        scopes_.pop_back();
    }

    unsigned globalSlot(const std::string &name);

    ModuleCompiler &mod_;
    Proto &proto_;
    std::unordered_map<std::string, unsigned> locals_;
    std::vector<Scope> scopes_;
    unsigned nslots_ = 0;
    unsigned high_ = 1;
    std::vector<std::vector<size_t>> breaks_;
};

class ModuleCompiler
{
  public:
    ModuleCompiler() = default;

    /** Session-chunk mode: carry over global slots and arities. */
    explicit ModuleCompiler(const ChunkSeed &seed)
    {
        mod_.globalNames = seed.globalNames;
        for (unsigned i = 0; i < mod_.globalNames.size(); ++i)
            globals_[mod_.globalNames[i]] = i;
        for (const auto &[name, arity] : seed.functionArity)
            seedArity_[name] = arity;
    }

    Module
    run(const script::Chunk &chunk)
    {
        mod_.protos.resize(1);
        mod_.protos[0].name = "main";
        for (const auto &fn : chunk.functions) {
            if (protoByName_.count(fn.name))
                tarch_fatal("line %d: duplicate function '%s'", fn.line,
                            fn.name.c_str());
            const unsigned idx = static_cast<unsigned>(mod_.protos.size());
            mod_.protos.emplace_back();
            mod_.protos.back().name = fn.name;
            mod_.protos.back().nparams =
                static_cast<unsigned>(fn.params.size());
            protoByName_[fn.name] = idx;
            mod_.functionGlobals.emplace_back(globalSlot(fn.name), idx);
        }
        for (const auto &fn : chunk.functions) {
            Proto &proto = mod_.protos[protoByName_[fn.name]];
            FnCompiler fc(*this, proto);
            for (const auto &p : fn.params)
                fc.declareParam(p);
            fc.compileBody(fn.body);
        }
        FnCompiler main_fc(*this, mod_.protos[0]);
        main_fc.compileBody(chunk.main);
        return std::move(mod_);
    }

    unsigned
    globalSlot(const std::string &name)
    {
        const auto it = globals_.find(name);
        if (it != globals_.end())
            return it->second;
        const unsigned idx = static_cast<unsigned>(mod_.globalNames.size());
        if (idx >= 4096)
            tarch_fatal("too many globals");
        mod_.globalNames.push_back(name);
        globals_[name] = idx;
        return idx;
    }

    std::optional<unsigned>
    protoOf(const std::string &name) const
    {
        const auto it = protoByName_.find(name);
        return it == protoByName_.end()
                   ? std::nullopt
                   : std::optional<unsigned>(it->second);
    }

    /** Arity of a callable @p name: this chunk's functions first, then
        functions seeded from earlier session chunks. */
    std::optional<unsigned>
    arityOf(const std::string &name) const
    {
        const auto proto = protoOf(name);
        if (proto)
            return mod_.protos[*proto].nparams;
        const auto it = seedArity_.find(name);
        if (it == seedArity_.end())
            return std::nullopt;
        return it->second;
    }

    const Module &module() const { return mod_; }

  private:
    Module mod_;
    std::unordered_map<std::string, unsigned> globals_;
    std::unordered_map<std::string, unsigned> protoByName_;
    std::unordered_map<std::string, unsigned> seedArity_;
};

void
FnCompiler::callPush(const Expr &e)
{
    const auto builtin = kBuiltins.find(e.name);
    if (builtin != kBuiltins.end()) {
        for (const auto &arg : e.args)
            exprPush(*arg);
        emit(Op::BUILTIN,
             static_cast<int32_t>(
                 static_cast<unsigned>(builtin->second) |
                 (static_cast<unsigned>(e.args.size()) << 8)));
        return;
    }
    const auto arity = mod_.arityOf(e.name);
    if (!arity)
        tarch_fatal("line %d: call to unknown function '%s'", e.line,
                    e.name.c_str());
    if (*arity != e.args.size())
        tarch_fatal("line %d: '%s' expects %u arguments, got %zu", e.line,
                    e.name.c_str(), *arity, e.args.size());
    emit(Op::GETGLOBAL, static_cast<int32_t>(globalSlot(e.name)));
    for (const auto &arg : e.args)
        exprPush(*arg);
    emit(Op::CALL, static_cast<int32_t>(e.args.size()));
}

unsigned
FnCompiler::globalSlot(const std::string &name)
{
    return mod_.globalSlot(name);
}

} // namespace

Module
compile(const script::Chunk &chunk)
{
    return ModuleCompiler().run(chunk);
}

Module
compile(const script::Chunk &chunk, const ChunkSeed &seed)
{
    return ModuleCompiler(seed).run(chunk);
}

} // namespace tarch::vm::js
